// google-benchmark microbenchmarks for the DSM building blocks: twin
// creation, diff encode/apply, double-mapping protection flips, and the
// fault-handler page-fetch path on a 2-node cluster. These are wall-clock
// numbers (they measure our implementation, not the 2003 hardware model).
#include <benchmark/benchmark.h>

#include <sys/mman.h>

#include <cstring>
#include <random>

#include "dsm/cluster.hpp"
#include "dsm/diff.hpp"
#include "dsm/mapping.hpp"

namespace parade::dsm {
namespace {

void fill_page(std::vector<std::uint8_t>& page, unsigned seed) {
  std::mt19937 rng(seed);
  for (auto& b : page) b = static_cast<std::uint8_t>(rng());
}

void BM_DiffEncode(benchmark::State& state) {
  const std::size_t page_bytes = 4096;
  std::vector<std::uint8_t> twin(page_bytes), current(page_bytes);
  fill_page(twin, 1);
  current = twin;
  // Dirty the requested fraction (percent) of the page in scattered words.
  const long percent = state.range(0);
  std::mt19937 rng(7);
  const std::size_t words = page_bytes / 8;
  for (std::size_t w = 0; w < words * static_cast<std::size_t>(percent) / 100;
       ++w) {
    const std::size_t at = (rng() % words) * 8;
    current[at] ^= 0xFF;
  }
  for (auto _ : state) {
    auto diff = encode_diff(current.data(), twin.data(), page_bytes);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_DiffEncode)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  const std::size_t page_bytes = 4096;
  std::vector<std::uint8_t> twin(page_bytes), current(page_bytes);
  fill_page(twin, 1);
  fill_page(current, 2);
  const auto diff = encode_diff(current.data(), twin.data(), page_bytes);
  std::vector<std::uint8_t> target = twin;
  for (auto _ : state) {
    apply_diff(target.data(), page_bytes, diff.data(), diff.size());
    benchmark::DoNotOptimize(target);
  }
}
BENCHMARK(BM_DiffApply);

void BM_TwinCreate(benchmark::State& state) {
  const std::size_t page_bytes = 4096;
  std::vector<std::uint8_t> page(page_bytes);
  fill_page(page, 3);
  for (auto _ : state) {
    std::vector<std::uint8_t> twin(page_bytes);
    std::memcpy(twin.data(), page.data(), page_bytes);
    benchmark::DoNotOptimize(twin);
  }
}
BENCHMARK(BM_TwinCreate);

void BM_ProtectionFlip(benchmark::State& state) {
  auto mapping = SegmentPool::create(1 << 20, 4096, MapMethod::kMemfd);
  if (!mapping.is_ok()) {
    state.SkipWithError("memfd unavailable");
    return;
  }
  auto& m = *std::move(mapping).value();
  std::size_t page = 0;
  for (auto _ : state) {
    (void)m.protect_app(page * 4096, 4096, PROT_READ | PROT_WRITE);
    (void)m.protect_app(page * 4096, 4096, PROT_NONE);
    page = (page + 1) % 256;
  }
}
BENCHMARK(BM_ProtectionFlip);

void BM_RemotePageFetch(benchmark::State& state) {
  DsmConfig config;
  config.pool_bytes = 8 << 20;
  DsmCluster cluster(2, config);
  auto* data = static_cast<std::uint8_t*>(cluster.node(0).shmalloc(4 << 20));
  (void)cluster.node(1).shmalloc(4 << 20);  // keep allocators in lockstep
  // Node 0 (home/master) has the data; node 1 faults pages in, then both
  // barrier to invalidate nothing — we re-touch fresh pages each iteration.
  std::size_t page = 0;
  const std::size_t npages = (4u << 20) / 4096 - 1;
  const std::byte* base1 = cluster.node(1).base();
  const std::size_t off = cluster.node(0).offset_of(data);
  for (auto _ : state) {
    volatile std::uint8_t sink =
        static_cast<std::uint8_t>(*(base1 + off + page * 4096));
    benchmark::DoNotOptimize(sink);
    page = (page + 1) % npages;
    if (page == 0) state.SkipWithError("exhausted fresh pages");
  }
  cluster.shutdown();
}
BENCHMARK(BM_RemotePageFetch)->Iterations(500);

}  // namespace
}  // namespace parade::dsm

BENCHMARK_MAIN();
