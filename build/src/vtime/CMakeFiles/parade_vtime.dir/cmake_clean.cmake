file(REMOVE_RECURSE
  "CMakeFiles/parade_vtime.dir/clock.cpp.o"
  "CMakeFiles/parade_vtime.dir/clock.cpp.o.d"
  "CMakeFiles/parade_vtime.dir/cost_model.cpp.o"
  "CMakeFiles/parade_vtime.dir/cost_model.cpp.o.d"
  "libparade_vtime.a"
  "libparade_vtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_vtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
