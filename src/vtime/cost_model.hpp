// Network and per-message CPU cost model for direct-execution simulation.
//
// The reproduction runs the full ParADE protocol stack on a single host core;
// "execution time" in the figures is *virtual time*: measured per-thread CPU
// time for computation plus modeled communication costs from this LogGP-style
// model. Presets approximate the paper's two interconnects (Giganet cLAN VIA
// and Fast Ethernet through a 3Com switch) on dual-PIII-class hosts.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace parade::vtime {

struct NetworkModel {
  /// One-way wire latency for a minimal message (LogGP L), microseconds.
  double latency_us = 15.0;
  /// Per-byte gap (1 / bandwidth), microseconds per byte (LogGP G).
  double us_per_byte = 0.01;
  /// CPU overhead to send a message (LogGP o_s), charged to the sender's
  /// compute thread, microseconds.
  double send_overhead_us = 3.0;
  /// CPU overhead to receive + dispatch a message, charged to the receiving
  /// node's communication thread, microseconds.
  double recv_overhead_us = 5.0;
  /// Extra handler cost for servicing a remote page request (page lookup,
  /// permission flip, copy), microseconds.
  double page_service_us = 20.0;

  /// Full one-way transfer time of `bytes` payload, excluding CPU overheads.
  double transfer_us(std::size_t bytes) const {
    return latency_us + us_per_byte * static_cast<double>(bytes);
  }
  /// Request/response round trip with payloads `req` and `resp`.
  double round_trip_us(std::size_t req, std::size_t resp) const {
    return transfer_us(req) + transfer_us(resp);
  }
};

/// Giganet cLAN VIA: ~15 us latency, ~110 MB/s.
NetworkModel clan_via();
/// Switched Fast Ethernet over TCP: ~70 us latency, ~11 MB/s.
NetworkModel fast_ethernet();
/// Zero-cost network (isolates protocol CPU work in ablations).
NetworkModel ideal();

/// Parses "clan", "fastether", or "ideal"; falls back to clan.
NetworkModel model_from_name(const std::string& name);

/// Reads PARADE_NET (preset name) and optional PARADE_NET_LATENCY_US /
/// PARADE_NET_US_PER_BYTE overrides.
NetworkModel model_from_env();

/// Per-node machine shape; decides whether the communication thread's CPU
/// consumption overlaps with computation (paper §6.2 configurations).
struct MachineModel {
  int cpus_per_node = 2;
  int compute_threads = 1;

  /// True when the comm thread has a CPU to itself, i.e. its processing
  /// overlaps computation (1Thread-2CPU). False means its cycles serialize
  /// with compute (1Thread-1CPU, 2Thread-2CPU).
  bool comm_thread_dedicated() const {
    return compute_threads < cpus_per_node;
  }
};

/// The paper's three measurement configurations.
enum class NodeConfig { k1Thread1Cpu, k1Thread2Cpu, k2Thread2Cpu };

MachineModel machine_for(NodeConfig config);
const char* to_string(NodeConfig config);

}  // namespace parade::vtime
