file(REMOVE_RECURSE
  "libparade_dsm.a"
)
