// Domain example: the paper's Helmholtz application (§6.2) driven through
// the public API, printing convergence and the DSM protocol counters that
// explain the run (page fetches, diffs, write notices, home migrations).
//
//   ./helmholtz_solver [n] [max_iters]
#include <cstdio>
#include <cstdlib>

#include "apps/helmholtz.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

int main(int argc, char** argv) {
  using namespace parade;

  apps::HelmholtzParams params;
  params.n = params.m = argc > 1 ? std::atoi(argv[1]) : 96;
  params.max_iters = argc > 2 ? std::atoi(argv[2]) : 120;
  params.tol = 1e-8;

  RuntimeConfig config = runtime_config_from_env();
  VirtualCluster cluster(config);

  apps::HelmholtzResult result;
  const VirtualUs vtime =
      cluster.exec([&] { result = apps::helmholtz_parade(params); });

  std::printf("Helmholtz %dx%d on %d nodes x %d threads\n", params.n,
              params.m, config.nodes, config.threads_per_node);
  std::printf("  iterations     : %d\n", result.iterations);
  std::printf("  final residual : %.3e\n", result.residual);
  std::printf("  error vs exact : %.3e\n", result.error);
  std::printf("  virtual time   : %.3f ms\n", vtime / 1000.0);

  std::printf("DSM protocol activity per node:\n");
  for (int r = 0; r < cluster.size(); ++r) {
    const auto stats = cluster.node(r).dsm().stats().snapshot();
    std::printf(
        "  node %d: %lld page fetches, %lld diffs (%lld B), %lld write "
        "notices, %lld invalidations\n",
        r, static_cast<long long>(stats.page_fetches),
        static_cast<long long>(stats.diffs_created),
        static_cast<long long>(stats.diff_bytes_sent),
        static_cast<long long>(stats.write_notices_sent),
        static_cast<long long>(stats.invalidations));
  }
  cluster.shutdown();
  return 0;
}
