#include "dsm/pagetable.hpp"

#include <cstring>

namespace parade::dsm {

const char* to_string(PageState state) {
  switch (state) {
    case PageState::kInvalid: return "INVALID";
    case PageState::kTransient: return "TRANSIENT";
    case PageState::kBlocked: return "BLOCKED";
    case PageState::kReadOnly: return "READ_ONLY";
    case PageState::kDirty: return "DIRTY";
  }
  return "?";
}

void PageEntry::release_twin(TwinRegistry& twins, NodeId self, PageId page) {
  twins.release_twin(self, page);
}

PageTable::PageTable(std::size_t num_pages, NodeId initial_home) {
  entries_.reserve(num_pages);
  for (std::size_t i = 0; i < num_pages; ++i) {
    auto entry = std::make_unique<PageEntry>();
    entry->home = initial_home;
    entries_.push_back(std::move(entry));
  }
}

PageEntry& PageTable::entry(PageId page) {
  PARADE_CHECK(page >= 0 && static_cast<std::size_t>(page) < entries_.size());
  return *entries_[static_cast<std::size_t>(page)];
}

const PageEntry& PageTable::entry(PageId page) const {
  PARADE_CHECK(page >= 0 && static_cast<std::size_t>(page) < entries_.size());
  return *entries_[static_cast<std::size_t>(page)];
}

NodeId PageTable::home_of(PageId page) const {
  const PageEntry& e = entry(page);
  return e.home;
}

TwinRegistry::TwinRegistry(std::size_t num_pages, std::size_t page_bytes,
                           int max_nodes)
    : pages_(num_pages),
      pools_(static_cast<std::size_t>(max_nodes > 0 ? max_nodes : 1)),
      page_bytes_(page_bytes) {
  for (auto& pool : pools_) pool.store(nullptr, std::memory_order_relaxed);
}

void TwinRegistry::register_pool(NodeId rank, SegmentPool* pool) {
  PARADE_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < pools_.size());
  pools_[static_cast<std::size_t>(rank)].store(pool,
                                               std::memory_order_release);
}

void TwinRegistry::unregister_pool(NodeId rank) {
  PARADE_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < pools_.size());
  for (PageId page = 0; static_cast<std::size_t>(page) < pages_.size();
       ++page) {
    std::lock_guard<std::mutex> lock(stripe(page));
    PageShare& share = pages_[static_cast<std::size_t>(page)];
    auto& slots = share.slots;
    for (std::size_t i = slots.size(); i-- > 0;) {
      if (slots[i].node == rank) {
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (!slots[i].is_private && slots[i].frame_owner == rank) {
        // A surviving rank still aliases this pool's frames; give it a
        // private copy before the frames unmap.
        SegmentPool* watcher_pool =
            pools_[static_cast<std::size_t>(slots[i].node)].load(
                std::memory_order_acquire);
        PARADE_CHECK(watcher_pool != nullptr);
        std::byte* twin = watcher_pool->real_address(View::kTwin, page, 0);
        std::memcpy(twin, slots[i].src, page_bytes_);
        slots[i].src = twin;
        slots[i].frame_owner = slots[i].node;
        slots[i].is_private = true;
      }
    }
  }
  pools_[static_cast<std::size_t>(rank)].store(nullptr,
                                               std::memory_order_release);
}

TwinRegistry::TwinSlot* TwinRegistry::find_slot(PageId page, NodeId node) {
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  for (TwinSlot& slot : share.slots) {
    if (slot.node == node) return &slot;
  }
  return nullptr;
}

int TwinRegistry::privatize_locked(PageId page, PageShare& share) {
  int privatized = 0;
  for (TwinSlot& slot : share.slots) {
    if (slot.is_private) continue;
    SegmentPool* watcher_pool =
        pools_[static_cast<std::size_t>(slot.node)].load(
            std::memory_order_acquire);
    PARADE_CHECK(watcher_pool != nullptr);
    // The frame is still pristine for this watcher — privatization happens
    // strictly before the mutation that would diverge it.
    std::byte* twin = watcher_pool->real_address(View::kTwin, page, 0);
    std::memcpy(twin, slot.src, page_bytes_);
    slot.src = twin;
    slot.frame_owner = slot.node;
    slot.is_private = true;
    ++privatized;
  }
  return privatized;
}

bool TwinRegistry::attach_twin(NodeId self, PageId page, NodeId home,
                               std::uint32_t fetched_version,
                               bool allow_share) {
  PARADE_CHECK(static_cast<std::size_t>(page) < pages_.size());
  std::lock_guard<std::mutex> lock(stripe(page));
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  SegmentPool* self_pool =
      pools_[static_cast<std::size_t>(self)].load(std::memory_order_acquire);
  PARADE_CHECK(self_pool != nullptr);
  SegmentPool* home_pool =
      (home >= 0 && static_cast<std::size_t>(home) < pools_.size())
          ? pools_[static_cast<std::size_t>(home)].load(
                std::memory_order_acquire)
          : nullptr;
  const bool share_alias = allow_share && home != self &&
                           home_pool != nullptr && !share.unstable &&
                           fetched_version != kNeverFetched &&
                           fetched_version == share.version;
  TwinSlot* slot = find_slot(page, self);
  if (slot == nullptr) {
    share.slots.push_back(TwinSlot{});
    slot = &share.slots.back();
    slot->node = self;
  }
  if (share_alias) {
    slot->frame_owner = home;
    slot->src = home_pool->real_address(View::kSys, page, 0);
    slot->is_private = false;
  } else {
    std::byte* twin = self_pool->real_address(View::kTwin, page, 0);
    std::memcpy(twin, self_pool->real_address(View::kSys, page, 0),
                page_bytes_);
    slot->frame_owner = self;
    slot->src = twin;
    slot->is_private = true;
  }
  return share_alias;
}

void TwinRegistry::release_twin(NodeId self, PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  for (std::size_t i = 0; i < share.slots.size(); ++i) {
    if (share.slots[i].node == self) {
      share.slots.erase(share.slots.begin() +
                        static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

bool TwinRegistry::has_twin(NodeId self, PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  return find_slot(page, self) != nullptr;
}

int TwinRegistry::begin_home_mutation(PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  const int privatized = privatize_locked(page, share);
  ++share.version;
  return privatized;
}

int TwinRegistry::mark_unstable(NodeId rank, PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  const int privatized = privatize_locked(page, share);
  ++share.version;
  share.unstable = true;
  share.unstable_by = rank;
  return privatized;
}

void TwinRegistry::mark_stable(NodeId rank, PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  PageShare& share = pages_[static_cast<std::size_t>(page)];
  if (share.unstable && share.unstable_by == rank) {
    share.unstable = false;
    share.unstable_by = -1;
  }
  ++share.version;
}

std::uint32_t TwinRegistry::frame_version(PageId page) {
  std::lock_guard<std::mutex> lock(stripe(page));
  return pages_[static_cast<std::size_t>(page)].version;
}

}  // namespace parade::dsm
