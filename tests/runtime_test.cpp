// OpenMP runtime layer: fork-join, worksharing schedules (property: every
// iteration executed exactly once across the cluster), hybrid sync
// constructs, conventional-SDSM constructs, and the omp_* shims.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>

#include "runtime/api.hpp"
#include "runtime/cluster.hpp"
#include "runtime/omp_shim.hpp"

namespace parade {
namespace {

RuntimeConfig config_of(int nodes, int threads) {
  RuntimeConfig config;
  config.nodes = nodes;
  config.threads_per_node = threads;
  config.dsm.pool_bytes = 4 << 20;
  return config;
}

struct ClusterShape {
  int nodes;
  int threads;
};

class RuntimeAtShape : public ::testing::TestWithParam<ClusterShape> {};

TEST_P(RuntimeAtShape, IdentityFunctions) {
  const auto [nodes, threads] = GetParam();
  VirtualCluster cluster(config_of(nodes, threads));
  std::mutex mutex;
  std::set<int> seen_global_ids;
  cluster.exec([&] {
    EXPECT_EQ(num_nodes(), nodes);
    EXPECT_EQ(threads_per_node(), threads);
    EXPECT_EQ(num_threads(), nodes * threads);
    EXPECT_EQ(local_thread_id(), 0);  // serial section: main thread
    parallel([&] {
      std::lock_guard lock(mutex);
      seen_global_ids.insert(thread_id());
    });
  });
  cluster.shutdown();
  EXPECT_EQ(seen_global_ids.size(),
            static_cast<std::size_t>(nodes * threads));
  EXPECT_EQ(*seen_global_ids.begin(), 0);
  EXPECT_EQ(*seen_global_ids.rbegin(), nodes * threads - 1);
}

TEST_P(RuntimeAtShape, StaticScheduleCoversExactlyOnce) {
  const auto [nodes, threads] = GetParam();
  constexpr long kN = 1003;  // deliberately not divisible
  VirtualCluster cluster(config_of(nodes, threads));
  std::mutex mutex;
  std::map<long, int> hits;
  cluster.exec([&] {
    parallel([&] {
      parallel_for(0, kN, [&](long lo, long hi) {
        std::lock_guard lock(mutex);
        for (long i = lo; i < hi; ++i) hits[i] += 1;
      });
    });
  });
  cluster.shutdown();
  // One logical loop across the whole cluster: every iteration exactly once.
  ASSERT_EQ(hits.size(), static_cast<std::size_t>(kN));
  for (const auto& [iter, count] : hits) {
    ASSERT_EQ(count, 1) << "iteration " << iter;
  }
}

TEST_P(RuntimeAtShape, ScheduleKindsCoverIterationSpace) {
  const auto [nodes, threads] = GetParam();
  constexpr long kN = 501;
  for (const Schedule schedule :
       {Schedule{ScheduleKind::kStatic, 0}, Schedule{ScheduleKind::kStaticChunk, 7},
        Schedule{ScheduleKind::kDynamic, 5}, Schedule{ScheduleKind::kGuided, 0}}) {
    VirtualCluster cluster(config_of(nodes, threads));
    std::mutex mutex;
    std::vector<int> hits(kN, 0);
    cluster.exec([&] {
      parallel([&] {
        parallel_for(3, 3 + kN, schedule, [&](long lo, long hi) {
          std::lock_guard lock(mutex);
          for (long i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i - 3)] += 1;
        });
      });
    });
    cluster.shutdown();
    for (long i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1)
          << "schedule kind " << static_cast<int>(schedule.kind) << " iter "
          << i;
    }
  }
}

TEST_P(RuntimeAtShape, TeamReduceOps) {
  const auto [nodes, threads] = GetParam();
  const int total = nodes * threads;
  VirtualCluster cluster(config_of(nodes, threads));
  cluster.exec([&] {
    parallel([&] {
      const double sum = team_reduce(static_cast<double>(thread_id() + 1),
                                     mp::Op::kSum);
      EXPECT_DOUBLE_EQ(sum, total * (total + 1) / 2.0);
      const std::int64_t mx =
          team_reduce(static_cast<std::int64_t>(thread_id()), mp::Op::kMax);
      EXPECT_EQ(mx, total - 1);
      const std::int64_t mn =
          team_reduce(static_cast<std::int64_t>(thread_id()), mp::Op::kMin);
      EXPECT_EQ(mn, 0);
    });
  });
  cluster.shutdown();
}

TEST_P(RuntimeAtShape, RepeatedReductionsStaySynchronized) {
  const auto [nodes, threads] = GetParam();
  VirtualCluster cluster(config_of(nodes, threads));
  cluster.exec([&] {
    double acc_replica = 0.0;
    parallel([&] {
      for (int round = 0; round < 10; ++round) {
        team_update(&acc_replica, 1.0, mp::Op::kSum);
      }
    });
    EXPECT_DOUBLE_EQ(acc_replica, 10.0 * nodes * threads);
  });
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RuntimeAtShape,
    ::testing::Values(ClusterShape{1, 1}, ClusterShape{1, 3},
                      ClusterShape{2, 1}, ClusterShape{2, 2},
                      ClusterShape{3, 2}, ClusterShape{4, 2}),
    [](const auto& info) {
      return std::to_string(info.param.nodes) + "n" +
             std::to_string(info.param.threads) + "t";
    });

TEST(Runtime, NestedParallelSerializes) {
  VirtualCluster cluster(config_of(2, 2));
  std::atomic<int> inner_runs{0};
  cluster.exec([&] {
    parallel([&] {
      parallel([&] { inner_runs.fetch_add(1); });  // must run inline
    });
  });
  cluster.shutdown();
  EXPECT_EQ(inner_runs.load(), 4);  // once per outer team thread
}

TEST(Runtime, SinglePerEncounterInstance) {
  VirtualCluster cluster(config_of(2, 2));
  std::atomic<int> runs{0};
  cluster.exec([&] {
    double v = 0.0;
    parallel([&] {
      for (int i = 0; i < 5; ++i) {
        single_small(&v, sizeof(v), [&] {
          runs.fetch_add(1);
          v = i * 2.0;
        });
        EXPECT_DOUBLE_EQ(v, i * 2.0);
        // Reading v races with the *next* single's executor otherwise (true
        // under OpenMP semantics as well).
        barrier();
      }
    });
  });
  cluster.shutdown();
  EXPECT_EQ(runs.load(), 5);  // once per dynamic encounter, globally
}

TEST(Runtime, SingleAcrossConsecutiveRegions) {
  VirtualCluster cluster(config_of(2, 2));
  std::atomic<int> runs{0};
  cluster.exec([&] {
    double v = 0.0;
    for (int region = 0; region < 3; ++region) {
      parallel([&] {
        single_small(&v, sizeof(v), [&] {
          runs.fetch_add(1);
          v = 42.0;
        });
      });
    }
  });
  cluster.shutdown();
  EXPECT_EQ(runs.load(), 3);
}

TEST(Runtime, CriticalConventionalCountsCorrectly) {
  VirtualCluster cluster(config_of(2, 2));
  cluster.exec([&] {
    auto* counter = shmalloc_array<std::int64_t>(1);
    if (node_id() == 0) *counter = 0;
    barrier();
    parallel([&] {
      for (int i = 0; i < 5; ++i) {
        critical_conventional(1, [&] { *counter = *counter + 1; });
      }
    });
    EXPECT_EQ(*counter, 5 * num_threads());
  });
  cluster.shutdown();
}

TEST(Runtime, SingleConventionalExecutesOncePerGeneration) {
  VirtualCluster cluster(config_of(2, 2));
  std::atomic<int> runs{0};
  cluster.exec([&] {
    auto* flag = shmalloc_array<std::int64_t>(1);
    if (node_id() == 0) *flag = 0;
    barrier();
    parallel([&] {
      for (int gen = 1; gen <= 4; ++gen) {
        single_conventional(2, flag, gen, [&] { runs.fetch_add(1); });
      }
    });
  });
  cluster.shutdown();
  EXPECT_EQ(runs.load(), 4);
}

TEST(Runtime, MasterOnlyOnGlobalMaster) {
  VirtualCluster cluster(config_of(2, 2));
  std::atomic<int> master_runs{0};
  cluster.exec([&] {
    parallel([&] {
      if (is_master()) master_runs.fetch_add(1);
    });
  });
  cluster.shutdown();
  EXPECT_EQ(master_runs.load(), 1);
}

TEST(Runtime, VirtualTimeMonotoneThroughBarriers) {
  VirtualCluster cluster(config_of(2, 2));
  cluster.exec([&] {
    const VirtualUs t0 = vtime_now();
    barrier();
    const VirtualUs t1 = vtime_now();
    EXPECT_GE(t1, t0);
    parallel([&] {
      const VirtualUs a = vtime_now();
      barrier();
      const VirtualUs b = vtime_now();
      EXPECT_GE(b, a);
    });
  });
  cluster.shutdown();
}

TEST(Runtime, OmpShims) {
  VirtualCluster cluster(config_of(2, 3));
  cluster.exec([&] {
    EXPECT_EQ(ompshim::omp_get_num_threads(), 6);
    EXPECT_EQ(ompshim::omp_in_parallel(), 0);
    parallel([&] {
      EXPECT_EQ(ompshim::omp_in_parallel(), 1);
      EXPECT_GE(ompshim::omp_get_thread_num(), 0);
      EXPECT_LT(ompshim::omp_get_thread_num(), 6);
    });
    EXPECT_GE(ompshim::omp_get_wtime(), 0.0);
  });
  cluster.shutdown();
}

TEST(Runtime, StaticSliceIsPartition) {
  VirtualCluster cluster(config_of(3, 2));
  std::mutex mutex;
  std::vector<std::pair<long, long>> slices;
  cluster.exec([&] {
    parallel([&] {
      long lo, hi;
      static_slice(10, 110, &lo, &hi);
      std::lock_guard lock(mutex);
      slices.emplace_back(lo, hi);
    });
  });
  cluster.shutdown();
  std::sort(slices.begin(), slices.end());
  ASSERT_EQ(slices.size(), 6u);
  EXPECT_EQ(slices.front().first, 10);
  EXPECT_EQ(slices.back().second, 110);
  for (std::size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].first, slices[i - 1].second);  // contiguous
  }
}

TEST(Runtime, ProcessModeConfigFromEnv) {
  setenv("PARADE_NODES", "5", 1);
  setenv("PARADE_THREADS", "3", 1);
  setenv("PARADE_SYNC_MODE", "conventional", 1);
  setenv("PARADE_HOME_MIGRATION", "0", 1);
  const RuntimeConfig config = runtime_config_from_env();
  EXPECT_EQ(config.nodes, 5);
  EXPECT_EQ(config.threads_per_node, 3);
  EXPECT_EQ(config.dsm.sync_mode, dsm::SyncMode::kConventional);
  EXPECT_FALSE(config.dsm.home_migration);
  unsetenv("PARADE_NODES");
  unsetenv("PARADE_THREADS");
  unsetenv("PARADE_SYNC_MODE");
  unsetenv("PARADE_HOME_MIGRATION");
}

}  // namespace
}  // namespace parade
