#include "dsm/priors.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace parade::dsm {

namespace {

const char* g_embedded_hints = nullptr;

bool bool_field(const obs::JsonValue& symbol, const std::string& name) {
  return symbol.has(name) &&
         symbol.at(name).kind == obs::JsonValue::Kind::kBool &&
         symbol.at(name).boolean;
}

std::size_t int_field(const obs::JsonValue& symbol, const std::string& name,
                      std::size_t fallback) {
  if (!symbol.has(name) ||
      symbol.at(name).kind != obs::JsonValue::Kind::kNumber) {
    return fallback;
  }
  const std::int64_t v = symbol.at(name).as_int();
  return v < 0 ? fallback : static_cast<std::size_t>(v);
}

}  // namespace

Result<std::vector<PagePrior>> parse_page_priors(
    const std::string& hints_json) {
  auto parsed = obs::parse_json(hints_json);
  if (!parsed.is_ok()) return parsed.status();
  const obs::JsonValue& doc = parsed.value();
  if (!doc.is_object() || !doc.has("version") ||
      doc.at("version").as_int() != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "hints document is not a version-1 protocol-hint "
                      "sidecar");
  }
  std::vector<PagePrior> priors;
  if (!doc.has("symbols") || !doc.at("symbols").is_array()) return priors;
  for (const obs::JsonValue& symbol : doc.at("symbols").array) {
    if (!symbol.is_object()) continue;
    // Replicated symbols and symbols without a statically known pool offset
    // carry no range the page table could be seeded with.
    if (!bool_field(symbol, "dsm") || !bool_field(symbol, "offset_known")) {
      continue;
    }
    PagePrior prior;
    prior.offset = int_field(symbol, "pool_offset", 0);
    prior.bytes = int_field(symbol, "bytes", 0);
    prior.prefer_update = bool_field(symbol, "prefer_update");
    prior.migration_friendly = bool_field(symbol, "migration_friendly");
    prior.expected_touches = int_field(symbol, "expected_page_touches", 1);
    if (prior.bytes == 0) continue;
    priors.push_back(prior);
  }
  return priors;
}

Status load_page_priors(const std::string& path, DsmConfig* config) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open hints file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto priors = parse_page_priors(text.str());
  if (!priors.is_ok()) return priors.status();
  config->page_priors = std::move(priors).value();
  return Status::ok();
}

void set_embedded_hints_json(const char* json) { g_embedded_hints = json; }

const char* embedded_hints_json() { return g_embedded_hints; }

}  // namespace parade::dsm
