// DSM protocol message kinds and wire encodings. All protocol traffic uses
// tags in the DSM tag class [0, 1000); see net/message.hpp.
//
// Ownership of each tag (who consumes it):
//   communication thread: PageRequest, Diff, LockAcquire, LockRelease,
//                         PageReply (it installs pages and wakes waiters),
//                         Shutdown
//   barrier caller:       BarrierArrive (master only), BarrierDepart
//   diff flusher:         DiffAck
//   lock acquirer:        LockGrant (tag is lock-indexed so concurrent
//                         acquirers on one node never steal each other's
//                         grants)
//
// Serialization is the generic codec<T> at the bottom of this file: each
// message declares its wire layout with a single wire_fields() one-liner and
// gets encode/decode for free. Adding a message kind = struct + wire_fields.
#pragma once

#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace parade::dsm {

inline constexpr Tag kTagPageRequest = 1;
inline constexpr Tag kTagPageReply = 2;
inline constexpr Tag kTagDiff = 3;
inline constexpr Tag kTagDiffAck = 4;
inline constexpr Tag kTagBarrierArrive = 5;
inline constexpr Tag kTagBarrierDepart = 6;
inline constexpr Tag kTagLockAcquire = 7;
inline constexpr Tag kTagLockRelease = 8;
inline constexpr Tag kTagShutdown = 9;
/// Grant for lock L arrives with tag kTagLockGrantBase + L.
inline constexpr Tag kTagLockGrantBase = 100;

/// True for tags the communication thread services.
inline bool comm_thread_tag(Tag tag) {
  return tag == kTagPageRequest || tag == kTagPageReply || tag == kTagDiff ||
         tag == kTagLockAcquire || tag == kTagLockRelease ||
         tag == kTagShutdown;
}

// ---- payload structures ----

struct PageRequestMsg {
  PageId page = 0;
};

struct PageReplyMsg {
  PageId page = 0;
  std::vector<std::uint8_t> data;
};

struct DiffMsg {
  PageId page = 0;
  std::vector<std::uint8_t> diff;
};

struct DiffAckMsg {
  PageId page = 0;
};

/// Write notice: "node `modifier` changed `page` during the closing interval".
struct WriteNotice {
  PageId page = 0;
  NodeId modifier = 0;
};

struct BarrierArriveMsg {
  Epoch epoch = 0;
  std::vector<PageId> dirtied_pages;
};

/// Departure entry for one write-noticed page: everyone updates the home and
/// invalidates stale copies.
struct DepartEntry {
  PageId page = 0;
  NodeId new_home = 0;
  /// The single modifier this interval, or kAnyNode when several nodes wrote.
  NodeId sole_modifier = kAnyNode;
};

struct BarrierDepartMsg {
  Epoch epoch = 0;
  VirtualUs departure_vtime = 0.0;
  std::vector<DepartEntry> entries;
};

struct LockAcquireMsg {
  std::int32_t lock_id = 0;
};

struct LockGrantMsg {
  std::int32_t lock_id = 0;
  /// Pages modified under this lock with their most recent modifier; the
  /// acquirer invalidates stale local copies (lazy-release consistency,
  /// conservatively approximated — see DESIGN.md).
  std::vector<WriteNotice> notices;
};

struct LockReleaseMsg {
  std::int32_t lock_id = 0;
  std::vector<PageId> dirtied_pages;
};

// ---- wire layout declarations (one per message kind) ----
//
// Field order here IS the wire format. Vector fields are length-prefixed
// (uint32 count) and element structs are memcpy'd, so they must be packed;
// the static_asserts below pin the on-wire element sizes.

inline auto wire_fields(PageRequestMsg& m) { return std::tie(m.page); }
inline auto wire_fields(PageReplyMsg& m) { return std::tie(m.page, m.data); }
inline auto wire_fields(DiffMsg& m) { return std::tie(m.page, m.diff); }
inline auto wire_fields(DiffAckMsg& m) { return std::tie(m.page); }
inline auto wire_fields(BarrierArriveMsg& m) {
  return std::tie(m.epoch, m.dirtied_pages);
}
inline auto wire_fields(BarrierDepartMsg& m) {
  return std::tie(m.epoch, m.departure_vtime, m.entries);
}
inline auto wire_fields(LockAcquireMsg& m) { return std::tie(m.lock_id); }
inline auto wire_fields(LockGrantMsg& m) {
  return std::tie(m.lock_id, m.notices);
}
inline auto wire_fields(LockReleaseMsg& m) {
  return std::tie(m.lock_id, m.dirtied_pages);
}

static_assert(sizeof(WriteNotice) == 8, "WriteNotice wire size changed");
static_assert(sizeof(DepartEntry) == 12, "DepartEntry wire size changed");

// ---- generic codec ----

template <typename T>
concept WireMessage = requires(T& m) { wire_fields(m); };

namespace codec_detail {

template <TriviallyWirable F>
void put_field(WireBuffer& buffer, const F& field) {
  buffer.put(field);
}
template <TriviallyWirable E>
void put_field(WireBuffer& buffer, const std::vector<E>& field) {
  buffer.put_vector(field);
}

template <TriviallyWirable F>
void get_field(WireBuffer& buffer, F& field) {
  field = buffer.get<F>();
}
template <TriviallyWirable E>
void get_field(WireBuffer& buffer, std::vector<E>& field) {
  field = buffer.get_vector<E>();
}

}  // namespace codec_detail

/// codec<T>::encode / codec<T>::decode for any message with wire_fields().
template <WireMessage T>
struct codec {
  /// Takes the message by value so call sites can move vector payloads in:
  /// codec<DiffMsg>::encode({page, std::move(diff)}).
  static std::vector<std::uint8_t> encode(T msg) {
    WireBuffer buffer;
    std::apply(
        [&buffer](auto&... fields) {
          (codec_detail::put_field(buffer, fields), ...);
        },
        wire_fields(msg));
    return std::move(buffer).take();
  }

  static T decode(const std::vector<std::uint8_t>& bytes) {
    WireBuffer buffer{bytes};
    T msg;
    std::apply(
        [&buffer](auto&... fields) {
          (codec_detail::get_field(buffer, fields), ...);
        },
        wire_fields(msg));
    PARADE_CHECK_MSG(buffer.exhausted(), "trailing bytes after decode");
    return msg;
  }
};

}  // namespace parade::dsm
