
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inproc.cpp" "src/net/CMakeFiles/parade_net.dir/inproc.cpp.o" "gcc" "src/net/CMakeFiles/parade_net.dir/inproc.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/net/CMakeFiles/parade_net.dir/mailbox.cpp.o" "gcc" "src/net/CMakeFiles/parade_net.dir/mailbox.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/parade_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/parade_net.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parade_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vtime/CMakeFiles/parade_vtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
