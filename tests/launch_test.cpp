// End-to-end multi-process deployment: parade_run forks node processes that
// rendezvous over Unix-domain sockets and run the full DSM + runtime stack,
// including the --trace pipeline into the parade_trace merger.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace {

std::string run_command(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  *exit_code = pclose(pipe);
  return output;
}

/// Exit code (0-255) of a command, -1 when it died on a signal.
int run_exit_code(const std::string& command, std::string* output = nullptr) {
  int status = 0;
  const std::string out = run_command(command, &status);
  if (output != nullptr) *output = out;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string binary(const char* name) {
  return std::string(PARADE_BINARY_DIR) + name;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  std::size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

class ParadeRunNodes : public ::testing::TestWithParam<int> {};

TEST_P(ParadeRunNodes, ClusterRunsAndVerifies) {
  const int nodes = GetParam();
  int code = 0;
  const std::string out = run_command(
      binary("/src/launch/parade_run") + " -n " + std::to_string(nodes) +
          " -t 2 " + binary("/tests/launch_helper"),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_EQ(count_occurrences(out, ": OK"), nodes) << out;
  EXPECT_EQ(count_occurrences(out, "BAD"), 0) << out;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParadeRunNodes, ::testing::Values(1, 2, 4));

TEST(ParadeRun, UsageErrors) {
  int code = 0;
  run_command(binary("/src/launch/parade_run"), &code);
  EXPECT_NE(code, 0);
  run_command(binary("/src/launch/parade_run") + " -n 0 /bin/true", &code);
  EXPECT_NE(code, 0);
}

TEST(ParadeRun, PropagatesChildFailure) {
  int code = 0;
  run_command(binary("/src/launch/parade_run") + " -n 2 /bin/false", &code);
  EXPECT_NE(code, 0);
}


// --trace / --metrics validation mirrors parade_omcc's --threshold contract:
// a bad value exits 2 immediately, before any process is forked.
TEST(ParadeRun, TraceAndMetricsFlagValidation) {
  const std::string base = binary("/src/launch/parade_run") + " -n 1 ";
  const std::string helper = binary("/tests/launch_helper");
  EXPECT_EQ(run_exit_code(base + "--trace= " + helper), 2);
  EXPECT_EQ(run_exit_code(base + "--metrics= " + helper), 2);
  EXPECT_EQ(run_exit_code(
                base + "--trace=/no-such-dir-parade/t.json " + helper),
            2);
  EXPECT_EQ(run_exit_code(
                base + "--metrics=/no-such-dir-parade/m.json " + helper),
            2);
  EXPECT_EQ(run_exit_code(
                base + "--trace=/tmp/a.json --trace=/tmp/b.json " + helper),
            2);
  EXPECT_EQ(
      run_exit_code(
          base + "--metrics=/tmp/a.json --metrics=/tmp/b.json " + helper),
      2);
  // Space-separated form is not accepted for these flags (unknown arg).
  EXPECT_EQ(run_exit_code(base + "--trace /tmp/a.json " + helper), 2);
}

// Full tracing pipeline: parade_run --trace makes every rank dump a trace
// sidecar, and parade_trace merges them into one causally-consistent view
// with at least one cross-node parent→child link.
TEST(ParadeRun, TraceFlagProducesMergeableRankDumps) {
  const auto dir =
      std::filesystem::temp_directory_path() / "parade-launch-trace";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string trace = (dir / "trace.json").string();

  std::string out;
  const int code = run_exit_code(binary("/src/launch/parade_run") +
                                     " -n 2 -t 2 --trace=" + trace + " " +
                                     binary("/tests/launch_helper"),
                                 &out);
  EXPECT_EQ(code, 0) << out;
  const std::string rank0 = (dir / "trace.rank0.json").string();
  const std::string rank1 = (dir / "trace.rank1.json").string();
  ASSERT_TRUE(std::filesystem::exists(rank0)) << out;
  ASSERT_TRUE(std::filesystem::exists(rank1)) << out;

  std::string merged;
  const int trace_code = run_exit_code(
      binary("/src/verify/parade_trace") + " --check --chrome=" +
          (dir / "chrome.json").string() + " " + rank0 + " " + rank1,
      &merged);
  EXPECT_EQ(trace_code, 0) << merged;
  EXPECT_NE(merged.find("2 node(s)"), std::string::npos) << merged;
  EXPECT_EQ(merged.find("0 cross-node link(s)"), std::string::npos) << merged;
  EXPECT_NE(merged.find("check OK"), std::string::npos) << merged;
  EXPECT_NE(merged.find("barrier-critical-path"), std::string::npos) << merged;
  EXPECT_TRUE(std::filesystem::exists(dir / "chrome.json"));
  std::filesystem::remove_all(dir);
}

TEST(ParadeRun, TranslatedProgramOnSocketCluster) {
  // Full toolchain x full deployment: the build-time-translated OpenMP pi
  // program on a real multi-process socket cluster.
  int code = 0;
  const std::string out = run_command(
      binary("/src/launch/parade_run") + " -n 3 -t 2 " +
          binary("/examples/translated_pi"),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("pi=3.141592654"), std::string::npos) << out;
}

}  // namespace
