// parade_omcc: the ParADE OpenMP translator CLI.
//
//   parade_omcc input.c [-o output.cpp] [--threshold=BYTES] [--no-main]
//               [--no-hints]
//   parade_omcc input.c --analyze[=json] [--threshold=BYTES]
//   parade_omcc input.c --hints=json [--threshold=BYTES]
//
// Translates an OpenMP C program into a ParADE C++ program. Compile the
// output against the ParADE runtime (see README "Translator" section).
// With --analyze the translator runs diagnose-only: the semantic analysis
// report (docs/ANALYZER.md) goes to stdout and the exit code is 1 when any
// error-severity finding exists. With --hints=json it prints the protocol-
// hint sidecar (per-symbol update-vs-invalidate priors, page-touch counts,
// pool offsets) that the generated launch wrapper would embed; --no-hints
// disables hint synthesis so collective-vs-DSM lowering falls back to the
// raw size-threshold comparison.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "translator/analyze.hpp"
#include "translator/translate.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parade_omcc <input.c> [-o <output.cpp>] "
               "[--threshold=BYTES] [--no-main] [--no-hints] "
               "[--analyze[=json]] [--hints=json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool analyze_only = false;
  bool analyze_json = false;
  bool hints_json = false;
  parade::translator::TranslateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      output = argv[++i];
    } else if (arg.rfind("--threshold=", 0) == 0) {
      auto bytes =
          parade::translator::parse_threshold_bytes(arg.substr(12));
      if (!bytes.is_ok()) {
        std::fprintf(stderr, "parade_omcc: %s\n",
                     bytes.status().to_string().c_str());
        return 2;
      }
      options.mp_threshold_bytes = bytes.value();
    } else if (arg == "--analyze") {
      analyze_only = true;
    } else if (arg == "--analyze=json") {
      analyze_only = true;
      analyze_json = true;
    } else if (arg == "--hints=json") {
      hints_json = true;
    } else if (arg == "--no-main") {
      options.emit_main_wrapper = false;
    } else if (arg == "--no-hints") {
      options.protocol_hints = false;
    } else if (arg.rfind("-", 0) == 0) {
      return usage();
    } else {
      if (!input.empty()) return usage();
      input = arg;
    }
  }
  if (input.empty() || (analyze_only && hints_json)) return usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "parade_omcc: cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  if (analyze_only || hints_json) {
    parade::translator::AnalyzeOptions analyze_options;
    analyze_options.mp_threshold_bytes = options.mp_threshold_bytes;
    analyze_options.protocol_hints = options.protocol_hints || hints_json;
    auto analysis =
        parade::translator::analyze_source(source.str(), analyze_options);
    if (!analysis.is_ok()) {
      std::fprintf(stderr, "parade_omcc: %s: %s\n", input.c_str(),
                   analysis.status().to_string().c_str());
      return 1;
    }
    if (hints_json) {
      std::fputs((analysis.value().hints.to_json() + "\n").c_str(), stdout);
      return 0;
    }
    const std::string report = analyze_json
                                   ? analysis.value().to_json(input)
                                   : analysis.value().to_text(input);
    std::fputs(report.c_str(), stdout);
    if (analyze_json) std::fputs("\n", stdout);
    return analysis.value().has_errors() ? 1 : 0;
  }

  auto translated = parade::translator::translate_source(source.str(), options);
  if (!translated.is_ok()) {
    std::fprintf(stderr, "parade_omcc: %s: %s\n", input.c_str(),
                 translated.status().to_string().c_str());
    return 1;
  }

  if (output.empty()) {
    std::fputs(translated.value().c_str(), stdout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "parade_omcc: cannot write %s\n", output.c_str());
      return 1;
    }
    out << translated.value();
  }
  return 0;
}
