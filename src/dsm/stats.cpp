#include "dsm/stats.hpp"

#include "obs/registry.hpp"

namespace parade::dsm {

DsmStats::DsmStats(NodeId node) {
  auto& reg = obs::Registry::instance();
#define PARADE_DSM_RESOLVE(name) name##_ = &reg.counter(node, "dsm." #name);
  PARADE_DSM_COUNTERS(PARADE_DSM_RESOLVE)
#undef PARADE_DSM_RESOLVE
  retries_ = &reg.counter(node, "dsm.retry.count");
}

DsmStatsSnapshot DsmStats::snapshot() const {
  DsmStatsSnapshot s;
#define PARADE_DSM_READ(name) s.name = name##_->value();
  PARADE_DSM_COUNTERS(PARADE_DSM_READ)
#undef PARADE_DSM_READ
  s.retries = retries_->value();
  return s;
}

}  // namespace parade::dsm
