
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translator/codegen.cpp" "src/translator/CMakeFiles/parade_translator.dir/codegen.cpp.o" "gcc" "src/translator/CMakeFiles/parade_translator.dir/codegen.cpp.o.d"
  "/root/repo/src/translator/parser.cpp" "src/translator/CMakeFiles/parade_translator.dir/parser.cpp.o" "gcc" "src/translator/CMakeFiles/parade_translator.dir/parser.cpp.o.d"
  "/root/repo/src/translator/pragma.cpp" "src/translator/CMakeFiles/parade_translator.dir/pragma.cpp.o" "gcc" "src/translator/CMakeFiles/parade_translator.dir/pragma.cpp.o.d"
  "/root/repo/src/translator/token.cpp" "src/translator/CMakeFiles/parade_translator.dir/token.cpp.o" "gcc" "src/translator/CMakeFiles/parade_translator.dir/token.cpp.o.d"
  "/root/repo/src/translator/translate.cpp" "src/translator/CMakeFiles/parade_translator.dir/translate.cpp.o" "gcc" "src/translator/CMakeFiles/parade_translator.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/parade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
