file(REMOVE_RECURSE
  "CMakeFiles/dsm_smoke_test.dir/dsm_smoke_test.cpp.o"
  "CMakeFiles/dsm_smoke_test.dir/dsm_smoke_test.cpp.o.d"
  "dsm_smoke_test"
  "dsm_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
