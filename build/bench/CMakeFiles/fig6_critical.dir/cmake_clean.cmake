file(REMOVE_RECURSE
  "CMakeFiles/fig6_critical.dir/fig6_critical.cpp.o"
  "CMakeFiles/fig6_critical.dir/fig6_critical.cpp.o.d"
  "fig6_critical"
  "fig6_critical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
