# Empty compiler generated dependencies file for fig8_cg.
# This may be replaced when dependencies are built.
