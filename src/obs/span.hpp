// Distributed causal spans over the trace ring. A ScopedSpan opens a timed
// interval on the current thread; its context (trace id + span id) becomes
// the thread's ambient parent, is stamped onto outgoing net::MessageHeaders
// by the fabrics, and re-enters as the explicit parent of the span a remote
// node opens while serving the message — so a page reply, lock grant, or
// barrier departure on node B links causally back to the fault or barrier
// arrival on node A. See docs/OBSERVABILITY.md for the span model.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/trace.hpp"

namespace parade::obs {

/// Compact trace context piggybacked on the wire (16 bytes). All ids stay
/// below 2^53 so they survive double-based JSON parsers.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's ambient span context ({0,0} outside any span). The
/// fabrics stamp this onto outgoing headers when tracing is enabled.
SpanContext current_span_context();

/// Allocates a process-unique span/trace id: ((node+1) << 40) | counter.
/// Node-salted so ids from different launcher ranks never collide in a
/// merged dump. Always < 2^53.
std::uint64_t next_span_id(NodeId node);

/// Deterministic trace id shared by every node's spans for barrier `epoch`:
/// (0xBA << 44) | epoch, computed identically cluster-wide with no
/// communication. Always < 2^53.
inline std::uint64_t epoch_trace_id(std::int64_t epoch) {
  return (std::uint64_t{0xBA} << 44U) | static_cast<std::uint64_t>(epoch);
}

/// RAII span. When tracing is disabled the constructor reads one plain bool
/// and the object is inert — no atomics, no clock reads (the page-fault fast
/// path stays unchanged). When enabled, destruction emits one TraceEvent
/// carrying begin/end wall time and the causal ids.
class ScopedSpan {
 public:
  /// Parent = the thread's current span if any, else this span roots a new
  /// trace (trace_id == span_id).
  ScopedSpan(TraceKind kind, NodeId node, Tag tag);

  /// Explicit parent, for spans caused by a remote message (pass the header's
  /// context) or an epoch-scoped trace (pass {epoch_trace_id(e), 0}).
  ScopedSpan(TraceKind kind, NodeId node, Tag tag, SpanContext parent);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  /// This span's context ({0,0} when tracing is disabled).
  SpanContext context() const { return ctx_; }

 private:
  void open(TraceKind kind, NodeId node, Tag tag, SpanContext parent,
            bool have_parent);

  bool active_ = false;
  SpanContext ctx_;
  SpanContext saved_;
  TraceEvent event_;
};

}  // namespace parade::obs
