#include "translator/hints.hpp"

#include <cstdlib>
#include <map>
#include <set>

#include "obs/json.hpp"
#include "translator/analyze.hpp"
#include "translator/cfg.hpp"
#include "translator/token.hpp"

namespace parade::translator {

const char* to_string(SharingPattern pattern) {
  switch (pattern) {
    case SharingPattern::kReadMostly: return "read_mostly";
    case SharingPattern::kProducerConsumer: return "producer_consumer";
    case SharingPattern::kMigratory: return "migratory";
    case SharingPattern::kPingPong: return "ping_pong";
  }
  return "unknown";
}

const SymbolHint* ProtocolHints::find(const std::string& name) const {
  for (const SymbolHint& h : symbols) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

SymbolHint* ProtocolHints::find(const std::string& name) {
  for (SymbolHint& h : symbols) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string ProtocolHints::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("version");
  w.value(std::int64_t{2});
  w.key("epoch_base");
  w.value(static_cast<std::int64_t>(epoch_base));
  w.key("phase_count");
  w.value(static_cast<std::int64_t>(phase_count));
  w.key("page_bytes");
  w.value(static_cast<std::int64_t>(page_bytes));
  w.key("threshold_bytes");
  w.value(static_cast<std::int64_t>(threshold_bytes));
  w.key("symbols");
  w.begin_array();
  for (const SymbolHint& h : symbols) {
    w.begin_object();
    w.key("name");
    w.value(h.name);
    w.key("bytes");
    w.value(static_cast<std::int64_t>(h.byte_size));
    w.key("reads");
    w.value(static_cast<std::int64_t>(h.reads));
    w.key("writes");
    w.value(static_cast<std::int64_t>(h.writes));
    w.key("footprint_bytes");
    w.value(static_cast<std::int64_t>(h.footprint_bytes));
    w.key("writer_constructs");
    w.value(static_cast<std::int64_t>(h.writer_constructs));
    w.key("dsm");
    w.value(h.dsm);
    w.key("offset_known");
    w.value(h.offset_known);
    w.key("pool_offset");
    w.value(static_cast<std::int64_t>(h.pool_offset));
    w.key("prefer_update");
    w.value(h.prefer_update);
    w.key("migration_friendly");
    w.value(h.migration_friendly);
    w.key("expected_page_touches");
    w.value(static_cast<std::int64_t>(h.expected_page_touches));
    w.end_object();
  }
  w.end_array();
  w.key("phases");
  w.begin_array();
  for (const PhaseHint& phase : phases) {
    w.begin_object();
    w.key("index");
    w.value(static_cast<std::int64_t>(phase.index));
    w.key("ranges");
    w.begin_array();
    for (const PhaseRange& r : phase.ranges) {
      w.begin_object();
      w.key("symbol");
      w.value(r.symbol);
      w.key("offset");
      w.value(static_cast<std::int64_t>(r.offset));
      w.key("bytes");
      w.value(static_cast<std::int64_t>(r.bytes));
      w.key("pattern");
      w.value(to_string(r.pattern));
      w.key("prefer_update");
      w.value(r.prefer_update);
      w.key("migration_friendly");
      w.value(r.migration_friendly);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

/// Strict integer-literal parse ("1000000", "0x40"); false on anything else.
bool parse_literal(const std::string& text, long long* out) {
  std::string trimmed;
  for (char c : text) {
    if (c != ' ') trimmed += c;
  }
  if (trimmed.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(trimmed.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

/// Affine per-construct access accounting for one file-scope symbol.
struct FootprintAcc {
  std::size_t reads = 0;   // syntactic occurrences inside parallel constructs
  std::size_t writes = 0;
  std::size_t footprint = 0;  // largest per-construct affine byte estimate
  std::set<int> writer_constructs;  // parallel construct lines writing it
};

/// Walks the unit once, resolving loop trip counts from literal bounds
/// (including file-scope `= literal` initializers like num_steps = 1000000)
/// and attributing each global access to its enclosing parallel construct.
class FootprintWalker {
 public:
  FootprintWalker(const Analysis& analysis,
                  std::map<std::string, long long> literals)
      : analysis_(analysis), literals_(std::move(literals)) {}

  void run(const TranslationUnit& unit) {
    for (const TopItem& item : unit.items) {
      if (item.kind != TopItem::Kind::kFunction) continue;
      if (item.function.body) visit(*item.function.body);
    }
  }

  const std::map<std::string, FootprintAcc>& accs() const { return accs_; }

 private:
  struct LoopCtx {
    std::string var;
    std::size_t trips = 0;  // 0 = statically unknown
  };

  bool resolve(const std::string& text, long long* out) const {
    if (parse_literal(text, out)) return true;
    std::string trimmed;
    for (char c : text) {
      if (c != ' ') trimmed += c;
    }
    auto it = literals_.find(trimmed);
    if (it != literals_.end()) {
      *out = it->second;
      return true;
    }
    return false;
  }

  std::size_t trip_count(const ForHeader& h) const {
    if (!h.canonical) return 0;
    long long lo = 0;
    long long hi = 0;
    long long step = 1;
    if (!resolve(h.lower, &lo) || !resolve(h.upper, &hi) ||
        !resolve(h.step, &step) || step == 0) {
      return 0;
    }
    long long span = h.increasing ? hi - lo : lo - hi;
    if (h.inclusive) ++span;
    if (span <= 0) return 0;
    const long long abs_step = step < 0 ? -step : step;
    return static_cast<std::size_t>((span + abs_step - 1) / abs_step);
  }

  /// Idents appearing inside `name [ ... ]` subscripts within `text`.
  std::set<std::string> subscript_idents(const std::string& text,
                                         const std::string& name) const {
    std::set<std::string> idents;
    auto tokens_result = lex(text);
    if (!tokens_result.is_ok()) return idents;
    const auto tokens = std::move(tokens_result).value();
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokKind::kIdent || tokens[i].text != name ||
          !tokens[i + 1].is_punct("[")) {
        continue;
      }
      // Consecutive groups chain: grid[i][j] contributes both i and j.
      int depth = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].is_punct("[")) {
          ++depth;
        } else if (tokens[j].is_punct("]")) {
          if (--depth == 0 &&
              (j + 1 >= tokens.size() || !tokens[j + 1].is_punct("["))) {
            break;
          }
        } else if (depth > 0 && tokens[j].kind == TokKind::kIdent) {
          idents.insert(tokens[j].text);
        }
      }
    }
    return idents;
  }

  void account_text(const std::string& text, int line) {
    (void)line;
    if (region_line_ == 0 || text.empty()) return;
    const AccessScan acc = scan_accesses(text);
    std::set<std::string> touched;
    for (const std::string& r : acc.reads) {
      auto g = analysis_.globals.find(r);
      if (g == analysis_.globals.end()) continue;
      accs_[r].reads += 1;
      touched.insert(r);
    }
    for (const AccessScan::Write& wr : acc.writes) {
      if (wr.deref) continue;
      auto g = analysis_.globals.find(wr.name);
      if (g == analysis_.globals.end()) continue;
      FootprintAcc& a = accs_[wr.name];
      a.writes += 1;
      a.writer_constructs.insert(region_line_);
      touched.insert(wr.name);
    }
    for (const std::string& name : touched) {
      const VarClass& vc = analysis_.globals.at(name);
      FootprintAcc& a = accs_[name];
      std::size_t bytes = vc.byte_size;  // default: the whole object
      if (vc.placement == Placement::kDsmArray) {
        const std::size_t elem = sizeof_declared(vc.type, 0, {});
        if (elem > 0) {
          const std::set<std::string> subs = subscript_idents(text, name);
          std::size_t trips = 1;
          bool affine = !subs.empty();
          for (const LoopCtx& l : loops_) {
            if (subs.count(l.var) == 0) continue;
            if (l.trips == 0) {
              affine = false;
              break;
            }
            trips *= l.trips;
          }
          if (affine) {
            std::size_t est = elem * trips;
            if (vc.byte_size > 0 && est > vc.byte_size) est = vc.byte_size;
            bytes = est;
          }
        }
      }
      if (bytes > a.footprint) a.footprint = bytes;
    }
  }

  void visit(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kRaw:
        account_text(stmt.text, stmt.line);
        return;
      case StmtKind::kDecl:
        for (const Declarator& d : stmt.declarators) {
          if (!d.init.empty()) account_text(d.init, stmt.line);
        }
        return;
      case StmtKind::kFor: {
        const ForHeader& h = stmt.for_header;
        account_text(h.init_text, stmt.line);
        account_text(h.cond_text, stmt.line);
        account_text(h.incr_text, stmt.line);
        loops_.push_back(LoopCtx{h.canonical ? h.loop_var : "",
                                 trip_count(h)});
        for (const StmtPtr& child : stmt.children) {
          if (child) visit(*child);
        }
        loops_.pop_back();
        return;
      }
      case StmtKind::kIf:
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
      case StmtKind::kSwitch:
        account_text(stmt.cond, stmt.line);
        break;
      case StmtKind::kPragma: {
        const Directive& d = stmt.directive;
        const bool opens_region = d.kind == DirectiveKind::kParallel ||
                                  d.kind == DirectiveKind::kParallelFor ||
                                  d.kind == DirectiveKind::kParallelSections;
        if (opens_region) {
          const int saved = region_line_;
          region_line_ = d.line;
          for (const StmtPtr& child : stmt.children) {
            if (child) visit(*child);
          }
          region_line_ = saved;
          return;
        }
        break;
      }
      default:
        break;
    }
    for (const StmtPtr& child : stmt.children) {
      if (child) visit(*child);
    }
  }

  const Analysis& analysis_;
  std::map<std::string, long long> literals_;
  std::map<std::string, FootprintAcc> accs_;
  std::vector<LoopCtx> loops_;
  int region_line_ = 0;  // 0 = serial code (no protocol traffic accounted)
};

}  // namespace

void synthesize_hints(const TranslationUnit& unit,
                      const AnalyzeOptions& options, Analysis* analysis) {
  ProtocolHints hints;
  hints.page_bytes = options.page_bytes;
  hints.threshold_bytes = options.mp_threshold_bytes;

  // File-scope `name = integer-literal` initializers double as symbolic
  // bounds for the affine trip counts (e.g. `for (i = 0; i < num_steps; ...)`
  // with `static long num_steps = 1000000;`).
  std::map<std::string, long long> literals;
  for (const TopItem& item : unit.items) {
    if (item.kind != TopItem::Kind::kDecl) continue;
    for (const Declarator& d : item.stmt->declarators) {
      long long v = 0;
      if (!d.is_function && d.array_dims.empty() && !d.init.empty() &&
          parse_literal(d.init, &v)) {
        literals[d.name] = v;
      }
    }
  }

  FootprintWalker walker(*analysis, std::move(literals));
  walker.run(unit);

  for (const auto& [name, acc] : walker.accs()) {
    const VarClass& vc = analysis->globals.at(name);
    SymbolHint h;
    h.name = name;
    h.byte_size = vc.byte_size;
    h.reads = acc.reads;
    h.writes = acc.writes;
    h.footprint_bytes = acc.footprint;
    h.writer_constructs = static_cast<int>(acc.writer_constructs.size());
    // Single-writer symbols benefit from home migration (the home chases
    // the writer, paper §5.2.2); multi-writer data would thrash.
    h.migration_friendly = h.writer_constructs <= 1;
    // Update-vs-invalidate prior: read-dominated small data amortizes the
    // eager update; write-dominated or large data is cheaper invalidated.
    h.prefer_update = vc.byte_size > 0 &&
                      vc.byte_size <= 4 * options.mp_threshold_bytes &&
                      acc.writes > 0 && acc.reads >= 2 * acc.writes;
    const std::size_t span =
        h.footprint_bytes > 0 ? h.footprint_bytes : h.byte_size;
    if (span > 0) {
      h.expected_page_touches =
          (span + options.page_bytes - 1) / options.page_bytes;
    }
    hints.symbols.push_back(std::move(h));
  }
  analysis->hints = std::move(hints);

  // Promotion: a sync site that fell back to the DSM lock *only* because of
  // the raw size threshold flips to the collective when the access pattern
  // prefers the update path. This replaces the static comparison as the
  // final word on collective-vs-DSM lowering.
  for (auto& [line, dec] : analysis->sync_sites) {
    (void)line;
    if (dec.collective || !dec.threshold_fallback || dec.var.empty()) {
      continue;
    }
    const SymbolHint* h = analysis->hints.find(dec.var);
    if (h != nullptr && h->prefer_update) {
      dec.collective = true;
      dec.reason = "promoted to update-by-collective by protocol-hint "
                   "synthesis: " +
                   std::to_string(h->reads) + " read(s) per " +
                   std::to_string(h->writes) + " write(s) on a " +
                   std::to_string(h->byte_size) +
                   " B scalar favor the update path";
    }
  }
}

}  // namespace parade::translator
