// Figure 8: NAS CG execution time on the modeled cLAN cluster, node sweep
// 1-8 under the paper's three configurations (1Thread-1CPU, 1Thread-2CPU,
// 2Thread-2CPU). Default is class S so the single-core host finishes
// quickly; use --class=W or --class=A for the paper's size.
#include "apps/cg.hpp"
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  using namespace parade;
  const std::string cls = bench::arg_string(argc, argv, "class", "S");
  apps::CgParams params = apps::CgParams::class_s();
  if (cls == "W") params = apps::CgParams::class_w();
  if (cls == "A") params = apps::CgParams::class_a();
  params.niter = static_cast<int>(
      bench::arg_long(argc, argv, "niter", params.niter));

  std::vector<bench::Series> series;
  for (const auto node_config : bench::kNodeConfigs) {
    bench::Series s{vtime::to_string(node_config), {}};
    for (const int nodes : bench::kNodeSweep) {
      RuntimeConfig config = bench::figure_config(nodes, node_config);
      apps::CgResult result;
      const double seconds = run_virtual_cluster_s(
          config, [&] { result = apps::cg_parade(params); });
      s.values.push_back(seconds);
    }
    series.push_back(std::move(s));
  }
  bench::print_figure("Figure 8: NAS CG class " + cls +
                          " execution time on modeled cLAN (virtual time)",
                      "s", bench::kNodeSweep, series);
  return 0;
}
