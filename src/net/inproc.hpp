// In-process fabric: N channels whose send() delivers straight into the
// destination mailbox. Network cost is not simulated here with real delays —
// the virtual-time model charges message costs analytically — so the fabric
// itself is a zero-copy-ish queue hop, keeping wall-clock runs fast on the
// single-core host.
#pragma once

#include <memory>
#include <vector>

#include "net/channel.hpp"

namespace parade::net {

class InProcFabric {
 public:
  explicit InProcFabric(int size);
  ~InProcFabric();

  InProcFabric(const InProcFabric&) = delete;
  InProcFabric& operator=(const InProcFabric&) = delete;

  int size() const { return static_cast<int>(channels_.size()); }
  Channel& channel(NodeId rank);

  /// Closes every mailbox (idempotent).
  void shutdown();

 private:
  class InProcChannel;
  std::vector<std::unique_ptr<InProcChannel>> channels_;
};

}  // namespace parade::net
