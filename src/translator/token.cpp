#include "translator/token.hpp"

#include <cctype>
#include <unordered_set>

namespace parade::translator {
namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "auto",     "break",    "case",     "char",   "const",    "continue",
      "default",  "do",       "double",   "else",   "enum",     "extern",
      "float",    "for",      "goto",     "if",     "inline",   "int",
      "long",     "register", "restrict", "return", "short",    "signed",
      "sizeof",   "static",   "struct",   "switch", "typedef",  "union",
      "unsigned", "void",     "volatile", "while"};
  return kw;
}

// Multi-char punctuators, longest first.
const char* kPuncts3[] = {"<<=", ">>=", "...", nullptr};
const char* kPuncts2[] = {"->", "++", "--", "<<", ">>", "<=", ">=", "==",
                          "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
                          "&=", "^=", "|=", nullptr};

}  // namespace

bool is_decl_start_keyword(const std::string& word) {
  static const std::unordered_set<std::string> starters = {
      "auto",   "char",   "const",  "double",   "enum",   "extern",
      "float",  "inline", "int",    "long",     "register", "short",
      "signed", "static", "struct", "typedef",  "union",  "unsigned",
      "void",   "volatile"};
  return starters.count(word) > 0;
}

Result<std::vector<Token>> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  int line = 1;
  std::size_t line_start = 0;  // index of the current line's first byte
  const std::size_t n = source.size();

  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };
  // 1-based byte column of position `at` on the current line.
  auto column_of = [&](std::size_t at) {
    return static_cast<int>(at - line_start) + 1;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      if (i + 1 >= n) {
        return make_error(ErrorCode::kInvalidArgument,
                          "unterminated comment at line " + std::to_string(line));
      }
      i += 2;
      continue;
    }
    // Preprocessor / pragma lines (with backslash continuation).
    if (c == '#') {
      std::string text;
      const int start_line = line;
      const int start_column = column_of(i);
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          text += ' ';
          i += 2;
          ++line;
          line_start = i;
          continue;
        }
        if (source[i] == '\n') break;
        text += source[i];
        ++i;
      }
      // Classify: "#pragma omp ..." vs anything else.
      std::string squished;
      for (const char ch : text) {
        if (!std::isspace(static_cast<unsigned char>(ch)) || (!squished.empty() && squished.back() != ' ')) {
          squished += std::isspace(static_cast<unsigned char>(ch)) ? ' ' : ch;
        }
      }
      if (squished.rfind("#pragma omp", 0) == 0) {
        Token t;
        t.kind = TokKind::kPragmaOmp;
        t.text = squished.substr(std::string("#pragma omp").size());
        t.line = start_line;
        t.column = start_column;
        tokens.push_back(std::move(t));
      } else {
        Token t;
        t.kind = TokKind::kHashLine;
        t.text = text;
        t.line = start_line;
        t.column = start_column;
        tokens.push_back(std::move(t));
      }
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const int start_column = column_of(i);
      std::string word;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        word += source[i];
        ++i;
      }
      Token t;
      t.kind = keywords().count(word) ? TokKind::kKeyword : TokKind::kIdent;
      t.text = std::move(word);
      t.line = line;
      t.column = start_column;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers (ints, floats, hex, suffixes, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const int start_column = column_of(i);
      std::string num;
      while (i < n) {
        const char d = source[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            ((d == '+' || d == '-') && !num.empty() &&
             (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
              num.back() == 'P'))) {
          num += d;
          ++i;
        } else {
          break;
        }
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = std::move(num);
      t.line = line;
      t.column = start_column;
      tokens.push_back(std::move(t));
      continue;
    }
    // Strings / chars.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_column = column_of(i);
      std::string text(1, quote);
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          text += source[i];
          text += source[i + 1];
          i += 2;
          continue;
        }
        if (source[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        text += source[i];
        ++i;
      }
      if (i >= n) {
        return make_error(ErrorCode::kInvalidArgument,
                          "unterminated literal at line " + std::to_string(line));
      }
      text += quote;
      ++i;
      Token t;
      t.kind = quote == '"' ? TokKind::kString : TokKind::kChar;
      t.text = std::move(text);
      t.line = line;
      t.column = start_column;
      tokens.push_back(std::move(t));
      continue;
    }
    // Punctuators, longest match.
    const int punct_column = column_of(i);
    bool matched = false;
    for (const char** p = kPuncts3; *p != nullptr; ++p) {
      if (source.compare(i, 3, *p) == 0) {
        tokens.push_back(Token{TokKind::kPunct, *p, line, punct_column});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char** p = kPuncts2; *p != nullptr; ++p) {
      if (source.compare(i, 2, *p) == 0) {
        tokens.push_back(Token{TokKind::kPunct, *p, line, punct_column});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back(Token{TokKind::kPunct, std::string(1, c), line,
                           punct_column});
    ++i;
  }

  tokens.push_back(Token{TokKind::kEof, "", line, column_of(i)});
  return tokens;
}

}  // namespace parade::translator
