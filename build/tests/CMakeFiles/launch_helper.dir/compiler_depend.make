# Empty compiler generated dependencies file for launch_helper.
# This may be replaced when dependencies are built.
