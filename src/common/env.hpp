// Typed access to PARADE_* environment variables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace parade::env {

std::optional<std::string> get_string(const char* name);
std::optional<std::int64_t> get_int(const char* name);
std::optional<double> get_double(const char* name);
std::optional<bool> get_bool(const char* name);

std::string get_string_or(const char* name, const std::string& fallback);
std::int64_t get_int_or(const char* name, std::int64_t fallback);
double get_double_or(const char* name, double fallback);
bool get_bool_or(const char* name, bool fallback);

}  // namespace parade::env
