file(REMOVE_RECURSE
  "CMakeFiles/launch_test.dir/launch_test.cpp.o"
  "CMakeFiles/launch_test.dir/launch_test.cpp.o.d"
  "launch_test"
  "launch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
