file(REMOVE_RECURSE
  "libparade_translator.a"
)
