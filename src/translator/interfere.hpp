// Whole-program interference analysis (ROADMAP item 4, docs/ANALYZER.md
// "Region-sequence graph"). PR 8's hints are per-construct; the sharing
// pattern that decides page behavior (ping-pong, producer->consumer,
// migratory, read-mostly) only emerges across the *sequence* of parallel
// regions and barriers. This pass:
//
//  1. builds a program-level region-sequence graph: every parallel construct
//     and serial gap in program order, cut into barrier-delimited *phases*
//     (global barriers, which bump the DSM epoch) and finer *steps* (also cut
//     by node-local order points such as a non-nowait `single`),
//  2. computes May-Happen-in-Parallel over the accesses: two accesses may
//     overlap iff they share a step, both run in parallel context, their
//     locksets are disjoint, and they are not serialized by the same
//     single/master instance (master is global thread 0, so master bodies
//     never overlap each other),
//  3. classifies each DSM symbol's page footprint per phase as read-mostly /
//     producer-consumer / migratory / ping-pong and lowers the result into
//     the `phases` array of the ProtocolHints sidecar (epoch-ranged priors,
//     src/dsm/priors.hpp),
//  4. emits the cross-region diagnostics race.cross_region,
//     nowait.cross_region_read, and hint.pingpong_update_demotion, and
//  5. prices the timeline: a static message-cost estimate per construct
//     (`parade_lint --cost`) checked end-to-end against observed dsm.*
//     counters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "translator/analyze.hpp"
#include "translator/ast.hpp"

namespace parade::translator {

/// One parallel construct (or serial gap) in the region-sequence graph,
/// in program order.
struct SeqConstruct {
  int id = -1;
  int line = 0;
  std::string kind;       // "parallel", "for", "sections", "single", ...
  int phase = 0;          // phase at construct entry
  int step = 0;           // step at construct entry
  bool parallel = false;  // body executes on the full team
  bool nowait = false;
  /// Body executes once per team member (directly under a parallel region,
  /// not split by worksharing or serialized by single/master).
  bool per_thread = false;
  long long trips = 1;    // total body executions per program run
  int sync_line = -1;     // critical/atomic: key into Analysis::sync_sites
};

/// One access to a file-scope symbol, annotated with its interference
/// coordinates on the region-sequence graph.
struct SeqAccess {
  std::string symbol;
  bool write = false;
  int line = 0;
  int phase = 0;
  int step = 0;
  int construct_id = -1;  // innermost SeqConstruct (-1 = serial code)
  long long trips = 1;    // estimated executions per program run
  bool parallel = false;  // reached in parallel context
  bool guarded = false;   // critical/atomic/single/master/ordered body
  bool in_critical = false;
  int serial_guard = -1;  // innermost single/master SeqConstruct id
  bool master_guard = false;  // serialized on global thread 0
  bool per_thread = false;    // executed once per team member
  /// Array access subscripted by the enclosing worksharing loop variable:
  /// the team touches disjoint affine slices, so concurrent writes do not
  /// contend for pages (modulo boundary sharing).
  bool partitioned = false;
  std::vector<std::string> locks;  // critical/atomic locks held (sorted)
};

/// The program-level region-sequence graph: constructs and accesses in
/// program order, with the phase/step decomposition. Edges are implicit —
/// consecutive steps are ordered, equal steps may interleave.
struct RegionSequence {
  std::vector<SeqConstruct> constructs;
  std::vector<SeqAccess> accesses;
  int phase_count = 1;
  int step_count = 1;
  /// False when a global barrier sits inside a loop: the phase timeline is
  /// then not statically enumerable, so phase-aware hints are withheld
  /// (diagnostics and cost estimates still apply).
  bool phases_static = true;
  /// DSM epoch of phase 0 (1 when codegen emits the shared-init barrier,
  /// i.e. when any symbol lives in the DSM pool).
  int epoch_base = 0;
};

/// Builds the region-sequence graph for `unit`. `analysis` supplies symbol
/// placement and sync-site decisions (collective sites produce no DSM
/// traffic and their bodies' writes are propagation-managed).
RegionSequence build_region_sequence(const TranslationUnit& unit,
                                     const Analysis& analysis);

/// MHP over the region-sequence graph (rule 2 in the header comment).
bool may_happen_in_parallel(const SeqAccess& a, const SeqAccess& b);

/// Runs the interference pass: fills analysis->hints.{phases, phase_count,
/// epoch_base}, demotes prefer_update for symbols that ping-pong in every
/// writing phase, and appends the cross-region diagnostics. Called from
/// analyze() when both flow_sensitive and protocol_hints are on.
void run_interference(const TranslationUnit& unit,
                      const AnalyzeOptions& options, Analysis* analysis);

/// Static message-cost prediction for one construct (totals across all
/// nodes; see docs/ANALYZER.md "Message-cost model" for the formulas).
struct ConstructCost {
  int line = 0;
  std::string kind;
  std::string detail;  // symbol / lock the traffic is attributed to
  double lock_acquires = 0;
  double page_fetches = 0;
  double diffs_created = 0;
};

struct CostReport {
  int nodes = 2;
  /// Documented accuracy contract: predictions are within this factor of
  /// the observed dsm.* counters (asserted end-to-end in the test suite).
  double tolerance_factor = 4.0;
  std::vector<ConstructCost> constructs;

  double total_lock_acquires() const;
  double total_page_fetches() const;
  double total_diffs_created() const;

  std::string to_text(const std::string& file) const;
  std::string to_json(const std::string& file) const;
};

/// Prices the region-sequence timeline for an `nodes`-node run (one worker
/// thread per node, the test harness configuration).
CostReport estimate_message_costs(const TranslationUnit& unit,
                                  const AnalyzeOptions& options,
                                  const Analysis& analysis, int nodes);

}  // namespace parade::translator
