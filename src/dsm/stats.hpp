// Protocol event counters; the ablation benches and several tests assert on
// these (page fetch counts, diff bytes, migrations...).
#pragma once

#include <atomic>
#include <cstdint>

namespace parade::dsm {

struct DsmStatsSnapshot {
  std::int64_t read_faults = 0;
  std::int64_t write_faults = 0;
  std::int64_t page_fetches = 0;       // remote page fetches issued
  std::int64_t page_serves = 0;        // requests served as home
  std::int64_t diffs_created = 0;
  std::int64_t diff_bytes_sent = 0;
  std::int64_t diffs_applied = 0;
  std::int64_t twins_created = 0;
  std::int64_t barriers = 0;
  std::int64_t write_notices_sent = 0;
  std::int64_t invalidations = 0;
  std::int64_t home_migrations = 0;    // counted at the master
  std::int64_t lock_acquires = 0;
  std::int64_t lock_remote_grants = 0;
};

class DsmStats {
 public:
#define PARADE_DSM_COUNTER(name)                                      \
  void inc_##name(std::int64_t by = 1) {                              \
    name##_.fetch_add(by, std::memory_order_relaxed);                 \
  }

  PARADE_DSM_COUNTER(read_faults)
  PARADE_DSM_COUNTER(write_faults)
  PARADE_DSM_COUNTER(page_fetches)
  PARADE_DSM_COUNTER(page_serves)
  PARADE_DSM_COUNTER(diffs_created)
  PARADE_DSM_COUNTER(diff_bytes_sent)
  PARADE_DSM_COUNTER(diffs_applied)
  PARADE_DSM_COUNTER(twins_created)
  PARADE_DSM_COUNTER(barriers)
  PARADE_DSM_COUNTER(write_notices_sent)
  PARADE_DSM_COUNTER(invalidations)
  PARADE_DSM_COUNTER(home_migrations)
  PARADE_DSM_COUNTER(lock_acquires)
  PARADE_DSM_COUNTER(lock_remote_grants)
#undef PARADE_DSM_COUNTER

  DsmStatsSnapshot snapshot() const {
    DsmStatsSnapshot s;
    s.read_faults = read_faults_.load(std::memory_order_relaxed);
    s.write_faults = write_faults_.load(std::memory_order_relaxed);
    s.page_fetches = page_fetches_.load(std::memory_order_relaxed);
    s.page_serves = page_serves_.load(std::memory_order_relaxed);
    s.diffs_created = diffs_created_.load(std::memory_order_relaxed);
    s.diff_bytes_sent = diff_bytes_sent_.load(std::memory_order_relaxed);
    s.diffs_applied = diffs_applied_.load(std::memory_order_relaxed);
    s.twins_created = twins_created_.load(std::memory_order_relaxed);
    s.barriers = barriers_.load(std::memory_order_relaxed);
    s.write_notices_sent = write_notices_sent_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    s.home_migrations = home_migrations_.load(std::memory_order_relaxed);
    s.lock_acquires = lock_acquires_.load(std::memory_order_relaxed);
    s.lock_remote_grants = lock_remote_grants_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::int64_t> read_faults_{0};
  std::atomic<std::int64_t> write_faults_{0};
  std::atomic<std::int64_t> page_fetches_{0};
  std::atomic<std::int64_t> page_serves_{0};
  std::atomic<std::int64_t> diffs_created_{0};
  std::atomic<std::int64_t> diff_bytes_sent_{0};
  std::atomic<std::int64_t> diffs_applied_{0};
  std::atomic<std::int64_t> twins_created_{0};
  std::atomic<std::int64_t> barriers_{0};
  std::atomic<std::int64_t> write_notices_sent_{0};
  std::atomic<std::int64_t> invalidations_{0};
  std::atomic<std::int64_t> home_migrations_{0};
  std::atomic<std::int64_t> lock_acquires_{0};
  std::atomic<std::int64_t> lock_remote_grants_{0};
};

}  // namespace parade::dsm
