// Loader for the translator's protocol-hint sidecar (the JSON emitted by
// `parade_omcc --hints=json` and embedded in generated programs): per-symbol
// update-vs-invalidate priors, static page-touch estimates and SPMD pool
// offsets, lowered into DsmConfig::page_priors so DsmNode::start() can seed
// the page table before the first fault. See docs/ANALYZER.md.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "dsm/config.hpp"

namespace parade::dsm {

/// Parses a hints document (schema v1 or v2) into page priors. Symbols that
/// are not DSM-placed (`"dsm": false`) or whose pool offset the translator
/// could not compute statically (`"offset_known": false`) are skipped — they
/// carry no actionable range. A v2 sidecar's `phases` array additionally
/// yields epoch-ranged priors (PagePrior::phase >= 0): the interference
/// pass's per-phase sharing classification, re-projected by the node at
/// every barrier epoch. Malformed JSON or a missing/unknown schema version
/// is an error; an empty symbol list is a valid empty result.
Result<std::vector<PagePrior>> parse_page_priors(const std::string& hints_json);

/// Reads the sidecar file at `path` and replaces `config->page_priors` with
/// its priors.
Status load_page_priors(const std::string& path, DsmConfig* config);

/// Registers the hints blob a generated program embeds (xlat::launch passes
/// it through here before the runtime builds its config). Returns nullptr
/// when no program registered one. The pointer must stay valid for the
/// process lifetime — generated code passes a static string literal.
void set_embedded_hints_json(const char* json);
const char* embedded_hints_json();

}  // namespace parade::dsm
