# Empty dependencies file for dsm_atomic_update_test.
# This may be replaced when dependencies are built.
