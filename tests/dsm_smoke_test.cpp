// End-to-end smoke tests for the DSM engine: fault-in, write propagation
// through barriers, home migration, and the runtime's hybrid reductions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "dsm/cluster.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

namespace parade {
namespace {

dsm::DsmConfig small_dsm_config() {
  dsm::DsmConfig config;
  config.pool_bytes = 1 << 20;  // 1 MB
  return config;
}

TEST(DsmSmoke, MasterWritesOthersRead) {
  dsm::DsmCluster cluster(3, small_dsm_config());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<std::int64_t*>(
        cluster.node(rank).shmalloc(1024 * sizeof(std::int64_t)));
    if (rank == 0) {
      for (int i = 0; i < 1024; ++i) data[i] = i * 7;
    }
    cluster.node(rank).barrier();
    for (int i = 0; i < 1024; ++i) {
      ASSERT_EQ(data[i], i * 7) << "rank " << rank << " index " << i;
    }
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmSmoke, NonMasterWritesPropagate) {
  dsm::DsmCluster cluster(2, small_dsm_config());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<double*>(
        cluster.node(rank).shmalloc(512 * sizeof(double)));
    cluster.node(rank).barrier();
    if (rank == 1) {
      for (int i = 0; i < 512; ++i) data[i] = 1.5 * i;
    }
    cluster.node(rank).barrier();
    for (int i = 0; i < 512; ++i) {
      ASSERT_DOUBLE_EQ(data[i], 1.5 * i) << "rank " << rank;
    }
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmSmoke, HomeMigratesToSoleModifier) {
  dsm::DsmCluster cluster(2, small_dsm_config());
  cluster.run([&](NodeId rank) {
    auto* data =
        static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    const PageId page =
        static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
    EXPECT_EQ(cluster.node(rank).home_of(page), 0);
    cluster.node(rank).barrier();
    if (rank == 1) data[0] = 42;
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(page), 1);
    EXPECT_EQ(data[0], 42);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmSmoke, InterleavedWritersMergeAtHome) {
  // Two nodes write disjoint halves of the same page between barriers; HLRC
  // must merge both diffs.
  dsm::DsmCluster cluster(2, small_dsm_config());
  cluster.run([&](NodeId rank) {
    auto* data =
        static_cast<std::int32_t*>(cluster.node(rank).shmalloc(4096, 4096));
    cluster.node(rank).barrier();
    const int half = 4096 / sizeof(std::int32_t) / 2;
    if (rank == 0) {
      for (int i = 0; i < half; ++i) data[i] = i + 1;
    } else {
      for (int i = half; i < 2 * half; ++i) data[i] = i + 1;
    }
    cluster.node(rank).barrier();
    for (int i = 0; i < 2 * half; ++i) {
      ASSERT_EQ(data[i], i + 1) << "rank " << rank << " i " << i;
    }
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmSmoke, LockProtectedCounter) {
  dsm::DsmCluster cluster(4, small_dsm_config());
  constexpr int kIncrementsPerNode = 10;
  cluster.run([&](NodeId rank) {
    auto* counter =
        static_cast<std::int64_t*>(cluster.node(rank).shmalloc(sizeof(std::int64_t)));
    cluster.node(rank).barrier();
    for (int i = 0; i < kIncrementsPerNode; ++i) {
      cluster.node(rank).lock_acquire(3);
      *counter = *counter + 1;
      cluster.node(rank).lock_release(3);
    }
    cluster.node(rank).barrier();
    EXPECT_EQ(*counter, 4 * kIncrementsPerNode) << "rank " << rank;
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(RuntimeSmoke, ParallelForAndReduce) {
  RuntimeConfig config;
  config.nodes = 2;
  config.threads_per_node = 2;
  config.dsm.pool_bytes = 1 << 20;
  VirtualCluster cluster(config);
  std::atomic<int> region_runs{0};
  cluster.exec([&] {
    auto* data = shmalloc_array<double>(1000);
    double sum_replica = 0.0;
    parallel([&] {
      region_runs.fetch_add(1);
      parallel_for(0, 1000, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) data[i] = static_cast<double>(i);
      });
      double local = 0.0;
      long lo, hi;
      static_slice(0, 1000, &lo, &hi);
      for (long i = lo; i < hi; ++i) local += data[i];
      team_update(&sum_replica, local, mp::Op::kSum);
    });
    EXPECT_DOUBLE_EQ(sum_replica, 999.0 * 1000.0 / 2.0);
  });
  cluster.shutdown();
  EXPECT_EQ(region_runs.load(), 2 * 2);
}

TEST(RuntimeSmoke, SingleExecutesOnceGlobally) {
  RuntimeConfig config;
  config.nodes = 2;
  config.threads_per_node = 2;
  config.dsm.pool_bytes = 1 << 20;
  VirtualCluster cluster(config);
  std::atomic<int> executions{0};
  cluster.exec([&] {
    double value = 0.0;
    parallel([&] {
      single_small(&value, sizeof(value), [&] {
        executions.fetch_add(1);
        value = 12.25;
      });
      EXPECT_DOUBLE_EQ(value, 12.25);
    });
  });
  cluster.shutdown();
  EXPECT_EQ(executions.load(), 1);
}

}  // namespace
}  // namespace parade
