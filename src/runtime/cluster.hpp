// Top-level runners.
//
// VirtualCluster: the default substrate — N nodes in one process over the
// in-proc fabric, each with its own protected pool view. exec() runs the
// same program on every node's main thread (redundant serial execution) and
// reports the slowest node's virtual time, which is what the figure benches
// plot as "execution time".
//
// ProcessRuntime: one node per OS process over Unix-domain sockets; created
// from the PARADE_RANK / PARADE_SIZE / PARADE_SOCKDIR environment the
// parade_run launcher sets up.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/faulty.hpp"
#include "net/inproc.hpp"
#include "net/socket.hpp"
#include "runtime/node_runtime.hpp"

namespace parade {

class VirtualCluster {
 public:
  explicit VirtualCluster(const RuntimeConfig& config);
  ~VirtualCluster();

  int size() const { return static_cast<int>(nodes_.size()); }
  NodeRuntime& node(NodeId rank) { return *nodes_[static_cast<std::size_t>(rank)]; }

  /// Runs `program` on every node's main thread; returns the maximum final
  /// virtual time across nodes (µs).
  VirtualUs exec(const std::function<void()>& program);

  void shutdown();

 private:
  net::Channel& channel(NodeId rank) {
    if (!faulty_.empty()) return *faulty_[static_cast<std::size_t>(rank)];
    return fabric_.channel(rank);
  }

  net::InProcFabric fabric_;
  /// Fault decorators, populated when PARADE_FAULT_SEED / PARADE_FAULT_PLAN
  /// select an active plan; empty (zero overhead) otherwise.
  std::vector<std::unique_ptr<net::FaultyChannel>> faulty_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
};

class ProcessRuntime {
 public:
  /// Builds the node from PARADE_RANK / PARADE_SIZE / PARADE_SOCKDIR (plus
  /// the usual runtime_config_from_env knobs).
  static Result<std::unique_ptr<ProcessRuntime>> from_env();
  ~ProcessRuntime();

  NodeRuntime& node() { return *node_; }

  /// Runs the program on this process's node; returns its final virtual time.
  VirtualUs exec(const std::function<void()>& program);

 private:
  ProcessRuntime() = default;
  std::unique_ptr<net::SocketFabric> fabric_;
  /// Fault decorator over the socket fabric (PARADE_FAULT_*); null when
  /// faults are disabled.
  std::unique_ptr<net::FaultyChannel> faulty_;
  std::unique_ptr<NodeRuntime> node_;
};

/// One-call helper for the figure benches: build a virtual cluster with
/// `config`, run `program`, tear down, return max virtual time in seconds.
double run_virtual_cluster_s(const RuntimeConfig& config,
                             const std::function<void()>& program);

}  // namespace parade
