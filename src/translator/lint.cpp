// parade_lint: standalone OpenMP correctness linter over the ParADE
// semantic analyzer (docs/ANALYZER.md).
//
//   parade_lint [--json|--sarif] [--dataflow] [--cost[=NODES]]
//               [--threshold=BYTES] [--werror] <input.c>...
//   parade_lint --version
//
// Prints one report per input (--sarif emits a single combined SARIF 2.1.0
// log instead). --dataflow appends the CFG/dataflow report: per-region graph
// shape and every def-use finding the flow-sensitive pass suppressed.
// --cost appends the static message-cost estimate (per-construct lock/fetch/
// diff predictions for a NODES-node run, default 2; docs/ANALYZER.md).
// Exit codes: 0 all files clean of errors, 1 at least one error-severity
// finding (or warning with --werror), 2 usage (including no input files) /
// unreadable input / parse failure.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "translator/analyze.hpp"
#include "translator/interfere.hpp"
#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parade_lint [--json|--sarif] [--dataflow] "
               "[--cost[=NODES]] [--threshold=BYTES] [--werror] "
               "<input.c>...\n");
  return 2;
}

/// Strict NODES parse for --cost=NODES: 1..128, digits only.
bool parse_cost_nodes(const std::string& text, int* out) {
  if (text.empty() || text.size() > 3) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  const int v = std::atoi(text.c_str());
  if (v < 1 || v > 128) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool dataflow = false;
  bool cost = false;
  int cost_nodes = 2;
  bool werror = false;
  std::vector<std::string> inputs;
  parade::translator::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::fprintf(stdout, "parade_lint 0.6.0\n");
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--dataflow") {
      dataflow = true;
    } else if (arg == "--cost") {
      cost = true;
    } else if (arg.rfind("--cost=", 0) == 0) {
      cost = true;
      if (!parse_cost_nodes(arg.substr(7), &cost_nodes)) {
        std::fprintf(stderr, "parade_lint: bad --cost node count '%s'\n",
                     arg.substr(7).c_str());
        return 2;
      }
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      auto bytes = parade::translator::parse_threshold_bytes(arg.substr(12));
      if (!bytes.is_ok()) {
        std::fprintf(stderr, "parade_lint: %s\n",
                     bytes.status().to_string().c_str());
        return 2;
      }
      options.mp_threshold_bytes = bytes.value();
    } else if (arg.rfind("-", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() || (json && sarif) || (cost && sarif)) return usage();

  bool failed = false;
  bool broken = false;
  std::vector<std::pair<std::string, parade::translator::Analysis>> analyzed;
  for (const std::string& input : inputs) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "parade_lint: cannot open %s\n", input.c_str());
      broken = true;
      continue;
    }
    std::ostringstream source;
    source << in.rdbuf();
    auto tokens = parade::translator::lex(source.str());
    if (!tokens.is_ok()) {
      std::fprintf(stderr, "parade_lint: %s: %s\n", input.c_str(),
                   tokens.status().to_string().c_str());
      broken = true;
      continue;
    }
    auto unit = parade::translator::parse(tokens.value());
    if (!unit.is_ok()) {
      std::fprintf(stderr, "parade_lint: %s: %s\n", input.c_str(),
                   unit.status().to_string().c_str());
      broken = true;
      continue;
    }
    auto result = parade::translator::analyze(unit.value(), options);
    if (!sarif) {
      std::fputs(json ? (result.to_json(input) + "\n").c_str()
                      : result.to_text(input).c_str(),
                 stdout);
      if (dataflow) {
        std::fputs(result.dataflow_report(input).c_str(), stdout);
      }
      if (cost) {
        const auto report = parade::translator::estimate_message_costs(
            unit.value(), options, result, cost_nodes);
        std::fputs(json ? (report.to_json(input) + "\n").c_str()
                        : report.to_text(input).c_str(),
                   stdout);
      }
    }
    if (result.has_errors() ||
        (werror &&
         result.count(parade::translator::Severity::kWarning) > 0)) {
      failed = true;
    }
    analyzed.emplace_back(input, std::move(result));
  }
  if (sarif && !analyzed.empty()) {
    std::fputs((parade::translator::sarif_report(analyzed) + "\n").c_str(),
               stdout);
  }
  // Translation-decision counters (xlat.analyze.*) flow to the standard
  // JSON/CSV exports when PARADE_METRICS is set.
  parade::obs::Registry::instance().export_if_configured("parade_lint");
  if (broken) return 2;
  return failed ? 1 : 0;
}
