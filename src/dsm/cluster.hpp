// DsmCluster: the in-process virtual cluster — N DsmNodes over an
// InProcFabric, each with its own protected pool view. This is the substrate
// the tests and figure benches run on; the parade_run launcher provides the
// equivalent multi-process deployment over SocketFabric.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dsm/node.hpp"
#include "net/inproc.hpp"

namespace parade::dsm {

class DsmCluster {
 public:
  /// Creates and starts `size` nodes with the given configuration.
  explicit DsmCluster(int size, DsmConfig config = {});
  ~DsmCluster();

  int size() const { return static_cast<int>(nodes_.size()); }
  DsmNode& node(NodeId rank) { return *nodes_[static_cast<std::size_t>(rank)]; }
  net::Channel& channel(NodeId rank) { return fabric_.channel(rank); }

  /// Runs `fn(rank)` on one fresh thread per node and joins them. Exceptions
  /// escaping `fn` abort (the protocol cannot unwind mid-barrier).
  void run(const std::function<void(NodeId)>& fn);

  /// Orderly teardown: nodes first (their comm threads drain), then fabric.
  void shutdown();

 private:
  net::InProcFabric fabric_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
};

}  // namespace parade::dsm
