# Empty dependencies file for vtime_test.
# This may be replaced when dependencies are built.
