// Counter and Timer: the two metric primitives the observability registry
// hands out. Handles are stable for the life of the process — layers look
// them up once at setup and increment lock-free on the hot path.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/timing.hpp"

namespace parade::obs {

/// Monotonic event counter. Increment is a relaxed fetch_add; reads are
/// racy-by-design snapshots (same contract as the old DsmStats counters).
class Counter {
 public:
  void add(std::int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Accumulating wall-clock timer: total nanoseconds plus the number of
/// timed intervals (so exporters can derive a mean).
class Timer {
 public:
  void add_ns(std::int64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset() {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> count_{0};
};

/// Charges the enclosed scope's wall time to a Timer. A null timer makes the
/// scope free, so call sites need no branches when metrics are off.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_ns_(timer != nullptr ? wall_ns() : 0) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) timer_->add_ns(wall_ns() - start_ns_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::int64_t start_ns_;
};

}  // namespace parade::obs
