#include "translator/translate.hpp"

#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace parade::translator {

Result<std::string> translate_source(const std::string& source,
                                     const TranslateOptions& options) {
  auto tokens = lex(source);
  if (!tokens.is_ok()) return tokens.status();
  auto unit = parse(tokens.value());
  if (!unit.is_ok()) return unit.status();
  AnalyzeOptions analyze_options;
  analyze_options.mp_threshold_bytes = options.mp_threshold_bytes;
  analyze_options.protocol_hints = options.protocol_hints;
  const Analysis analysis = analyze(unit.value(), analyze_options);
  return generate(unit.value(), options, analysis);
}

}  // namespace parade::translator
