# Empty dependencies file for epcc_syncbench.
# This may be replaced when dependencies are built.
