file(REMOVE_RECURSE
  "CMakeFiles/parade_translator.dir/codegen.cpp.o"
  "CMakeFiles/parade_translator.dir/codegen.cpp.o.d"
  "CMakeFiles/parade_translator.dir/parser.cpp.o"
  "CMakeFiles/parade_translator.dir/parser.cpp.o.d"
  "CMakeFiles/parade_translator.dir/pragma.cpp.o"
  "CMakeFiles/parade_translator.dir/pragma.cpp.o.d"
  "CMakeFiles/parade_translator.dir/token.cpp.o"
  "CMakeFiles/parade_translator.dir/token.cpp.o.d"
  "CMakeFiles/parade_translator.dir/translate.cpp.o"
  "CMakeFiles/parade_translator.dir/translate.cpp.o.d"
  "libparade_translator.a"
  "libparade_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
