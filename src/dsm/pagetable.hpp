// Per-node page table implementing the paper's Figure 5 state machine:
//
//   INVALID ──fault──▶ TRANSIENT ──another fault──▶ BLOCKED
//      ▲                   │                           │
//      │              update done                 update done
//  invalidate              ▼                           ▼
//      └──────────── READ_ONLY ◀───────(wake waiters)──┘
//                        │  ▲
//                  write fault  flush (diff sent / WN recorded)
//                        ▼  │
//                       DIRTY
//
// TRANSIENT marks "a thread is fetching this page"; BLOCKED additionally
// marks "other threads are waiting for the fetch". Waiting threads park on
// the per-page condition variable; the communication thread installs the
// fetched page through the system view, flips protection, and wakes them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "dsm/rules.hpp"

namespace parade::dsm {

// PageState and the legal-edge table live in dsm/rules.hpp alongside the
// rest of the pure protocol rules; this alias keeps existing callers of the
// unqualified name working.
using rules::transition_allowed;

struct PageEntry {
  std::mutex mutex;
  std::condition_variable cv;
  PageState state = PageState::kInvalid;
  NodeId home = 0;
  /// Twin copy for non-home writers (empty unless DIRTY at a non-home node).
  std::vector<std::uint8_t> twin;
  /// Virtual timestamp at which the latest fetched copy became usable;
  /// merged into the clock of every thread that waited for the fetch.
  VirtualUs ready_vtime = 0.0;
  /// Sequence number of the outstanding fetch (guarded by `mutex`). Replies
  /// carrying any other value are stale retransmission artifacts and are
  /// dropped instead of installed.
  std::uint32_t fetch_seq = 0;
};

class PageTable {
 public:
  PageTable(std::size_t num_pages, NodeId initial_home);

  PageEntry& entry(PageId page);
  const PageEntry& entry(PageId page) const;
  std::size_t num_pages() const { return entries_.size(); }

  /// Home lookup without holding the page lock (homes only change inside the
  /// barrier, when no application thread is faulting).
  NodeId home_of(PageId page) const;

 private:
  // deque-like stable storage: entries hold mutexes, so no reallocation.
  std::vector<std::unique_ptr<PageEntry>> entries_;
};

}  // namespace parade::dsm
