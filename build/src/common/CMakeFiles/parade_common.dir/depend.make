# Empty dependencies file for parade_common.
# This may be replaced when dependencies are built.
