# Empty dependencies file for xlat_support_test.
# This may be replaced when dependencies are built.
