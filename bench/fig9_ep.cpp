// Figure 9: NAS EP execution time, node sweep 1-8 under the paper's three
// configurations. Default --m=20 (1M pairs) for the single-core host;
// --class=S/W/A selects the paper sizes.
#include "apps/ep.hpp"
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  using namespace parade;
  const std::string cls = bench::arg_string(argc, argv, "class", "");
  apps::EpParams params{static_cast<int>(bench::arg_long(argc, argv, "m", 21))};
  if (cls == "S") params = apps::EpParams::class_s();
  if (cls == "W") params = apps::EpParams::class_w();
  if (cls == "A") params = apps::EpParams::class_a();

  std::vector<bench::Series> series;
  for (const auto node_config : bench::kNodeConfigs) {
    bench::Series s{vtime::to_string(node_config), {}};
    for (const int nodes : bench::kNodeSweep) {
      RuntimeConfig config =
          bench::figure_config(nodes, node_config, 8u << 20);
      apps::EpResult result;
      const double seconds = run_virtual_cluster_s(
          config, [&] { result = apps::ep_parade(params); });
      s.values.push_back(seconds);
    }
    series.push_back(std::move(s));
  }
  bench::print_figure(
      "Figure 9: NAS EP (m=" + std::to_string(params.m) +
          ") execution time on modeled cLAN (virtual time)",
      "s", bench::kNodeSweep, series);
  return 0;
}
