# Empty compiler generated dependencies file for fig9_ep.
# This may be replaced when dependencies are built.
