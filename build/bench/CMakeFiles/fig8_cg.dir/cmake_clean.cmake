file(REMOVE_RECURSE
  "CMakeFiles/fig8_cg.dir/fig8_cg.cpp.o"
  "CMakeFiles/fig8_cg.dir/fig8_cg.cpp.o.d"
  "fig8_cg"
  "fig8_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
