#include "runtime/api.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/env.hpp"
#include "common/status.hpp"

namespace parade {
namespace {

/// Block partition of `n` items among `parties`: party `index` gets
/// [*lo, *hi) relative to 0.
void block_partition(long n, long parties, long index, long* lo, long* hi) {
  const long base = n / parties;
  const long rem = n % parties;
  *lo = index * base + std::min<long>(index, rem);
  *hi = *lo + base + (index < rem ? 1 : 0);
}

}  // namespace

int num_nodes() { return current_ctx().node->num_nodes(); }
NodeId node_id() { return current_ctx().node->node_id(); }
int threads_per_node() { return current_ctx().node->threads_per_node(); }
int num_threads() {
  NodeRuntime& node = *current_ctx().node;
  return node.num_nodes() * node.threads_per_node();
}
GlobalThreadId thread_id() {
  ThreadCtx& ctx = current_ctx();
  return ctx.node->node_id() * ctx.node->threads_per_node() + ctx.local_id;
}
LocalThreadId local_thread_id() { return current_ctx().local_id; }
bool is_master() {
  ThreadCtx& ctx = current_ctx();
  return ctx.node->node_id() == 0 && ctx.local_id == 0;
}

NodeRuntime& this_node() { return *current_ctx().node; }

void* shmalloc(std::size_t bytes, std::size_t align) {
  return current_ctx().node->dsm().shmalloc(bytes, align);
}

void parallel(const std::function<void()>& body) {
  ThreadCtx& ctx = current_ctx();
  if (ctx.node->team().in_region()) {
    // Nested parallelism serializes (OpenMP 1.0 default; the paper ignores
    // nested directives).
    body();
    return;
  }
  ctx.node->team().run_region(body);
}

void barrier(BarrierScope scope) { current_ctx().node->team().barrier(scope); }
void barrier() { barrier(BarrierScope::kGlobal); }
void node_barrier() { barrier(BarrierScope::kNode); }

void static_slice(long begin, long end, long* lo, long* hi) {
  ThreadCtx& ctx = current_ctx();
  const long g = thread_id();
  block_partition(end - begin, ctx.node->num_nodes() *
                                   ctx.node->threads_per_node(),
                  g, lo, hi);
  *lo += begin;
  *hi += begin;
}

void parallel_for(long begin, long end, const Schedule& schedule,
                  const std::function<void(long, long)>& body, bool nowait) {
  ThreadCtx& ctx = current_ctx();
  switch (schedule.kind) {
    case ScheduleKind::kStatic: {
      long lo, hi;
      static_slice(begin, end, &lo, &hi);
      if (lo < hi) body(lo, hi);
      break;
    }
    case ScheduleKind::kStaticChunk: {
      const long chunk = std::max<long>(1, schedule.chunk);
      const long stride = static_cast<long>(num_threads()) * chunk;
      for (long c = begin + thread_id() * chunk; c < end; c += stride) {
        body(c, std::min(end, c + chunk));
      }
      break;
    }
    case ScheduleKind::kDynamic:
    case ScheduleKind::kGuided: {
      // Hierarchical (paper §8 future work): static block per node, then
      // dynamic/guided chunking among the node's threads.
      long node_lo, node_hi;
      block_partition(end - begin, ctx.node->num_nodes(),
                      ctx.node->node_id(), &node_lo, &node_hi);
      node_lo += begin;
      node_hi += begin;
      const long seq = ctx.loop_seq++;
      Team& team = ctx.node->team();
      Team::LoopState& state = team.loop_state(seq, node_lo, node_hi);
      const long chunk = schedule.kind == ScheduleKind::kGuided
                             ? -1
                             : std::max<long>(1, schedule.chunk);
      long lo, hi;
      while (team.loop_next_chunk(state, chunk, &lo, &hi)) {
        body(lo, hi);
      }
      team.loop_finish(seq);
      break;
    }
  }
  if (!nowait) barrier();
}

void team_update_bytes(void* replica, const void* contribution,
                       std::size_t bytes, const mp::UserReduceFn& combine) {
  ThreadCtx& ctx = current_ctx();
  Team& team = ctx.node->team();

  if (!team.in_region()) {
    // Serial section: the node main thread is the whole local team.
    std::vector<std::uint8_t> scratch(
        static_cast<const std::uint8_t*>(contribution),
        static_cast<const std::uint8_t*>(contribution) + bytes);
    ctx.node->comm().allreduce_user(scratch.data(), bytes, combine);
    combine(replica, scratch.data(), bytes);
    return;
  }

  // Phase 1: node-local combining under the team's pthread mutex (Fig. 2's
  // intra-node mutual exclusion).
  {
    std::lock_guard lock(team.combine_mutex());
    auto& scratch = team.combine_scratch();
    if (team.combine_count()++ == 0) {
      scratch.assign(static_cast<const std::uint8_t*>(contribution),
                     static_cast<const std::uint8_t*>(contribution) + bytes);
    } else {
      PARADE_CHECK_MSG(scratch.size() == bytes, "team_update size mismatch");
      combine(scratch.data(), contribution, bytes);
    }
  }
  team.barrier_node();

  // Phase 2: one allreduce between nodes, result merged into the replica by
  // the node representative (Fig. 2's inter-node synchronization).
  if (ctx.local_id == 0) {
    auto& scratch = team.combine_scratch();
    ctx.node->comm().allreduce_user(scratch.data(), bytes, combine);
    combine(replica, scratch.data(), bytes);
    team.reset_combine_count();
  }
  team.barrier_node();
}

void team_allreduce_bytes(void* inout, std::size_t bytes,
                          const mp::UserReduceFn& combine) {
  ThreadCtx& ctx = current_ctx();
  Team& team = ctx.node->team();

  if (!team.in_region()) {
    ctx.node->comm().allreduce_user(inout, bytes, combine);
    return;
  }

  // Phase 1: combine contributions into the node scratch.
  {
    std::lock_guard lock(team.combine_mutex());
    auto& scratch = team.combine_scratch();
    if (team.combine_count()++ == 0) {
      scratch.assign(static_cast<const std::uint8_t*>(inout),
                     static_cast<const std::uint8_t*>(inout) + bytes);
    } else {
      PARADE_CHECK_MSG(scratch.size() == bytes, "team_allreduce size mismatch");
      combine(scratch.data(), inout, bytes);
    }
  }
  team.barrier_node();

  // Phase 2: inter-node allreduce by the representative.
  if (ctx.local_id == 0) {
    ctx.node->comm().allreduce_user(team.combine_scratch().data(), bytes,
                                    combine);
    team.reset_combine_count();
  }
  team.barrier_node();

  // Phase 3: every thread copies the result out before the scratch can be
  // reused by a subsequent collective.
  std::memcpy(inout, team.combine_scratch().data(), bytes);
  team.barrier_node();
}

void single_small(void* data, std::size_t bytes,
                  const std::function<void()>& init) {
  ThreadCtx& ctx = current_ctx();
  Team& team = ctx.node->team();
  const long seq = ctx.single_seq++;
  if (team.single_try_claim(seq)) {
    if (ctx.node->node_id() == 0) init();
    if (bytes > 0) ctx.node->comm().bcast(data, bytes, /*root=*/0);
    ctx.clock.sync_cpu();
    team.single_mark_done(seq, ctx.clock.now(), data, bytes);
  } else {
    const VirtualUs done = team.single_wait_done(seq, data, bytes);
    ctx.clock.sync_cpu();
    ctx.clock.merge(done);
  }
}

void critical_conventional(int lock_id, const std::function<void()>& body) {
  dsm::DsmNode& node = current_ctx().node->dsm();
  node.lock_acquire(lock_id);
  body();
  node.lock_release(lock_id);
}

void single_conventional(int lock_id, std::int64_t* gen_flag,
                         std::int64_t generation,
                         const std::function<void()>& body) {
  dsm::DsmNode& node = current_ctx().node->dsm();
  node.lock_acquire(lock_id);
  if (*gen_flag < generation) {
    *gen_flag = generation;
    body();
  }
  node.lock_release(lock_id);
  barrier();
}

void dsm_lock(int lock_id) { current_ctx().node->dsm().lock_acquire(lock_id); }
void dsm_unlock(int lock_id) { current_ctx().node->dsm().lock_release(lock_id); }

VirtualUs vtime_now() {
  ThreadCtx& ctx = current_ctx();
  ctx.clock.sync_cpu();
  return ctx.clock.now();
}

Schedule schedule_from_env() {
  Schedule schedule;
  const std::string text = env::get_string_or("OMP_SCHEDULE", "static");
  std::string kind = text;
  long chunk = 0;
  if (const std::size_t comma = text.find(','); comma != std::string::npos) {
    kind = text.substr(0, comma);
    chunk = std::strtol(text.c_str() + comma + 1, nullptr, 10);
  }
  if (kind == "dynamic") {
    schedule.kind = ScheduleKind::kDynamic;
    schedule.chunk = chunk > 0 ? chunk : 1;
  } else if (kind == "guided") {
    schedule.kind = ScheduleKind::kGuided;
  } else if (chunk > 0) {
    schedule.kind = ScheduleKind::kStaticChunk;
    schedule.chunk = chunk;
  }
  return schedule;
}

namespace ompshim::detail {
int allocate_dsm_lock_id() { return current_ctx().node->allocate_lock_id(); }
}  // namespace ompshim::detail

}  // namespace parade
