/* Cost-model corpus: ping-pong. Every iteration funnels a read-modify-write
 * sweep over the whole accumulator array through one critical section, so
 * the page bounces between nodes once per remote lock handoff. The trip
 * count is kept small: the estimator prices the perfect-alternation upper
 * bound, while a lock convoy can collapse the run to a single handoff, and
 * the documented tolerance factor must cover that whole range. */
#include <stdio.h>
double acc[512];
int main(void) {
  int i;
  int j;
#pragma omp parallel for
  for (i = 0; i < 16; i++) {
#pragma omp critical
    {
      for (j = 0; j < 512; j++) {
        acc[j] = acc[j] + 1.0;
      }
    }
  }
  printf("acc[0]=%.1f acc[511]=%.1f\n", acc[0], acc[511]);
  return 0;
}
