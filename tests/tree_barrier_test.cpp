// Scale-out tier: the k-ary tree barrier at 64 virtual nodes (ISSUE: scale
// to 128 without the flat gather's O(N) root bottleneck). The tree must be a
// pure performance shape — identical memory semantics to the flat barrier at
// every fan-out — while the compacted write-notice streams and the sharded
// home directory keep every epoch's consistency guarantees. The chaos case
// reruns a tree + sharded configuration under seeded fault injection; in a
// PARADE_CHECKED build every rules.hpp decision is re-validated online, and
// the run must finish with dsm.invariant.violations == 0 on every node.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dsm/cluster.hpp"
#include "net/fault.hpp"
#include "obs/registry.hpp"

namespace parade::dsm {
namespace {

constexpr int kDataPages = 8;
constexpr int kEpochs = 3;
constexpr std::size_t kPageBytes = 4096;
constexpr std::size_t kWordsPerPage = kPageBytes / sizeof(std::uint64_t);

/// The deterministic word each (epoch, writer, page) deposits.
std::uint64_t stamp(int epoch, NodeId writer, int page) {
  return 1 + static_cast<std::uint64_t>(epoch) * 1000003 +
         static_cast<std::uint64_t>(writer) * 97 +
         static_cast<std::uint64_t>(page) * 13;
}

struct ScaleResult {
  std::vector<std::uint64_t> memory;   ///< node 0's final view of the pool
  std::int64_t notices_sent = 0;       ///< sum of dsm.write_notices_sent
  std::int64_t violations = 0;         ///< sum of dsm.invariant.violations
  std::int64_t injected = 0;           ///< sum of net.fault.injected
  std::int64_t migrations = 0;         ///< sum of dsm.home_migrations
};

/// SPMD workload exercising both barrier-notice paths: every node writes its
/// own word of page rank % kDataPages (multi-modifier pages, disjoint words,
/// no migration), and one rotating sole writer owns the last page outright
/// (sole-modifier migration every epoch). After each barrier every node
/// verifies the entire pool against the golden function.
ScaleResult run_scale_workload(int nodes, int fanout, bool sharded,
                               std::optional<net::FaultPlan> faults) {
  DsmConfig config;
  config.pool_bytes = (kDataPages + 2) * kPageBytes;
  config.barrier_fanout = fanout;
  config.sharded_homes = sharded;
  config.retry.timeout_ms = 50;
  config.retry.max_attempts = 400;

  const Topology topology = Topology::cluster(nodes, fanout);
  auto cluster = faults.has_value()
                     ? std::make_unique<DsmCluster>(topology, config, *faults)
                     : std::make_unique<DsmCluster>(topology, config);

  ScaleResult result;
  cluster->run([&](NodeId rank) {
    DsmNode& node = cluster->node(rank);
    auto* data = static_cast<std::uint64_t*>(
        node.shmalloc(kDataPages * kPageBytes, kPageBytes));
    auto* hot = static_cast<std::uint64_t*>(
        node.shmalloc(kPageBytes, kPageBytes));
    node.barrier();

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const int my_page = static_cast<int>(rank) % kDataPages;
      data[static_cast<std::size_t>(my_page) * kWordsPerPage + rank] =
          stamp(epoch, rank, my_page);
      const NodeId sole = static_cast<NodeId>(epoch % nodes);
      if (rank == sole) {
        for (std::size_t w = 0; w < 16; ++w) {
          hot[w] = stamp(epoch, rank, kDataPages) + w;
        }
      }
      node.barrier();

      for (NodeId writer = 0; writer < nodes; ++writer) {
        const int page = static_cast<int>(writer) % kDataPages;
        ASSERT_EQ(data[static_cast<std::size_t>(page) * kWordsPerPage + writer],
                  stamp(epoch, writer, page))
            << "rank " << rank << " epoch " << epoch << " writer " << writer;
      }
      for (std::size_t w = 0; w < 16; ++w) {
        ASSERT_EQ(hot[w], stamp(epoch, sole, kDataPages) + w)
            << "rank " << rank << " epoch " << epoch << " hot word " << w;
      }
      node.barrier();
    }

    if (rank == 0) {
      result.memory.assign(data, data + kDataPages * kWordsPerPage);
      result.memory.insert(result.memory.end(), hot, hot + kWordsPerPage);
    }
  });

  auto& reg = obs::Registry::instance();
  for (NodeId n = 0; n < nodes; ++n) {
    result.notices_sent += reg.counter(n, "dsm.write_notices_sent").value();
    result.violations += reg.counter(n, "dsm.invariant.violations").value();
    result.injected += reg.counter(n, "net.fault.injected").value();
    result.migrations += reg.counter(n, "dsm.home_migrations").value();
  }
  cluster->shutdown();
  return result;
}

TEST(TreeBarrier, SixtyFourNodesTreeMatchesFlat) {
  const ScaleResult flat = run_scale_workload(64, 0, false, std::nullopt);
  ASSERT_FALSE(flat.memory.empty());
  EXPECT_EQ(flat.violations, 0);
  EXPECT_GT(flat.notices_sent, 0);
  EXPECT_GT(flat.migrations, 0) << "the sole-writer page never migrated";

  for (int fanout : {2, 4, 8}) {
    const ScaleResult tree = run_scale_workload(64, fanout, false,
                                                std::nullopt);
    EXPECT_EQ(tree.memory, flat.memory)
        << "tree:" << fanout << " diverged from the flat barrier";
    EXPECT_EQ(tree.violations, 0) << "tree:" << fanout;
    EXPECT_GT(tree.migrations, 0) << "tree:" << fanout;
  }
}

TEST(TreeBarrier, ShardedHomesMatchLegacyDirectory) {
  // The shard only changes *where* pages start, never what the program
  // observes: page p seeds at node p % N with its own protected copy, and
  // migration moves it off the seed shard exactly as it would off node 0.
  const ScaleResult legacy = run_scale_workload(16, 4, false, std::nullopt);
  const ScaleResult sharded = run_scale_workload(16, 4, true, std::nullopt);
  ASSERT_FALSE(legacy.memory.empty());
  EXPECT_EQ(sharded.memory, legacy.memory);
  EXPECT_EQ(sharded.violations, 0);
  EXPECT_GT(sharded.migrations, 0);
}

// Chaos tier (ctest -L tier2-chaos, built with PARADE_CHECKED=ON in CI):
// tree gather/scatter edges under seeded message drops, duplicates, delays,
// and reorders. The retry machinery must converge to the fault-free result
// and the online rule validation must never fire.
TEST(TreeBarrierChaos, CheckedTreeShardedRunSurvivesFaults) {
  const ScaleResult baseline = run_scale_workload(16, 2, true, std::nullopt);
  ASSERT_FALSE(baseline.memory.empty());
  EXPECT_EQ(baseline.injected, 0);

  const ScaleResult chaotic =
      run_scale_workload(16, 2, true, net::default_chaos_plan(7));
  EXPECT_EQ(chaotic.memory, baseline.memory)
      << "chaos run diverged from the fault-free run";
  EXPECT_GT(chaotic.injected, 0) << "the fault plan never fired";
  EXPECT_EQ(chaotic.violations, 0)
      << "rules re-validation fired during the chaos run";
}

}  // namespace
}  // namespace parade::dsm
