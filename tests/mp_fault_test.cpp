// MP reliability layer under deterministic fault injection: the try_* family
// must deliver exactly-once in-order results across drops / duplicates /
// reorders, ride out a partition that heals, and degrade to a clean
// kUnavailable Status — never a hang — when the partition does not heal.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "mp/comm.hpp"
#include "net/fault.hpp"
#include "net/faulty.hpp"
#include "obs/registry.hpp"

namespace parade::mp {
namespace {

Reliability chaos_reliability() {
  Reliability rel;
  rel.enabled = true;
  rel.retry.timeout_ms = 30;
  rel.retry.max_attempts = 200;
  return rel;
}

/// Runs `body(rank, comm)` on one thread per rank over a FaultyFabric.
void run_ranks(int n, const net::FaultPlan& plan, Reliability rel,
               const std::function<void(NodeId, Comm&)>& body) {
  auto& reg = obs::Registry::instance();
  for (NodeId r = 0; r < n; ++r) reg.reset_node(r);

  net::FaultyFabric fabric(n, plan);
  std::vector<std::unique_ptr<Comm>> comms;
  for (NodeId r = 0; r < n; ++r) {
    comms.push_back(std::make_unique<Comm>(fabric.channel(r),
                                           vtime::NetworkModel{}, rel));
  }
  std::vector<std::thread> threads;
  for (NodeId r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      body(r, *comms[r]);
      // Linger: keep answering retransmissions from ranks whose final acks
      // were faulted away (see Comm::quiesce).
      comms[r]->quiesce();
    });
  }
  for (auto& t : threads) t.join();
  fabric.shutdown();
}

std::int64_t total_mp_retries(int n) {
  auto& reg = obs::Registry::instance();
  std::int64_t total = 0;
  for (NodeId r = 0; r < n; ++r) {
    total += reg.counter(r, "mp.retry.count").value();
  }
  return total;
}

TEST(MpFault, P2pDeliversInOrderAcrossDropsAndDups) {
  net::FaultPlan plan;
  plan.seed = 7;
  plan.drop_p = 0.08;
  plan.dup_p = 0.10;
  plan.reorder_p = 0.05;
  constexpr int kMessages = 24;

  run_ranks(2, plan, chaos_reliability(), [&](NodeId rank, Comm& comm) {
    if (rank == 0) {
      for (std::uint32_t i = 0; i < kMessages; ++i) {
        ASSERT_TRUE(comm.try_send(1, /*tag=*/7, &i, sizeof(i)).is_ok());
      }
    } else {
      for (std::uint32_t i = 0; i < kMessages; ++i) {
        std::uint32_t got = ~0u;
        RecvStatus status;
        ASSERT_TRUE(
            comm.try_recv(0, /*tag=*/7, &got, sizeof(got), &status).is_ok());
        EXPECT_EQ(got, i) << "duplicate or reordered delivery leaked through";
        EXPECT_EQ(status.source, 0);
        EXPECT_EQ(status.bytes, sizeof(got));
      }
    }
  });
  EXPECT_GT(total_mp_retries(2), 0) << "drops never triggered a retransmit";
}

TEST(MpFault, CollectivesSurviveChaos) {
  net::FaultPlan plan;
  plan.seed = 11;
  plan.drop_p = 0.05;
  plan.dup_p = 0.08;
  plan.reorder_p = 0.05;
  constexpr int kNodes = 3;
  constexpr int kRounds = 6;

  run_ranks(kNodes, plan, chaos_reliability(), [&](NodeId rank, Comm& comm) {
    for (int round = 0; round < kRounds; ++round) {
      std::int64_t value = rank == 0 ? 1000 + round : -1;
      ASSERT_TRUE(comm.try_bcast(&value, sizeof(value), /*root=*/0).is_ok());
      EXPECT_EQ(value, 1000 + round);

      std::int64_t sum = rank + 1;
      ASSERT_TRUE(
          comm.try_allreduce(&sum, 1, DType::kInt64, Op::kSum).is_ok());
      EXPECT_EQ(sum, kNodes * (kNodes + 1) / 2);

      ASSERT_TRUE(comm.try_barrier().is_ok());
    }
  });
  EXPECT_GT(total_mp_retries(kNodes), 0);
}

TEST(MpFault, PartitionThenHealRecovers) {
  net::FaultPlan plan;
  plan.seed = 13;
  // Link-count-keyed outage: messages 4..40 on each 0<->1 link vanish; the
  // retransmissions themselves advance the counter past the heal point.
  plan.partitions.push_back(net::PartitionEvent{0, 1, 4, 40, false});
  constexpr int kMessages = 8;

  run_ranks(2, plan, chaos_reliability(), [&](NodeId rank, Comm& comm) {
    if (rank == 0) {
      for (std::uint32_t i = 0; i < kMessages; ++i) {
        ASSERT_TRUE(comm.try_send(1, /*tag=*/3, &i, sizeof(i)).is_ok());
      }
    } else {
      for (std::uint32_t i = 0; i < kMessages; ++i) {
        std::uint32_t got = ~0u;
        ASSERT_TRUE(comm.try_recv(0, /*tag=*/3, &got, sizeof(got)).is_ok());
        EXPECT_EQ(got, i);
      }
    }
  });
  EXPECT_GT(total_mp_retries(2), 0) << "partition never engaged";
}

TEST(MpFault, BcastAcrossHealingPartition) {
  net::FaultPlan plan;
  plan.seed = 17;
  plan.dup_p = 0.10;
  plan.partitions.push_back(net::PartitionEvent{0, 1, 2, 30, false});
  constexpr int kNodes = 3;

  run_ranks(kNodes, plan, chaos_reliability(), [&](NodeId rank, Comm& comm) {
    for (int round = 0; round < 4; ++round) {
      std::int64_t value = rank == 0 ? 77 + round : -1;
      ASSERT_TRUE(comm.try_bcast(&value, sizeof(value), /*root=*/0).is_ok());
      EXPECT_EQ(value, 77 + round);
    }
  });
}

TEST(MpFault, UnhealedPartitionReturnsStatusInsteadOfHanging) {
  net::FaultPlan plan;
  plan.seed = 19;
  plan.partitions.push_back(
      net::PartitionEvent{0, 1, 0, std::nullopt, false});  // never heals

  Reliability rel;
  rel.enabled = true;
  rel.retry.timeout_ms = 20;
  rel.retry.max_attempts = 5;  // fail fast: the point is the Status, not retry depth

  run_ranks(2, plan, rel, [&](NodeId rank, Comm& comm) {
    if (rank == 0) {
      const std::uint32_t v = 42;
      const Status s = comm.try_send(1, /*tag=*/5, &v, sizeof(v));
      ASSERT_FALSE(s.is_ok());
      EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
    } else {
      std::uint32_t got = 0;
      const Status s = comm.try_recv(0, /*tag=*/5, &got, sizeof(got));
      ASSERT_FALSE(s.is_ok());
      EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
    }
    // A collective across the dead link must degrade the same way.
    const Status barrier_status = comm.try_barrier();
    ASSERT_FALSE(barrier_status.is_ok());
    EXPECT_EQ(barrier_status.code(), ErrorCode::kUnavailable);
  });
}

TEST(MpFault, InertPlanIsPassThrough) {
  // With no faults configured the reliable path must neither retry nor
  // perturb payloads.
  net::FaultPlan inert;  // inactive
  run_ranks(2, inert, chaos_reliability(), [&](NodeId rank, Comm& comm) {
    if (rank == 0) {
      const std::uint64_t v = 0xdeadbeefcafef00dull;
      ASSERT_TRUE(comm.try_send(1, /*tag=*/1, &v, sizeof(v)).is_ok());
    } else {
      std::uint64_t got = 0;
      ASSERT_TRUE(comm.try_recv(0, /*tag=*/1, &got, sizeof(got)).is_ok());
      EXPECT_EQ(got, 0xdeadbeefcafef00dull);
    }
    ASSERT_TRUE(comm.try_barrier().is_ok());
  });
  EXPECT_EQ(total_mp_retries(2), 0);
}

}  // namespace
}  // namespace parade::mp
