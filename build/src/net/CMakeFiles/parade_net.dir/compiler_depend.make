# Empty compiler generated dependencies file for parade_net.
# This may be replaced when dependencies are built.
