// WireBuffer: append-only encoder + cursor-based decoder for protocol
// messages. All multi-byte integers are encoded little-endian (every target
// we run on is little-endian; a static_assert guards the assumption for the
// memcpy fast path).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.hpp"

namespace parade {

static_assert(std::endian::native == std::endian::little,
              "WireBuffer assumes a little-endian host");

template <typename T>
concept TriviallyWirable =
    std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

class WireBuffer {
 public:
  WireBuffer() = default;
  explicit WireBuffer(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  // ---- encoding ----

  template <TriviallyWirable T>
  void put(const T& value) {
    const auto old_size = bytes_.size();
    bytes_.resize(old_size + sizeof(T));
    std::memcpy(bytes_.data() + old_size, &value, sizeof(T));
  }

  void put_bytes(const void* data, std::size_t size) {
    const auto old_size = bytes_.size();
    bytes_.resize(old_size + size);
    if (size > 0) std::memcpy(bytes_.data() + old_size, data, size);
  }

  void put_string(const std::string& text) {
    put<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
    put_bytes(text.data(), text.size());
  }

  template <TriviallyWirable T>
  void put_vector(const std::vector<T>& values) {
    put<std::uint32_t>(static_cast<std::uint32_t>(values.size()));
    put_bytes(values.data(), values.size() * sizeof(T));
  }

  /// Appends a u32 placeholder and returns its position for a later
  /// patch_u32 — used by encoders that only know a length after writing the
  /// payload (e.g. diff runs streamed straight into the wire buffer).
  std::size_t reserve_u32() {
    const std::size_t at = bytes_.size();
    put<std::uint32_t>(0);
    return at;
  }

  void patch_u32(std::size_t at, std::uint32_t value) {
    if (at + sizeof(value) > bytes_.size()) return;
    std::memcpy(bytes_.data() + at, &value, sizeof(value));
  }

  // ---- decoding ----
  //
  // Decoders never abort on malformed input: an out-of-bounds read marks the
  // buffer failed() and yields a zero value. Length prefixes are validated
  // against the bytes actually present BEFORE any allocation, so a frame
  // claiming 2^32 elements cannot trigger a giant allocation. Callers check
  // ok() (codec<T> does it for them).

  template <TriviallyWirable T>
  T get() {
    if (!take_ok(sizeof(T))) return T{};
    T value;
    std::memcpy(&value, bytes_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  void get_bytes(void* out, std::size_t size) {
    if (!take_ok(size)) return;
    if (size > 0) std::memcpy(out, bytes_.data() + cursor_, size);
    cursor_ += size;
  }

  std::string get_string() {
    const auto size = get<std::uint32_t>();
    if (failed_ || size > remaining()) {
      failed_ = true;
      return {};
    }
    std::string text(size, '\0');
    get_bytes(text.data(), size);
    return text;
  }

  template <TriviallyWirable T>
  std::vector<T> get_vector() {
    const auto count = get<std::uint32_t>();
    if (failed_ || count > remaining() / sizeof(T)) {
      failed_ = true;
      return {};
    }
    std::vector<T> values(count);
    get_bytes(values.data(), count * sizeof(T));
    return values;
  }

  /// Zero-copy counterpart of get_vector<uint8_t>: validates the u32 length
  /// prefix and returns a span over the bytes in place. The span borrows the
  /// buffer — it is valid only while the WireBuffer (or the vector it was
  /// constructed from) stays alive and unmodified.
  std::span<const std::uint8_t> get_byte_span() {
    const auto count = get<std::uint32_t>();
    if (failed_ || count > remaining()) {
      failed_ = true;
      return {};
    }
    std::span<const std::uint8_t> view(bytes_.data() + cursor_, count);
    cursor_ += count;
    return view;
  }

  // ---- access ----

  std::size_t size() const { return bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - cursor_; }
  bool exhausted() const { return cursor_ == bytes_.size(); }
  /// False once any decode ran past the available bytes.
  bool ok() const { return !failed_; }
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() && { return std::move(bytes_); }
  void rewind() {
    cursor_ = 0;
    failed_ = false;
  }

 private:
  bool take_ok(std::size_t size) {
    if (failed_ || size > bytes_.size() - cursor_) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  bool failed_ = false;
};

}  // namespace parade
