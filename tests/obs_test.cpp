// Observability layer tests: registry snapshot/epoch-delta semantics, the
// trace ring, JSON export round-trips through the bundled parser, and a
// cross-layer consistency check that the counters reported by net, dsm, and
// runtime agree with each other on a real 4-node virtual cluster run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

namespace parade::obs {
namespace {

std::int64_t value_or0(const NodeSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

std::int64_t sum_prefix(const NodeSnapshot& snap, const std::string& prefix) {
  std::int64_t total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) == 0) total += value;
  }
  return total;
}

TEST(Metric, CounterAndTimerBasics) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);

  Timer t;
  {
    ScopedTimer scope(&t);
  }
  {
    ScopedTimer scope(nullptr);  // null timer: a no-op scope
  }
  EXPECT_EQ(t.count(), 1);
  EXPECT_GE(t.total_ns(), 0);
}

TEST(Trace, RingOverwritesOldest) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.kind = TraceKind::kSend;
    e.tag = i;
    ring.emit(e);
  }
  EXPECT_EQ(ring.emitted(), 6u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);  // capacity-bounded window
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].tag, 2 + i);  // oldest first
}

TEST(Registry, EpochSlicesAreDeltas) {
  Registry reg;
  Counter& faults = reg.counter(0, "dsm.read_faults");
  Counter& idle = reg.counter(0, "dsm.diffs_created");

  faults.add(3);
  reg.close_epoch(0, 0);
  faults.add(2);
  reg.close_epoch(0, 1);
  reg.close_epoch(0, 2);  // nothing moved

  const auto epochs = reg.epochs(0);
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].epoch, 0);
  EXPECT_EQ(epochs[0].deltas.at("dsm.read_faults"), 3);
  EXPECT_EQ(epochs[1].deltas.at("dsm.read_faults"), 2);
  // Counters that did not move in an interval are omitted from its slice.
  EXPECT_EQ(epochs[0].deltas.count("dsm.diffs_created"), 0u);
  EXPECT_TRUE(epochs[2].deltas.empty());
  (void)idle;
}

TEST(Registry, EpochCapBumpsDroppedCount) {
  Registry::Options options;
  options.max_epochs = 2;
  Registry reg(options);
  Counter& c = reg.counter(1, "x");
  for (int epoch = 0; epoch < 5; ++epoch) {
    c.add();
    reg.close_epoch(1, epoch);
  }
  EXPECT_EQ(reg.epochs(1).size(), 2u);
  EXPECT_EQ(reg.epochs_dropped(1), 3);
}

TEST(Registry, ResetNodeZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter(0, "net.send_msgs.dsm");
  Timer& t = reg.timer(0, "mp.recv_wait");
  c.add(7);
  t.add_ns(100);
  reg.close_epoch(0, 0);

  reg.reset_node(0);
  EXPECT_EQ(reg.snapshot(0).counters.at("net.send_msgs.dsm"), 0);
  EXPECT_EQ(reg.epochs(0).size(), 0u);

  c.add();  // the old handle still points at the live counter
  EXPECT_EQ(reg.snapshot(0).counters.at("net.send_msgs.dsm"), 1);
}

TEST(Registry, JsonExportRoundTrips) {
  Registry::Options options;
  options.trace_enabled = true;
  options.ring_capacity = 8;
  Registry reg(options);
  reg.counter(0, "dsm.read_faults").add(5);
  reg.counter(2, "net.send_bytes.mp").add(4096);
  reg.timer(0, "rt.barrier_wait.t0").add_ns(1500);
  reg.close_epoch(0, 0);
  reg.emit(TraceKind::kBarrier, 0, 2, 12.5);

  auto doc = parse_json(reg.to_json("roundtrip"));
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const JsonValue& root = doc.value();
  EXPECT_EQ(root.at("schema").string, "parade.metrics.v1");
  EXPECT_EQ(root.at("label").string, "roundtrip");

  ASSERT_EQ(root.at("nodes").array.size(), 2u);
  const JsonValue& node0 = root.at("nodes").array[0];
  EXPECT_EQ(node0.at("node").as_int(), 0);
  EXPECT_EQ(node0.at("counters").at("dsm.read_faults").as_int(), 5);
  EXPECT_EQ(node0.at("timers").at("rt.barrier_wait.t0").at("ns").as_int(),
            1500);
  ASSERT_EQ(node0.at("epochs").array.size(), 1u);
  EXPECT_EQ(node0.at("epochs")
                .array[0]
                .at("deltas")
                .at("dsm.read_faults")
                .as_int(),
            5);
  EXPECT_EQ(root.at("nodes").array[1].at("counters").at("net.send_bytes.mp")
                .as_int(),
            4096);

  const JsonValue& trace = root.at("trace");
  EXPECT_TRUE(trace.at("enabled").boolean);
  ASSERT_EQ(trace.at("events").array.size(), 1u);
  EXPECT_EQ(trace.at("events").array[0].at("kind").string, "barrier");
  EXPECT_DOUBLE_EQ(trace.at("events").array[0].at("vtime").number, 12.5);
}

TEST(Registry, ExportToWritesCsvByExtension) {
  Registry reg;
  reg.counter(0, "dsm.barriers").add(2);
  const auto dir = std::filesystem::temp_directory_path() / "parade-obs-test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "metrics.csv").string();
  ASSERT_TRUE(reg.export_to(path, "csv").is_ok());

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("node,kind,name,value,count"), std::string::npos);
  EXPECT_NE(text.find("0,counter,dsm.barriers,2,"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{").is_ok());
  EXPECT_FALSE(parse_json("{\"a\": 1} trailing").is_ok());
  EXPECT_FALSE(parse_json("[1, 2,]").is_ok());
  auto ok = parse_json(R"({"a": [1, -2.5, "x\n", true, null]})");
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();
  EXPECT_EQ(ok.value().at("a").array[2].string, "x\n");
}

// One parallel_for over DSM-shared data on a 4-node virtual cluster: the
// counters independently reported by the net, dsm, and runtime layers must
// tell one consistent story.
TEST(CrossLayer, CountersAgreeOnVirtualCluster) {
  constexpr int kNodes = 4;
  constexpr long kDoubles = 8 * 512;  // 8 pages of doubles

  RuntimeConfig config;
  config.nodes = kNodes;
  config.with_node_config(vtime::NodeConfig::k2Thread2Cpu);
  config.cpu_scale = 0.0;  // deterministic: modeled costs only
  config.dsm.pool_bytes = 4 << 20;
  run_virtual_cluster_s(config, [] {
    auto* data = shmalloc_array<double>(kDoubles);
    barrier();
    parallel([&] {
      parallel_for(0, kDoubles, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) data[i] = static_cast<double>(i);
      });
    });
    double sum = 0.0;
    for (long i = 0; i < kDoubles; i += 512) sum += data[i];
    barrier();
  });

  auto& reg = Registry::instance();
  std::vector<NodeSnapshot> snaps;
  for (NodeId n = 0; n < kNodes; ++n) snaps.push_back(reg.snapshot(n));

  std::int64_t sent_msgs = 0, recv_msgs = 0, sent_bytes = 0, recv_bytes = 0;
  std::int64_t fetches = 0, serves = 0, diff_bytes = 0;
  for (const NodeSnapshot& snap : snaps) {
    sent_msgs += sum_prefix(snap, "net.send_msgs.");
    recv_msgs += sum_prefix(snap, "net.recv_msgs.");
    sent_bytes += sum_prefix(snap, "net.send_bytes.");
    recv_bytes += sum_prefix(snap, "net.recv_bytes.");
    fetches += value_or0(snap, "dsm.page_fetches");
    serves += value_or0(snap, "dsm.page_serves");
    diff_bytes += value_or0(snap, "dsm.diff_bytes_sent");

    // Runtime layer: exactly one parallel region ran on every node, and the
    // per-class and per-peer views of the same sends must agree.
    EXPECT_EQ(value_or0(snap, "rt.parallel_regions"), 1);
    EXPECT_EQ(sum_prefix(snap, "net.send_bytes_to."),
              sum_prefix(snap, "net.send_bytes."));
    EXPECT_EQ(sum_prefix(snap, "net.send_msgs_to."),
              sum_prefix(snap, "net.send_msgs."));
  }

  // Every node saw the same barrier sequence.
  for (const NodeSnapshot& snap : snaps) {
    EXPECT_EQ(value_or0(snap, "dsm.barriers"),
              value_or0(snaps[0], "dsm.barriers"));
  }
  EXPECT_GE(value_or0(snaps[0], "dsm.barriers"), 3);

  // The in-process fabric delivers every send (including self-sends), so the
  // net layer's send and receive totals must balance exactly.
  EXPECT_GT(sent_msgs, 0);
  EXPECT_EQ(sent_msgs, recv_msgs);
  EXPECT_EQ(sent_bytes, recv_bytes);

  // Cross-layer: every page fetched by one node was served by another, the
  // loop touched remote pages at all, and dsm diff payloads are a subset of
  // the bytes the net layer shipped.
  EXPECT_GT(fetches, 0);
  EXPECT_EQ(fetches, serves);
  EXPECT_LE(diff_bytes, sent_bytes);

  // The singleton's JSON export reflects the same run.
  auto doc = parse_json(reg.to_json("cross_layer"));
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const auto& nodes = doc.value().at("nodes").array;
  ASSERT_GE(nodes.size(), static_cast<std::size_t>(kNodes));
  for (const JsonValue& node : nodes) {
    const NodeId id = static_cast<NodeId>(node.at("node").as_int());
    if (id >= kNodes) continue;
    EXPECT_EQ(node.at("counters").at("dsm.barriers").as_int(),
              value_or0(snaps[static_cast<std::size_t>(id)], "dsm.barriers"));
  }
}

}  // namespace
}  // namespace parade::obs
