// C++ code generation from the annotated AST: the ParADE translation rules
// of paper §4 (parallel outlining, hybrid critical/atomic/reduction via
// collectives, single via broadcast, worksharing loops via the runtime loop
// scheduler, DSM placement of shared arrays).
#pragma once

#include "common/status.hpp"
#include "translator/analyze.hpp"
#include "translator/ast.hpp"

namespace parade::translator {

struct TranslateOptions {
  /// Include path of the generated code's support header.
  std::string support_include = "translator/xlat_support.hpp";
  /// Paper §5.2.1 small-data threshold (bytes); scalar synchronization under
  /// this size maps to collectives, larger falls back to DSM locks.
  std::size_t mp_threshold_bytes = 256;
  /// Emit a main() wrapper that launches the cluster (off for golden tests
  /// translating fragments).
  bool emit_main_wrapper = true;
  /// Run protocol-hint synthesis and embed the per-symbol priors as a JSON
  /// sidecar in the generated code (the launch wrapper seeds DsmConfig with
  /// them); --no-hints reverts lowering to the raw threshold comparison.
  bool protocol_hints = true;
};

/// Runs the semantic analysis pass internally, then emits code from it.
Result<std::string> generate(const TranslationUnit& unit,
                             const TranslateOptions& options);

/// Emits code from an analysis the caller already ran (the placement and
/// critical/atomic collective-vs-lock decisions are read from `analysis`,
/// which must come from the same unit and threshold).
Result<std::string> generate(const TranslationUnit& unit,
                             const TranslateOptions& options,
                             const Analysis& analysis);

}  // namespace parade::translator
