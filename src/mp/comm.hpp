// Thread-safe MPI-subset communicator (paper §5.3).
//
// The paper implements point-to-point send/receive plus MPI_Bcast and
// MPI_Allreduce on VIA, because public MPI libraries of the time were not
// thread-safe. This communicator provides those (plus barrier, reduce,
// gather, allgather) over any net::Channel. Thread safety: any number of
// threads may issue point-to-point operations concurrently; collectives must
// be called by exactly one thread per node at a time, in the same order on
// every node (standard MPI semantics).
//
// Virtual-time integration: threads that participate in the direct-execution
// timing bind their ThreadClock with bind_thread_clock(); every operation
// then charges LogGP costs and propagates causality through message
// timestamps. Unbound threads communicate untimed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/topology.hpp"
#include "mp/datatypes.hpp"
#include "net/channel.hpp"
#include "net/fault.hpp"
#include "obs/metric.hpp"
#include "vtime/clock.hpp"
#include "vtime/cost_model.hpp"

namespace parade::mp {

/// Alias of vtime::bind_thread_clock — all Comm operations on the calling
/// thread charge their costs to the bound clock.
using vtime::bind_thread_clock;
using vtime::thread_clock;

struct RecvStatus {
  NodeId source = 0;
  Tag tag = 0;
  std::size_t bytes = 0;
};

/// Opt-in reliable-delivery mode for the try_* operations: every data message
/// carries a 4-byte sequence prefix, the receiver acks it on the dedicated
/// ack tag (net::kAckTagBase) and suppresses duplicates, and the sender
/// retransmits unacked messages whenever a bounded wait times out. With
/// `enabled == false` the try_* operations degrade to their unreliable
/// counterparts (no framing, no acks) and simply report channel errors.
struct Reliability {
  bool enabled = false;
  net::RetryPolicy retry{};
};

class Comm {
 public:
  /// Primary constructor: `topology` carries this node's rank, the cluster
  /// size, and the tree fan-out. Must agree with the channel's rank/size
  /// (checked).
  Comm(const Topology& topology, net::Channel& channel,
       vtime::NetworkModel model, Reliability reliability = {});
  /// Deprecation shim for callers still passing shape via the channel.
  Comm(net::Channel& channel, vtime::NetworkModel model,
       Reliability reliability = {});

  NodeId rank() const { return topo_.rank; }
  int size() const { return topo_.nodes; }
  const Topology& topology() const { return topo_; }
  const vtime::NetworkModel& model() const { return model_; }
  net::Channel& channel() { return channel_; }

  // ---- point-to-point ----

  /// Sends `bytes` of `data` to `dst` with user tag `tag` (>= 0).
  void send(NodeId dst, Tag tag, const void* data, std::size_t bytes);

  /// Receives into `buffer` (capacity `bytes`); blocks. `src`/`tag` may be
  /// kAnyNode / kAnyTag. Returns actual source/tag/size; the message must fit.
  RecvStatus recv(NodeId src, Tag tag, void* buffer, std::size_t bytes);

  /// Receives a whole message as a byte vector.
  std::vector<std::uint8_t> recv_bytes(NodeId src, Tag tag,
                                       RecvStatus* status = nullptr);

  /// Non-blocking probe-and-take. Returns std::nullopt when nothing matches.
  std::optional<std::vector<std::uint8_t>> try_recv_bytes(
      NodeId src, Tag tag, RecvStatus* status = nullptr);

  // ---- collectives (call once per node, same order everywhere) ----

  /// Dissemination barrier, O(log N) rounds.
  void barrier();

  /// Binomial-tree broadcast of `bytes` from `root`.
  void bcast(void* data, std::size_t bytes, NodeId root);

  /// Binomial-tree reduction to `root`; `buffer` holds this node's
  /// contribution on entry and, on the root, the result on exit.
  void reduce(void* buffer, std::size_t count, DType dtype, Op op, NodeId root);

  /// Reduce-to-0 + broadcast: every node ends with the reduction result.
  void allreduce(void* buffer, std::size_t count, DType dtype, Op op);

  /// Allreduce with a user combine function over opaque bytes (used for the
  /// merged multi-variable reduction structures of paper §4.2).
  void allreduce_user(void* buffer, std::size_t bytes, const UserReduceFn& fn);

  /// Root gathers `bytes` from each node into `out` (size N*bytes, rank
  /// order). `out` may be null on non-roots.
  void gather(const void* contribution, std::size_t bytes, void* out,
              NodeId root);

  /// gather to 0 + bcast.
  void allgather(const void* contribution, std::size_t bytes, void* out);

  // ---- reliable / fault-tolerant variants ----
  //
  // These return Status instead of aborting: a peer that stays unreachable
  // past the retry budget yields kUnavailable rather than a hang. When
  // Reliability.enabled they run over the seq+ack wire protocol described on
  // struct Reliability, surviving message drops and duplicates.
  //
  // Contract: reliable operations must be issued by one thread per node at a
  // time (same as collectives), and every node of the job must use the try_*
  // family consistently — plain send()/recv() bypass the seq framing.

  const Reliability& reliability() const { return reliability_; }

  /// Reliable send: blocks until `dst` acked the message (retransmitting on
  /// timeout) or the retry budget is exhausted. Incoming data that arrives
  /// while waiting is acked and stashed for later try_recv calls.
  Status try_send(NodeId dst, Tag tag, const void* data, std::size_t bytes);

  /// Reliable receive into `buffer` (capacity `capacity`). `src` may be
  /// kAnyNode; `tag` must be concrete. kUnavailable when the channel closes,
  /// the peer is gone, or nothing arrives within the retry budget.
  Status try_recv(NodeId src, Tag tag, void* buffer, std::size_t capacity,
                  RecvStatus* status = nullptr);

  /// Collectives with bounded waits; any unreachable partner surfaces as
  /// kUnavailable on every node that depended on it.
  Status try_barrier();
  Status try_bcast(void* data, std::size_t bytes, NodeId root);
  Status try_allreduce(void* buffer, std::size_t count, DType dtype, Op op);

  /// Linger after the last reliable operation (MPI_Finalize-style). There is
  /// no background progress thread, so once a node stops calling try_*
  /// operations it also stops answering retransmissions — and a peer whose
  /// final ack was lost in transit would retry into silence forever.
  /// quiesce() keeps pumping (re-acking duplicate data, absorbing stray acks)
  /// until the link has stayed silent for a few retry timeouts. Call it once
  /// per node after the last reliable operation, before fabric teardown.
  void quiesce();

 private:
  Tag next_collective_tag();
  void send_wire(NodeId dst, Tag wire_tag, const void* data, std::size_t bytes);
  net::Message recv_wire(NodeId src, Tag wire_tag);
  void reduce_with(void* buffer, std::size_t bytes, NodeId root, Tag tag,
                   const std::function<void(void*, const void*)>& combine);
  void count_collective(obs::Counter* which, std::size_t payload_bytes);

  // Reliable wire engine (see Reliability). rel_pump is the single progress
  // loop: it consumes acks, acks + dedupes + stashes data, retransmits the
  // unacked window on timeout, and returns when its goal is met.
  Status rel_send(NodeId dst, Tag wire_tag, const void* data,
                  std::size_t bytes);
  Status rel_recv(NodeId src, Tag wire_tag, net::Message* out);
  Status rel_pump(bool want_data, NodeId want_src, Tag want_tag,
                  std::uint32_t want_ack_seq, net::Message* out);
  void post_ack(NodeId dst, std::uint32_t seq);
  Status try_reduce_with(void* buffer, std::size_t bytes, NodeId root, Tag tag,
                         const std::function<void(void*, const void*)>& combine);

  net::Channel& channel_;
  Topology topo_;
  vtime::NetworkModel model_;
  Reliability reliability_;
  std::atomic<std::uint32_t> collective_seq_{0};

  // Reliable-mode state; touched only under the one-reliable-op-at-a-time
  // contract, so unsynchronized.
  std::uint32_t rel_seq_ = 0;
  struct PendingSend {
    NodeId dst;
    Tag wire_tag;
    std::vector<std::uint8_t> payload;  // seq-prefixed, for retransmission
    VirtualUs stamp;
  };
  std::unordered_map<std::uint32_t, PendingSend> rel_unacked_;
  net::SeqWindow rel_seen_{4096};
  std::deque<net::Message> rel_stash_;  // acked + deduped, seq stripped

  // Registry handles (resolved once in the ctor; see docs/OBSERVABILITY.md).
  struct Metrics {
    obs::Counter* p2p_sends;
    obs::Counter* p2p_send_bytes;
    obs::Counter* coll_payload_bytes;
    obs::Counter* barriers;
    obs::Counter* bcasts;
    obs::Counter* reduces;
    obs::Counter* allreduces;
    obs::Counter* gathers;
    obs::Counter* allgathers;
    obs::Counter* retries;  ///< mp.retry.count: reliable-mode retransmissions
    obs::Timer* recv_wait;
    /// mp.collective_ns: wall latency distribution of every collective entry
    /// (nested internal collectives record their own samples, matching the
    /// nested counter convention above).
    obs::Histogram* collective_ns;
  };
  Metrics metrics_;
};

}  // namespace parade::mp
