// Translator demo: feeds an embedded OpenMP C program through the ParADE
// translator library and prints the generated C++ — the paper's Figure 2/3
// translations, live. (Use the parade_omcc binary to translate files.)
#include <cstdio>

#include "translator/translate.hpp"

namespace {

const char* kProgram = R"omp(
#include <stdio.h>

double total;
double table[1024];

int main() {
  int i;
  double local_max = 0.0;

#pragma omp parallel
  {
#pragma omp single
    total = 0.0;

#pragma omp for reduction(+:total) schedule(static)
    for (i = 0; i < 1024; i++) {
      table[i] = i * 0.5;
      total += table[i];
    }

#pragma omp critical
    total += 1.0;

#pragma omp master
    printf("total=%f\n", total);
  }
  return 0;
}
)omp";

}  // namespace

int main() {
  auto result = parade::translator::translate_source(kProgram);
  if (!result.is_ok()) {
    std::fprintf(stderr, "translation failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("---- OpenMP input ----\n%s\n", kProgram);
  std::printf("---- ParADE output ----\n%s", result.value().c_str());
  return 0;
}
