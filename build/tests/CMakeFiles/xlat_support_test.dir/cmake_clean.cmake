file(REMOVE_RECURSE
  "CMakeFiles/xlat_support_test.dir/xlat_support_test.cpp.o"
  "CMakeFiles/xlat_support_test.dir/xlat_support_test.cpp.o.d"
  "xlat_support_test"
  "xlat_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xlat_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
