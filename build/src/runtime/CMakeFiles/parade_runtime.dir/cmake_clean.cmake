file(REMOVE_RECURSE
  "CMakeFiles/parade_runtime.dir/api.cpp.o"
  "CMakeFiles/parade_runtime.dir/api.cpp.o.d"
  "CMakeFiles/parade_runtime.dir/cluster.cpp.o"
  "CMakeFiles/parade_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/parade_runtime.dir/context.cpp.o"
  "CMakeFiles/parade_runtime.dir/context.cpp.o.d"
  "CMakeFiles/parade_runtime.dir/node_runtime.cpp.o"
  "CMakeFiles/parade_runtime.dir/node_runtime.cpp.o.d"
  "CMakeFiles/parade_runtime.dir/team.cpp.o"
  "CMakeFiles/parade_runtime.dir/team.cpp.o.d"
  "libparade_runtime.a"
  "libparade_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
