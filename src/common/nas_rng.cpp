#include "common/nas_rng.hpp"

namespace parade::nas {
namespace {

constexpr double r23 = 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 *
                       0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 * 0.5 *
                       0.5 * 0.5 * 0.5 * 0.5 * 0.5;
constexpr double r46 = r23 * r23;
constexpr double t23 = 1.0 / r23;
constexpr double t46 = 1.0 / r46;

}  // namespace

double randlc(double& x, double a) {
  // Break a and x into two 23-bit halves: a = 2^23*a1 + a2, x = 2^23*x1 + x2.
  const double t1a = r23 * a;
  const double a1 = static_cast<double>(static_cast<std::int64_t>(t1a));
  const double a2 = a - t23 * a1;

  const double t1x = r23 * x;
  const double x1 = static_cast<double>(static_cast<std::int64_t>(t1x));
  const double x2 = x - t23 * x1;

  // z = a1*x2 + a2*x1 mod 2^23; lower 46 bits of a*x = 2^23*z + a2*x2.
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = static_cast<double>(static_cast<std::int64_t>(r23 * t1));
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = static_cast<double>(static_cast<std::int64_t>(r46 * t3));
  x = t3 - t46 * t4;
  return r46 * x;
}

void vranlc(std::int64_t n, double& x, double a, double* out) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = randlc(x, a);
}

double randlc_skip(double seed, double a, std::int64_t exponent) {
  double t = a;
  double x = seed;
  // Binary exponentiation: multiply x by a^(2^i) for each set bit of exponent.
  while (exponent != 0) {
    if ((exponent & 1) != 0) randlc(x, t);
    // Square the multiplier: t = t * t mod 2^46.
    double t_copy = t;
    randlc(t_copy, t);
    t = t_copy;
    exponent >>= 1;
  }
  return x;
}

}  // namespace parade::nas
