#include "translator/pragma.hpp"

#include <cctype>

namespace parade::translator {
namespace {

/// Tiny cursor over the pragma text.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Reads an identifier; empty if none.
  std::string ident() {
    skip_ws();
    std::string word;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      word += text_[pos_++];
    }
    return word;
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Reads up to the matching ')' assuming the '(' was consumed; handles
  /// nested parentheses. Returns the inner text.
  std::string until_close_paren() {
    std::string inner;
    int depth = 1;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '(') ++depth;
      if (c == ')') {
        if (--depth == 0) return inner;
      }
      inner += c;
    }
    return inner;  // unbalanced; caller reports
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

 public:
  std::size_t pos() const { return pos_; }
  void set_pos(std::size_t pos) { pos_ = pos; }
};

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

Status parse_clauses(Cursor& cursor, DirectiveKind kind, Clauses& out,
                     int line) {
  auto err = [line](const std::string& message) {
    return make_error(ErrorCode::kInvalidArgument,
                      message + " at line " + std::to_string(line));
  };

  while (!cursor.eof()) {
    // Skip optional commas between clauses.
    if (cursor.accept(',')) continue;
    const std::string name = cursor.ident();
    if (name.empty()) return err("unexpected character in pragma");

    auto expect_list = [&](std::vector<std::string>& into) -> Status {
      if (!cursor.accept('(')) return err("clause '" + name + "' needs (list)");
      for (const std::string& item : split_list(cursor.until_close_paren())) {
        into.push_back(item);
      }
      return Status::ok();
    };

    if (name == "shared") {
      if (Status s = expect_list(out.shared); !s) return s;
    } else if (name == "private") {
      if (Status s = expect_list(out.privates); !s) return s;
    } else if (name == "firstprivate") {
      if (Status s = expect_list(out.firstprivate); !s) return s;
    } else if (name == "lastprivate") {
      if (Status s = expect_list(out.lastprivate); !s) return s;
    } else if (name == "copyin") {
      if (Status s = expect_list(out.copyin); !s) return s;
    } else if (name == "default") {
      if (!cursor.accept('(')) return err("default needs (shared|none)");
      const std::string value = cursor.until_close_paren();
      out.has_default = true;
      if (value == "shared") {
        out.default_shared = true;
      } else if (value == "none") {
        out.default_shared = false;
      } else {
        return err("default(" + value + ") is not shared|none");
      }
    } else if (name == "reduction") {
      if (!cursor.accept('(')) return err("reduction needs (op:list)");
      const std::string inner = cursor.until_close_paren();
      const std::size_t colon = inner.find(':');
      if (colon == std::string::npos) return err("reduction missing ':'");
      std::string op_text;
      for (const char c : inner.substr(0, colon)) {
        if (!std::isspace(static_cast<unsigned char>(c))) op_text += c;
      }
      ReductionOp op;
      if (op_text == "+") op = ReductionOp::kAdd;
      else if (op_text == "-") op = ReductionOp::kSub;
      else if (op_text == "*") op = ReductionOp::kMul;
      else if (op_text == "&") op = ReductionOp::kAnd;
      else if (op_text == "|") op = ReductionOp::kOr;
      else if (op_text == "^") op = ReductionOp::kXor;
      else if (op_text == "&&") op = ReductionOp::kLAnd;
      else if (op_text == "||") op = ReductionOp::kLOr;
      else return err("unknown reduction operator '" + op_text + "'");
      for (const std::string& var : split_list(inner.substr(colon + 1))) {
        out.reductions.emplace_back(op, var);
      }
    } else if (name == "schedule") {
      if (!cursor.accept('(')) return err("schedule needs (kind[,chunk])");
      const std::string inner = cursor.until_close_paren();
      const std::size_t comma = inner.find(',');
      std::string kind_text;
      for (const char c : inner.substr(0, comma)) {
        if (!std::isspace(static_cast<unsigned char>(c))) kind_text += c;
      }
      out.has_schedule = true;
      if (kind_text == "static") out.schedule = OmpSchedule::kStatic;
      else if (kind_text == "dynamic") out.schedule = OmpSchedule::kDynamic;
      else if (kind_text == "guided") out.schedule = OmpSchedule::kGuided;
      else if (kind_text == "runtime") out.schedule = OmpSchedule::kRuntime;
      else return err("unknown schedule kind '" + kind_text + "'");
      if (comma != std::string::npos) {
        out.schedule_chunk = inner.substr(comma + 1);
      }
    } else if (name == "nowait") {
      out.nowait = true;
    } else if (name == "if") {
      if (!cursor.accept('(')) return err("if needs (expr)");
      out.if_expr = cursor.until_close_paren();
    } else if (name == "ordered") {
      // Accepted and ignored (the paper's translator supports static
      // scheduling only; ordered degenerates).
    } else {
      return err("unsupported clause '" + name + "' on " +
                 std::string(to_string(kind)));
    }
  }
  return Status::ok();
}

}  // namespace

Result<Directive> parse_pragma(const std::string& text, int line) {
  Cursor cursor(text);
  Directive directive;
  directive.line = line;

  const std::string first = cursor.ident();
  auto err = [line](const std::string& message) {
    return make_error(ErrorCode::kInvalidArgument,
                      message + " at line " + std::to_string(line));
  };

  if (first == "parallel") {
    // parallel | parallel for | parallel sections
    const std::size_t saved = cursor.pos();
    const std::string second = cursor.ident();
    if (second == "for") {
      directive.kind = DirectiveKind::kParallelFor;
    } else if (second == "sections") {
      directive.kind = DirectiveKind::kParallelSections;
    } else {
      cursor.set_pos(saved);
      directive.kind = DirectiveKind::kParallel;
    }
  } else if (first == "for") {
    directive.kind = DirectiveKind::kFor;
  } else if (first == "sections") {
    directive.kind = DirectiveKind::kSections;
  } else if (first == "section") {
    directive.kind = DirectiveKind::kSection;
  } else if (first == "single") {
    directive.kind = DirectiveKind::kSingle;
  } else if (first == "master") {
    directive.kind = DirectiveKind::kMaster;
  } else if (first == "critical") {
    directive.kind = DirectiveKind::kCritical;
    if (cursor.accept('(')) {
      directive.clauses.critical_name = cursor.until_close_paren();
    }
  } else if (first == "atomic") {
    directive.kind = DirectiveKind::kAtomic;
  } else if (first == "barrier") {
    directive.kind = DirectiveKind::kBarrier;
  } else if (first == "flush") {
    directive.kind = DirectiveKind::kFlush;
    if (cursor.accept('(')) {
      for (const std::string& item : split_list(cursor.until_close_paren())) {
        directive.clauses.flush_list.push_back(item);
      }
    }
  } else if (first == "ordered") {
    directive.kind = DirectiveKind::kOrdered;
  } else if (first == "threadprivate") {
    directive.kind = DirectiveKind::kThreadprivate;
    if (cursor.accept('(')) {
      for (const std::string& item : split_list(cursor.until_close_paren())) {
        directive.clauses.flush_list.push_back(item);
      }
    }
  } else {
    return err("unknown OpenMP directive '" + first + "'");
  }

  if (Status s = parse_clauses(cursor, directive.kind, directive.clauses, line);
      !s) {
    return s;
  }
  return directive;
}

const char* to_string(DirectiveKind kind) {
  switch (kind) {
    case DirectiveKind::kParallel: return "parallel";
    case DirectiveKind::kParallelFor: return "parallel for";
    case DirectiveKind::kParallelSections: return "parallel sections";
    case DirectiveKind::kFor: return "for";
    case DirectiveKind::kSections: return "sections";
    case DirectiveKind::kSection: return "section";
    case DirectiveKind::kSingle: return "single";
    case DirectiveKind::kMaster: return "master";
    case DirectiveKind::kCritical: return "critical";
    case DirectiveKind::kAtomic: return "atomic";
    case DirectiveKind::kBarrier: return "barrier";
    case DirectiveKind::kFlush: return "flush";
    case DirectiveKind::kOrdered: return "ordered";
    case DirectiveKind::kThreadprivate: return "threadprivate";
  }
  return "?";
}

const char* reduction_operator(ReductionOp op) {
  switch (op) {
    case ReductionOp::kAdd: return "+";
    case ReductionOp::kSub: return "-";
    case ReductionOp::kMul: return "*";
    case ReductionOp::kAnd: return "&";
    case ReductionOp::kOr: return "|";
    case ReductionOp::kXor: return "^";
    case ReductionOp::kLAnd: return "&&";
    case ReductionOp::kLOr: return "||";
  }
  return "?";
}

const char* reduction_identity(ReductionOp op) {
  switch (op) {
    case ReductionOp::kAdd: return "0";
    case ReductionOp::kSub: return "0";
    case ReductionOp::kMul: return "1";
    case ReductionOp::kAnd: return "~0";
    case ReductionOp::kOr: return "0";
    case ReductionOp::kXor: return "0";
    case ReductionOp::kLAnd: return "1";
    case ReductionOp::kLOr: return "0";
  }
  return "0";
}

}  // namespace parade::translator
