// Wire-codec robustness: frames straight off the wire may be truncated, carry
// trailing garbage, or have corrupted length prefixes. try_decode must reject
// them with a Status — never crash, never allocate from a hostile length
// prefix — and WireBuffer must validate counts against the bytes actually
// present before reserving memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/serialize.hpp"
#include "dsm/notice.hpp"
#include "dsm/protocol.hpp"

namespace parade::dsm {
namespace {

template <typename T>
void expect_rejects_truncations_and_trailing(const T& msg) {
  const auto bytes = codec<T>::encode(msg);
  ASSERT_FALSE(bytes.empty());

  // Every proper prefix must fail: fixed-width fields underrun, and a
  // length-prefixed vector either loses its count or its elements.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(len));
    const auto result = codec<T>::try_decode(cut);
    EXPECT_FALSE(result.is_ok()) << "accepted truncation at " << len;
  }

  // Trailing bytes must fail too (a frame is exactly one message).
  for (std::size_t extra : {1u, 3u, 16u}) {
    auto padded = bytes;
    padded.insert(padded.end(), extra, 0xAB);
    const auto result = codec<T>::try_decode(padded);
    EXPECT_FALSE(result.is_ok()) << "accepted " << extra << " trailing bytes";
  }

  // The pristine frame still round-trips.
  EXPECT_TRUE(codec<T>::try_decode(bytes).is_ok());
}

TEST(CodecFuzz, TruncationAndTrailingRejected) {
  expect_rejects_truncations_and_trailing(PageRequestMsg{3, 9});
  expect_rejects_truncations_and_trailing(
      PageReplyMsg{3, {0x10, 0x20, 0x30, 0x40}, 9});
  expect_rejects_truncations_and_trailing(DiffMsg{5, {1, 2, 3, 4, 5}, 11});
  expect_rejects_truncations_and_trailing(DiffAckMsg{5, 11});
  expect_rejects_truncations_and_trailing(
      BarrierArriveMsg{4, notice::pack_notices({{0, {1, 2}}, {2, {1, 5}}})});
  BarrierDepartMsg depart;
  depart.epoch = 4;
  depart.departure_vtime = 2.5;
  depart.entries = {{7, 1, 2}, {9, 0, kAnyNode}};
  expect_rejects_truncations_and_trailing(depart);
  expect_rejects_truncations_and_trailing(LockAcquireMsg{2, 13});
  expect_rejects_truncations_and_trailing(LockGrantMsg{2, {{8, 1}}, 13});
  expect_rejects_truncations_and_trailing(LockReleaseMsg{2, {8, 9}, 14});
  expect_rejects_truncations_and_trailing(LockReleaseAckMsg{2, 14});
}

TEST(CodecFuzz, HostileLengthPrefixFailsWithoutAllocating) {
  // lock_id + seq + count=0xFFFFFFFF and no element bytes: must reject
  // instead of attempting a ~32 GiB WriteNotice allocation.
  WireBuffer hostile;
  hostile.put<std::int32_t>(1);
  hostile.put<std::uint32_t>(7);
  hostile.put<std::uint32_t>(0xFFFFFFFFu);
  const auto result =
      codec<LockGrantMsg>::try_decode(std::move(hostile).take());
  ASSERT_FALSE(result.is_ok());

  // Same through the raw buffer API.
  WireBuffer raw;
  raw.put<std::uint32_t>(0xFFFFFFFFu);
  WireBuffer reader{std::move(raw).take()};
  const auto values = reader.get_vector<std::uint64_t>();
  EXPECT_TRUE(values.empty());
  EXPECT_FALSE(reader.ok());
}

TEST(CodecFuzz, BitFlipsNeverCrash) {
  DiffMsg msg{12, {}, 99};
  msg.diff.resize(64);
  for (std::size_t i = 0; i < msg.diff.size(); ++i) {
    msg.diff[i] = static_cast<std::uint8_t>(i * 7);
  }
  const auto pristine = codec<DiffMsg>::encode(msg);

  // Single-bit flips across the whole frame: each either still decodes (a
  // flip inside the payload is a legal different message) or fails cleanly.
  int rejected = 0;
  for (std::size_t bit = 0; bit < pristine.size() * 8; ++bit) {
    auto mutated = pristine;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto result = codec<DiffMsg>::try_decode(mutated);
    if (!result.is_ok()) ++rejected;
  }
  // Flips inside the count prefix must have produced at least one rejection.
  EXPECT_GT(rejected, 0);
}

TEST(CodecFuzz, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(20260805);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> garbage(rng() % 96);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Exercise several message shapes; outcomes are irrelevant, surviving is
    // the property.
    (void)codec<PageReplyMsg>::try_decode(garbage);
    (void)codec<BarrierDepartMsg>::try_decode(garbage);
    (void)codec<LockGrantMsg>::try_decode(garbage);
    (void)codec<DiffMsg>::try_decode(garbage);
  }
}

// ---- interval-vector write-notice streams (dsm/notice.hpp) ----
//
// The stream rides inside BarrierArriveMsg, so codec<T> already rejects
// framing damage; these cover the semantic layer: try_unpack_notices must
// soft-fail on malformed streams and never size an allocation from hostile
// counts.

TEST(NoticeFuzz, RoundTripCoalescesIntervals) {
  const std::vector<notice::NoticeBlock> blocks = {
      {0, {0, 1, 2, 3}},          // one dense run
      {2, {5}},                    // singleton
      {5, {1, 2, 7, 8, 9, 63}},    // three runs with gaps
  };
  const auto stream = notice::pack_notices(blocks);
  // Dense runs collapse: block 0 is 4 words (modifier, count, gap, len).
  ASSERT_EQ(stream.size(), 4u + 4u + 8u);
  const auto back = notice::try_unpack_notices(stream, 8, 64);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ((*back)[b].modifier, blocks[b].modifier);
    EXPECT_EQ((*back)[b].pages, blocks[b].pages);
  }
  EXPECT_EQ(notice::notice_page_count(*back), 11u);
  // Empty block lists encode to an empty stream and round-trip.
  EXPECT_TRUE(notice::pack_notices({}).empty());
  EXPECT_TRUE(notice::try_unpack_notices({}, 8, 64)->empty());
}

TEST(NoticeFuzz, TruncationsSoftFail) {
  // Two blocks of 6 words each: {1, 2, 0, 2, 3, 1} and {3, 2, 2, 1, 57, 4}.
  const auto stream =
      notice::pack_notices({{1, {0, 1, 5}}, {3, {2, 60, 61, 62, 63}}});
  ASSERT_EQ(stream.size(), 12u);
  // A cut at a block boundary is a smaller legal stream (framing truncation
  // is the codec layer's job); every cut inside a block must soft-fail.
  for (std::size_t len = 1; len < stream.size(); ++len) {
    const std::vector<std::uint32_t> cut(stream.begin(),
                                         stream.begin() + static_cast<long>(len));
    EXPECT_EQ(notice::try_unpack_notices(cut, 8, 64).has_value(), len == 6)
        << "at word " << len;
  }
  EXPECT_TRUE(notice::try_unpack_notices(stream, 8, 64).has_value());
}

TEST(NoticeFuzz, HostileCountsRejectedBeforeSizingAnything) {
  // run_count far beyond the words actually present.
  EXPECT_FALSE(
      notice::try_unpack_notices({0, 0xFFFFFFFFu, 0, 1}, 8, 64).has_value());
  // A run length that would expand to ~4G pages must fail on the num_pages
  // bound, not allocate.
  EXPECT_FALSE(
      notice::try_unpack_notices({0, 1, 0, 0xFFFFFFFFu}, 8, 64).has_value());
  // gap + len summing past num_pages in 64-bit math (no uint32 wraparound).
  EXPECT_FALSE(
      notice::try_unpack_notices({0, 1, 0xFFFFFFFFu, 2}, 8, 64).has_value());
}

TEST(NoticeFuzz, NonCanonicalStreamsRejected) {
  const PageId pages = 64;
  // Modifier out of range.
  EXPECT_FALSE(notice::try_unpack_notices({8, 1, 0, 1}, 8, pages).has_value());
  // Modifiers not strictly ascending (equal, then descending).
  EXPECT_FALSE(notice::try_unpack_notices({2, 1, 0, 1, 2, 1, 0, 1}, 8, pages)
                   .has_value());
  EXPECT_FALSE(notice::try_unpack_notices({2, 1, 0, 1, 1, 1, 0, 1}, 8, pages)
                   .has_value());
  // Zero-length run and empty block.
  EXPECT_FALSE(notice::try_unpack_notices({0, 1, 0, 0}, 8, pages).has_value());
  EXPECT_FALSE(notice::try_unpack_notices({0, 0}, 8, pages).has_value());
  // Second run with gap 0 (adjacent runs must have been merged).
  EXPECT_FALSE(
      notice::try_unpack_notices({0, 2, 0, 1, 0, 1}, 8, pages).has_value());
  // Page past the pool.
  EXPECT_FALSE(notice::try_unpack_notices({0, 1, 64, 1}, 8, pages).has_value());
}

TEST(NoticeFuzz, WordFlipsAndGarbageNeverCrash) {
  std::mt19937_64 rng(20260809);
  const auto pristine =
      notice::pack_notices({{0, {3, 4, 5}}, {4, {0, 63}}, {6, {31}}});
  // Single-word mutations: each either still validates (a different legal
  // stream) or soft-fails; unpacked results always respect the bounds.
  for (std::size_t w = 0; w < pristine.size(); ++w) {
    for (std::uint32_t delta : {1u, 0x80u, 0xFFFFFFFFu}) {
      auto mutated = pristine;
      mutated[w] ^= delta;
      const auto result = notice::try_unpack_notices(mutated, 8, 64);
      if (!result.has_value()) continue;
      for (const auto& block : *result) {
        EXPECT_LT(block.modifier, 8);
        for (PageId p : block.pages) EXPECT_LT(p, 64);
      }
    }
  }
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint32_t> garbage(rng() % 24);
    for (auto& word : garbage) {
      word = static_cast<std::uint32_t>(rng() % 128);
    }
    (void)notice::try_unpack_notices(garbage, 8, 64);
  }
}

TEST(CodecFuzz, WireBufferStringValidatesBeforeAllocating) {
  WireBuffer raw;
  raw.put<std::uint32_t>(0xFFFFFFF0u);
  raw.put_bytes("abc", 3);
  WireBuffer reader{std::move(raw).take()};
  const std::string text = reader.get_string();
  EXPECT_TRUE(text.empty());
  EXPECT_FALSE(reader.ok());

  // rewind clears the failure latch.
  reader.rewind();
  EXPECT_TRUE(reader.ok());
}

}  // namespace
}  // namespace parade::dsm
