// The NAS Parallel Benchmarks linear congruential generator (randlc /
// vranlc), as specified in NPB 2.3. Both the CG matrix generator and the EP
// kernel depend on bit-exact reproduction of this sequence, so verification
// values from the NAS report remain valid.
//
//   x_{k+1} = a * x_k mod 2^46
//
// with a = 5^13 and default seed 314159265. The implementation uses the
// classic double-double split so every intermediate stays below 2^46 and is
// exactly representable in an IEEE double.
#pragma once

#include <cstdint>
#include <vector>

namespace parade::nas {

inline constexpr double kDefaultSeed = 314159265.0;
inline constexpr double kDefaultMult = 1220703125.0;  // 5^13

/// Advances `x` one step and returns the uniform (0,1) deviate. Matches NPB's
/// RANDLC exactly.
double randlc(double& x, double a);

/// Generates `n` deviates into `out` (NPB's VRANLC).
void vranlc(std::int64_t n, double& x, double a, double* out);

/// Computes a^exponent * seed mod 2^46 in O(log exponent) steps; used by EP to
/// jump the generator to an arbitrary offset. Returns the new seed.
double randlc_skip(double seed, double a, std::int64_t exponent);

/// Convenience wrapper holding generator state.
class RandLc {
 public:
  explicit RandLc(double seed = kDefaultSeed, double mult = kDefaultMult)
      : x_(seed), a_(mult) {}

  double next() { return randlc(x_, a_); }
  void fill(std::vector<double>& out) {
    vranlc(static_cast<std::int64_t>(out.size()), x_, a_, out.data());
  }
  double state() const { return x_; }

 private:
  double x_;
  double a_;
};

}  // namespace parade::nas
