// Figure 11: molecular dynamics execution time, node sweep 1-8 under the
// paper's three configurations. Less shared memory and inter-node traffic
// than Helmholtz, so it scales well in every configuration.
#include "apps/md.hpp"
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  using namespace parade;
  apps::MdParams params;
  params.nparts =
      static_cast<int>(bench::arg_long(argc, argv, "nparts", 1024));
  params.nsteps = static_cast<int>(bench::arg_long(argc, argv, "steps", 5));

  std::vector<bench::Series> series;
  for (const auto node_config : bench::kNodeConfigs) {
    bench::Series s{vtime::to_string(node_config), {}};
    for (const int nodes : bench::kNodeSweep) {
      RuntimeConfig config =
          bench::figure_config(nodes, node_config, 16u << 20);
      apps::MdResult result;
      const double seconds = run_virtual_cluster_s(
          config, [&] { result = apps::md_parade(params); });
      s.values.push_back(seconds);
    }
    series.push_back(std::move(s));
  }
  bench::print_figure(
      "Figure 11: MD " + std::to_string(params.nparts) + " particles x" +
          std::to_string(params.nsteps) +
          " steps on modeled cLAN (virtual time)",
      "s", bench::kNodeSweep, series);
  return 0;
}
