file(REMOVE_RECURSE
  "CMakeFiles/dsm_unit_test.dir/dsm_unit_test.cpp.o"
  "CMakeFiles/dsm_unit_test.dir/dsm_unit_test.cpp.o.d"
  "dsm_unit_test"
  "dsm_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
