// Unit tests for the pure protocol-transition rules (dsm/rules.hpp): the
// Figure 5 edge table, fault-path dispatch, reliability-layer acceptance,
// barrier classification (per tree edge), home-directory placement,
// home-migration tie-breaking, and write-notice application — plus the
// behavior flips of each planted mutation and the Topology value type the
// tree barrier is built on.
#include "dsm/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/topology.hpp"

namespace parade::dsm {
namespace {

using rules::Mutation;

constexpr PageState kAllStates[] = {
    PageState::kInvalid, PageState::kTransient, PageState::kBlocked,
    PageState::kReadOnly, PageState::kDirty,
};

TEST(TransitionAllowed, MatchesFigure5EdgeTable) {
  // Exhaustive 5x5 table; rows are from-states in declaration order.
  const bool expected[5][5] = {
      // to:  INV    TRANS  BLOCK  RO     DIRTY
      {false, true, false, false, false},   // INVALID
      {false, false, true, true, true},     // TRANSIENT
      {false, false, false, true, true},    // BLOCKED
      {true, false, false, false, true},    // READ_ONLY
      {true, false, false, true, false},    // DIRTY
  };
  for (int from = 0; from < 5; ++from) {
    for (int to = 0; to < 5; ++to) {
      EXPECT_EQ(rules::transition_allowed(kAllStates[from], kAllStates[to]),
                expected[from][to])
          << to_string(kAllStates[from]) << " -> "
          << to_string(kAllStates[to]);
    }
  }
}

TEST(FaultAction, DispatchesByStateAndAccess) {
  EXPECT_EQ(rules::fault_action(PageState::kInvalid, false),
            rules::FaultAction::kStartFetch);
  EXPECT_EQ(rules::fault_action(PageState::kInvalid, true),
            rules::FaultAction::kStartFetch);
  EXPECT_EQ(rules::fault_action(PageState::kTransient, false),
            rules::FaultAction::kJoinWaiters);
  EXPECT_EQ(rules::fault_action(PageState::kBlocked, true),
            rules::FaultAction::kWaitForFetch);
  EXPECT_EQ(rules::fault_action(PageState::kReadOnly, false),
            rules::FaultAction::kDone);
  EXPECT_EQ(rules::fault_action(PageState::kReadOnly, true),
            rules::FaultAction::kUpgradeToDirty);
  EXPECT_EQ(rules::fault_action(PageState::kDirty, false),
            rules::FaultAction::kDone);
  EXPECT_EQ(rules::fault_action(PageState::kDirty, true),
            rules::FaultAction::kDone);
}

TEST(FaultAction, IllegalStateEdgeMutationSkipsTheFetch) {
  EXPECT_EQ(rules::fault_action(PageState::kInvalid, true,
                                Mutation::kIllegalStateEdge),
            rules::FaultAction::kUpgradeToDirty);
  // Reads are unaffected; the mutant only corrupts the write path.
  EXPECT_EQ(rules::fault_action(PageState::kInvalid, false,
                                Mutation::kIllegalStateEdge),
            rules::FaultAction::kStartFetch);
}

TEST(NeedsTwin, OnlyNonHomeWritersTwin) {
  EXPECT_FALSE(rules::needs_twin(/*home=*/2, /*self=*/2));
  EXPECT_TRUE(rules::needs_twin(/*home=*/0, /*self=*/2));
}

TEST(AcceptPageReply, RequiresOutstandingFetchWithMatchingSeq) {
  EXPECT_TRUE(rules::accept_page_reply(PageState::kTransient, 7, 7));
  EXPECT_TRUE(rules::accept_page_reply(PageState::kBlocked, 7, 7));
  // Superseded fetch: the reply echoes an older sequence number.
  EXPECT_FALSE(rules::accept_page_reply(PageState::kTransient, 7, 6));
  // No fetch outstanding at all.
  EXPECT_FALSE(rules::accept_page_reply(PageState::kReadOnly, 7, 7));
  EXPECT_FALSE(rules::accept_page_reply(PageState::kInvalid, 7, 7));
  EXPECT_FALSE(rules::accept_page_reply(PageState::kDirty, 7, 7));
}

TEST(AcceptPageReply, SkipReplySeqCheckMutationInstallsStaleReplies) {
  EXPECT_TRUE(rules::accept_page_reply(PageState::kTransient, 7, 6,
                                       Mutation::kSkipReplySeqCheck));
  // Still requires a fetch to be outstanding.
  EXPECT_FALSE(rules::accept_page_reply(PageState::kReadOnly, 7, 6,
                                        Mutation::kSkipReplySeqCheck));
}

TEST(AcceptResponseSeq, ExactEchoOnly) {
  EXPECT_TRUE(rules::accept_response_seq(3, 3));
  EXPECT_FALSE(rules::accept_response_seq(3, 2));
  EXPECT_FALSE(rules::accept_response_seq(3, 4));
}

struct TestWindow {
  std::set<std::uint64_t> seen;
  bool seen_or_insert(std::uint64_t key) { return !seen.insert(key).second; }
};

TEST(AcceptDiff, FirstDeliveryAppliesDuplicatesDoNot) {
  TestWindow window;
  EXPECT_TRUE(rules::accept_diff(window, /*src=*/1, /*seq=*/5));
  EXPECT_FALSE(rules::accept_diff(window, 1, 5));
  // Distinct senders and sequence numbers are independent.
  EXPECT_TRUE(rules::accept_diff(window, 2, 5));
  EXPECT_TRUE(rules::accept_diff(window, 1, 6));
}

TEST(AcceptDiff, SkipDiffDedupMutationReappliesDuplicates) {
  TestWindow window;
  EXPECT_TRUE(rules::accept_diff(window, 1, 5, Mutation::kSkipDiffDedup));
  EXPECT_TRUE(rules::accept_diff(window, 1, 5, Mutation::kSkipDiffDedup));
}

TEST(BarrierArrival, ClassifiesAgainstLastClosedEpoch) {
  // Before any departure, everything records.
  EXPECT_EQ(rules::classify_barrier_arrival(0, std::nullopt),
            rules::ArrivalAction::kRecord);
  // Fresh arrival for the open epoch.
  EXPECT_EQ(rules::classify_barrier_arrival(3, std::optional<Epoch>(2)),
            rules::ArrivalAction::kRecord);
  // The worker missed our departure: answer it again.
  EXPECT_EQ(rules::classify_barrier_arrival(2, std::optional<Epoch>(2)),
            rules::ArrivalAction::kReAnswerClosedEpoch);
  // Older duplicates are dropped.
  EXPECT_EQ(rules::classify_barrier_arrival(1, std::optional<Epoch>(2)),
            rules::ArrivalAction::kIgnoreStale);
}

TEST(BarrierDepart, ClassifiesAgainstCurrentEpoch) {
  EXPECT_EQ(rules::classify_barrier_depart(2, 2),
            rules::DepartAction::kProcess);
  EXPECT_EQ(rules::classify_barrier_depart(1, 2),
            rules::DepartAction::kIgnoreStale);
  EXPECT_EQ(rules::classify_barrier_depart(3, 2),
            rules::DepartAction::kImpossibleFuture);
}

TEST(ChooseHome, NoModifiersNoChange) {
  const auto d = rules::choose_home(2, {}, /*migration_enabled=*/true);
  EXPECT_EQ(d.new_home, 2);
  EXPECT_EQ(d.sole_modifier, kAnyNode);
}

TEST(ChooseHome, UniqueModifierWinsWhenMigrationEnabled) {
  const auto d = rules::choose_home(0, {3}, true);
  EXPECT_EQ(d.new_home, 3);
  EXPECT_EQ(d.sole_modifier, 3);
}

TEST(ChooseHome, UniqueModifierStaysPutWhenMigrationDisabled) {
  const auto d = rules::choose_home(0, {3}, false);
  EXPECT_EQ(d.new_home, 0);
  // sole_modifier is still reported so departure keep-rules see it.
  EXPECT_EQ(d.sole_modifier, 3);
}

TEST(ChooseHome, MultiModifierRetainsCurrentHome) {
  // With several modifiers the current home holds the only merged copy.
  const auto d = rules::choose_home(2, {1, 3}, true);
  EXPECT_EQ(d.new_home, 2);
  EXPECT_EQ(d.sole_modifier, kAnyNode);
}

TEST(ChooseHome, SmallestModifierIsTheFallbackWithoutAValidHome) {
  const auto d = rules::choose_home(kAnyNode, {3, 1, 2}, true);
  EXPECT_EQ(d.new_home, 1);
}

TEST(ChooseHome, WrongTieBreakMutationMigratesToSmallestModifier) {
  const auto d =
      rules::choose_home(2, {1, 3}, true, Mutation::kWrongHomeTieBreak);
  EXPECT_EQ(d.new_home, 1);
}

TEST(KeepCopyOnDeparture, KeepsOnlyProvablyCurrentCopies) {
  // New home keeps.
  EXPECT_TRUE(rules::keep_copy_on_departure(/*self=*/1, /*new_home=*/1,
                                            /*old_home=*/0,
                                            /*sole_modifier=*/kAnyNode));
  // Old home keeps: every diff merged into it.
  EXPECT_TRUE(rules::keep_copy_on_departure(0, 1, 0, kAnyNode));
  // The interval's only modifier holds the complete page.
  EXPECT_TRUE(rules::keep_copy_on_departure(2, 1, 0, 2));
  // Everyone else invalidates.
  EXPECT_FALSE(rules::keep_copy_on_departure(3, 1, 0, 2));
}

TEST(KeepCopyOnDeparture, KeepStaleCopyMutationNeverInvalidates) {
  EXPECT_TRUE(
      rules::keep_copy_on_departure(3, 1, 0, 2, Mutation::kKeepStaleCopy));
}

TEST(InvalidateApplies, OnlyDataBearingStates) {
  EXPECT_TRUE(rules::invalidate_applies(PageState::kReadOnly));
  EXPECT_TRUE(rules::invalidate_applies(PageState::kDirty));
  EXPECT_FALSE(rules::invalidate_applies(PageState::kInvalid));
  EXPECT_FALSE(rules::invalidate_applies(PageState::kTransient));
  EXPECT_FALSE(rules::invalidate_applies(PageState::kBlocked));
}

TEST(InvalidateOnLockNotice, RemoteModificationInvalidatesCachedReaders) {
  // Cached read-only copy, modified remotely, we are not the home: drop it.
  EXPECT_TRUE(
      rules::invalidate_on_lock_notice(PageState::kReadOnly, 0, 1, 2));
  // Our own modification never invalidates us.
  EXPECT_FALSE(
      rules::invalidate_on_lock_notice(PageState::kReadOnly, 0, 1, 1));
  // The home keeps its merged copy.
  EXPECT_FALSE(
      rules::invalidate_on_lock_notice(PageState::kReadOnly, 1, 1, 2));
  // Nothing cached, nothing to invalidate.
  EXPECT_FALSE(
      rules::invalidate_on_lock_notice(PageState::kInvalid, 0, 1, 2));
}

TEST(ArrivalEpochPlausible, ChildLagsParentByAtMostOneEpoch) {
  // First-ever arrival on an edge must be for epoch 0.
  EXPECT_TRUE(rules::arrival_epoch_plausible(0, std::nullopt));
  EXPECT_FALSE(rules::arrival_epoch_plausible(1, std::nullopt));
  // After closing epoch e, the only recordable arrival is e + 1; anything
  // else is either a re-answerable retransmission or a protocol bug, both
  // handled by classify_barrier_arrival instead.
  EXPECT_TRUE(rules::arrival_epoch_plausible(3, Epoch{2}));
  EXPECT_FALSE(rules::arrival_epoch_plausible(2, Epoch{2}));
  EXPECT_FALSE(rules::arrival_epoch_plausible(4, Epoch{2}));
  EXPECT_FALSE(rules::arrival_epoch_plausible(0, Epoch{2}));
}

TEST(DefaultHome, ShardsByPageModuloNodes) {
  // Legacy directory: everything on node 0.
  EXPECT_EQ(rules::default_home(0, 4, false), 0);
  EXPECT_EQ(rules::default_home(7, 4, false), 0);
  // Sharded: page p lives at p % N — O(1) lookup, no broadcast.
  EXPECT_EQ(rules::default_home(0, 4, true), 0);
  EXPECT_EQ(rules::default_home(5, 4, true), 1);
  EXPECT_EQ(rules::default_home(7, 4, true), 3);
  // Single-node clusters shard trivially to node 0.
  EXPECT_EQ(rules::default_home(7, 1, true), 0);
}

TEST(Topology, FlatIsTheDegenerateTree) {
  const Topology root = Topology::flat(0, 5);
  EXPECT_TRUE(root.valid());
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.effective_fanout(), 4);
  EXPECT_EQ(root.children(), (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(root.height(), 1);
  for (NodeId r = 1; r < 5; ++r) {
    const Topology t = root.with_rank(r);
    EXPECT_EQ(t.parent(), 0);
    EXPECT_EQ(t.num_children(), 0);
    EXPECT_EQ(t.depth(), 1);
  }
}

TEST(Topology, HeapShapedKaryTree) {
  // 8 nodes, fanout 2: 0 <- {1,2}, 1 <- {3,4}, 2 <- {5,6}, 3 <- {7}.
  const Topology t = Topology::tree(0, 8, 2);
  EXPECT_EQ(t.children(), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.with_rank(1).children(), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(t.with_rank(3).children(), (std::vector<NodeId>{7}));
  EXPECT_EQ(t.with_rank(4).num_children(), 0);
  EXPECT_EQ(t.with_rank(7).parent(), 3);
  EXPECT_EQ(t.with_rank(7).depth(), 3);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.describe(), "tree:2");
  // Every non-root rank's parent owns it as a child (128-node sweep).
  for (int fanout : {1, 2, 4, 16}) {
    const Topology big = Topology::tree(0, 128, fanout);
    for (NodeId r = 1; r < 128; ++r) {
      const auto kids = big.with_rank(big.with_rank(r).parent()).children();
      EXPECT_NE(std::find(kids.begin(), kids.end(), r), kids.end())
          << "fanout " << fanout << " rank " << r;
    }
  }
}

TEST(Topology, ParseBarrierSpec) {
  EXPECT_EQ(parse_barrier_spec("flat"), std::optional<int>{0});
  EXPECT_EQ(parse_barrier_spec("tree:1"), std::optional<int>{1});
  EXPECT_EQ(parse_barrier_spec("tree:16"), std::optional<int>{16});
  EXPECT_FALSE(parse_barrier_spec("").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree:").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree:0").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree:-2").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree:2x").has_value());
  EXPECT_FALSE(parse_barrier_spec("Tree:2").has_value());
  EXPECT_FALSE(parse_barrier_spec("tree:9999999").has_value());
}

TEST(MutationNames, RoundTripThroughTheRegistry) {
  EXPECT_EQ(rules::mutation_from_name("none"), Mutation::kNone);
  for (const auto& info : rules::kMutations) {
    const auto parsed = rules::mutation_from_name(info.name);
    ASSERT_TRUE(parsed.has_value()) << info.name;
    EXPECT_EQ(*parsed, info.mutation);
    EXPECT_STREQ(rules::to_string(info.mutation), info.name);
  }
  EXPECT_FALSE(rules::mutation_from_name("not-a-mutation").has_value());
}

}  // namespace
}  // namespace parade::dsm
