# Empty dependencies file for parade_apps.
# This may be replaced when dependencies are built.
