#include "obs/hist.hpp"

namespace parade::obs {

std::int64_t Histogram::percentile_ns(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // ceil(q * total) samples must fall at or below the reported value.
  auto target = static_cast<std::int64_t>(q * static_cast<double>(total));
  if (static_cast<double>(target) < q * static_cast<double>(total)) ++target;
  if (target < 1) target = 1;
  std::int64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= target) {
      const std::int64_t edge = hist_bucket_upper_ns(i);
      const std::int64_t cap = max_ns();
      return edge < cap ? edge : cap;
    }
  }
  return max_ns();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace parade::obs
