#include "runtime/cluster.hpp"

#include <algorithm>
#include <thread>

#include "common/env.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"

namespace parade {

VirtualCluster::VirtualCluster(const RuntimeConfig& config)
    : fabric_(config.nodes) {
  if (const auto faults = net::FaultPlan::from_env();
      faults && faults->active()) {
    auto epoch = std::make_shared<std::atomic<std::int64_t>>(0);
    faulty_.reserve(static_cast<std::size_t>(config.nodes));
    for (NodeId rank = 0; rank < config.nodes; ++rank) {
      faulty_.push_back(std::make_unique<net::FaultyChannel>(
          fabric_.channel(rank), *faults, epoch));
    }
  }
  nodes_.reserve(static_cast<std::size_t>(config.nodes));
  for (NodeId rank = 0; rank < config.nodes; ++rank) {
    auto node = std::make_unique<NodeRuntime>(channel(rank), config);
    Status s = node->start();
    PARADE_CHECK_MSG(s.is_ok(), s.message());
    nodes_.push_back(std::move(node));
  }
}

VirtualCluster::~VirtualCluster() { shutdown(); }

VirtualUs VirtualCluster::exec(const std::function<void()>& program) {
  std::vector<std::thread> mains;
  mains.reserve(nodes_.size());
  for (auto& node : nodes_) {
    mains.emplace_back([&node, &program] { node->main_entry(program); });
  }
  for (auto& main : mains) main.join();
  VirtualUs slowest = 0.0;
  for (auto& node : nodes_) slowest = std::max(slowest, node->final_vtime());
  return slowest;
}

void VirtualCluster::shutdown() {
  for (auto& node : nodes_) {
    if (node) node->shutdown();
  }
  fabric_.shutdown();
  // All nodes quiesced; dump metrics if PARADE_METRICS is set. Benches that
  // run several clusters re-export with their own label afterwards, which
  // simply overwrites this file with the final state.
  obs::Registry::instance().export_if_configured("virtual_cluster");
}

Result<std::unique_ptr<ProcessRuntime>> ProcessRuntime::from_env() {
  const auto rank = env::get_int("PARADE_RANK");
  const auto size = env::get_int("PARADE_SIZE");
  const auto dir = env::get_string("PARADE_SOCKDIR");
  if (!rank || !size || !dir) {
    return make_error(ErrorCode::kFailedPrecondition,
                      "PARADE_RANK/PARADE_SIZE/PARADE_SOCKDIR not set (run "
                      "under parade_run)");
  }
  auto fabric = net::SocketFabric::create(static_cast<NodeId>(*rank),
                                          static_cast<int>(*size), *dir);
  if (!fabric.is_ok()) return fabric.status();

  auto runtime = std::unique_ptr<ProcessRuntime>(new ProcessRuntime());
  runtime->fabric_ = std::move(fabric).value();
  RuntimeConfig config = runtime_config_from_env();
  config.nodes = static_cast<int>(*size);
  net::Channel* channel = runtime->fabric_.get();
  if (const auto faults = net::FaultPlan::from_env();
      faults && faults->active()) {
    runtime->faulty_ =
        std::make_unique<net::FaultyChannel>(*runtime->fabric_, *faults);
    channel = runtime->faulty_.get();
  }
  runtime->node_ = std::make_unique<NodeRuntime>(*channel, config);
  if (Status s = runtime->node_->start(); !s) return s;
  return runtime;
}

ProcessRuntime::~ProcessRuntime() {
  if (node_) node_->shutdown();
  if (fabric_) fabric_->shutdown();
  // Rank-suffixed under PARADE_RANK, so launcher processes do not clobber
  // one another's exports.
  obs::Registry::instance().export_if_configured("process_runtime");
}

VirtualUs ProcessRuntime::exec(const std::function<void()>& program) {
  node_->main_entry(program);
  return node_->final_vtime();
}

double run_virtual_cluster_s(const RuntimeConfig& config,
                             const std::function<void()>& program) {
  VirtualCluster cluster(config);
  const VirtualUs us = cluster.exec(program);
  cluster.shutdown();
  return us / 1e6;
}

}  // namespace parade
