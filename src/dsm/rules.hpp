// Pure, side-effect-free transition rules of the HLRC/migratory-home
// protocol. This is the single source of truth for every protocol decision
// that used to be inlined in node.cpp/pagetable.cpp:
//
//   - the Figure 5 page state machine (legal edges, fault-path dispatch),
//   - home-migration tie-breaking at barrier time (§5.2.2),
//   - write-notice application (barrier departure and lock grants),
//   - sequence-number / dedup acceptance for the reliability layer (PR 2).
//
// Both the live DSM runtime (dsm/node.cpp) and the explicit-state model
// checker (src/verify/) call these functions, so the checker verifies the
// same code that ships. Everything here is a pure function of its
// arguments; no locks, no I/O, no global state.
//
// Mutation hooks: each rule takes a trailing `Mutation` parameter that
// defaults to kNone (the live runtime never passes anything else, and the
// default constant-folds away). The model checker's mutation-validation
// ctest flips one rule at a time and requires a counterexample for each
// mutant — see docs/MODEL_CHECKING.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/fault.hpp"

namespace parade::dsm {

/// Figure 5 page states (owned here so both pagetable.hpp and the model
/// checker share one definition).
enum class PageState : std::uint8_t {
  kInvalid,
  kTransient,
  kBlocked,
  kReadOnly,
  kDirty,
};

const char* to_string(PageState state);

namespace rules {

// ---------------------------------------------------------------------------
// Planted rule mutations (model-checker validation only).

enum class Mutation : std::uint8_t {
  kNone,
  /// Fault path upgrades an INVALID page straight to DIRTY without fetching.
  kIllegalStateEdge,
  /// Multi-modifier pages migrate to the smallest modifier id instead of
  /// staying at the current home (which holds the only merged copy).
  kWrongHomeTieBreak,
  /// Duplicate diffs re-apply instead of being absorbed by the seq window.
  kSkipDiffDedup,
  /// Page replies install whenever a fetch is outstanding, even when their
  /// sequence number belongs to a superseded fetch.
  kSkipReplySeqCheck,
  /// Barrier departure keeps every cached copy (skips invalidation).
  kKeepStaleCopy,
};

struct MutationInfo {
  Mutation mutation;
  const char* name;
  const char* summary;
};

inline constexpr MutationInfo kMutations[] = {
    {Mutation::kIllegalStateEdge, "illegal-state-edge",
     "write fault upgrades INVALID directly to DIRTY"},
    {Mutation::kWrongHomeTieBreak, "wrong-home-tie-break",
     "multi-modifier pages migrate to the smallest modifier"},
    {Mutation::kSkipDiffDedup, "skip-diff-dedup",
     "duplicate diffs re-apply at the home"},
    {Mutation::kSkipReplySeqCheck, "skip-reply-seq-check",
     "stale page replies install over a newer fetch"},
    {Mutation::kKeepStaleCopy, "keep-stale-copy",
     "departure processing never invalidates cached copies"},
};

inline const char* to_string(Mutation m) {
  for (const MutationInfo& info : kMutations) {
    if (info.mutation == m) return info.name;
  }
  return "none";
}

inline std::optional<Mutation> mutation_from_name(std::string_view name) {
  if (name == "none") return Mutation::kNone;
  for (const MutationInfo& info : kMutations) {
    if (name == info.name) return info.mutation;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Figure 5: legal state edges.

constexpr bool transition_allowed(PageState from, PageState to) {
  switch (from) {
    case PageState::kInvalid:
      // First faulting thread starts the fetch.
      return to == PageState::kTransient;
    case PageState::kTransient:
      // Another thread joins the wait, or the fetch completes.
      return to == PageState::kBlocked || to == PageState::kReadOnly ||
             to == PageState::kDirty;
    case PageState::kBlocked:
      // Fetch completes; waiters are woken.
      return to == PageState::kReadOnly || to == PageState::kDirty;
    case PageState::kReadOnly:
      // Write fault dirties; an incoming write notice invalidates.
      return to == PageState::kDirty || to == PageState::kInvalid;
    case PageState::kDirty:
      // Flush downgrades; a lock-grant write notice may invalidate.
      return to == PageState::kReadOnly || to == PageState::kInvalid;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fault-path dispatch (the state half of DsmNode::handle_fault's loop).

enum class FaultAction : std::uint8_t {
  kStartFetch,     ///< INVALID: become TRANSIENT, request the page
  kJoinWaiters,    ///< TRANSIENT: become BLOCKED, wait for the fetch
  kWaitForFetch,   ///< BLOCKED: wait for the fetch
  kUpgradeToDirty, ///< READ_ONLY write fault: twin (if non-home) and dirty
  kDone,           ///< access can proceed (read on RO/DIRTY, write on DIRTY)
};

constexpr FaultAction fault_action(PageState state, bool is_write,
                                   Mutation m = Mutation::kNone) {
  switch (state) {
    case PageState::kInvalid:
      if (m == Mutation::kIllegalStateEdge && is_write) {
        return FaultAction::kUpgradeToDirty;
      }
      return FaultAction::kStartFetch;
    case PageState::kTransient:
      return FaultAction::kJoinWaiters;
    case PageState::kBlocked:
      return FaultAction::kWaitForFetch;
    case PageState::kReadOnly:
      return is_write ? FaultAction::kUpgradeToDirty : FaultAction::kDone;
    case PageState::kDirty:
      return FaultAction::kDone;
  }
  return FaultAction::kDone;
}

/// Non-home writers keep a twin so the flush can diff; the home itself needs
/// none — all diffs merge into its copy (§5.2.1).
constexpr bool needs_twin(NodeId home, NodeId self) { return home != self; }

// ---------------------------------------------------------------------------
// Reliability layer: sequence-number and dedup acceptance (PR 2).

/// Accept a page reply iff a fetch is outstanding for the page and the reply
/// echoes the outstanding fetch's sequence number. Anything else is a
/// retransmission artifact: a reply for a page no longer being fetched, or
/// for a superseded fetch, must be dropped rather than installed.
constexpr bool accept_page_reply(PageState state, std::uint32_t expected_seq,
                                 std::uint32_t reply_seq,
                                 Mutation m = Mutation::kNone) {
  const bool fetching =
      state == PageState::kTransient || state == PageState::kBlocked;
  if (m == Mutation::kSkipReplySeqCheck) return fetching;
  return fetching && reply_seq == expected_seq;
}

/// Accept a response (lock grant, release ack) iff it echoes the request's
/// sequence number; a mismatch is a duplicate answer to an older request.
constexpr bool accept_response_seq(std::uint32_t expected_seq,
                                   std::uint32_t got_seq) {
  return expected_seq == got_seq;
}

/// Decide whether an incoming diff applies. `seen` is any duplicate window
/// with SeqWindow's `bool seen_or_insert(uint64 key)` contract (the live
/// runtime passes net::SeqWindow; the model checker passes its own
/// canonical-state-friendly set). A duplicate must be re-acked — the sender
/// is still waiting — but never re-applied: the page may have moved on since
/// the original merge, and re-applying stale bytes would corrupt it.
template <typename SeenWindow>
bool accept_diff(SeenWindow& seen, NodeId src, std::uint32_t seq,
                 Mutation m = Mutation::kNone) {
  const bool duplicate = seen.seen_or_insert(net::seq_key(src, seq));
  if (m == Mutation::kSkipDiffDedup) return true;
  return !duplicate;
}

// ---------------------------------------------------------------------------
// Barrier message classification.
//
// With the k-ary tree barrier these rules apply *per gather edge*: every
// node with children is the "master" of its own subtree and classifies each
// child's arrival against the departure it last forwarded down that edge.
// The flat barrier is the degenerate tree where node 0 parents everyone, so
// there is exactly one rule set for both shapes (docs/SCALING.md).

enum class ArrivalAction : std::uint8_t {
  kRecord,             ///< fresh arrival for an open epoch: gather it
  kReAnswerClosedEpoch,///< child missed our departure: resend it
  kIgnoreStale,        ///< duplicate of an epoch older than the last close
};

/// Gather-side classification of an incoming BarrierArrive against the most
/// recently closed epoch on this edge (nullopt before the first departure).
constexpr ArrivalAction classify_barrier_arrival(
    Epoch arrive_epoch, const std::optional<Epoch>& last_depart_epoch) {
  if (last_depart_epoch.has_value() && arrive_epoch <= *last_depart_epoch) {
    return arrive_epoch == *last_depart_epoch
               ? ArrivalAction::kReAnswerClosedEpoch
               : ArrivalAction::kIgnoreStale;
  }
  return ArrivalAction::kRecord;
}

/// The barrier.epoch invariant, per gather edge: a recordable arrival must
/// open exactly the epoch after the last one departed on this edge (or epoch
/// 0 before any departure). A child can lag its parent by at most one epoch
/// — it cannot enter epoch e+1 before receiving the parent's departure for
/// epoch e — so anything else is a protocol bug, not reordering.
constexpr bool arrival_epoch_plausible(
    Epoch arrive_epoch, const std::optional<Epoch>& last_depart_epoch) {
  const Epoch expected =
      last_depart_epoch.has_value() ? *last_depart_epoch + 1 : 0;
  return arrive_epoch == expected;
}

enum class DepartAction : std::uint8_t {
  kProcess,          ///< departure for the epoch we are waiting on
  kIgnoreStale,      ///< duplicate departure of an older epoch
  kImpossibleFuture, ///< departure from the future: a protocol bug
};

/// Worker-side classification of an incoming BarrierDepart against the
/// epoch the worker is currently closing.
constexpr DepartAction classify_barrier_depart(Epoch depart_epoch,
                                               Epoch current_epoch) {
  if (depart_epoch < current_epoch) return DepartAction::kIgnoreStale;
  return depart_epoch == current_epoch ? DepartAction::kProcess
                                       : DepartAction::kImpossibleFuture;
}

// ---------------------------------------------------------------------------
// Home directory placement.

/// Initial home of a page before any migration. Historically every page
/// homed at node 0, which makes the first interval an O(nodes) fetch storm
/// against one node. Sharded placement stripes homes round-robin so the
/// directory load (and the first-touch traffic) spreads evenly; resolution
/// stays a pure O(1) function either way — no broadcast, no lookup table.
/// Both the live PageTable seed and the model checker's initial state call
/// this, so the checker verifies the placement the runtime ships.
constexpr NodeId default_home(PageId page, int nodes, bool sharded) {
  if (!sharded || nodes <= 1) return 0;
  return static_cast<NodeId>(page % nodes);
}

// ---------------------------------------------------------------------------
// Home migration (§5.2.2).

struct HomeDecision {
  NodeId new_home = 0;
  /// The single modifier this interval, or kAnyNode when several wrote.
  NodeId sole_modifier = kAnyNode;
};

/// Decide a write-noticed page's home for the next interval. Tie-break
/// order, highest priority first:
///   1. the interval's unique modifier (when migration is enabled) — it
///      holds the complete page, so migrating eliminates its future diffs;
///   2. the current home — with several modifiers it holds the only merged
///      copy, and the paper gives it the highest retention priority;
///   3. the smallest modifier id — a deterministic total-order fallback so
///      the rule is defined even without a valid current home.
inline HomeDecision choose_home(NodeId current_home,
                                const std::vector<NodeId>& modifiers,
                                bool migration_enabled,
                                Mutation m = Mutation::kNone) {
  HomeDecision decision;
  if (modifiers.empty()) {  // no notice, no change
    decision.new_home = current_home;
    return decision;
  }
  if (modifiers.size() == 1) {
    decision.sole_modifier = modifiers.front();
    decision.new_home = migration_enabled ? modifiers.front() : current_home;
    return decision;
  }
  const NodeId smallest =
      *std::min_element(modifiers.begin(), modifiers.end());
  if (m == Mutation::kWrongHomeTieBreak) {
    decision.new_home = smallest;
    return decision;
  }
  decision.new_home = current_home != kAnyNode ? current_home : smallest;
  return decision;
}

// ---------------------------------------------------------------------------
// Write-notice application.

/// Keep a cached copy across a barrier departure iff it is provably current:
/// we are the new home, we were the old home (all diffs merged into us), or
/// we were the interval's only modifier.
constexpr bool keep_copy_on_departure(NodeId self, NodeId new_home,
                                      NodeId old_home, NodeId sole_modifier,
                                      Mutation m = Mutation::kNone) {
  if (m == Mutation::kKeepStaleCopy) return true;
  return new_home == self || old_home == self || sole_modifier == self;
}

/// Departure invalidation only applies to states that hold application data;
/// in-flight fetches (TRANSIENT/BLOCKED) install a post-merge copy anyway.
constexpr bool invalidate_applies(PageState state) {
  return state == PageState::kReadOnly || state == PageState::kDirty;
}

/// Lock-grant write notice: invalidate a cached READ_ONLY copy that another
/// node modified under the lock, unless we are the home (diffs were merged
/// into us). Conservative lazy-release approximation — see DESIGN.md.
constexpr bool invalidate_on_lock_notice(PageState state, NodeId home,
                                         NodeId self, NodeId modifier) {
  return modifier != self && home != self && state == PageState::kReadOnly;
}

}  // namespace rules
}  // namespace parade::dsm
