file(REMOVE_RECURSE
  "libparade_common.a"
)
