#include "apps/cg.hpp"

#include <cmath>
#include <cstring>

#include "common/status.hpp"
#include "runtime/api.hpp"

namespace parade::apps {
namespace {

constexpr int kCgInnerIters = 25;  // NPB's cgitmax

/// Deterministic off-diagonal value for the symmetric pair (i, j), i != j.
double band_value(int lo, int dist) {
  // Smoothly varying, bounded away from zero, sign-mixed.
  const double phase = 0.37 * lo + 1.13 * dist;
  return -0.5 + 0.25 * std::sin(phase);
}

}  // namespace

SparseMatrix make_cg_matrix(const CgParams& params) {
  const int n = params.na;
  const int bands = params.nonzer;
  // Band offsets: half near-diagonal, half long-range, mirroring NAS CG's mix
  // of local and scattered column accesses.
  std::vector<int> offsets;
  offsets.reserve(static_cast<std::size_t>(bands));
  for (int b = 1; b <= bands; ++b) {
    if (b % 2 == 1) {
      offsets.push_back((b + 1) / 2);  // 1, 2, 3, ...
    } else {
      offsets.push_back((b / 2) * std::max(2, n / (bands + 1)));  // far bands
    }
  }

  SparseMatrix m;
  m.n = n;
  m.rowstr.assign(static_cast<std::size_t>(n) + 1, 0);

  // Two passes: count, then fill (CSR, ascending column order not required
  // for SPMV correctness but kept for cache behaviour).
  std::vector<std::vector<std::pair<int, double>>> rows(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double offdiag_sum = 0.0;
    for (const int off : offsets) {
      for (const int j : {i - off, i + off}) {
        if (j < 0 || j >= n || j == i) continue;
        const double v = band_value(std::min(i, j), std::abs(i - j));
        rows[static_cast<std::size_t>(i)].emplace_back(j, v);
        offdiag_sum += std::fabs(v);
      }
    }
    // Strict diagonal dominance => SPD for a symmetric matrix.
    rows[static_cast<std::size_t>(i)].emplace_back(
        i, offdiag_sum + 1.0 + 0.01 * (i % 13));
  }

  std::size_t nnz = 0;
  for (int i = 0; i < n; ++i) {
    m.rowstr[static_cast<std::size_t>(i)] = static_cast<int>(nnz);
    nnz += rows[static_cast<std::size_t>(i)].size();
  }
  m.rowstr[static_cast<std::size_t>(n)] = static_cast<int>(nnz);
  m.colidx.resize(nnz);
  m.values.resize(nnz);
  std::size_t at = 0;
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      m.colidx[at] = j;
      m.values[at] = v;
      ++at;
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Serial reference

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void spmv(const SparseMatrix& m, const std::vector<double>& p,
          std::vector<double>& q) {
  for (int i = 0; i < m.n; ++i) {
    double sum = 0.0;
    for (int k = m.rowstr[static_cast<std::size_t>(i)];
         k < m.rowstr[static_cast<std::size_t>(i) + 1]; ++k) {
      sum += m.values[static_cast<std::size_t>(k)] *
             p[static_cast<std::size_t>(m.colidx[static_cast<std::size_t>(k)])];
    }
    q[static_cast<std::size_t>(i)] = sum;
  }
}

/// One conj_grad call (NPB structure); returns ||x - A z||.
double conj_grad_serial(const SparseMatrix& m, const std::vector<double>& x,
                        std::vector<double>& z) {
  const std::size_t n = static_cast<std::size_t>(m.n);
  std::vector<double> r = x;
  std::vector<double> p = r;
  std::vector<double> q(n, 0.0);
  std::fill(z.begin(), z.end(), 0.0);
  double rho = dot(r, r);

  for (int it = 0; it < kCgInnerIters; ++it) {
    spmv(m, p, q);
    const double d = dot(p, q);
    const double alpha = rho / d;
    for (std::size_t i = 0; i < n; ++i) {
      z[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rho0 = rho;
    rho = dot(r, r);
    const double beta = rho / rho0;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }

  spmv(m, z, q);
  double rnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = x[i] - q[i];
    rnorm += diff * diff;
  }
  return std::sqrt(rnorm);
}

}  // namespace

SparseMatrix make_cg_matrix_for(const CgParams& params) {
  return params.generator == CgGenerator::kNas ? make_nas_cg_matrix(params)
                                               : make_cg_matrix(params);
}

CgResult cg_serial(const CgParams& params) {
  const SparseMatrix m = make_cg_matrix_for(params);
  const std::size_t n = static_cast<std::size_t>(m.n);
  std::vector<double> x(n, 1.0);
  std::vector<double> z(n, 0.0);

  CgResult result;
  for (int outer = 0; outer < params.niter; ++outer) {
    result.last_rnorm = conj_grad_serial(m, x, z);
    const double xz = dot(x, z);
    result.zeta = params.shift + 1.0 / xz;
    const double znorm = 1.0 / std::sqrt(dot(z, z));
    for (std::size_t i = 0; i < n; ++i) x[i] = z[i] * znorm;
  }
  return result;
}

// ---------------------------------------------------------------------------
// ParADE SPMD version

CgResult cg_parade(const CgParams& params) {
  const SparseMatrix host = make_cg_matrix_for(params);
  const std::size_t n = static_cast<std::size_t>(host.n);
  const std::size_t nnz = host.nnz();

  // Shared state in the DSM pool (matrix read-only after setup; vectors are
  // written by row slices — the paper's "huge arrays" under HLRC).
  auto* rowstr = shmalloc_array<int>(n + 1);
  auto* colidx = shmalloc_array<int>(nnz);
  auto* values = shmalloc_array<double>(nnz);
  auto* x = shmalloc_array<double>(n);
  auto* z = shmalloc_array<double>(n);
  auto* p = shmalloc_array<double>(n);
  auto* q = shmalloc_array<double>(n);
  auto* r = shmalloc_array<double>(n);

  if (node_id() == 0) {
    std::memcpy(rowstr, host.rowstr.data(), (n + 1) * sizeof(int));
    std::memcpy(colidx, host.colidx.data(), nnz * sizeof(int));
    std::memcpy(values, host.values.data(), nnz * sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = 1.0;
      z[i] = 0.0;
    }
  }
  barrier();

  CgResult result;
  double zeta_replica = 0.0;

  for (int outer = 0; outer < params.niter; ++outer) {
    double rnorm_replica = 0.0;
    double xz_replica = 0.0;
    double zz_replica = 0.0;

    parallel([&] {
      long lo, hi;
      static_slice(0, static_cast<long>(n), &lo, &hi);

      // r = x, p = r, z = 0; rho = r.r
      double local = 0.0;
      for (long i = lo; i < hi; ++i) {
        r[i] = x[i];
        p[i] = r[i];
        z[i] = 0.0;
        local += r[i] * r[i];
      }
      double rho = team_reduce(local, mp::Op::kSum);
      barrier();

      for (int it = 0; it < kCgInnerIters; ++it) {
        // q = A p  (reads remote slices of p -> page traffic)
        double d_local = 0.0;
        for (long i = lo; i < hi; ++i) {
          double sum = 0.0;
          for (int k = rowstr[i]; k < rowstr[i + 1]; ++k) {
            sum += values[k] * p[colidx[k]];
          }
          q[i] = sum;
          d_local += p[i] * sum;
        }
        const double d = team_reduce(d_local, mp::Op::kSum);
        const double alpha = rho / d;

        double rho_local = 0.0;
        for (long i = lo; i < hi; ++i) {
          z[i] += alpha * p[i];
          r[i] -= alpha * q[i];
          rho_local += r[i] * r[i];
        }
        const double rho_new = team_reduce(rho_local, mp::Op::kSum);
        const double beta = rho_new / rho;
        rho = rho_new;
        for (long i = lo; i < hi; ++i) p[i] = r[i] + beta * p[i];
        barrier();  // p fully updated before the next SPMV reads it remotely
      }

      // rnorm = ||x - A z||
      barrier();
      double rn_local = 0.0;
      double xz_local = 0.0;
      double zz_local = 0.0;
      for (long i = lo; i < hi; ++i) {
        double sum = 0.0;
        for (int k = rowstr[i]; k < rowstr[i + 1]; ++k) {
          sum += values[k] * z[colidx[k]];
        }
        const double diff = x[i] - sum;
        rn_local += diff * diff;
        xz_local += x[i] * z[i];
        zz_local += z[i] * z[i];
      }
      team_update(&rnorm_replica, rn_local, mp::Op::kSum);
      team_update(&xz_replica, xz_local, mp::Op::kSum);
      team_update(&zz_replica, zz_local, mp::Op::kSum);

      // x = z / ||z||
      const double inv_norm = 1.0 / std::sqrt(zz_replica);
      for (long i = lo; i < hi; ++i) x[i] = z[i] * inv_norm;
    });

    result.last_rnorm = std::sqrt(rnorm_replica);
    zeta_replica = params.shift + 1.0 / xz_replica;
  }
  result.zeta = zeta_replica;
  return result;
}

}  // namespace parade::apps
