// Faithful port of the NPB 2.3 CG matrix generator (makea/sparse/sprnvc/
// vecset), bit-compatible with the reference implementation: the same NAS
// LCG stream, the same assembly order, the same duplicate-summing sparse
// pass. With this generator the benchmark's zeta matches the published NPB
// verification values (class S: 8.5971775078648, W: 10.362595087124,
// A: 17.130235054029), which the test suite checks for class S.
//
// Arrays follow the original's 1-based indexing internally and are converted
// to the repository's 0-based CSR at the end.
#include <cmath>
#include <vector>

#include "apps/cg.hpp"
#include "common/nas_rng.hpp"
#include "common/status.hpp"

namespace parade::apps {
namespace {

constexpr double kAmult = 1220703125.0;

struct NasRngState {
  double tran = 314159265.0;
  double next() { return nas::randlc(tran, kAmult); }
};

/// NPB icnvrt: scale x in (0,1) by a power of two and truncate.
int icnvrt(double x, int ipwr2) { return static_cast<int>(ipwr2 * x); }

/// NPB sprnvc: generate a sparse vector with `nz` distinct nonzero locations
/// in [1, n]; v/iv are 1-based.
void sprnvc(NasRngState& rng, int n, int nz, std::vector<double>& v,
            std::vector<int>& iv, std::vector<int>& nzloc,
            std::vector<int>& mark) {
  int nzrow = 0;
  int nzv = 0;
  int nn1 = 1;
  while (nn1 < n) nn1 *= 2;

  while (nzv < nz) {
    const double vecelt = rng.next();
    const double vecloc = rng.next();
    const int i = icnvrt(vecloc, nn1) + 1;
    if (i > n) continue;
    if (mark[static_cast<std::size_t>(i)] == 0) {
      mark[static_cast<std::size_t>(i)] = 1;
      ++nzrow;
      nzloc[static_cast<std::size_t>(nzrow)] = i;
      ++nzv;
      v[static_cast<std::size_t>(nzv)] = vecelt;
      iv[static_cast<std::size_t>(nzv)] = i;
    }
  }
  for (int ii = 1; ii <= nzrow; ++ii) {
    mark[static_cast<std::size_t>(nzloc[static_cast<std::size_t>(ii)])] = 0;
  }
}

/// NPB vecset: set (or append) element i of the sparse vector to val.
void vecset(std::vector<double>& v, std::vector<int>& iv, int* nzv, int i,
            double val) {
  bool set = false;
  for (int k = 1; k <= *nzv; ++k) {
    if (iv[static_cast<std::size_t>(k)] == i) {
      v[static_cast<std::size_t>(k)] = val;
      set = true;
    }
  }
  if (!set) {
    ++*nzv;
    v[static_cast<std::size_t>(*nzv)] = val;
    iv[static_cast<std::size_t>(*nzv)] = i;
  }
}

/// NPB sparse: bucket-sort the (arow, acol, aelt) triples into CSR rows,
/// summing duplicates. All arrays 1-based; outputs a (values), colidx,
/// rowstr sized 1..n+1.
void sparse(std::vector<double>& a, std::vector<int>& colidx,
            std::vector<int>& rowstr, int n, std::vector<int>& arow,
            std::vector<int>& acol, std::vector<double>& aelt, int nnza) {
  const int nrows = n;

  for (int j = 1; j <= n + 1; ++j) rowstr[static_cast<std::size_t>(j)] = 0;
  for (int nza = 1; nza <= nnza; ++nza) {
    const int j = arow[static_cast<std::size_t>(nza)] + 1;
    rowstr[static_cast<std::size_t>(j)] += 1;
  }
  rowstr[1] = 1;
  for (int j = 2; j <= nrows + 1; ++j) {
    rowstr[static_cast<std::size_t>(j)] += rowstr[static_cast<std::size_t>(j) - 1];
  }

  // Bucket sort into (a, colidx) working storage.
  for (int nza = 1; nza <= nnza; ++nza) {
    const int j = arow[static_cast<std::size_t>(nza)];
    const int k = rowstr[static_cast<std::size_t>(j)];
    a[static_cast<std::size_t>(k)] = aelt[static_cast<std::size_t>(nza)];
    colidx[static_cast<std::size_t>(k)] = acol[static_cast<std::size_t>(nza)];
    rowstr[static_cast<std::size_t>(j)] += 1;
  }
  for (int j = nrows; j >= 1; --j) {
    rowstr[static_cast<std::size_t>(j) + 1] = rowstr[static_cast<std::size_t>(j)];
  }
  rowstr[1] = 1;

  // Merge duplicates per row, compacting in place.
  std::vector<double> x(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> mark(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> nzloc(static_cast<std::size_t>(n) + 1, 0);

  int nza = 0;
  int jajp1 = rowstr[1];
  for (int j = 1; j <= nrows; ++j) {
    int nzrow = 0;
    for (int k = jajp1; k < rowstr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int i = colidx[static_cast<std::size_t>(k)];
      x[static_cast<std::size_t>(i)] += a[static_cast<std::size_t>(k)];
      if (mark[static_cast<std::size_t>(i)] == 0 &&
          x[static_cast<std::size_t>(i)] != 0.0) {
        mark[static_cast<std::size_t>(i)] = 1;
        ++nzrow;
        nzloc[static_cast<std::size_t>(nzrow)] = i;
      }
    }
    for (int k = 1; k <= nzrow; ++k) {
      const int i = nzloc[static_cast<std::size_t>(k)];
      mark[static_cast<std::size_t>(i)] = 0;
      const double xi = x[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(i)] = 0.0;
      if (xi != 0.0) {
        ++nza;
        a[static_cast<std::size_t>(nza)] = xi;
        colidx[static_cast<std::size_t>(nza)] = i;
      }
    }
    jajp1 = rowstr[static_cast<std::size_t>(j) + 1];
    rowstr[static_cast<std::size_t>(j) + 1] = nza + rowstr[1];
  }
}

}  // namespace

SparseMatrix make_nas_cg_matrix(const CgParams& params) {
  const int n = params.na;
  const int nonzer = params.nonzer;
  const double rcond = 0.1;  // NPB RCOND for every class
  const double shift = params.shift;
  // NPB NZ sizing: generous upper bound for the pre-merge triples.
  const int nz = n * (nonzer + 1) * (nonzer + 1) + n * (nonzer + 2);

  NasRngState rng;
  // NPB main consumes one deviate for the initial zeta before makea.
  (void)rng.next();

  std::vector<int> arow(static_cast<std::size_t>(nz) + 1, 0);
  std::vector<int> acol(static_cast<std::size_t>(nz) + 1, 0);
  std::vector<double> aelt(static_cast<std::size_t>(nz) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 2, 0.0);
  std::vector<int> iv(static_cast<std::size_t>(n) + 2, 0);
  std::vector<int> nzloc(static_cast<std::size_t>(n) + 2, 0);
  std::vector<int> mark(static_cast<std::size_t>(n) + 2, 0);

  const double ratio = std::pow(rcond, 1.0 / static_cast<double>(n));
  double size = 1.0;
  int nnza = 0;

  for (int iouter = 1; iouter <= n; ++iouter) {
    int nzv = nonzer;
    sprnvc(rng, n, nzv, v, iv, nzloc, mark);
    vecset(v, iv, &nzv, iouter, 0.5);
    for (int ivelt = 1; ivelt <= nzv; ++ivelt) {
      const int jcol = iv[static_cast<std::size_t>(ivelt)];
      const double scale = size * v[static_cast<std::size_t>(ivelt)];
      for (int ivelt1 = 1; ivelt1 <= nzv; ++ivelt1) {
        const int irow = iv[static_cast<std::size_t>(ivelt1)];
        ++nnza;
        PARADE_CHECK_MSG(nnza <= nz, "NAS makea overflow");
        acol[static_cast<std::size_t>(nnza)] = jcol;
        arow[static_cast<std::size_t>(nnza)] = irow;
        aelt[static_cast<std::size_t>(nnza)] =
            v[static_cast<std::size_t>(ivelt1)] * scale;
      }
    }
    size *= ratio;
  }

  // Add rcond*I - shift*I on the diagonal.
  for (int i = 1; i <= n; ++i) {
    ++nnza;
    PARADE_CHECK_MSG(nnza <= nz, "NAS makea overflow (diagonal)");
    acol[static_cast<std::size_t>(nnza)] = i;
    arow[static_cast<std::size_t>(nnza)] = i;
    aelt[static_cast<std::size_t>(nnza)] = rcond - shift;
  }

  std::vector<double> a(static_cast<std::size_t>(nz) + 1, 0.0);
  std::vector<int> colidx(static_cast<std::size_t>(nz) + 1, 0);
  std::vector<int> rowstr(static_cast<std::size_t>(n) + 2, 0);
  sparse(a, colidx, rowstr, n, arow, acol, aelt, nnza);

  // Convert 1-based CSR to the repository's 0-based SparseMatrix.
  SparseMatrix m;
  m.n = n;
  m.rowstr.resize(static_cast<std::size_t>(n) + 1);
  for (int j = 1; j <= n + 1; ++j) {
    m.rowstr[static_cast<std::size_t>(j) - 1] =
        rowstr[static_cast<std::size_t>(j)] - 1;
  }
  const int nnz = rowstr[static_cast<std::size_t>(n) + 1] - 1;
  m.colidx.resize(static_cast<std::size_t>(nnz));
  m.values.resize(static_cast<std::size_t>(nnz));
  for (int k = 1; k <= nnz; ++k) {
    m.colidx[static_cast<std::size_t>(k) - 1] =
        colidx[static_cast<std::size_t>(k)] - 1;
    m.values[static_cast<std::size_t>(k) - 1] = a[static_cast<std::size_t>(k)];
  }
  return m;
}

bool cg_reference_zeta(const CgParams& params, double* zeta) {
  if (params.niter != 15) return false;
  if (params.na == 1400 && params.nonzer == 7 && params.shift == 10.0) {
    *zeta = 8.5971775078648;  // class S
    return true;
  }
  if (params.na == 7000 && params.nonzer == 8 && params.shift == 12.0) {
    *zeta = 10.362595087124;  // class W
    return true;
  }
  if (params.na == 14000 && params.nonzer == 11 && params.shift == 20.0) {
    *zeta = 17.130235054029;  // class A
    return true;
  }
  return false;
}

}  // namespace parade::apps
