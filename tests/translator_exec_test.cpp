// Full-pipeline integration: translate OpenMP C programs, compile the output
// with the host compiler against the ParADE runtime, run them on a virtual
// cluster, and check their output. Paths come from the build system via
// PARADE_SOURCE_DIR / PARADE_BINARY_DIR compile definitions.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "translator/translate.hpp"

namespace parade::translator {
namespace {

namespace fs = std::filesystem;

std::string run_command(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  *exit_code = pclose(pipe);
  return output;
}

/// Translates `source`, compiles and runs it at the given cluster shape;
/// returns stdout.
std::string translate_compile_run(const std::string& name,
                                  const std::string& source, int nodes,
                                  int threads) {
  auto translated = translate_source(source);
  EXPECT_TRUE(translated.is_ok()) << translated.status().to_string();
  if (!translated.is_ok()) return "";

  const fs::path dir = fs::temp_directory_path() / "parade-xlat-test";
  fs::create_directories(dir);
  const fs::path cpp = dir / (name + ".cpp");
  const fs::path bin = dir / name;
  std::ofstream(cpp) << translated.value();

  const std::string src_dir = PARADE_SOURCE_DIR;
  const std::string bin_dir = PARADE_BINARY_DIR;
  const std::string compile =
      "g++ -std=c++20 -I " + src_dir + "/src -O1 -o " + bin.string() + " " +
      cpp.string() + " " + bin_dir + "/src/runtime/libparade_runtime.a " +
      bin_dir + "/src/dsm/libparade_dsm.a " + bin_dir +
      "/src/mp/libparade_mp.a " + bin_dir + "/src/net/libparade_net.a " +
      bin_dir + "/src/obs/libparade_obs.a " + bin_dir +
      "/src/vtime/libparade_vtime.a " + bin_dir +
      "/src/common/libparade_common.a -lpthread";
  int code = 0;
  const std::string compile_output = run_command(compile, &code);
  EXPECT_EQ(code, 0) << "compile failed:\n" << compile_output;
  if (code != 0) return "";

  const std::string run = "PARADE_NODES=" + std::to_string(nodes) +
                          " PARADE_THREADS=" + std::to_string(threads) + " " +
                          bin.string();
  const std::string output = run_command(run, &code);
  EXPECT_EQ(code, 0) << "run failed:\n" << output;
  return output;
}

TEST(TranslatorExec, PiReduction) {
  const char* source = R"(
#include <stdio.h>
static long num_steps = 100000;
double step;
int main() {
  double x, pi, sum = 0.0;
  long i;
  step = 1.0 / (double)num_steps;
#pragma omp parallel for private(x) reduction(+:sum)
  for (i = 0; i < num_steps; i++) {
    x = (i + 0.5) * step;
    sum = sum + 4.0 / (1.0 + x * x);
  }
  pi = step * sum;
  printf("pi=%.6f\n", pi);
  return 0;
}
)";
  const std::string out = translate_compile_run("pi", source, 2, 2);
  EXPECT_NE(out.find("pi=3.141593"), std::string::npos) << out;
}

TEST(TranslatorExec, SharedArrayStencilWithBarrier) {
  const char* source = R"(
#include <stdio.h>
double a[4096];
double b[4096];
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < 4096; i++) a[i] = i;
#pragma omp for
    for (i = 1; i < 4095; i++) b[i] = 0.5 * (a[i-1] + a[i+1]);
  }
  printf("b[1]=%.1f b[2048]=%.1f b[4094]=%.1f\n", b[1], b[2048], b[4094]);
  return 0;
}
)";
  const std::string out = translate_compile_run("stencil", source, 2, 2);
  EXPECT_NE(out.find("b[1]=1.0 b[2048]=2048.0 b[4094]=4094.0"),
            std::string::npos)
      << out;
}

TEST(TranslatorExec, AtomicCounter) {
  const char* source = R"(
#include <stdio.h>
int hits;
int main() {
  int i;
#pragma omp parallel for
  for (i = 0; i < 100; i++) {
#pragma omp atomic
    hits += 1;
  }
  printf("hits=%d\n", hits);
  return 0;
}
)";
  const std::string out = translate_compile_run("atomic", source, 2, 2);
  EXPECT_NE(out.find("hits=100"), std::string::npos) << out;
}

TEST(TranslatorExec, SingleAndMaster) {
  const char* source = R"(
#include <stdio.h>
double seed;
int main() {
#pragma omp parallel
  {
#pragma omp single
    seed = 1234.5;
#pragma omp master
    printf("seed=%.1f\n", seed);
  }
  return 0;
}
)";
  const std::string out = translate_compile_run("single", source, 3, 2);
  EXPECT_NE(out.find("seed=1234.5"), std::string::npos) << out;
}

TEST(TranslatorExec, CriticalFallbackLock) {
  // A critical section with control flow: not analyzable, must use the DSM
  // lock and still count correctly.
  const char* source = R"(
#include <stdio.h>
double values[512];
double maxv;
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp for
    for (i = 0; i < 512; i++) values[i] = (i * 37) % 101;
#pragma omp for
    for (i = 0; i < 512; i++) {
#pragma omp critical
      {
        if (values[i] > maxv) { maxv = values[i]; }
      }
    }
  }
  printf("max=%.1f\n", maxv);
  return 0;
}
)";
  const std::string out = translate_compile_run("critmax", source, 2, 2);
  EXPECT_NE(out.find("max=100.0"), std::string::npos) << out;
}

TEST(TranslatorExec, LastprivateAndFirstprivate) {
  const char* source = R"(
#include <stdio.h>
int main() {
  int i;
  double last = -1.0;
  double base = 10.0;
  double t = 0.0;
#pragma omp parallel
  {
#pragma omp for firstprivate(base) lastprivate(last) private(t)
    for (i = 0; i < 64; i++) {
      t = base + i;
      last = t;
    }
  }
  printf("last=%.1f\n", last);
  return 0;
}
)";
  const std::string out = translate_compile_run("lastpriv", source, 2, 2);
  EXPECT_NE(out.find("last=73.0"), std::string::npos) << out;
}

TEST(TranslatorExec, Sections) {
  const char* source = R"(
#include <stdio.h>
int a;
int b;
int main() {
#pragma omp parallel sections
  {
#pragma omp section
    a = 11;
#pragma omp section
    b = 22;
  }
  printf("a+b=%d\n", a + b);
  return 0;
}
)";
  const std::string out = translate_compile_run("sections", source, 2, 1);
  EXPECT_NE(out.find("a+b=33"), std::string::npos) << out;
}

TEST(TranslatorExec, GuidedScheduleLoop) {
  const char* source = R"(
#include <stdio.h>
double total;
int main() {
  int i;
#pragma omp parallel for schedule(guided) reduction(+:total)
  for (i = 1; i <= 1000; i++) {
    total += (double)i;
  }
  printf("total=%.0f\n", total);
  return 0;
}
)";
  const std::string out = translate_compile_run("guided", source, 2, 2);
  EXPECT_NE(out.find("total=500500"), std::string::npos) << out;
}


TEST(TranslatorExec, FullHelmholtzProgram) {
  // The real openmp.org-style Helmholtz program from the paper's evaluation,
  // straight through translate -> compile -> run, compared against the
  // library implementation's behaviour (residual shrinks, interior value
  // converges toward the exact solution u=(1-x^2)(1-y^2), which is 1.0 at
  // the grid center... for a 64x64 grid, u[32][32] is near the center).
  std::ifstream in(std::string(PARADE_SOURCE_DIR) +
                   "/tests/translator_inputs/helmholtz.c");
  ASSERT_TRUE(in.good());
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const std::string out = translate_compile_run("helmholtz", source, 2, 2);
  // 100 Jacobi sweeps on 64^2: residual must be small and the center value
  // must have moved well off zero toward ~0.94 (partial convergence).
  double residual = 1e9, center = 0.0;
  ASSERT_EQ(std::sscanf(out.c_str(), "residual=%lf\nu[32][32]=%lf", &residual,
                        &center),
            2)
      << out;
  EXPECT_LT(residual, 1e-4);
  EXPECT_GT(center, 0.05);  // 100 plain-Jacobi sweeps: partial convergence
  EXPECT_LT(center, 1.1);
}

TEST(TranslatorExec, OutputIdenticalAcrossClusterShapes) {
  // The same translated program must print identical results at different
  // cluster shapes (modulo nothing: integer arithmetic only).
  const char* source = R"(
#include <stdio.h>
long fib[64];
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp single
    { fib[0] = 0; fib[1] = 1; }
  }
  /* serial recurrence executed redundantly on every node */
  for (i = 2; i < 64; i++) fib[i] = fib[i-1] + fib[i-2];
  long total = 0;
#pragma omp parallel for reduction(+:total)
  for (i = 0; i < 64; i++) total += fib[i] % 1000003;
  printf("total=%ld\n", total);
  return 0;
}
)";
  const std::string a = translate_compile_run("shapes_a", source, 1, 1);
  const std::string b = translate_compile_run("shapes_b", source, 4, 2);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}


TEST(TranslatorExec, OmpLockApi) {
  const char* source = R"(
#include <stdio.h>
int total;
int main() {
  int i;
  omp_lock_t lock;
  omp_init_lock(&lock);
#pragma omp parallel for
  for (i = 0; i < 40; i++) {
    omp_set_lock(&lock);
    total = total + 1;
    omp_unset_lock(&lock);
  }
  omp_destroy_lock(&lock);
  printf("total=%d\n", total);
  return 0;
}
)";
  const std::string out = translate_compile_run("omplock", source, 2, 2);
  EXPECT_NE(out.find("total=40"), std::string::npos) << out;
}

TEST(TranslatorExec, ThreadprivateWithCopyin) {
  const char* source = R"(
#include <stdio.h>
double scratch;
#pragma omp threadprivate(scratch)
double result;
int main() {
  scratch = 3.5;  /* master's value, copied into every thread */
#pragma omp parallel copyin(scratch)
  {
#pragma omp critical
    result += scratch;
  }
  printf("result=%.1f\n", result);
  return 0;
}
)";
  const std::string out = translate_compile_run("tp", source, 2, 2);
  // 4 threads each contribute the copied-in 3.5.
  EXPECT_NE(out.find("result=14.0"), std::string::npos) << out;
}

}  // namespace
}  // namespace parade::translator
