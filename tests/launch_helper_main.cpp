// Helper binary for launch_test: joins a parade_run socket cluster, checks
// DSM propagation and a team reduction, prints one verdict line per node.
#include <cstdio>

#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace parade;
  auto runtime = ProcessRuntime::from_env();
  if (!runtime.is_ok()) {
    std::fprintf(stderr, "launch_helper: %s\n",
                 runtime.status().to_string().c_str());
    return 2;
  }
  bool ok = true;
  runtime.value()->exec([&] {
    auto* data = shmalloc_array<std::int64_t>(512);
    if (node_id() == 0) {
      for (int i = 0; i < 512; ++i) data[i] = 3 * i;
    }
    barrier();
    for (int i = 0; i < 512; ++i) {
      if (data[i] != 3 * i) ok = false;
    }
    double expected = 0.0;
    for (int t = 0; t < num_threads(); ++t) expected += t;
    parallel([&] {
      const double sum =
          team_reduce(static_cast<double>(thread_id()), mp::Op::kSum);
      if (sum != expected) ok = false;
    });
    // One verdict line per node; the test counts them.
    std::printf("node %d: %s\n", node_id(), ok ? "OK" : "BAD");
  });
  return ok ? 0 : 1;
}
