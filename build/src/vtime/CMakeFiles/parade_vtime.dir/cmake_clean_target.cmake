file(REMOVE_RECURSE
  "libparade_vtime.a"
)
