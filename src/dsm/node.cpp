#include "dsm/node.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "dsm/diff.hpp"
#include "dsm/sigsegv.hpp"

namespace parade::dsm {

// ---------------------------------------------------------------------------
// Critical-section dirty tracking (thread-local; a thread belongs to exactly
// one node, and page ids are node-relative).
namespace cs_tracking {
namespace {
thread_local int t_depth = 0;
thread_local std::vector<PageId> t_pages;
}  // namespace

void begin() { ++t_depth; }

void note_page(PageId page) {
  if (t_depth > 0) t_pages.push_back(page);
}

std::vector<PageId> end() {
  if (t_depth > 0) --t_depth;
  std::vector<PageId> pages;
  pages.swap(t_pages);
  return pages;
}

bool active() { return t_depth > 0; }
}  // namespace cs_tracking

// ---------------------------------------------------------------------------

DsmNode::DsmNode(net::Channel& channel, DsmConfig config)
    : channel_(channel), config_(config), stats_(channel.rank()) {}

void DsmNode::post(NodeId dst, Tag tag, std::vector<std::uint8_t> payload,
                   VirtualUs vtime) {
  Status s = channel_.send(dst, tag, std::move(payload), vtime);
  if (!s.is_ok()) {
    PLOG_WARN("dsm send tag " << tag << " to node " << dst
                              << " dropped: " << s.to_string());
  }
}

DsmNode::~DsmNode() { shutdown(); }

Status DsmNode::start() {
  PARADE_CHECK_MSG(!started_, "DsmNode already started");
  // Fresh metrics per cluster run: tests and benches build consecutive
  // virtual clusters in one process and assert exact protocol counts.
  obs::Registry::instance().reset_node(rank());
  auto mapping = DoubleMapping::create(config_.pool_bytes, config_.map_method);
  if (!mapping.is_ok()) return mapping.status();
  mapping_ = std::move(mapping).value();

  pages_ = std::make_unique<PageTable>(config_.num_pages(), /*initial_home=*/0);
  if (rank() == 0) {
    // The master starts as home of every page with a zero-filled, readable
    // copy; everyone else faults pages in on first access.
    if (Status s = mapping_->protect_app(0, config_.pool_bytes, PROT_READ); !s) {
      return s;
    }
    for (std::size_t p = 0; p < config_.num_pages(); ++p) {
      pages_->entry(static_cast<PageId>(p)).state = PageState::kReadOnly;
    }
  }

  sigsegv::ensure_installed();
  sigsegv::register_range(mapping_->app_view(), config_.pool_bytes, this);
  comm_thread_ = std::thread([this] { comm_loop(); });
  started_ = true;
  return Status::ok();
}

void DsmNode::shutdown() {
  if (!started_) return;
  started_ = false;
  // Benign failure: the comm thread may already have exited on mailbox close.
  (void)channel_.send(rank(), kTagShutdown, {}, 0.0);
  if (comm_thread_.joinable()) comm_thread_.join();
  sigsegv::unregister_range(mapping_->app_view());
}

void* DsmNode::shmalloc(std::size_t bytes, std::size_t align) {
  std::lock_guard lock(alloc_mutex_);
  PARADE_CHECK_MSG(align > 0 && (align & (align - 1)) == 0,
                   "alignment must be a power of two");
  alloc_offset_ = (alloc_offset_ + align - 1) & ~(align - 1);
  PARADE_CHECK_MSG(alloc_offset_ + bytes <= config_.pool_bytes,
                   "shared pool exhausted");
  void* p = mapping_->app_view() + alloc_offset_;
  alloc_offset_ += bytes;
  return p;
}

std::size_t DsmNode::offset_of(const void* p) const {
  const auto* byte_ptr = static_cast<const std::byte*>(p);
  PARADE_CHECK(byte_ptr >= mapping_->app_view() &&
               byte_ptr < mapping_->app_view() + config_.pool_bytes);
  return static_cast<std::size_t>(byte_ptr - mapping_->app_view());
}

std::byte* DsmNode::sys_page(PageId page) const {
  return mapping_->sys_view() +
         static_cast<std::size_t>(page) * config_.page_bytes;
}

void DsmNode::protect(PageId page, int prot) {
  Status s = mapping_->protect_app(
      static_cast<std::size_t>(page) * config_.page_bytes, config_.page_bytes,
      prot);
  PARADE_CHECK_MSG(s.is_ok(), s.message());
}

// ---------------------------------------------------------------------------
// Fault path

bool DsmNode::handle_fault(void* addr, bool is_write) {
  const auto* byte_ptr = static_cast<const std::byte*>(addr);
  if (byte_ptr < mapping_->app_view() ||
      byte_ptr >= mapping_->app_view() + config_.pool_bytes) {
    return false;
  }
  const PageId page = static_cast<PageId>(
      static_cast<std::size_t>(byte_ptr - mapping_->app_view()) /
      config_.page_bytes);
  PageEntry& entry = pages_->entry(page);
  std::unique_lock lock(entry.mutex);

  if (is_write) {
    stats_.inc_write_faults();
  } else {
    stats_.inc_read_faults();
  }

  for (;;) {
    switch (entry.state) {
      case PageState::kInvalid:
        fetch_page(page, lock, entry);
        continue;  // re-dispatch (a write fault still needs the upgrade)

      case PageState::kTransient:
        entry.state = PageState::kBlocked;
        [[fallthrough]];
      case PageState::kBlocked:
        entry.cv.wait(lock, [&] {
          return entry.state == PageState::kReadOnly ||
                 entry.state == PageState::kDirty;
        });
        if (auto* clock = vtime::thread_clock()) {
          clock->sync_cpu();
          clock->merge(entry.ready_vtime);
        }
        continue;

      case PageState::kReadOnly:
        if (!is_write) return true;  // fetch completed; retry will succeed
        upgrade_to_dirty(page, entry);
        return true;

      case PageState::kDirty:
        return true;  // another thread already upgraded
    }
  }
}

void DsmNode::fetch_page(PageId page, std::unique_lock<std::mutex>& lock,
                         PageEntry& entry) {
  entry.state = PageState::kTransient;
  const NodeId home = entry.home;
  PARADE_CHECK_MSG(home != rank(), "home node must never fault INVALID");
  lock.unlock();

  stats_.inc_page_fetches();
  VirtualUs stamp = 0.0;
  auto* clock = vtime::thread_clock();
  if (clock != nullptr) {
    clock->sync_cpu();
    clock->add(config_.net.send_overhead_us);
    stamp = clock->now();
  }
  post(home, kTagPageRequest, codec<PageRequestMsg>::encode({page}), stamp);

  lock.lock();
  entry.cv.wait(lock, [&] {
    return entry.state == PageState::kReadOnly ||
           entry.state == PageState::kDirty;
  });
  if (clock != nullptr) {
    clock->sync_cpu();
    clock->merge(entry.ready_vtime);
  }
}

void DsmNode::upgrade_to_dirty(PageId page, PageEntry& entry) {
  if (entry.home != rank()) {
    // Non-home writers keep a twin so the flush can diff (§5.2.1: the home
    // itself needs no twin — all diffs merge into its copy).
    entry.twin.resize(config_.page_bytes);
    std::memcpy(entry.twin.data(), sys_page(page), config_.page_bytes);
    stats_.inc_twins_created();
  }
  protect(page, PROT_READ | PROT_WRITE);
  entry.state = PageState::kDirty;
  {
    std::lock_guard dirty_lock(dirty_mutex_);
    dirty_now_.push_back(page);
    interval_dirty_.insert(page);
  }
  cs_tracking::note_page(page);
}

// ---------------------------------------------------------------------------
// Flush

std::vector<PageId> DsmNode::drain_dirty_now() {
  std::lock_guard lock(dirty_mutex_);
  std::vector<PageId> pages;
  pages.swap(dirty_now_);
  return pages;
}

void DsmNode::flush_pages(const std::vector<PageId>& pages) {
  if (pages.empty()) return;
  std::lock_guard flush_lock(flush_mutex_);
  auto* clock = vtime::thread_clock();

  int pending_acks = 0;
  for (const PageId page : pages) {
    PageEntry& entry = pages_->entry(page);
    std::unique_lock lock(entry.mutex);
    if (entry.state != PageState::kDirty) continue;  // already flushed

    if (entry.home == rank()) {
      protect(page, PROT_READ);
      entry.state = PageState::kReadOnly;
      continue;
    }

    auto diff = encode_diff(
        reinterpret_cast<const std::uint8_t*>(sys_page(page)),
        entry.twin.data(), config_.page_bytes);
    entry.twin.clear();
    entry.twin.shrink_to_fit();
    protect(page, PROT_READ);
    entry.state = PageState::kReadOnly;
    const NodeId home = entry.home;
    lock.unlock();

    if (diff.empty()) continue;  // page written but unchanged
    stats_.inc_diffs_created();
    stats_.inc_diff_bytes_sent(static_cast<std::int64_t>(diff.size()));
    VirtualUs stamp = 0.0;
    if (clock != nullptr) {
      clock->sync_cpu();
      clock->add(config_.net.send_overhead_us);
      stamp = clock->now();
    }
    post(home, kTagDiff, codec<DiffMsg>::encode({page, std::move(diff)}),
         stamp);
    ++pending_acks;
  }

  for (int i = 0; i < pending_acks; ++i) {
    auto ack = channel_.inbox().recv_match(
        [](const net::MessageHeader& h) { return h.tag == kTagDiffAck; });
    PARADE_CHECK_MSG(ack.has_value(), "channel closed waiting for diff ack");
    if (clock != nullptr) {
      clock->sync_cpu();
      clock->merge(ack->header.vtime +
                   config_.net.transfer_us(ack->payload.size()));
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier (one caller per node)

void DsmNode::barrier() {
  auto* clock = vtime::thread_clock();
  if (clock != nullptr) clock->sync_cpu();

  flush_pages(drain_dirty_now());

  BarrierArriveMsg arrive;
  arrive.epoch = epoch_;
  {
    std::lock_guard lock(dirty_mutex_);
    arrive.dirtied_pages.assign(interval_dirty_.begin(), interval_dirty_.end());
    interval_dirty_.clear();
  }
  stats_.inc_write_notices_sent(
      static_cast<std::int64_t>(arrive.dirtied_pages.size()));

  // Communication-thread CPU spent this phase either overlapped (dedicated
  // CPU) or serialized with computation (paper's 1T-1CPU / 2T-2CPU).
  const VirtualUs phase_comm = comm_ledger_.drain_phase();
  if (clock != nullptr && !config_.machine.comm_thread_dedicated()) {
    clock->add(phase_comm);
  }

  if (rank() == 0) {
    master_barrier(arrive, clock);
  } else {
    VirtualUs stamp = 0.0;
    if (clock != nullptr) {
      clock->add(config_.net.send_overhead_us);
      stamp = clock->now();
    }
    post(0, kTagBarrierArrive, codec<BarrierArriveMsg>::encode(arrive), stamp);
    auto msg = channel_.inbox().recv_match(
        [](const net::MessageHeader& h) { return h.tag == kTagBarrierDepart; });
    PARADE_CHECK_MSG(msg.has_value(), "channel closed during barrier");
    BarrierDepartMsg depart = codec<BarrierDepartMsg>::decode(msg->payload);
    PARADE_CHECK(depart.epoch == epoch_);
    if (clock != nullptr) {
      clock->merge(depart.departure_vtime +
                   config_.net.transfer_us(msg->payload.size()));
    }
    process_departure(depart);
  }

  stats_.inc_barriers();
  auto& reg = obs::Registry::instance();
  reg.close_epoch(rank(), epoch_);
  if (reg.trace_enabled()) {
    reg.emit(obs::TraceKind::kBarrier, rank(), kTagBarrierArrive,
             clock != nullptr ? clock->now() : 0.0);
  }
  ++epoch_;
  if (clock != nullptr) clock->discard_cpu();
}

void DsmNode::master_barrier(const BarrierArriveMsg& own,
                             vtime::ThreadClock* clock) {
  // page -> modifiers this interval.
  std::unordered_map<PageId, std::vector<NodeId>> modifiers;
  for (const PageId page : own.dirtied_pages) modifiers[page].push_back(0);

  VirtualUs latest = clock != nullptr ? clock->now() : 0.0;
  for (int i = 1; i < size(); ++i) {
    auto msg = channel_.inbox().recv_match(
        [](const net::MessageHeader& h) { return h.tag == kTagBarrierArrive; });
    PARADE_CHECK_MSG(msg.has_value(), "channel closed during barrier gather");
    const BarrierArriveMsg arr = codec<BarrierArriveMsg>::decode(msg->payload);
    PARADE_CHECK_MSG(arr.epoch == epoch_, "barrier epoch mismatch");
    latest = std::max(latest, msg->header.vtime +
                                  config_.net.transfer_us(msg->payload.size()));
    for (const PageId page : arr.dirtied_pages) {
      modifiers[page].push_back(msg->header.src);
    }
  }

  BarrierDepartMsg depart;
  depart.epoch = epoch_;
  depart.entries.reserve(modifiers.size());
  for (const auto& [page, mods] : modifiers) {
    DepartEntry entry;
    entry.page = page;
    const NodeId home = pages_->home_of(page);
    if (mods.size() == 1) {
      // §5.2.2: a unique modifier becomes the new home (if migration is on).
      entry.sole_modifier = mods.front();
      entry.new_home = config_.home_migration ? mods.front() : home;
      if (entry.new_home != home) stats_.inc_home_migrations();
    } else {
      // Several modifiers: only the old home holds the merged page, and the
      // paper gives the current home the highest retention priority.
      entry.sole_modifier = kAnyNode;
      entry.new_home = home;
    }
    depart.entries.push_back(entry);
  }

  latest += config_.net.recv_overhead_us;  // master-side gather processing
  depart.departure_vtime = latest;
  const auto payload = codec<BarrierDepartMsg>::encode(depart);
  for (int i = 1; i < size(); ++i) {
    post(i, kTagBarrierDepart, payload, latest);
  }
  if (clock != nullptr) clock->merge(latest);
  process_departure(depart);
}

void DsmNode::process_departure(const BarrierDepartMsg& msg) {
  for (const DepartEntry& e : msg.entries) {
    PageEntry& entry = pages_->entry(e.page);
    std::lock_guard lock(entry.mutex);
    const NodeId old_home = entry.home;
    entry.home = e.new_home;

    // Keep the copy when it is provably current: we are the new home, we
    // were the old home (all diffs merged into us), or we were the interval's
    // only modifier.
    const bool keep = e.new_home == rank() || old_home == rank() ||
                      e.sole_modifier == rank();
    if (keep) continue;
    if (entry.state == PageState::kReadOnly ||
        entry.state == PageState::kDirty) {
      entry.twin.clear();
      entry.twin.shrink_to_fit();
      protect(e.page, PROT_NONE);
      entry.state = PageState::kInvalid;
      stats_.inc_invalidations();
    }
  }
}

// ---------------------------------------------------------------------------
// DSM locks (conventional-SDSM path)

void DsmNode::lock_acquire(int lock_id) {
  PARADE_CHECK_MSG(lock_id >= 0 && lock_id < kMaxDsmLocks, "lock id range");
  stats_.inc_lock_acquires();
  const NodeId home = static_cast<NodeId>(lock_id % size());
  auto* clock = vtime::thread_clock();
  VirtualUs stamp = 0.0;
  if (clock != nullptr) {
    clock->sync_cpu();
    clock->add(config_.net.send_overhead_us);
    stamp = clock->now();
  }
  post(home, kTagLockAcquire, codec<LockAcquireMsg>::encode({lock_id}), stamp);

  auto msg = channel_.inbox().recv_match([&](const net::MessageHeader& h) {
    return h.tag == kTagLockGrantBase + lock_id;
  });
  PARADE_CHECK_MSG(msg.has_value(), "channel closed during lock acquire");
  const LockGrantMsg grant = codec<LockGrantMsg>::decode(msg->payload);
  if (clock != nullptr) {
    clock->sync_cpu();
    clock->merge(msg->header.vtime +
                 config_.net.transfer_us(msg->payload.size()));
  }

  // Lazy-release consistency, conservatively: invalidate every cached page
  // another node modified under this lock so the critical section sees the
  // most up-to-date values.
  for (const WriteNotice& notice : grant.notices) {
    if (notice.modifier == rank()) continue;
    PageEntry& entry = pages_->entry(notice.page);
    std::lock_guard lock(entry.mutex);
    if (entry.home == rank()) continue;  // diffs were merged into us
    if (entry.state == PageState::kReadOnly) {
      protect(notice.page, PROT_NONE);
      entry.state = PageState::kInvalid;
      stats_.inc_invalidations();
    }
  }

  cs_tracking::begin();
}

void DsmNode::lock_release(int lock_id) {
  PARADE_CHECK_MSG(lock_id >= 0 && lock_id < kMaxDsmLocks, "lock id range");
  std::vector<PageId> cs_pages = cs_tracking::end();
  // Dedup (a page may fault several times across nested sections).
  std::sort(cs_pages.begin(), cs_pages.end());
  cs_pages.erase(std::unique(cs_pages.begin(), cs_pages.end()),
                 cs_pages.end());
  flush_pages(cs_pages);

  const NodeId home = static_cast<NodeId>(lock_id % size());
  auto* clock = vtime::thread_clock();
  VirtualUs stamp = 0.0;
  if (clock != nullptr) {
    clock->sync_cpu();
    clock->add(config_.net.send_overhead_us);
    stamp = clock->now();
  }
  post(home, kTagLockRelease,
       codec<LockReleaseMsg>::encode({lock_id, std::move(cs_pages)}), stamp);
}

// ---------------------------------------------------------------------------
// Communication thread

void DsmNode::comm_loop() {
  logging::set_thread_node_tag(rank());
  for (;;) {
    auto msg = channel_.inbox().recv_match(
        [](const net::MessageHeader& h) { return comm_thread_tag(h.tag); });
    if (!msg.has_value()) break;  // mailbox closed

    comm_clock_.merge(msg->header.vtime +
                      config_.net.transfer_us(msg->payload.size()));
    comm_clock_.add(config_.net.recv_overhead_us);
    comm_ledger_.charge(config_.net.recv_overhead_us);

    switch (msg->header.tag) {
      case kTagShutdown:
        return;
      case kTagPageRequest:
        serve_page_request(*msg);
        break;
      case kTagPageReply:
        install_page(*msg);
        break;
      case kTagDiff:
        apply_incoming_diff(*msg);
        break;
      case kTagLockAcquire:
        lock_manager_acquire(*msg);
        break;
      case kTagLockRelease:
        lock_manager_release(*msg);
        break;
      default:
        PLOG_WARN("comm thread ignoring tag " << msg->header.tag);
    }
  }
}

void DsmNode::serve_page_request(const net::Message& message) {
  const PageRequestMsg request = codec<PageRequestMsg>::decode(message.payload);
  stats_.inc_page_serves();
  comm_clock_.add(config_.net.page_service_us + config_.net.send_overhead_us);
  comm_ledger_.charge(config_.net.page_service_us +
                      config_.net.send_overhead_us);

  PageReplyMsg reply;
  reply.page = request.page;
  reply.data.resize(config_.page_bytes);
  {
    // The serving copy is read through the system view; the home invariant
    // (see DESIGN.md) guarantees it is current.
    PageEntry& entry = pages_->entry(request.page);
    std::lock_guard lock(entry.mutex);
    std::memcpy(reply.data.data(), sys_page(request.page), config_.page_bytes);
  }
  post(message.header.src, kTagPageReply,
       codec<PageReplyMsg>::encode(std::move(reply)), comm_clock_.now());
}

void DsmNode::install_page(const net::Message& message) {
  PageReplyMsg reply = codec<PageReplyMsg>::decode(message.payload);
  PARADE_CHECK(reply.data.size() == config_.page_bytes);
  PageEntry& entry = pages_->entry(reply.page);
  std::lock_guard lock(entry.mutex);
  PARADE_CHECK_MSG(entry.state == PageState::kTransient ||
                       entry.state == PageState::kBlocked,
                   "unexpected page reply");
  // Atomic page update (§5.1): write through the always-writable system view
  // first, only then open the application view.
  std::memcpy(sys_page(reply.page), reply.data.data(), config_.page_bytes);
  protect(reply.page, PROT_READ);
  entry.ready_vtime = message.header.vtime +
                      config_.net.transfer_us(message.payload.size()) +
                      config_.net.recv_overhead_us;
  entry.state = PageState::kReadOnly;
  entry.cv.notify_all();
}

void DsmNode::apply_incoming_diff(const net::Message& message) {
  const DiffMsg diff = codec<DiffMsg>::decode(message.payload);
  stats_.inc_diffs_applied();
  comm_clock_.add(config_.net.page_service_us);
  comm_ledger_.charge(config_.net.page_service_us);
  {
    PageEntry& entry = pages_->entry(diff.page);
    std::lock_guard lock(entry.mutex);
    const bool ok =
        apply_diff(reinterpret_cast<std::uint8_t*>(sys_page(diff.page)),
                   config_.page_bytes, diff.diff.data(), diff.diff.size());
    PARADE_CHECK_MSG(ok, "malformed diff");
  }
  post(message.header.src, kTagDiffAck,
       codec<DiffAckMsg>::encode({diff.page}), comm_clock_.now());
}

void DsmNode::send_grant(NodeId to, std::int32_t lock_id) {
  ManagedLock& managed = managed_locks_[lock_id];
  LockGrantMsg grant;
  grant.lock_id = lock_id;
  grant.notices.reserve(managed.notices.size());
  for (const auto& [page, modifier] : managed.notices) {
    grant.notices.push_back(WriteNotice{page, modifier});
  }
  if (to != rank()) stats_.inc_lock_remote_grants();
  comm_clock_.add(config_.net.send_overhead_us);
  comm_ledger_.charge(config_.net.send_overhead_us);
  post(to, kTagLockGrantBase + grant.lock_id,
       codec<LockGrantMsg>::encode(std::move(grant)), comm_clock_.now());
}

void DsmNode::lock_manager_acquire(const net::Message& message) {
  const LockAcquireMsg request = codec<LockAcquireMsg>::decode(message.payload);
  ManagedLock& managed = managed_locks_[request.lock_id];
  if (!managed.held) {
    managed.held = true;
    managed.holder = message.header.src;
    send_grant(message.header.src, request.lock_id);
  } else {
    managed.waiters.push_back(message.header.src);
  }
}

void DsmNode::lock_manager_release(const net::Message& message) {
  const LockReleaseMsg release = codec<LockReleaseMsg>::decode(message.payload);
  ManagedLock& managed = managed_locks_[release.lock_id];
  for (const PageId page : release.dirtied_pages) {
    managed.notices[page] = message.header.src;
  }
  if (!managed.waiters.empty()) {
    const NodeId next = managed.waiters.front();
    managed.waiters.erase(managed.waiters.begin());
    managed.holder = next;
    send_grant(next, release.lock_id);
  } else {
    managed.held = false;
    managed.holder = kAnyNode;
  }
}

}  // namespace parade::dsm
