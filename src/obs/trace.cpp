#include "obs/trace.hpp"

namespace parade::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend: return "send";
    case TraceKind::kRecv: return "recv";
    case TraceKind::kBarrier: return "barrier";
    case TraceKind::kLock: return "lock";
    case TraceKind::kPageFault: return "page_fault";
    case TraceKind::kRegion: return "region";
    case TraceKind::kCollective: return "collective";
    case TraceKind::kPageServe: return "page_serve";
    case TraceKind::kLockServe: return "lock_serve";
  }
  return "unknown";
}

std::vector<TraceEvent> TraceRing::drain() const {
  const std::uint64_t total = emitted();
  const std::uint64_t count =
      total < slots_.size() ? total : static_cast<std::uint64_t>(slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(count);
  const std::uint64_t first = total - count;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(slots_[(first + i) % slots_.size()]);
  }
  return out;
}

}  // namespace parade::obs
