// Explicit-state model of the HLRC/migratory-home DSM protocol.
//
// The model is a small-world abstraction of src/dsm/node.cpp: N nodes (2-4),
// P pages (1-2), T threads per node, B barrier intervals, a barrier-tree
// fan-out (0 = flat), with every protocol *decision* delegated to the exact
// rule functions the live engine uses (dsm/rules.hpp) — the checker explores
// the same code that ships. Tree barriers reuse the flat machinery per edge:
// every node with children runs the gather protocol against its children and
// the non-root nodes forward one aggregated arrival to their parent.
// What the model abstracts away is data representation: a page copy is
// summarized as (base, contribs) — the barrier-stable version it derives
// from plus the bitmask of nodes whose current-interval writes are merged
// into it. Word-disjoint diff merges become contribs-mask unions; a copy is
// provably current when its base matches the page's stable version (or it
// carries every contribution of the just-closed interval). Virtual time and
// retry timers collapse to nondeterministic resend actions.
//
// The network is a multiset of in-flight messages; delivery picks any of
// them, which subsumes arbitrary reordering. Message drop and duplication
// from PR 2's fault model are explicit transitions gated by a per-run
// budget, so faulty executions are explored exhaustively up to that budget.
//
// Invariants checked (see docs/MODEL_CHECKING.md for the full table):
//   fig5.edge            every state change is a legal Figure 5 edge
//   home.agreement       all nodes agree on every page's home at each
//                        interval boundary (at most one home per interval)
//   home.holds_copy      the agreed home holds an installed copy
//   home.current         that copy carries the latest stable version
//   home.serves_current  live page requests are served from a current copy
//   diff.flushed         at departure time every write-noticed page's diffs
//                        have merged into the pre-migration home
//   diff.at_non_copy     diffs only merge into installed, current copies
//   dedup.double_apply   a (src, seq) diff never applies twice
//   read.stale           no thread reads a copy older than the last
//                        barrier-stable version
//   write.stale_base     no write upgrades a stale base copy
//   barrier.epoch        arrivals/departures only for plausible epochs
//   deadlock             every non-final state has an enabled action
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/topology.hpp"
#include "common/types.hpp"
#include "dsm/rules.hpp"

namespace parade::verify {

namespace rules = parade::dsm::rules;
using parade::dsm::PageState;

// ---------------------------------------------------------------------------
// Scenario: the small configuration to explore.

/// One thread-program step: read or write one page.
struct Op {
  bool write = false;
  PageId page = 0;
};

/// Per-thread program: ops[interval] is the op list the thread executes in
/// that interval before it joins the barrier.
struct ThreadProgram {
  std::vector<std::vector<Op>> ops;
};

struct Scenario {
  std::string name;
  std::string description;
  int nodes = 2;
  int pages = 1;
  int intervals = 1;
  bool home_migration = true;
  /// Barrier-tree fan-out (Topology semantics: <= 0 is the flat barrier,
  /// where the root parents every other node). Interior nodes gather their
  /// children's aggregated arrivals and forward one merged arrival up.
  int fanout = 0;
  /// Initial home placement: false pins every page to node 0 (the legacy
  /// directory), true uses rules::default_home's page -> page % nodes shard.
  bool sharded_homes = false;
  /// Fault budget folded into the transition relation: how many messages
  /// may be dropped / duplicated across one execution.
  int drop_budget = 0;
  int dup_budget = 0;
  /// programs[node][thread]; all nodes must list at least one thread.
  std::vector<std::vector<ThreadProgram>> programs;
};

/// The standard small configurations (CI runs every one of these to a
/// fixed point; the mutation runner searches them for counterexamples).
const std::vector<Scenario>& standard_scenarios();
const Scenario* find_scenario(const std::string& name);

// ---------------------------------------------------------------------------
// Messages.

enum class MsgKind : std::uint8_t {
  kPageRequest,
  kPageReply,
  kDiff,
  kDiffAck,
  kBarrierArrive,
  kBarrierDepart,
};

const char* to_string(MsgKind kind);
std::optional<MsgKind> msg_kind_from_name(const std::string& name);

struct DepartEntryM {
  PageId page = 0;
  NodeId new_home = 0;
  NodeId sole_modifier = kAnyNode;
  std::uint8_t modifiers = 0;  ///< bitmask of nodes that wrote the page

  auto operator<=>(const DepartEntryM&) const = default;
};

struct Msg {
  MsgKind kind = MsgKind::kPageRequest;
  NodeId src = 0;
  NodeId dst = 0;
  PageId page = -1;
  std::uint16_t seq = 0;
  std::uint16_t base = 0;  ///< payload: copy's stable base (reply/diff)
  std::uint8_t epoch = 0;  ///< barrier messages
  /// Reply/diff: contribs bitmask of the copy; arrive: write-notice page
  /// bitmask.
  std::uint8_t mask = 0;
  /// Depart: migration decisions. Arrive: the sending subtree's per-page
  /// modifier attribution (page + modifiers fields only) — an interior
  /// gather node cannot recover who-wrote-what from the union mask alone.
  std::vector<DepartEntryM> entries;

  /// Identity used by trace actions to name a message. Excludes `mask` and
  /// `entries`, which are functionally determined by the rest within one
  /// execution (up to equivalent payloads; ties resolve in sorted order).
  auto key() const { return std::tie(kind, src, dst, page, seq, epoch, base); }

  auto operator<=>(const Msg&) const = default;
};

// ---------------------------------------------------------------------------
// State.

struct PageView {
  PageState state = PageState::kInvalid;
  NodeId home = 0;
  std::uint16_t fetch_seq = 0;
  std::uint16_t base = 0;     ///< stable version this copy derives from
  std::uint8_t contribs = 0;  ///< current-interval writes merged in (mask)

  auto operator<=>(const PageView&) const = default;
};

struct ThreadM {
  std::uint8_t pc = 0;          ///< ops completed in the open interval
  std::int8_t waiting_page = -1;  ///< >= 0: parked on that page's fetch
  bool in_barrier = false;

  auto operator<=>(const ThreadM&) const = default;
};

struct PendingDiff {
  PageId page = 0;
  std::uint16_t seq = 0;
  std::uint16_t base = 0;
  std::uint8_t contribs = 0;
  NodeId dst = 0;

  auto operator<=>(const PendingDiff&) const = default;
};

enum class NodePhase : std::uint8_t {
  kComputing,  ///< threads executing ops
  kFlushing,   ///< all threads in barrier; diffs await acks
  kArrived,    ///< own arrival done; gathering children / awaiting depart
  kDone,       ///< final interval closed
};

const char* to_string(NodePhase phase);

struct NodeM {
  std::vector<PageView> pages;
  std::vector<ThreadM> threads;
  NodePhase phase = NodePhase::kComputing;
  std::uint8_t epoch = 0;
  std::uint8_t dirty = 0;           ///< DIRTY page bitmask
  std::uint8_t interval_dirty = 0;  ///< open interval's write notices
  std::uint16_t next_seq = 0;
  std::vector<PendingDiff> pending;  ///< diffs awaiting ack (flush order)
  std::set<std::uint64_t> diff_seen;  ///< merged (src,seq) keys (home role)
  // Barrier gather state, live on every node with tree children (in flat
  // mode that is just the root). arrivals maps a direct child to its
  // subtree's per-page modifier masks.
  std::map<NodeId, std::vector<std::uint8_t>> arrivals;
  std::int16_t last_depart_epoch = -1;      ///< -1: nothing closed yet
  std::vector<DepartEntryM> last_entries;

  auto operator<=>(const NodeM&) const = default;
};

struct State {
  std::vector<NodeM> nodes;
  std::vector<Msg> net;  ///< in-flight multiset, kept sorted
  std::vector<std::uint16_t> stable_ver;  ///< per page: closed-barrier version
  std::vector<std::uint8_t> wrote;        ///< per page: open-interval writers
  std::vector<std::uint8_t> last_wrote;   ///< per page: last closed interval's
                                          ///< writers (for lazy rebase)
  std::uint8_t drops_left = 0;
  std::uint8_t dups_left = 0;

  auto operator<=>(const State&) const = default;
};

// ---------------------------------------------------------------------------
// Actions.

enum class ActionKind : std::uint8_t {
  kThreadStep,    ///< node/thread executes its next op (or joins barrier)
  kDeliver,       ///< deliver one in-flight message (any order = reorder)
  kDrop,          ///< lose one in-flight message (budget)
  kDup,           ///< duplicate one in-flight message (budget)
  // Retransmissions model timeout recovery: they are enabled only when the
  // exchange is genuinely stuck (neither the message nor its response is in
  // flight). A retransmission racing its own original behaves exactly like
  // a duplicate, which the dup budget already explores.
  kResendFetch,   ///< fetch initiator retransmits its PageRequest
  kResendDiff,    ///< flusher retransmits an unacked Diff
  kResendArrive,  ///< node retransmits its aggregated BarrierArrive upward
  kMasterDepart,  ///< root closes the epoch and sends departures down
};

struct Action {
  ActionKind kind = ActionKind::kThreadStep;
  NodeId node = -1;
  int thread = -1;
  PageId page = -1;
  std::uint16_t seq = 0;
  /// Message identity for kDeliver/kDrop/kDup.
  MsgKind mkind = MsgKind::kPageRequest;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint16_t mbase = 0;
  std::uint8_t epoch = 0;

  auto operator<=>(const Action&) const = default;
};

/// One line of a counterexample trace, e.g.
/// "deliver page-reply src=0 dst=1 page=0 seq=1 epoch=0 base=2".
std::string to_string(const Action& action);
std::optional<Action> parse_action(const std::string& line);

struct Violation {
  std::string invariant;
  std::string detail;
};

// ---------------------------------------------------------------------------
// The model.

class Model {
 public:
  Model(Scenario scenario, rules::Mutation mutation);

  const Scenario& scenario() const { return scenario_; }
  rules::Mutation mutation() const { return mutation_; }

  State initial() const;
  /// All nodes closed their final interval (lingering reliability traffic
  /// may remain in flight; it is unobservable).
  bool done(const State& state) const;
  std::vector<Action> enabled(const State& state) const;
  /// True when `action` can fire in `state` (used by trace replay; the
  /// explorer only applies actions it enumerated itself).
  bool applicable(const State& state, const Action& action) const;
  /// Applies `action` in place (followed by inert-message collection).
  /// Returns the first invariant violation the step produced, if any.
  std::optional<Violation> apply(State& state, const Action& action) const;
  /// Canonical byte encoding for state hashing.
  std::string encode(const State& state) const;

 private:
  std::optional<Violation> apply_action(State& state,
                                        const Action& action) const;
  std::optional<Violation> thread_step(State& state, NodeId node,
                                       int thread) const;
  std::optional<Violation> start_flush(State& state, NodeId node) const;
  void arrive(State& state, NodeId node) const;
  /// Sends the aggregated arrival up the tree once `node` has arrived itself
  /// and recorded every direct child's subtree (no-op at the root, whose
  /// completion enables kMasterDepart instead).
  void maybe_forward_arrival(State& state, NodeId node) const;
  /// Per-page modifier masks of `node`'s whole subtree: its own open-interval
  /// notices merged with every recorded child arrival.
  std::vector<std::uint8_t> subtree_notices(const State& state,
                                            NodeId node) const;
  /// The aggregated BarrierArrive `node` sends to its parent (also used by
  /// kResendArrive, which must rebuild an identical message).
  Msg build_arrive(const State& state, NodeId node) const;
  std::optional<Violation> master_depart(State& state) const;
  std::optional<Violation> process_depart(
      State& state, NodeId node, std::uint8_t closed_epoch,
      const std::vector<DepartEntryM>& entries) const;
  std::optional<Violation> interval_boundary_checks(
      const State& state, std::uint8_t closed_epoch) const;
  std::optional<Violation> deliver(State& state, const Msg& msg) const;
  std::optional<Violation> set_state(PageView& view, NodeId node, PageId page,
                                     PageState to) const;

  void send(State& state, Msg msg) const;
  int count_in_net(const State& state, const Msg& msg) const;
  /// True when delivering `msg` is a no-op now and forever (seq/epoch
  /// counters are monotonic, so staleness is permanent). Only used with
  /// unmutated rules — mutations deliberately make stale messages bite.
  bool inert(const State& state, const Msg& msg) const;
  /// Drops inert messages after every transition (sound state merging:
  /// an inert message's only remaining effect is its own removal).
  void gc_net(State& state) const;
  /// True when the copy provably carries every write up to the last closed
  /// barrier (current base, or last-interval-complete and not yet rebased).
  bool copy_current(const State& state, const PageView& view,
                    PageId page) const;
  /// Eagerly applies the post-barrier rebase a copy is entitled to. Covers
  /// the window where a node serves a fetch after the master closed the
  /// barrier but before the node processed its own departure.
  void normalize(const State& state, PageView& view, PageId page) const;
  /// `node`'s place in the scenario's barrier tree.
  Topology topo_of(NodeId node) const {
    return Topology{node, scenario_.nodes, scenario_.fanout};
  }

  Scenario scenario_;
  rules::Mutation mutation_;
};

}  // namespace parade::verify
