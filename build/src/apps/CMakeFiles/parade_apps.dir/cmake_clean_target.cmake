file(REMOVE_RECURSE
  "libparade_apps.a"
)
