// Shared plumbing for the figure-reproduction benches: node sweeps, the
// paper's three node configurations, and aligned table output.
//
// Every bench prints virtual-time results (direct-execution simulation; see
// DESIGN.md) as a series table with one row per node count, matching the
// x-axis of the paper's Figures 6-11.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "runtime/cluster.hpp"
#include "vtime/cost_model.hpp"

namespace parade::bench {

/// Dumps the metrics registry (counters, epoch slices, hists, trace) to the
/// path in PARADE_METRICS and, under PARADE_TRACE=1 with PARADE_TRACE_OUT,
/// a trace sidecar that parade_trace merges into span trees and Chrome JSON.
/// No-op otherwise. Every bench calls this after printing its table — either
/// via print_figure or directly — so each figure's run comes with a
/// machine-readable sidecar.
inline void export_metrics(const std::string& label) {
  obs::Registry::instance().export_if_configured(label);
}

inline const std::vector<int> kNodeSweep = {1, 2, 4, 8};

inline const std::vector<vtime::NodeConfig> kNodeConfigs = {
    vtime::NodeConfig::k1Thread1Cpu,
    vtime::NodeConfig::k1Thread2Cpu,
    vtime::NodeConfig::k2Thread2Cpu,
};

/// Base runtime config for figure benches: env-tunable network model and CPU
/// scale, modest pool.
inline RuntimeConfig figure_config(int nodes, vtime::NodeConfig node_config,
                                   std::size_t pool_bytes = 64u << 20) {
  RuntimeConfig config;
  config.nodes = nodes;
  config.with_node_config(node_config);
  config.cpu_scale = vtime::cpu_scale_from_env();
  config.dsm.net = vtime::model_from_env();
  config.dsm.pool_bytes = pool_bytes;
  return config;
}

/// One data series (a line in the paper's figure).
struct Series {
  std::string name;
  std::vector<double> values;  // indexed like the node sweep
};

inline void print_figure(const std::string& title, const std::string& unit,
                         const std::vector<int>& nodes,
                         const std::vector<Series>& series) {
  std::printf("\n# %s\n", title.c_str());
  std::printf("%-8s", "nodes");
  for (const Series& s : series) std::printf("  %18s", s.name.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t row = 0; row < nodes.size(); ++row) {
    std::printf("%-8d", nodes[row]);
    for (const Series& s : series) {
      if (row < s.values.size()) {
        std::printf("  %18.3f", s.values[row]);
      } else {
        std::printf("  %18s", "-");
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
  export_metrics(title);
}

/// --flag=value parsing for the bench binaries.
inline std::string arg_string(int argc, char** argv, const char* name,
                              const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline long arg_long(int argc, char** argv, const char* name, long fallback) {
  const std::string text = arg_string(argc, argv, name, "");
  if (text.empty()) return fallback;
  return std::strtol(text.c_str(), nullptr, 10);
}

}  // namespace parade::bench
