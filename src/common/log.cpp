#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace parade::logging {
namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> value{
      static_cast<int>(parse_level(std::getenv("PARADE_LOG_LEVEL")))};
  return value;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

thread_local int t_node_tag = -1;

std::mutex& io_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_thread_node_tag(int node) { t_node_tag = node; }
int thread_node_tag() { return t_node_tag; }

bool enabled(LogLevel level) {
  return static_cast<int>(level) <=
         threshold_storage().load(std::memory_order_relaxed);
}

void write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(io_mutex());
  if (t_node_tag >= 0) {
    std::fprintf(stderr, "[parade %s n%d] %s\n", level_name(level), t_node_tag,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[parade %s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace parade::logging
