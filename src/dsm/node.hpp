// DsmNode: one cluster node's multi-threaded SDSM engine (paper §5).
//
// Responsibilities:
//  - shared pool with double mapping (atomic page update, §5.1),
//  - SIGSEGV fault path with the Figure-5 page state machine,
//  - HLRC with migratory home: twin/diff to the home, write notices
//    piggybacked on barrier arrival, home migration decided by the master at
//    barrier time (§5.2.2, §5.2.3),
//  - home-based lock manager for the conventional-SDSM personality (§2.2),
//  - a dedicated communication thread servicing remote requests (§5.3),
//  - virtual-time accounting hooks (vtime/).
//
// Threading contract: any number of application threads may fault and
// acquire locks; barrier() must be called by exactly one thread per node at
// a time (the runtime's hierarchical barrier guarantees this).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/topology.hpp"
#include "dsm/config.hpp"
#include "dsm/mapping.hpp"
#include "dsm/pagetable.hpp"
#include "dsm/protocol.hpp"
#include "dsm/rules.hpp"
#include "dsm/stats.hpp"
#include "net/channel.hpp"
#include "vtime/clock.hpp"

namespace parade::obs {
class Counter;
}

namespace parade::dsm {

class DsmNode {
 public:
  /// Primary constructor: `topology` carries this node's rank, the cluster
  /// size, and the barrier-tree fan-out. Must agree with the channel's
  /// rank/size (checked).
  DsmNode(const Topology& topology, net::Channel& channel, DsmConfig config);
  /// Deprecation shim for callers still passing shape via the channel; the
  /// fan-out falls back to config.barrier_fanout.
  DsmNode(net::Channel& channel, DsmConfig config);
  ~DsmNode();

  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  /// Maps the pool, registers the fault range, starts the comm thread.
  Status start();
  /// Stops the comm thread and unregisters the pool (idempotent).
  void shutdown();

  NodeId rank() const { return topo_.rank; }
  int size() const { return topo_.nodes; }
  const Topology& topology() const { return topo_; }
  const DsmConfig& config() const { return config_; }

  /// Application view base of the shared pool (fault-managed).
  std::byte* base() const { return mapping_->app_view(); }
  std::size_t pool_bytes() const { return config_.pool_bytes; }

  /// Shares a cross-node twin registry (in-process clusters). Must be called
  /// before start(); without one the node builds a solo registry, in which
  /// no peer pool is visible and every twin privatizes eagerly.
  void set_twin_registry(std::shared_ptr<TwinRegistry> twins);
  TwinRegistry& twin_registry() { return *twins_; }

  /// SPMD bump allocator: every node must perform the identical allocation
  /// sequence; the same call index yields the same pool offset everywhere.
  void* shmalloc(std::size_t bytes, std::size_t align = 64);
  /// Offset of a pool pointer (for cross-checking SPMD allocation order).
  std::size_t offset_of(const void* p) const;

  /// Inter-node HLRC barrier: flush diffs, exchange write notices, migrate
  /// homes, invalidate. One caller per node.
  void barrier();

  /// Home-based DSM lock with lazy-release-style consistency (conventional
  /// SDSM path; also the fallback for non-analyzable critical sections).
  void lock_acquire(int lock_id);
  void lock_release(int lock_id);

  /// SIGSEGV entry point; returns false if `addr` is outside the pool.
  bool handle_fault(void* addr, bool is_write);

  DsmStats& stats() { return stats_; }
  vtime::CommLedger& comm_ledger() { return comm_ledger_; }
  PageTable& page_table() { return *pages_; }
  Epoch epoch() const { return epoch_; }

  /// Current home of `page` as this node believes it (tests/benches).
  NodeId home_of(PageId page) const { return pages_->home_of(page); }

  /// Static-prior queries (config_.page_priors projected onto pages at
  /// start(), and re-projected at each barrier epoch when the sidecar
  /// carries epoch-ranged phase priors). A page outside every prior range
  /// behaves as before: migration allowed, no update bias.
  bool prior_allows_migration(PageId page) const {
    const auto p = static_cast<std::size_t>(page);
    return p >= prior_pin_home_.size() || !prior_pin_home_[p];
  }
  bool prior_prefers_update(PageId page) const {
    const auto p = static_cast<std::size_t>(page);
    return p < prior_update_.size() && prior_update_[p];
  }

 private:
  // --- fault path helpers (application threads) ---
  void fetch_page(PageId page, std::unique_lock<std::mutex>& entry_lock,
                  PageEntry& entry);
  void upgrade_to_dirty(PageId page, PageEntry& entry);

  // --- flush (barrier / lock release) ---
  /// Sends diffs for the given DIRTY pages to their homes and downgrades them
  /// to READ_ONLY. Waits for all acks. Serialized by flush_mutex_.
  void flush_pages(const std::vector<PageId>& pages);
  std::vector<PageId> drain_dirty_now();

  // --- barrier internals (k-ary gather/scatter tree; flat == degenerate
  // tree where the root parents everyone — see docs/SCALING.md) ---
  /// Waits until every direct child's arrival for epoch_ is gathered;
  /// returns (and removes) the epoch's slot. `needed` == children count.
  std::unordered_map<NodeId, std::pair<BarrierArriveMsg, VirtualUs>>
  gather_children(std::size_t needed);
  /// Forwards the closing departure to the direct children (re-stamped so
  /// each hop pays its own latency) and caches it for re-answering lost
  /// departures on any child edge.
  void forward_departure(const BarrierDepartMsg& depart,
                         const std::vector<NodeId>& children,
                         VirtualUs base_vtime);
  void process_departure(const BarrierDepartMsg& msg);

  // --- communication thread ---
  void comm_loop();
  void serve_page_request(const net::Message& message);
  void install_page(const net::Message& message);
  void apply_incoming_diff(const net::Message& message);
  void handle_barrier_arrive(const net::Message& message);
  void lock_manager_acquire(const net::Message& message);
  void lock_manager_release(const net::Message& message);
  void send_grant(NodeId to, std::int32_t lock_id);

  /// channel_.send + warn-on-failure. DSM protocol sends only fail when a
  /// peer is down, which the blocking receive paths surface as a check
  /// failure anyway; the log pinpoints which send was dropped.
  void post(NodeId dst, Tag tag, std::vector<std::uint8_t> payload,
            VirtualUs vtime);

  void protect(PageId page, int prot);
  std::byte* sys_page(PageId page) const;

  /// The single funnel for page-state changes: asserts the change is a legal
  /// Figure-5 edge (rules::transition_allowed) before assigning. The check
  /// only compiles in under the PARADE_CHECKED cmake option.
  void set_state(PageEntry& entry, PageId page, PageState to);
  /// Runtime invariant hook: under PARADE_CHECKED a failed check logs and
  /// bumps the `dsm.invariant.violations` obs counter; otherwise a no-op.
  void check_invariant(bool ok, const char* invariant, PageId page);

  /// Node-wide sequence source for diff and lock messages (page fetches use
  /// the per-page counter in PageEntry). Never returns 0.
  std::uint32_t next_seq() {
    return msg_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  net::Channel& channel_;
  Topology topo_;
  DsmConfig config_;
  std::unique_ptr<SegmentPool> mapping_;
  std::shared_ptr<TwinRegistry> twins_;
  std::unique_ptr<PageTable> pages_;
  DsmStats stats_;
  vtime::CommLedger comm_ledger_;
  /// `dsm.invariant.violations`: registered unconditionally (so tests can
  /// assert it is zero) but only ever incremented under PARADE_CHECKED.
  obs::Counter* invariant_violations_ = nullptr;
  /// Latency distributions (docs/OBSERVABILITY.md): remote fetch round-trip,
  /// lock request-to-grant, and barrier arrive-to-depart wait.
  obs::Histogram* fetch_hist_ = nullptr;
  obs::Histogram* lock_grant_hist_ = nullptr;
  obs::Histogram* barrier_wait_hist_ = nullptr;

  std::thread comm_thread_;
  vtime::ThreadClock comm_clock_;
  bool started_ = false;

  // Pages currently DIRTY on this node (appended on write upgrade).
  std::mutex dirty_mutex_;
  std::vector<PageId> dirty_now_;
  // Pages this node dirtied in the open barrier interval (write notices).
  std::unordered_set<PageId> interval_dirty_;

  std::mutex flush_mutex_;
  std::mutex alloc_mutex_;
  std::size_t alloc_offset_ = 0;

  /// Projects config_.page_priors onto the page bitmaps for `epoch`.
  /// Whole-program priors (phase == -1) apply everywhere; a page covered by
  /// at least one prior of the current phase takes its flags from the
  /// current-phase priors *only* (a phase projection may relax a
  /// whole-program pin). Epochs past the last phased prior keep the last
  /// phase's projection.
  void project_priors(Epoch epoch);

  // Static protocol priors by page, seeded from config_.page_priors in
  // start() and re-projected in barrier() right after the epoch advances
  // (the one point where no application thread is inside a fault handler),
  // read-only everywhere else.
  std::vector<bool> prior_pin_home_;  ///< barrier home migration vetoed
  std::vector<bool> prior_update_;    ///< update-path bias
  bool has_phased_priors_ = false;
  int max_prior_phase_ = -1;   ///< highest phased-prior epoch (sticky tail)
  int projected_phase_ = -2;   ///< effective phase currently projected

  Epoch epoch_ = 0;

  std::atomic<std::uint32_t> msg_seq_{0};

  // Local per-lock gate: threads of one node take turns doing the remote
  // acquire/release exchange for a given lock id. This keeps at most one
  // grant / release-ack wait in flight per (node, lock), which is what lets
  // those waits match responses by sequence number (a duplicate response can
  // then only ever be a retransmission artifact, never another thread's).
  // Held from lock_acquire until lock_release by the same thread.
  std::array<std::mutex, kMaxDsmLocks> lock_gate_;

  // Gather state for this node's direct children in the barrier tree, fed
  // by the comm thread so retransmitted arrivals are absorbed even while the
  // barrier caller sleeps. Every node with children runs the same per-edge
  // protocol the flat master ran against all workers; the cached departure
  // payload answers children whose departure message was lost (they
  // retransmit their arrival for the already-closed epoch).
  struct BarrierGather {
    std::mutex mutex;
    std::condition_variable cv;
    /// epoch -> src -> (decoded arrival, vtime contribution). Keyed by epoch
    /// because a fast child's next-epoch arrival can land before this node
    /// finishes the current one.
    std::unordered_map<
        Epoch, std::unordered_map<NodeId, std::pair<BarrierArriveMsg, VirtualUs>>>
        arrivals;
    std::optional<Epoch> last_depart_epoch;
    std::vector<std::uint8_t> last_depart_payload;
    VirtualUs last_depart_vtime = 0.0;
    bool closed = false;  ///< comm thread exited; no more arrivals will come
  };
  BarrierGather barrier_gather_;

  /// (src, seq) of diffs already merged; duplicates are re-acked, not
  /// re-applied (touched only by the comm thread).
  net::SeqWindow diff_seen_{4096};

  // Lock-manager state for locks homed here (touched only by comm thread).
  struct ManagedLock {
    bool held = false;
    NodeId holder = kAnyNode;
    std::uint32_t holder_seq = 0;  ///< seq of the acquire that won the lock
    /// Queued acquirers as (node, acquire seq) in arrival order.
    std::vector<std::pair<NodeId, std::uint32_t>> waiters;
    /// page -> most recent modifier under this lock.
    std::unordered_map<PageId, NodeId> notices;
    net::SeqWindow acquire_seen{256};
    net::SeqWindow release_seen{256};
  };
  std::unordered_map<std::int32_t, ManagedLock> managed_locks_;
};

/// Per-thread critical-section dirty tracking: while a CS is open, write
/// faults record pages here so lock_release flushes exactly the CS's pages.
namespace cs_tracking {
void begin();
void note_page(PageId page);
std::vector<PageId> end();
bool active();
}  // namespace cs_tracking

}  // namespace parade::dsm
