#include "net/fault.hpp"

#include <cstdlib>

#include "common/env.hpp"

namespace parade::net {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

Status bad_spec(const std::string& entry, const char* why) {
  return make_error(ErrorCode::kInvalidArgument,
                    "fault plan entry '" + entry + "': " + why);
}

/// Parses "a-b@start:heal" (heal empty → never). Probabilities and windows
/// are validated; anything unparseable is an error, not silently ignored.
Result<PartitionEvent> parse_partition(const std::string& entry,
                                       const std::string& value,
                                       bool by_epoch) {
  PartitionEvent event;
  event.by_epoch = by_epoch;
  const auto at = value.find('@');
  const std::string pair = at == std::string::npos ? value : value.substr(0, at);
  const auto dash = pair.find('-');
  if (dash == std::string::npos) return bad_spec(entry, "expected a-b pair");
  char* end = nullptr;
  event.a = static_cast<NodeId>(std::strtol(pair.c_str(), &end, 10));
  event.b = static_cast<NodeId>(
      std::strtol(pair.c_str() + dash + 1, &end, 10));
  if (event.a < 0 || event.b < 0 || event.a == event.b) {
    return bad_spec(entry, "invalid node pair");
  }
  if (at != std::string::npos) {
    const std::string window = value.substr(at + 1);
    const auto colon = window.find(':');
    const std::string start_s =
        colon == std::string::npos ? window : window.substr(0, colon);
    if (!start_s.empty()) {
      event.start = std::strtoull(start_s.c_str(), &end, 10);
    }
    if (colon != std::string::npos) {
      const std::string heal_s = window.substr(colon + 1);
      if (!heal_s.empty()) {
        event.heal = std::strtoull(heal_s.c_str(), &end, 10);
        if (*event.heal <= event.start) {
          return bad_spec(entry, "heal must follow start");
        }
      }
    } else {
      return bad_spec(entry, "expected @start:heal window");
    }
  }
  return event;
}

Result<double> parse_prob(const std::string& entry, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || p < 0.0 || p > 1.0) {
    return bad_spec(entry, "expected probability in [0, 1]");
  }
  return p;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(const std::string& spec,
                                   std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) return bad_spec(entry, "expected key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop" || key == "dup" || key == "reorder" || key == "delay") {
      auto p = parse_prob(entry, value);
      if (!p.is_ok()) return p.status();
      if (key == "drop") plan.drop_p = p.value();
      else if (key == "dup") plan.dup_p = p.value();
      else if (key == "reorder") plan.reorder_p = p.value();
      else plan.delay_p = p.value();
    } else if (key == "delay_us") {
      char* end = nullptr;
      plan.delay_max_us = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || plan.delay_max_us < 0.0) {
        return bad_spec(entry, "expected non-negative microseconds");
      }
    } else if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "part" || key == "epart") {
      auto event = parse_partition(entry, value, key == "epart");
      if (!event.is_ok()) return event.status();
      plan.partitions.push_back(event.value());
    } else {
      return bad_spec(entry, "unknown key");
    }
  }
  return plan;
}

FaultPlan default_chaos_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_p = 0.02;
  plan.dup_p = 0.02;
  plan.reorder_p = 0.05;
  plan.delay_p = 0.10;
  plan.delay_max_us = 200.0;
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const auto seed = env::get_int("PARADE_FAULT_SEED");
  const auto spec = env::get_string("PARADE_FAULT_PLAN");
  if (!seed && !spec) return std::nullopt;
  const std::uint64_t seed_value =
      seed ? static_cast<std::uint64_t>(*seed) : 0;
  if (!spec) return default_chaos_plan(seed_value);
  auto plan = FaultPlan::parse(*spec, seed_value);
  // A malformed env plan must not silently run fault-free.
  PARADE_CHECK_MSG(plan.is_ok(), plan.status().to_string());
  return std::move(plan).value();
}

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  policy.timeout_ms = static_cast<int>(
      env::get_int_or("PARADE_RETRY_TIMEOUT_MS", policy.timeout_ms));
  policy.max_attempts = static_cast<int>(
      env::get_int_or("PARADE_RETRY_MAX", policy.max_attempts));
  return policy;
}

}  // namespace parade::net
