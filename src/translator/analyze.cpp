#include "translator/analyze.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "translator/cfg.hpp"
#include "translator/dataflow.hpp"
#include "translator/interfere.hpp"
#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace parade::translator {
namespace {

// ---------------------------------------------------------------------------
// Declared-size computation

const std::unordered_map<std::string, std::size_t>& typedef_sizes() {
  static const std::unordered_map<std::string, std::size_t> sizes = {
      {"size_t", 8},   {"ssize_t", 8},  {"ptrdiff_t", 8}, {"intptr_t", 8},
      {"uintptr_t", 8}, {"int8_t", 1},  {"uint8_t", 1},   {"int16_t", 2},
      {"uint16_t", 2}, {"int32_t", 4},  {"uint32_t", 4},  {"int64_t", 8},
      {"uint64_t", 8}, {"wchar_t", 4}};
  return sizes;
}

/// Size of the base type text ("static unsigned long" -> 8); 0 if unknown.
std::size_t base_type_size(const std::string& decl_type) {
  auto tokens_result = lex(decl_type);
  if (!tokens_result.is_ok()) return 0;
  const auto tokens = std::move(tokens_result).value();
  std::vector<std::string> words;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kEof) break;
    if (t.text == "static" || t.text == "extern" || t.text == "register" ||
        t.text == "auto" || t.text == "const" || t.text == "volatile") {
      continue;
    }
    words.push_back(t.text);
  }
  if (words.empty()) return 0;
  int longs = 0;
  bool has_double = false, has_float = false, has_char = false;
  bool has_short = false, has_int = false, has_sign = false, has_bool = false;
  bool has_aggregate = false, has_enum = false;
  for (const std::string& w : words) {
    if (w == "long") ++longs;
    else if (w == "double") has_double = true;
    else if (w == "float") has_float = true;
    else if (w == "char") has_char = true;
    else if (w == "short") has_short = true;
    else if (w == "int") has_int = true;
    else if (w == "signed" || w == "unsigned") has_sign = true;
    else if (w == "_Bool" || w == "bool") has_bool = true;
    else if (w == "struct" || w == "union") has_aggregate = true;
    else if (w == "enum") has_enum = true;
  }
  if (has_aggregate) return 0;  // layout not visible to the translator
  if (has_enum) return 4;
  if (has_double) return longs > 0 ? 16 : 8;
  if (has_float) return 4;
  if (has_char) return 1;
  if (has_short) return 2;
  if (longs >= 2) return 8;
  if (longs == 1) return 8;
  if (has_int || has_sign) return 4;
  if (has_bool) return 1;
  if (words.size() == 1) {
    auto it = typedef_sizes().find(words[0]);
    if (it != typedef_sizes().end()) return it->second;
  }
  return 0;
}

/// Strict positive-integer-literal parse for array dimensions.
bool parse_dim(const std::string& text, std::size_t* out) {
  std::string trimmed;
  for (char c : text) {
    if (c != ' ') trimmed += c;
  }
  if (trimmed.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(trimmed.c_str(), &end, 0);
  if (end == nullptr || *end != '\0' || v == 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

// ---------------------------------------------------------------------------
// The analyzer (token-level access scanning now lives in translator/cfg.cpp
// as scan_accesses, shared with the CFG builder and the footprint pass)

enum class Sharing {
  kShared,
  kPrivate,
  kFirstprivate,
  kLastprivate,
  kReduction,
  kThreadprivate,
  kLocal  // declared inside the parallel region: private by construction
};

struct SymbolInfo {
  std::string type;
  int pointer_depth = 0;
  bool is_array = false;
  bool threadprivate = false;
  bool file_scope = false;
  std::size_t byte_size = 0;  // 0 = unknown
  int line = 0;
};

class Analyzer {
 public:
  explicit Analyzer(const AnalyzeOptions& options) : options_(options) {}

  Analysis run(const TranslationUnit& unit);

 private:
  struct Env {
    bool in_parallel = false;
    bool race_guarded = false;      // critical/atomic/single/master/ordered
    bool placement_managed = false; // single/atomic/collective-critical
    int divergence = 0;             // conditional / worksharing nesting
    int region_line = 0;
    std::size_t region_depth = 0;   // scopes_.size() at region entry
    bool default_none = false;
    std::map<std::string, Sharing> attrs;        // explicit clause attributes
    std::map<std::string, std::string> red_ops;  // reduction var -> C operator
    std::set<std::string>* race_sink = nullptr;  // sections: defer race checks
    int region_id = -1;   // index into regions_ (-1 outside parallel)
    int sync_line = -1;   // enclosing critical/atomic site line (-1 if none)
  };

  // --- symbol table ---
  void declare(const std::string& name, SymbolInfo info) {
    scopes_.back()[name] = std::move(info);
  }
  const SymbolInfo* lookup(const std::string& name, std::size_t* depth) const {
    for (std::size_t i = scopes_.size(); i-- > 0;) {
      auto it = scopes_[i].find(name);
      if (it != scopes_[i].end()) {
        if (depth != nullptr) *depth = i;
        return &it->second;
      }
    }
    return nullptr;
  }

  void diag(const char* code, Severity severity, int line,
            const std::string& var, std::string message) {
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.line = line;
    d.var = var;
    d.message = std::move(message);
    resolve_columns(&d);
    out_.diagnostics.push_back(std::move(d));
  }

  void resolve_columns(Diagnostic* d) const {
    if (unit_ != nullptr) resolve_diag_columns(*unit_, d);
  }

  Sharing sharing_of(const std::string& name, std::size_t depth,
                     const SymbolInfo& sym, const Env& env, int line);

  void process_text(const std::string& text, int line, const Env& env);
  void process_read(const std::string& name, int line, const Env& env);
  void process_write(const AccessScan::Write& w, const std::string& text,
                     int line, const Env& env);

  /// A DSM-placement mark; sync_line records which critical/atomic body the
  /// write sat in (the mark dissolves if hint synthesis later promotes that
  /// site to the collective path, which manages the propagation itself).
  struct DsmMark {
    int line = 0;
    std::string why;
    int sync_line = -1;
  };
  void mark_dsm(const std::string& name, int line, const std::string& why,
                int sync_line) {
    dsm_marks_[name].push_back(DsmMark{line, why, sync_line});
  }

  // --- walking ---
  void walk_stmt(const Stmt& stmt, Env& env);
  void walk_block(const Stmt& block, Env& env);
  void walk_pragma(const Stmt& stmt, Env& env);
  void register_decl(const Stmt& decl, const Env& env, bool file_scope);
  void handle_parallel(const Stmt& stmt, Env env);
  void handle_worksharing_for(const Directive& d, const Stmt& body, Env env);
  void handle_sections(const Directive& d, const Stmt& body, Env env);
  void handle_sync(const Stmt& stmt, Env env, bool is_atomic);
  std::vector<std::string> add_clause_attrs(const Clauses& c, Env* env);

  void collect_writes_rec(const Stmt& stmt, std::set<std::string>* out) const;
  void collect_reads_rec(const Stmt& stmt, std::set<std::string>* out) const;

  void register_params(const std::string& params);

  // --- flow-sensitive pass (CFG/dataflow over each parallel region) ---
  /// One parallel region recorded during the walk; the CFG is built over the
  /// whole pragma statement so worksharing structure survives.
  struct RegionRec {
    const Stmt* construct = nullptr;
    int line = 0;
    std::set<std::string> privatelike;  // names not shared inside the region
  };
  /// A def-use diagnostic the flow pass may retire.
  struct FlowCandidate {
    enum class Kind { kUninit, kRace, kNowait };
    Kind kind = Kind::kUninit;
    std::size_t diag_index = 0;
    std::string var;
    int line = 0;            // diagnostic line
    int construct_line = 0;  // nowait construct line (kNowait only)
    int region_id = -1;
  };
  void run_flow_pass();
  bool uninit_is_spurious(const Cfg& cfg, const std::vector<char>& reach,
                          const std::string& var) const;
  bool nowait_is_spurious(const Cfg& cfg, const std::vector<char>& reach,
                          const FlowResult& taint,
                          const FlowCandidate& c) const;
  bool shared_in_region(const std::string& name, const RegionRec& rec,
                        const Cfg& cfg) const;
  void report_lock_cycles();
  void assign_pool_offsets();

  AnalyzeOptions options_;
  Analysis out_;
  const TranslationUnit* unit_ = nullptr;  // set for the duration of run()
  std::vector<std::map<std::string, SymbolInfo>> scopes_;
  std::set<std::string> uninit_;  // privates not yet written in the region
  std::map<std::string, std::vector<DsmMark>> dsm_marks_;
  std::set<std::string> default_none_reported_;  // "line:name"
  std::vector<RegionRec> regions_;
  std::vector<FlowCandidate> candidates_;
  // Lock-order graph over nested named criticals (TU-wide): edge outer->inner
  // with the line of the inner critical that closed it.
  std::vector<std::string> lock_stack_;
  std::map<std::pair<std::string, std::string>, int> lock_edges_;
};

Sharing Analyzer::sharing_of(const std::string& name, std::size_t depth,
                             const SymbolInfo& sym, const Env& env, int line) {
  if (sym.threadprivate) return Sharing::kThreadprivate;
  if (!env.in_parallel) return Sharing::kShared;
  if (depth >= env.region_depth) return Sharing::kLocal;
  auto it = env.attrs.find(name);
  if (it != env.attrs.end()) return it->second;
  if (env.default_none) {
    const std::string key = std::to_string(env.region_line) + ":" + name;
    if (default_none_reported_.insert(key).second) {
      diag(kDiagDefaultNoneMissing, Severity::kError, line, name,
           "'" + name + "' is referenced in a default(none) region (line " +
               std::to_string(env.region_line) +
               ") but has no explicit data-sharing attribute");
    }
  }
  return Sharing::kShared;
}

void Analyzer::process_read(const std::string& name, int line, const Env& env) {
  std::size_t depth = 0;
  const SymbolInfo* sym = lookup(name, &depth);
  if (sym == nullptr) return;
  if (!env.in_parallel) return;
  const Sharing sh = sharing_of(name, depth, *sym, env, line);
  if ((sh == Sharing::kPrivate || sh == Sharing::kLastprivate) &&
      uninit_.count(name) > 0) {
    diag(kDiagPrivateUninitRead, Severity::kWarning, line, name,
         "private '" + name + "' is read before any write in the parallel " +
             "region at line " + std::to_string(env.region_line) +
             " (private copies start uninitialized)");
    candidates_.push_back(FlowCandidate{FlowCandidate::Kind::kUninit,
                                        out_.diagnostics.size() - 1, name,
                                        line, 0, env.region_id});
    uninit_.erase(name);
  }
}

void Analyzer::process_write(const AccessScan::Write& w,
                             const std::string& text, int line,
                             const Env& env) {
  std::size_t depth = 0;
  const SymbolInfo* sym = lookup(w.name, &depth);
  if (sym == nullptr) return;
  uninit_.erase(w.name);
  if (!env.in_parallel) return;
  if (w.deref) return;  // store through a pointer: target unknown statically
  const Sharing sh = sharing_of(w.name, depth, *sym, env, line);

  if (w.array || sym->is_array) return;  // per-element stores: not flagged

  if (sh == Sharing::kReduction) {
    const std::string& op = env.red_ops.at(w.name);
    if (op != "&&" && op != "||") {  // logical forms aren't update-shaped
      auto m = match_scalar_update(text);
      const bool compatible =
          m.has_value() && m->var == w.name &&
          (m->apply_op == op || (op == "+" && m->apply_op == "-"));
      if (!compatible) {
        diag(kDiagReductionMisuse, Severity::kWarning, line, w.name,
             "'" + w.name + "' carries a reduction(" + op +
                 ") clause but this statement is not a matching reduction "
                 "update; the result is unspecified");
      }
    }
    return;
  }
  if (sh != Sharing::kShared) return;

  if (w.member && sym->pointer_depth > 0) return;  // p->f: target unknown

  if (!env.race_guarded) {
    if (env.race_sink != nullptr) {
      env.race_sink->insert(w.name);
    } else {
      diag(kDiagRaceSharedWrite, Severity::kError, line, w.name,
           "unsynchronized write to shared '" + w.name +
               "' in the parallel region at line " +
               std::to_string(env.region_line) +
               "; no atomic/critical/reduction guards this store");
      candidates_.push_back(FlowCandidate{FlowCandidate::Kind::kRace,
                                          out_.diagnostics.size() - 1, w.name,
                                          line, 0, env.region_id});
    }
  }
  if (!env.placement_managed && sym->file_scope && !w.member &&
      sym->pointer_depth == 0 && !sym->threadprivate) {
    mark_dsm(w.name, line,
             "written by an unmanaged statement in a parallel context "
             "(line " + std::to_string(line) + "); HLRC page consistency "
             "must propagate it",
             env.sync_line);
  }
}

void Analyzer::process_text(const std::string& text, int line, const Env& env) {
  const AccessScan acc = scan_accesses(text);
  // Reads first: in `x = x + 1` the right-hand read happens before the store.
  for (const std::string& name : acc.reads) process_read(name, line, env);
  for (const auto& w : acc.writes) process_write(w, text, line, env);
}

std::vector<std::string> Analyzer::add_clause_attrs(const Clauses& c,
                                                    Env* env) {
  std::vector<std::string> uninit_added;
  for (const auto& v : c.privates) {
    env->attrs[v] = Sharing::kPrivate;
    if (uninit_.insert(v).second) uninit_added.push_back(v);
  }
  for (const auto& v : c.firstprivate) env->attrs[v] = Sharing::kFirstprivate;
  for (const auto& v : c.lastprivate) {
    env->attrs[v] = Sharing::kLastprivate;
    if (uninit_.insert(v).second) uninit_added.push_back(v);
  }
  for (const auto& [op, v] : c.reductions) {
    env->attrs[v] = Sharing::kReduction;
    env->red_ops[v] = reduction_operator(op);
  }
  for (const auto& v : c.shared) env->attrs[v] = Sharing::kShared;
  return uninit_added;
}

void Analyzer::register_decl(const Stmt& decl, const Env& env,
                             bool file_scope) {
  for (const Declarator& d : decl.declarators) {
    if (!d.init.empty()) process_text(d.init, decl.line, env);
    for (const std::string& dim : d.array_dims) {
      process_text(dim, decl.line, env);
    }
    if (d.is_function) continue;
    SymbolInfo info;
    info.type = decl.decl_type;
    info.pointer_depth = d.pointer_depth;
    info.is_array = !d.array_dims.empty();
    info.file_scope = file_scope;
    info.byte_size =
        sizeof_declared(decl.decl_type, d.pointer_depth, d.array_dims);
    info.line = decl.line;
    declare(d.name, info);
  }
}

void Analyzer::collect_writes_rec(const Stmt& stmt,
                                  std::set<std::string>* out) const {
  switch (stmt.kind) {
    case StmtKind::kRaw: {
      for (const auto& w : scan_accesses(stmt.text).writes) {
        if (!w.deref) out->insert(w.name);
      }
      return;
    }
    case StmtKind::kFor:
      for (const auto& w : scan_accesses(stmt.for_header.init_text).writes) {
        out->insert(w.name);
      }
      for (const auto& w : scan_accesses(stmt.for_header.incr_text).writes) {
        out->insert(w.name);
      }
      break;
    default:
      break;
  }
  for (const StmtPtr& child : stmt.children) {
    if (child) collect_writes_rec(*child, out);
  }
}

void Analyzer::collect_reads_rec(const Stmt& stmt,
                                 std::set<std::string>* out) const {
  auto add_text = [&](const std::string& text) {
    for (const std::string& r : scan_accesses(text).reads) out->insert(r);
  };
  switch (stmt.kind) {
    case StmtKind::kRaw:
      add_text(stmt.text);
      return;
    case StmtKind::kDecl:
      for (const Declarator& d : stmt.declarators) add_text(d.init);
      return;
    case StmtKind::kFor:
      add_text(stmt.for_header.init_text);
      add_text(stmt.for_header.cond_text);
      add_text(stmt.for_header.incr_text);
      break;
    case StmtKind::kIf:
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
    case StmtKind::kSwitch:
      add_text(stmt.cond);
      break;
    default:
      break;
  }
  for (const StmtPtr& child : stmt.children) {
    if (child) collect_reads_rec(*child, out);
  }
}

void Analyzer::walk_block(const Stmt& block, Env& env) {
  scopes_.emplace_back();
  struct Pending {
    std::set<std::string> writes;
    int line;
  };
  std::vector<Pending> pending;  // nowait constructs awaiting a barrier
  for (const StmtPtr& child : block.children) {
    // Any read of a name written by a still-unbarriered nowait construct is
    // a dependence the dropped barrier no longer orders.
    if (env.in_parallel && !pending.empty()) {
      std::set<std::string> reads;
      collect_reads_rec(*child, &reads);
      for (auto& p : pending) {
        std::vector<std::string> hit;
        for (const std::string& name : p.writes) {
          if (reads.count(name) > 0) hit.push_back(name);
        }
        for (const std::string& name : hit) {
          p.writes.erase(name);
          diag(kDiagNowaitDependentRead, Severity::kWarning, child->line, name,
               "'" + name + "' is read here but written by the nowait "
               "worksharing construct at line " + std::to_string(p.line) +
               " with no intervening barrier");
          candidates_.push_back(FlowCandidate{
              FlowCandidate::Kind::kNowait, out_.diagnostics.size() - 1, name,
              child->line, p.line, env.region_id});
        }
      }
    }

    if (child->kind == StmtKind::kDecl) {
      register_decl(*child, env, /*file_scope=*/false);
    } else {
      walk_stmt(*child, env);
    }

    if (env.in_parallel && child->kind == StmtKind::kPragma) {
      const Directive& d = child->directive;
      const bool worksharing = d.kind == DirectiveKind::kFor ||
                               d.kind == DirectiveKind::kSections ||
                               d.kind == DirectiveKind::kSingle;
      if (d.kind == DirectiveKind::kBarrier) {
        pending.clear();
      } else if (worksharing) {
        if (d.clauses.nowait) {
          // Clause-privates of the construct die at its end; only data
          // visible to the team can carry the dependence.
          std::set<std::string> construct_private;
          for (const auto& v : d.clauses.privates) construct_private.insert(v);
          for (const auto& v : d.clauses.firstprivate) {
            construct_private.insert(v);
          }
          for (const auto& v : d.clauses.lastprivate) {
            construct_private.insert(v);
          }
          for (const auto& [op, v] : d.clauses.reductions) {
            (void)op;
            construct_private.insert(v);
          }
          Pending p;
          p.line = d.line;
          if (!child->children.empty()) {
            const Stmt& construct_body = *child->children.front();
            if (construct_body.kind == StmtKind::kFor &&
                construct_body.for_header.canonical) {
              // The worksharing loop variable is implicitly private.
              construct_private.insert(construct_body.for_header.loop_var);
            }
            std::set<std::string> written;
            collect_writes_rec(construct_body, &written);
            for (const std::string& name : written) {
              if (construct_private.count(name) > 0) continue;
              std::size_t depth = 0;
              const SymbolInfo* sym = lookup(name, &depth);
              if (sym == nullptr) continue;
              if (sharing_of(name, depth, *sym, env, d.line) ==
                  Sharing::kShared) {
                p.writes.insert(name);
              }
            }
          }
          if (!p.writes.empty()) pending.push_back(std::move(p));
        } else {
          pending.clear();  // implicit barrier at construct end
        }
      }
    }
  }
  scopes_.pop_back();
}

void Analyzer::handle_worksharing_for(const Directive& d, const Stmt& body,
                                      Env env) {
  const std::vector<std::string> uninit_added =
      add_clause_attrs(d.clauses, &env);
  if (body.kind != StmtKind::kFor) {
    // CodeGen rejects this; still scan for diagnostics.
    walk_stmt(body, env);
    return;
  }
  const ForHeader& h = body.for_header;
  scopes_.emplace_back();
  if (h.canonical) {
    process_text(h.lower, body.line, env);
    process_text(h.upper, body.line, env);
    process_text(h.step, body.line, env);
    if (!h.var_decl_type.empty()) {
      SymbolInfo info;
      info.type = h.var_decl_type;
      info.byte_size = sizeof_declared(h.var_decl_type, 0, {});
      info.line = body.line;
      declare(h.loop_var, info);
    } else {
      // The worksharing loop variable is private per the OpenMP rules and is
      // initialized by the scheduler, never uninitialized.
      env.attrs[h.loop_var] = Sharing::kPrivate;
      uninit_.erase(h.loop_var);
    }
  } else {
    process_text(h.init_text, body.line, env);
    process_text(h.cond_text, body.line, env);
    process_text(h.incr_text, body.line, env);
  }
  ++env.divergence;  // a barrier inside a worksharing body is divergent
  if (!body.children.empty()) walk_stmt(*body.children.front(), env);
  scopes_.pop_back();
  for (const std::string& name : uninit_added) uninit_.erase(name);
}

void Analyzer::handle_sections(const Directive& d, const Stmt& body, Env env) {
  const std::vector<std::string> uninit_added =
      add_clause_attrs(d.clauses, &env);
  std::vector<const Stmt*> sections;
  if (body.kind == StmtKind::kBlock) {
    for (const StmtPtr& child : body.children) {
      if (child->kind == StmtKind::kPragma &&
          child->directive.kind == DirectiveKind::kSection) {
        if (!child->children.empty()) {
          sections.push_back(child->children.front().get());
        }
      } else if (child->kind != StmtKind::kEmpty) {
        sections.push_back(child.get());
      }
    }
  } else {
    sections.push_back(&body);
  }
  // Each section runs on one thread: a write in a single section is not a
  // race by itself, but the same shared name written from two sections is.
  std::vector<std::set<std::string>> writes(sections.size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    Env senv = env;
    ++senv.divergence;
    senv.race_sink = &writes[i];
    scopes_.emplace_back();
    walk_stmt(*sections[i], senv);
    scopes_.pop_back();
  }
  std::map<std::string, int> writers;
  for (const auto& set : writes) {
    for (const std::string& name : set) ++writers[name];
  }
  for (const auto& [name, count] : writers) {
    if (count >= 2) {
      diag(kDiagRaceSharedWrite, Severity::kError, d.line, name,
           "shared '" + name + "' is written by " + std::to_string(count) +
               " different sections of the sections construct at line " +
               std::to_string(d.line) + " (sections run concurrently)");
    }
  }
  for (const std::string& name : uninit_added) uninit_.erase(name);
}

void Analyzer::handle_sync(const Stmt& stmt, Env env, bool is_atomic) {
  const Directive& d = stmt.directive;
  const Stmt* inner =
      stmt.children.empty() ? nullptr : stmt.children.front().get();
  if (inner != nullptr && inner->kind == StmtKind::kBlock &&
      inner->children.size() == 1) {
    inner = inner->children.front().get();
  }

  SyncDecision dec;
  dec.line = d.line;
  dec.is_atomic = is_atomic;
  std::string reason;
  std::optional<UpdateShape> shape;
  if (inner == nullptr || inner->kind != StmtKind::kRaw) {
    reason = "body is not a single expression statement";
  } else if (!(shape = match_scalar_update(inner->text))) {
    reason = scan_accesses(inner->text).has_call
                 ? "update expression calls a function"
                 : "statement is not a scalar update "
                   "(x op= expr, x++, x = x op expr)";
  } else {
    dec.var = shape->var;
    std::size_t depth = 0;
    const SymbolInfo* sym = lookup(shape->var, &depth);
    if (sym == nullptr) {
      reason = "no visible declaration for '" + shape->var + "'";
    } else if (sym->is_array || sym->pointer_depth > 0) {
      reason = "'" + shape->var + "' is not a scalar";
    } else {
      const Sharing sh = sharing_of(shape->var, depth, *sym, env, d.line);
      if (sh == Sharing::kThreadprivate) {
        reason = "'" + shape->var + "' is threadprivate; per-thread updates "
                 "need no collective";
      } else if (sh != Sharing::kShared) {
        reason = "'" + shape->var + "' is not shared in the enclosing "
                 "parallel region; a collective would merge private copies";
      } else if (sym->byte_size == 0) {
        reason = "declared type '" + sym->type + "' has no statically known "
                 "size; page consistency is the safe fallback";
      } else if (sym->byte_size > options_.mp_threshold_bytes) {
        reason = "declared size " + std::to_string(sym->byte_size) +
                 " B exceeds the update-collective threshold " +
                 std::to_string(options_.mp_threshold_bytes) + " B";
        dec.threshold_fallback = true;  // hint synthesis may overturn this
      } else {
        dec.collective = true;
      }
    }
  }
  dec.reason = reason;
  out_.sync_sites[d.line] = dec;

  const char* construct = is_atomic ? "atomic" : "critical";
  if (is_atomic && !shape.has_value()) {
    diag(kDiagAtomicNotUpdate, Severity::kError, d.line, "",
         "atomic statement is not a supported update "
         "(x op= expr, x++, x = x op expr): " + reason);
  } else if (!dec.collective) {
    diag(kDiagSyncDsmFallback, Severity::kNote, d.line, dec.var,
         std::string(construct) + " at line " + std::to_string(d.line) +
             " maps to the DSM lock path, not update-by-collective: " +
             reason);
  }

  if (inner != nullptr) {
    Env benv = env;
    benv.race_guarded = true;
    benv.placement_managed = dec.collective;
    benv.race_sink = nullptr;
    benv.sync_line = d.line;
    if (!is_atomic) {
      // Lock-order graph: nesting critical(B) inside critical(A) orders the
      // DSM locks A -> B; a cycle across the TU is a deadlock candidate.
      const std::string& lock = d.clauses.critical_name;  // "" = the one
                                                          // anonymous lock
      for (const std::string& outer : lock_stack_) {
        lock_edges_.try_emplace({outer, lock}, d.line);
      }
      lock_stack_.push_back(lock);
      walk_stmt(*stmt.children.front(), benv);
      lock_stack_.pop_back();
    } else {
      walk_stmt(*stmt.children.front(), benv);
    }
  }
}

void Analyzer::handle_parallel(const Stmt& stmt, Env env) {
  const Directive& d = stmt.directive;
  // firstprivate snapshots read the outer values before the fork.
  for (const std::string& v : d.clauses.firstprivate) {
    process_read(v, d.line, env);
  }
  const std::set<std::string> saved_uninit = std::move(uninit_);
  uninit_.clear();

  Env penv;
  penv.in_parallel = true;
  penv.region_line = d.line;
  penv.region_depth = scopes_.size();
  penv.default_none = d.clauses.has_default && !d.clauses.default_shared;
  penv.divergence = 0;
  add_clause_attrs(d.clauses, &penv);

  if (stmt.children.empty()) {
    uninit_ = saved_uninit;
    return;
  }
  const Stmt& body = *stmt.children.front();
  penv.region_id = static_cast<int>(regions_.size());
  {
    RegionRec rec;
    rec.construct = &stmt;
    rec.line = d.line;
    for (const auto& [name, sh] : penv.attrs) {
      if (sh != Sharing::kShared) rec.privatelike.insert(name);
    }
    if (body.kind == StmtKind::kFor && body.for_header.canonical) {
      rec.privatelike.insert(body.for_header.loop_var);
    }
    regions_.push_back(std::move(rec));
  }
  switch (d.kind) {
    case DirectiveKind::kParallel:
      walk_stmt(body, penv);
      break;
    case DirectiveKind::kParallelFor:
      handle_worksharing_for(d, body, penv);
      break;
    case DirectiveKind::kParallelSections:
      handle_sections(d, body, penv);
      break;
    default:
      walk_stmt(body, penv);
      break;
  }
  uninit_ = saved_uninit;
}

void Analyzer::walk_pragma(const Stmt& stmt, Env& env) {
  const Directive& d = stmt.directive;
  switch (d.kind) {
    case DirectiveKind::kParallel:
    case DirectiveKind::kParallelFor:
    case DirectiveKind::kParallelSections:
      handle_parallel(stmt, env);
      return;
    case DirectiveKind::kFor:
      if (!stmt.children.empty()) {
        handle_worksharing_for(d, *stmt.children.front(), env);
      }
      return;
    case DirectiveKind::kSections:
      if (!stmt.children.empty()) {
        handle_sections(d, *stmt.children.front(), env);
      }
      return;
    case DirectiveKind::kSection:
      if (!stmt.children.empty()) walk_stmt(*stmt.children.front(), env);
      return;
    case DirectiveKind::kSingle: {
      if (stmt.children.empty()) return;
      Env senv = env;
      senv.race_guarded = true;
      senv.placement_managed = true;  // results travel in the broadcast
      senv.race_sink = nullptr;
      walk_stmt(*stmt.children.front(), senv);
      return;
    }
    case DirectiveKind::kMaster:
    case DirectiveKind::kOrdered: {
      if (stmt.children.empty()) return;
      Env menv = env;
      menv.race_guarded = true;  // one thread executes
      menv.race_sink = nullptr;
      // placement stays unmanaged: nothing propagates these stores except
      // the DSM, so the written globals must live on pages.
      walk_stmt(*stmt.children.front(), menv);
      return;
    }
    case DirectiveKind::kCritical:
      handle_sync(stmt, env, /*is_atomic=*/false);
      return;
    case DirectiveKind::kAtomic:
      handle_sync(stmt, env, /*is_atomic=*/true);
      return;
    case DirectiveKind::kBarrier:
      if (env.in_parallel && (env.divergence > 0 || env.race_guarded)) {
        diag(kDiagBarrierDivergence, Severity::kError, d.line, "",
             "barrier inside a conditional or worksharing construct: not "
             "all threads are guaranteed to reach it");
      }
      return;
    case DirectiveKind::kFlush:
    case DirectiveKind::kThreadprivate:
      return;
  }
}

void Analyzer::walk_stmt(const Stmt& stmt, Env& env) {
  switch (stmt.kind) {
    case StmtKind::kBlock:
      walk_block(stmt, env);
      return;
    case StmtKind::kRaw:
      process_text(stmt.text, stmt.line, env);
      return;
    case StmtKind::kDecl:
      // Reached for decls outside block child lists (e.g. loop bodies that
      // are bare declarations); register into the current scope.
      register_decl(stmt, env, /*file_scope=*/false);
      return;
    case StmtKind::kFor: {
      const ForHeader& h = stmt.for_header;
      scopes_.emplace_back();
      if (h.canonical && !h.var_decl_type.empty()) {
        SymbolInfo info;
        info.type = h.var_decl_type;
        info.byte_size = sizeof_declared(h.var_decl_type, 0, {});
        info.line = stmt.line;
        declare(h.loop_var, info);
      }
      process_text(h.init_text, stmt.line, env);
      process_text(h.cond_text, stmt.line, env);
      process_text(h.incr_text, stmt.line, env);
      Env benv = env;
      ++benv.divergence;
      if (!stmt.children.empty()) walk_stmt(*stmt.children.front(), benv);
      scopes_.pop_back();
      return;
    }
    case StmtKind::kIf:
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
    case StmtKind::kSwitch: {
      process_text(stmt.cond, stmt.line, env);
      Env benv = env;
      ++benv.divergence;
      for (const StmtPtr& child : stmt.children) {
        if (child) walk_stmt(*child, benv);
      }
      return;
    }
    case StmtKind::kPragma:
      walk_pragma(stmt, env);
      return;
    case StmtKind::kHashLine:
    case StmtKind::kEmpty:
      return;
  }
}

void Analyzer::register_params(const std::string& params) {
  if (params.empty() || params == "void") return;
  auto tokens_result = lex(params + " ,");
  if (!tokens_result.is_ok()) return;
  const auto tokens = std::move(tokens_result).value();
  std::vector<Token> current;
  for (const Token& t : tokens) {
    if (t.is_punct(",") || t.kind == TokKind::kEof) {
      for (std::size_t i = current.size(); i-- > 0;) {
        if (current[i].kind == TokKind::kIdent) {
          SymbolInfo info;
          std::vector<Token> type_run(current.begin(),
                                      current.begin() + static_cast<long>(i));
          info.type = render_tokens(type_run, 0, type_run.size());
          for (const Token& tr : type_run) {
            if (tr.is_punct("*")) ++info.pointer_depth;
          }
          info.is_array =
              i + 1 < current.size() && current[i + 1].is_punct("[");
          info.byte_size = info.pointer_depth > 0 || info.is_array
                               ? sizeof(void*)
                               : base_type_size(info.type);
          declare(current[i].text, info);
          break;
        }
      }
      current.clear();
    } else {
      current.push_back(t);
    }
  }
}

Analysis Analyzer::run(const TranslationUnit& unit) {
  unit_ = &unit;
  scopes_.emplace_back();  // file scope

  // threadprivate(list) pragmas may follow the declaration they mark.
  std::set<std::string> threadprivate_names;
  for (const TopItem& item : unit.items) {
    if (item.kind == TopItem::Kind::kPragma &&
        item.stmt->directive.kind == DirectiveKind::kThreadprivate) {
      for (const std::string& name : item.stmt->directive.clauses.flush_list) {
        threadprivate_names.insert(name);
      }
    }
  }

  Env file_env;
  for (const TopItem& item : unit.items) {
    if (item.kind != TopItem::Kind::kDecl) continue;
    const Stmt& decl = *item.stmt;
    register_decl(decl, file_env, /*file_scope=*/true);
    for (const Declarator& d : decl.declarators) {
      if (d.is_function) continue;
      SymbolInfo& info = scopes_.front()[d.name];
      info.threadprivate = threadprivate_names.count(d.name) > 0;
      VarClass vc;
      vc.type = decl.decl_type;
      vc.byte_size = info.byte_size;
      vc.line = decl.line;
      if (info.threadprivate) {
        vc.placement = Placement::kThreadprivate;
        vc.reason = "threadprivate: one instance per thread, never shared";
      } else if (info.is_array) {
        vc.placement = Placement::kDsmArray;
        vc.reason = "file-scope array: page-granularity DSM placement";
      } else if (info.pointer_depth > 0) {
        vc.placement = Placement::kReplicated;
        vc.reason = "file-scope pointer: node-replicated handle";
      } else {
        vc.placement = Placement::kReplicated;  // provisional
      }
      out_.globals[d.name] = std::move(vc);
    }
  }

  for (const TopItem& item : unit.items) {
    if (item.kind != TopItem::Kind::kFunction) continue;
    scopes_.emplace_back();
    register_params(item.function.params);
    Env env;
    if (item.function.body) walk_stmt(*item.function.body, env);
    scopes_.resize(1);
    uninit_.clear();
  }

  if (options_.flow_sensitive) {
    run_flow_pass();
    report_lock_cycles();
  }
  if (options_.protocol_hints) {
    synthesize_hints(unit, options_, &out_);
  }

  // Finalize scalar placements from the unmanaged-write marks. A mark made
  // inside a critical/atomic body dissolves when that site ended up on the
  // collective path (including hint promotion): the collective propagates
  // the value itself, so the variable stays node-replicated.
  for (auto& [name, vc] : out_.globals) {
    if (vc.placement != Placement::kReplicated || !vc.reason.empty()) continue;
    const DsmMark* surviving = nullptr;
    auto it = dsm_marks_.find(name);
    if (it != dsm_marks_.end()) {
      for (const DsmMark& m : it->second) {
        if (m.sync_line >= 0) {
          auto site = out_.sync_sites.find(m.sync_line);
          if (site != out_.sync_sites.end() && site->second.collective) {
            continue;
          }
        }
        surviving = &m;
        break;
      }
    }
    if (surviving != nullptr) {
      vc.placement = Placement::kDsmScalar;
      vc.reason = surviving->why;
    } else {
      vc.reason =
          "all parallel-context writes are synchronization-managed; "
          "node-replicated with update-by-collective";
    }
  }

  // A hint promotion is only sound while its target stays replicated; if an
  // unguarded write elsewhere pinned the variable to the DSM pool, revert.
  for (auto& [line, dec] : out_.sync_sites) {
    (void)line;
    if (!dec.collective || !dec.threshold_fallback || dec.var.empty()) {
      continue;
    }
    auto g = out_.globals.find(dec.var);
    if (g != out_.globals.end() &&
        (g->second.placement == Placement::kDsmScalar ||
         g->second.placement == Placement::kDsmArray)) {
      dec.collective = false;
      dec.reason = "hint promotion reverted: '" + dec.var +
                   "' is pinned to the DSM pool by an unmanaged write";
    }
  }

  if (options_.protocol_hints) {
    assign_pool_offsets();
  }

  // Whole-program interference pass (translator/interfere.cpp): phase-aware
  // hint synthesis plus the cross-region diagnostics. Needs both the final
  // placements (above) and the footprint hints, so it runs last.
  if (options_.flow_sensitive && options_.protocol_hints) {
    run_interference(unit, options_, &out_);
  }

  // Deterministic output order: the walk emits in traversal order, which is
  // stable, but the flow and interference passes append out of line order.
  // Sort so text/JSON/SARIF renderings are byte-stable across platforms.
  auto sort_diags = [](std::vector<Diagnostic>* diags) {
    std::stable_sort(diags->begin(), diags->end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.line != b.line) return a.line < b.line;
                       if (a.code != b.code) return a.code < b.code;
                       return a.var < b.var;
                     });
  };
  sort_diags(&out_.diagnostics);
  sort_diags(&out_.suppressed);
  unit_ = nullptr;
  return out_;
}

void Analyzer::run_flow_pass() {
  std::set<std::size_t> drop;
  std::set<int> unmatched_lines;            // dedup across nested-region CFGs
  std::set<std::pair<int, std::string>> stale_reported;
  for (std::size_t ri = 0; ri < regions_.size(); ++ri) {
    const RegionRec& rec = regions_[ri];
    const Cfg cfg = build_cfg(*rec.construct);
    RegionSummary rs;
    rs.line = rec.line;
    rs.blocks = cfg.blocks.size();
    rs.edges = cfg.edge_count();
    rs.loops = cfg.loops.size();
    const std::vector<char> reach = cfg.reachable();

    // Nowait taint: a bit per nowait construct, set at its exit, killed by
    // any barrier (explicit or implicit, at any nesting depth).
    FlowResult taint;
    bool have_taint = false;
    if (!cfg.nowaits.empty()) {
      DataflowProblem p;
      p.direction = FlowDirection::kForward;
      p.meet = MeetOp::kUnion;
      p.bits = cfg.nowaits.size();
      p.transfer.resize(cfg.blocks.size());
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        BitSet gen(p.bits);
        BitSet kill(p.bits);
        for (const CfgEvent& e : cfg.blocks[b].events) {
          if (e.kind == CfgEventKind::kBarrier) {
            gen.clear();
            kill.set_all();
          } else if (e.kind == CfgEventKind::kNowaitExit) {
            gen.set(static_cast<std::size_t>(e.id));
          }
        }
        p.transfer[b] = Transfer{std::move(gen), std::move(kill)};
      }
      taint = solve_dataflow(cfg, p);
      have_taint = true;
    }

    for (const FlowCandidate& c : candidates_) {
      if (c.region_id != static_cast<int>(ri)) continue;
      bool spurious = false;
      switch (c.kind) {
        case FlowCandidate::Kind::kRace: {
          // The write only exists on statically dead paths (e.g. after an
          // unconditional return): no executing thread stores to it.
          bool found_any = false;
          bool found_reachable = false;
          for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            for (const CfgEvent& e : cfg.blocks[b].events) {
              if (e.kind == CfgEventKind::kWrite && e.name == c.var &&
                  e.line == c.line) {
                found_any = true;
                if (reach[b] != 0) found_reachable = true;
              }
            }
          }
          spurious = found_any && !found_reachable;
          break;
        }
        case FlowCandidate::Kind::kUninit:
          spurious = uninit_is_spurious(cfg, reach, c.var);
          break;
        case FlowCandidate::Kind::kNowait:
          spurious = have_taint && nowait_is_spurious(cfg, reach, taint, c);
          break;
      }
      if (spurious) {
        drop.insert(c.diag_index);
        ++rs.suppressed;
      }
    }

    // barrier.unmatched: if/else arms with different explicit-barrier
    // counts — threads taking different arms arrive at different barrier
    // sequences and the team wedges.
    for (const CfgBranch& br : cfg.branches) {
      if (!br.has_else || br.then_barriers == br.else_barriers) continue;
      if (!unmatched_lines.insert(br.line).second) continue;
      diag(kDiagBarrierUnmatched, Severity::kError, br.line, "",
           "if/else arms contain different numbers of explicit barriers (" +
               std::to_string(br.then_barriers) + " vs " +
               std::to_string(br.else_barriers) +
               "); threads taking different arms deadlock at the barrier");
    }

    // dsm.stale_read_loop: a non-worksharing loop spinning on a shared
    // variable with no write to it and no barrier/flush inside the loop —
    // under HLRC the remote store is never propagated, so the loop hangs.
    for (std::size_t li = 0; li < cfg.loops.size(); ++li) {
      if (cfg.loops[li].worksharing) continue;
      bool has_sync = false;
      std::set<std::string> written;
      for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.block_in_loop(static_cast<int>(b), static_cast<int>(li))) {
          continue;
        }
        for (const CfgEvent& e : cfg.blocks[b].events) {
          if (e.kind == CfgEventKind::kBarrier ||
              e.kind == CfgEventKind::kSync) {
            has_sync = true;
          } else if (e.kind == CfgEventKind::kWrite) {
            written.insert(e.name);
          }
        }
      }
      if (has_sync) continue;
      const int head = cfg.loops[li].head;
      if (head < 0) continue;
      for (const CfgEvent& e :
           cfg.blocks[static_cast<std::size_t>(head)].events) {
        if (e.kind != CfgEventKind::kRead || !e.loop_cond) continue;
        if (!shared_in_region(e.name, rec, cfg)) continue;
        if (written.count(e.name) > 0) continue;
        if (!stale_reported.insert({cfg.loops[li].line, e.name}).second) {
          continue;
        }
        diag(kDiagStaleReadLoop, Severity::kWarning, cfg.loops[li].line,
             e.name,
             "loop condition re-reads shared '" + e.name +
                 "' with no write, barrier, or flush inside the loop; under "
                 "HLRC the remote update is never propagated, so this "
                 "spin-wait never terminates");
      }
    }

    out_.regions.push_back(rs);
  }

  if (!drop.empty()) {
    std::vector<Diagnostic> kept;
    kept.reserve(out_.diagnostics.size() - drop.size());
    for (std::size_t i = 0; i < out_.diagnostics.size(); ++i) {
      if (drop.count(i) > 0) {
        out_.suppressed.push_back(std::move(out_.diagnostics[i]));
      } else {
        kept.push_back(std::move(out_.diagnostics[i]));
      }
    }
    out_.diagnostics = std::move(kept);
  }
}

bool Analyzer::shared_in_region(const std::string& name, const RegionRec& rec,
                                const Cfg& cfg) const {
  auto it = out_.globals.find(name);
  if (it == out_.globals.end()) return false;
  if (it->second.placement == Placement::kThreadprivate) return false;
  return rec.privatelike.count(name) == 0 && cfg.locals.count(name) == 0;
}

bool Analyzer::uninit_is_spurious(const Cfg& cfg,
                                  const std::vector<char>& reach,
                                  const std::string& var) const {
  // Must-written analysis: forward, intersection meet, one bit ("var has
  // been written on every path reaching here"). A read of the private
  // before its bit holds is genuinely maybe-uninitialized; if no such read
  // exists the def-use finding was a flow artifact.
  DataflowProblem p;
  p.direction = FlowDirection::kForward;
  p.meet = MeetOp::kIntersect;
  p.bits = 1;
  p.boundary = BitSet(1);  // nothing written at region entry
  p.transfer.resize(cfg.blocks.size());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    BitSet gen(1);
    BitSet kill(1);
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if ((e.kind == CfgEventKind::kWrite || e.kind == CfgEventKind::kDecl) &&
          e.name == var) {
        gen.set(0);
      }
    }
    p.transfer[b] = Transfer{std::move(gen), std::move(kill)};
  }
  const FlowResult result = solve_dataflow(cfg, p);

  bool found_read = false;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (reach[b] == 0) continue;
    bool written = result.in[b].test(0);
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if (e.kind == CfgEventKind::kRead && e.name == var) {
        found_read = true;
        if (!written) return false;  // a maybe-uninit read really exists
      } else if ((e.kind == CfgEventKind::kWrite ||
                  e.kind == CfgEventKind::kDecl) &&
                 e.name == var) {
        written = true;
      }
    }
  }
  return found_read;  // every read dominated by a write (or no read found:
                      // keep the finding — the walkers disagreed)
}

bool Analyzer::nowait_is_spurious(const Cfg& cfg,
                                  const std::vector<char>& reach,
                                  const FlowResult& taint,
                                  const FlowCandidate& c) const {
  int nowait_id = -1;
  for (std::size_t i = 0; i < cfg.nowaits.size(); ++i) {
    if (cfg.nowaits[i].line == c.construct_line) {
      nowait_id = static_cast<int>(i);
      break;
    }
  }
  if (nowait_id < 0) return false;
  // The finding stands only if some unguarded read of the variable is
  // reachable while the construct's taint is still live (no barrier on any
  // path in between). Reads inside critical/atomic bodies are ordered by
  // the lock acquire and do not count as unguarded dependences.
  bool found_any_read = false;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (reach[b] == 0) continue;
    BitSet state = taint.in[b];
    for (const CfgEvent& e : cfg.blocks[b].events) {
      if (e.kind == CfgEventKind::kRead && e.name == c.var) {
        found_any_read = true;
        if (!e.in_critical &&
            state.test(static_cast<std::size_t>(nowait_id))) {
          return false;  // a genuinely unordered dependent read
        }
      } else if (e.kind == CfgEventKind::kBarrier) {
        state.clear();
      } else if (e.kind == CfgEventKind::kNowaitExit) {
        state.set(static_cast<std::size_t>(e.id));
      }
    }
  }
  return found_any_read;
}

void Analyzer::report_lock_cycles() {
  if (lock_edges_.empty()) return;
  std::map<std::string, std::vector<std::pair<std::string, int>>> adj;
  std::set<std::string> nodes;
  for (const auto& [edge, line] : lock_edges_) {
    adj[edge.first].push_back({edge.second, line});
    nodes.insert(edge.first);
    nodes.insert(edge.second);
  }
  auto display = [](const std::string& name) {
    return name.empty() ? std::string("<anonymous>") : name;
  };
  // DFS with a gray-path stack; each cycle is canonicalized (rotated to its
  // smallest member) so A->B->A and B->A->B report once.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs =
      [&](const std::string& u) {
        color[u] = 1;
        path.push_back(u);
        for (const auto& [v, line] : adj[u]) {
          if (color[v] == 1) {
            auto begin =
                std::find(path.begin(), path.end(), v);
            std::vector<std::string> cycle(begin, path.end());
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            std::string key;
            std::string pretty;
            for (const std::string& n : cycle) {
              key += n + "\x1f";
              pretty += "'" + display(n) + "' -> ";
            }
            pretty += "'" + display(cycle.front()) + "'";
            if (reported.insert(key).second) {
              diag(kDiagLockOrderCycle, Severity::kWarning, line, "",
                   "critical sections nest in a cyclic lock order: " +
                       pretty +
                       "; two threads entering in opposite order deadlock "
                       "on the DSM locks");
            }
          } else if (color[v] == 0) {
            dfs(v);
          }
        }
        path.pop_back();
        color[u] = 2;
      };
  for (const std::string& n : nodes) {
    if (color[n] == 0) dfs(n);
  }
}

void Analyzer::assign_pool_offsets() {
  // Mirror codegen's shared-init sequence: one shmalloc per DSM-placed
  // global in declaration order, each 64-byte aligned (DsmNode::shmalloc's
  // default), so the static offsets match the runtime pool layout exactly.
  std::vector<std::pair<int, std::string>> order;
  for (const auto& [name, vc] : out_.globals) {
    if (vc.placement == Placement::kDsmScalar ||
        vc.placement == Placement::kDsmArray) {
      order.push_back({vc.line, name});
    }
  }
  std::sort(order.begin(), order.end());
  std::size_t offset = 0;
  bool known = true;
  for (const auto& [line, name] : order) {
    (void)line;
    const VarClass& vc = out_.globals.at(name);
    SymbolHint* h = out_.hints.find(name);
    if (h == nullptr) {
      SymbolHint fresh;
      fresh.name = name;
      fresh.byte_size = vc.byte_size;
      out_.hints.symbols.push_back(std::move(fresh));
      h = &out_.hints.symbols.back();
    }
    h->dsm = true;
    if (known && vc.byte_size > 0) {
      offset = (offset + 63) & ~static_cast<std::size_t>(63);
      h->offset_known = true;
      h->pool_offset = offset;
      offset += vc.byte_size;
    } else {
      // A symbolically-sized allocation precedes everything after it: no
      // static offsets from here on.
      known = false;
      h->offset_known = false;
    }
    if (h->expected_page_touches == 0 && vc.byte_size > 0) {
      h->expected_page_touches =
          (vc.byte_size + options_.page_bytes - 1) / options_.page_bytes;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared update-shape matcher (the decision layer lives in the analyzer; this
// is only the syntax).

std::optional<UpdateShape> match_scalar_update(const std::string& text) {
  auto tokens_result = lex(text);
  if (!tokens_result.is_ok()) return std::nullopt;
  const auto tokens = std::move(tokens_result).value();
  std::size_t n = tokens.size();
  while (n > 0 && (tokens[n - 1].kind == TokKind::kEof ||
                   tokens[n - 1].is_punct(";"))) {
    --n;
  }
  if (n < 2 || tokens[0].kind != TokKind::kIdent) return std::nullopt;
  const std::string var = tokens[0].text;

  auto expr_from = [&](std::size_t begin) -> std::optional<std::string> {
    std::string expr;
    for (std::size_t i = begin; i < n; ++i) {
      // Function calls in the contribution are not analyzable (paper §7).
      if (tokens[i].kind == TokKind::kIdent && i + 1 < n &&
          tokens[i + 1].is_punct("(")) {
        return std::nullopt;
      }
      expr += (expr.empty() ? "" : " ") + tokens[i].text;
    }
    if (expr.empty()) return std::nullopt;
    return expr;
  };

  UpdateShape p;
  p.var = var;
  if (n == 2 && (tokens[1].is_punct("++") || tokens[1].is_punct("--"))) {
    p.combine_op = "+";
    p.apply_op = tokens[1].text == "++" ? "+" : "-";
    p.expr = "1";
    return p;
  }
  const std::string& op = tokens[1].text;
  if (op == "+=" || op == "-=" || op == "*=" || op == "&=" || op == "|=" ||
      op == "^=") {
    auto expr = expr_from(2);
    if (!expr) return std::nullopt;
    p.apply_op = op.substr(0, 1);
    p.combine_op = op == "-=" ? "+" : p.apply_op;
    p.expr = *expr;
    return p;
  }
  if (op == "=" && n >= 5 && tokens[2].text == var &&
      tokens[3].kind == TokKind::kPunct) {
    const std::string& binop = tokens[3].text;
    if (binop == "+" || binop == "-" || binop == "*" || binop == "&" ||
        binop == "|" || binop == "^") {
      auto expr = expr_from(4);
      if (!expr) return std::nullopt;
      p.apply_op = binop;
      p.combine_op = binop == "-" ? "+" : binop;
      p.expr = *expr;
      return p;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Public surface

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::kReplicated: return "replicated";
    case Placement::kDsmScalar: return "dsm_scalar";
    case Placement::kDsmArray: return "dsm_array";
    case Placement::kThreadprivate: return "threadprivate";
  }
  return "unknown";
}

std::size_t sizeof_declared(const std::string& decl_type, int pointer_depth,
                            const std::vector<std::string>& array_dims) {
  if (pointer_depth > 0) return sizeof(void*);
  const std::size_t base = base_type_size(decl_type);
  if (base == 0) return 0;
  std::size_t total = base;
  for (const std::string& dim : array_dims) {
    std::size_t v = 0;
    if (!parse_dim(dim, &v)) return 0;  // symbolic dimension: unknown
    total *= v;
  }
  return total;
}

std::size_t Analysis::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::size_t Analysis::vars_collective() const {
  std::size_t n = 0;
  for (const auto& [name, vc] : globals) {
    (void)name;
    if (vc.placement == Placement::kReplicated) ++n;
  }
  return n;
}

std::size_t Analysis::vars_dsm() const {
  std::size_t n = 0;
  for (const auto& [name, vc] : globals) {
    (void)name;
    if (vc.placement == Placement::kDsmScalar ||
        vc.placement == Placement::kDsmArray) {
      ++n;
    }
  }
  return n;
}

void resolve_diag_columns(const TranslationUnit& unit, Diagnostic* d) {
  if (d->line <= 0) return;
  auto it = unit.line_positions.find(d->line);
  if (it == unit.line_positions.end()) return;
  const LinePositions& lp = it->second;
  if (!d->var.empty()) {
    for (const auto& [text, column] : lp.idents) {
      if (text == d->var) {
        d->column = column;
        d->end_column = column + static_cast<int>(text.size());
        return;
      }
    }
  }
  if (lp.first_column > 0) {
    d->column = lp.first_column;
    d->end_column = lp.first_column + 1;
  }
}

std::string Analysis::to_text(const std::string& file) const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << file << ":" << d.line;
    if (d.column > 0) out << ":" << d.column;
    out << ": " << to_string(d.severity) << " [" << d.code << "] " << d.message
        << "\n";
  }
  for (const auto& [name, vc] : globals) {
    out << file << ": global '" << name << "' -> " << to_string(vc.placement);
    if (vc.byte_size > 0) out << " (" << vc.byte_size << " B)";
    out << ": " << vc.reason << "\n";
  }
  for (const auto& [line, dec] : sync_sites) {
    out << file << ": " << (dec.is_atomic ? "atomic" : "critical")
        << " at line " << line << " -> "
        << (dec.collective ? "update-by-collective" : "DSM lock");
    if (!dec.var.empty()) out << " on '" << dec.var << "'";
    if (!dec.reason.empty()) out << " (" << dec.reason << ")";
    out << "\n";
  }
  out << file << ": " << count(Severity::kError) << " error(s), "
      << count(Severity::kWarning) << " warning(s), " << count(Severity::kNote)
      << " note(s)\n";
  return out.str();
}

std::string Analysis::to_json(const std::string& file) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("file");
  w.value(file);
  w.key("summary");
  w.begin_object();
  w.key("errors");
  w.value(static_cast<std::int64_t>(count(Severity::kError)));
  w.key("warnings");
  w.value(static_cast<std::int64_t>(count(Severity::kWarning)));
  w.key("notes");
  w.value(static_cast<std::int64_t>(count(Severity::kNote)));
  w.key("vars_collective");
  w.value(static_cast<std::int64_t>(vars_collective()));
  w.key("vars_dsm");
  w.value(static_cast<std::int64_t>(vars_dsm()));
  w.key("suppressed");
  w.value(static_cast<std::int64_t>(suppressed.size()));
  w.end_object();
  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : diagnostics) {
    w.begin_object();
    w.key("code");
    w.value(d.code);
    w.key("severity");
    w.value(to_string(d.severity));
    w.key("line");
    w.value(static_cast<std::int64_t>(d.line));
    w.key("column");
    w.value(static_cast<std::int64_t>(d.column));
    w.key("end_column");
    w.value(static_cast<std::int64_t>(d.end_column));
    w.key("var");
    w.value(d.var);
    w.key("message");
    w.value(d.message);
    w.end_object();
  }
  w.end_array();
  w.key("globals");
  w.begin_array();
  for (const auto& [name, vc] : globals) {
    w.begin_object();
    w.key("name");
    w.value(name);
    w.key("placement");
    w.value(to_string(vc.placement));
    w.key("type");
    w.value(vc.type);
    w.key("bytes");
    w.value(static_cast<std::int64_t>(vc.byte_size));
    w.key("line");
    w.value(static_cast<std::int64_t>(vc.line));
    w.key("reason");
    w.value(vc.reason);
    w.end_object();
  }
  w.end_array();
  w.key("sync_sites");
  w.begin_array();
  for (const auto& [line, dec] : sync_sites) {
    w.begin_object();
    w.key("line");
    w.value(static_cast<std::int64_t>(line));
    w.key("construct");
    w.value(dec.is_atomic ? "atomic" : "critical");
    w.key("collective");
    w.value(dec.collective);
    w.key("var");
    w.value(dec.var);
    w.key("reason");
    w.value(dec.reason);
    w.end_object();
  }
  w.end_array();
  w.key("regions");
  w.begin_array();
  for (const RegionSummary& r : regions) {
    w.begin_object();
    w.key("line");
    w.value(static_cast<std::int64_t>(r.line));
    w.key("blocks");
    w.value(static_cast<std::int64_t>(r.blocks));
    w.key("edges");
    w.value(static_cast<std::int64_t>(r.edges));
    w.key("loops");
    w.value(static_cast<std::int64_t>(r.loops));
    w.key("suppressed");
    w.value(static_cast<std::int64_t>(r.suppressed));
    w.end_object();
  }
  w.end_array();
  w.key("hints");
  w.begin_array();
  for (const SymbolHint& h : hints.symbols) {
    w.begin_object();
    w.key("name");
    w.value(h.name);
    w.key("prefer_update");
    w.value(h.prefer_update);
    w.key("dsm");
    w.value(h.dsm);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Analysis::dataflow_report(const std::string& file) const {
  std::ostringstream out;
  out << file << ": dataflow: " << regions.size() << " region(s), "
      << suppressed.size() << " def-use finding(s) suppressed\n";
  for (const RegionSummary& r : regions) {
    out << file << ":" << r.line << ": region CFG: " << r.blocks
        << " blocks, " << r.edges << " edges, " << r.loops << " loop(s); "
        << r.suppressed << " suppressed\n";
  }
  for (const Diagnostic& d : suppressed) {
    out << file << ":" << d.line << ": suppressed [" << d.code << "] "
        << d.message << "\n";
  }
  return out.str();
}

std::string sarif_report(
    const std::vector<std::pair<std::string, Analysis>>& files) {
  // Collect the distinct rule ids (stable kDiag* codes) in first-seen order.
  std::vector<std::string> rule_ids;
  std::map<std::string, std::size_t> rule_index;
  for (const auto& [file, analysis] : files) {
    (void)file;
    for (const Diagnostic& d : analysis.diagnostics) {
      if (rule_index.try_emplace(d.code, rule_ids.size()).second) {
        rule_ids.push_back(d.code);
      }
    }
  }
  auto level_of = [](Severity s) {
    switch (s) {
      case Severity::kError: return "error";
      case Severity::kWarning: return "warning";
      case Severity::kNote: return "note";
    }
    return "none";
  };
  obs::JsonWriter w;
  w.begin_object();
  w.key("$schema");
  w.value("https://json.schemastore.org/sarif-2.1.0.json");
  w.key("version");
  w.value("2.1.0");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.key("name");
  w.value("parade_lint");
  w.key("informationUri");
  w.value("docs/ANALYZER.md");
  w.key("rules");
  w.begin_array();
  for (const std::string& id : rule_ids) {
    w.begin_object();
    w.key("id");
    w.value(id);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const auto& [file, analysis] : files) {
    for (const Diagnostic& d : analysis.diagnostics) {
      w.begin_object();
      w.key("ruleId");
      w.value(d.code);
      w.key("ruleIndex");
      w.value(static_cast<std::int64_t>(rule_index.at(d.code)));
      w.key("level");
      w.value(level_of(d.severity));
      w.key("message");
      w.begin_object();
      w.key("text");
      w.value(d.message);
      w.end_object();
      w.key("locations");
      w.begin_array();
      w.begin_object();
      w.key("physicalLocation");
      w.begin_object();
      w.key("artifactLocation");
      w.begin_object();
      w.key("uri");
      w.value(file);
      w.end_object();
      w.key("region");
      w.begin_object();
      w.key("startLine");
      w.value(static_cast<std::int64_t>(d.line > 0 ? d.line : 1));
      if (d.column > 0) {
        w.key("startColumn");
        w.value(static_cast<std::int64_t>(d.column));
        // SARIF endColumn is exclusive, matching Diagnostic::end_column.
        w.key("endColumn");
        w.value(static_cast<std::int64_t>(
            d.end_column > d.column ? d.end_column : d.column + 1));
      }
      w.end_object();
      w.end_object();
      w.end_object();
      w.end_array();
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

Analysis analyze(const TranslationUnit& unit, const AnalyzeOptions& options) {
  Analyzer analyzer(options);
  Analysis out = analyzer.run(unit);
  // Observability: translation decisions show up in the standard exports
  // (docs/OBSERVABILITY.md); the translator runs as node 0.
  auto& registry = obs::Registry::instance();
  registry.counter(0, "xlat.analyze.diagnostics")
      .add(static_cast<std::int64_t>(out.diagnostics.size()));
  registry.counter(0, "xlat.analyze.vars_collective")
      .add(static_cast<std::int64_t>(out.vars_collective()));
  registry.counter(0, "xlat.analyze.vars_dsm")
      .add(static_cast<std::int64_t>(out.vars_dsm()));
  return out;
}

Result<Analysis> analyze_source(const std::string& source,
                                const AnalyzeOptions& options) {
  auto tokens = lex(source);
  if (!tokens.is_ok()) return tokens.status();
  auto unit = parse(tokens.value());
  if (!unit.is_ok()) return unit.status();
  return analyze(unit.value(), options);
}

Result<std::size_t> parse_threshold_bytes(const std::string& text) {
  if (text.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "--threshold needs a value in bytes");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return make_error(ErrorCode::kInvalidArgument,
                        "invalid --threshold value '" + text +
                            "' (expected a positive integer byte count)");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || v == 0 ||
      v > static_cast<unsigned long long>(~std::size_t{0})) {
    return make_error(ErrorCode::kInvalidArgument,
                      "invalid --threshold value '" + text +
                          "' (must be a positive byte count)");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace parade::translator
