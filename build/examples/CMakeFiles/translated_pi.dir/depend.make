# Empty dependencies file for translated_pi.
# This may be replaced when dependencies are built.
