// DoubleMapping: two virtual mappings of the same physical memory — the
// paper's §5.1 solution to the atomic page update problem.
//
// A multi-threaded SDSM cannot simply flip a page writable and copy the new
// contents in: another application thread could slip through the window and
// read a half-updated page without faulting. The fix is a second, private
// "system view" of the same physical pages that is always writable. The
// runtime updates pages through the system view and only then grants access
// in the protection-managed "application view".
//
// Methods (paper §5.1): file/memfd mapping and System V shared memory are
// fully implemented; mdup() (their custom syscall) and the child-process
// page-table trick are represented by create() returning kUnsupported with an
// explanation, so callers and tests can probe method availability uniformly.
#pragma once

#include <cstddef>
#include <memory>

#include "common/status.hpp"
#include "dsm/config.hpp"

namespace parade::dsm {

class DoubleMapping {
 public:
  static Result<std::unique_ptr<DoubleMapping>> create(std::size_t bytes,
                                                       MapMethod method);
  ~DoubleMapping();

  DoubleMapping(const DoubleMapping&) = delete;
  DoubleMapping& operator=(const DoubleMapping&) = delete;

  /// Protection-managed application view (initially PROT_NONE).
  std::byte* app_view() const { return app_view_; }
  /// Always-writable system view of the same physical memory.
  std::byte* sys_view() const { return sys_view_; }
  std::size_t bytes() const { return bytes_; }
  MapMethod method() const { return method_; }

  /// mprotect() on [offset, offset+length) of the application view.
  /// `prot` is a PROT_* combination.
  Status protect_app(std::size_t offset, std::size_t length, int prot);

 private:
  DoubleMapping(std::byte* app, std::byte* sys, std::size_t bytes,
                MapMethod method, int fd, int shmid)
      : app_view_(app), sys_view_(sys), bytes_(bytes), method_(method),
        fd_(fd), shmid_(shmid) {}

  std::byte* app_view_;
  std::byte* sys_view_;
  std::size_t bytes_;
  MapMethod method_;
  int fd_;     // memfd (kMemfd) or -1
  int shmid_;  // SysV segment id (kSysV) or -1
};

const char* to_string(MapMethod method);

}  // namespace parade::dsm
