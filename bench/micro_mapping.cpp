// Paper §5.1 claim: "all the methods achieve comparable performance on an
// SMP Linux cluster system". This bench compares the two implementable
// double-mapping methods (memfd file mapping and System V shared memory) on
// the operations the DSM exercises: page update through the system view,
// protection flips, and the full remote-fault service path on a 2-node
// cluster.
#include <benchmark/benchmark.h>

#include <sys/mman.h>

#include <cstring>
#include <vector>

#include "dsm/cluster.hpp"
#include "dsm/mapping.hpp"

namespace parade::dsm {
namespace {

MapMethod method_of(benchmark::State& state) {
  return state.range(0) == 0 ? MapMethod::kMemfd : MapMethod::kSysV;
}

void set_label(benchmark::State& state) {
  state.SetLabel(to_string(method_of(state)));
}

void BM_MappedPageUpdate(benchmark::State& state) {
  auto mapping = SegmentPool::create(1 << 20, 4096, method_of(state));
  if (!mapping.is_ok()) {
    state.SkipWithError("mapping unavailable");
    return;
  }
  auto& m = *mapping.value();
  std::vector<std::uint8_t> page(4096, 0xAB);
  std::size_t at = 0;
  for (auto _ : state) {
    // The install path: copy through the system view, then open the page.
    std::memcpy(m.sys_view() + at * 4096, page.data(), 4096);
    (void)m.protect_app(at * 4096, 4096, PROT_READ);
    at = (at + 1) % 256;
  }
  set_label(state);
}
BENCHMARK(BM_MappedPageUpdate)->Arg(0)->Arg(1);

void BM_MappedProtectFlip(benchmark::State& state) {
  auto mapping = SegmentPool::create(1 << 20, 4096, method_of(state));
  if (!mapping.is_ok()) {
    state.SkipWithError("mapping unavailable");
    return;
  }
  auto& m = *mapping.value();
  std::size_t at = 0;
  for (auto _ : state) {
    (void)m.protect_app(at * 4096, 4096, PROT_READ | PROT_WRITE);
    (void)m.protect_app(at * 4096, 4096, PROT_NONE);
    at = (at + 1) % 256;
  }
  set_label(state);
}
BENCHMARK(BM_MappedProtectFlip)->Arg(0)->Arg(1);

void BM_RemoteFaultService(benchmark::State& state) {
  DsmConfig config;
  config.pool_bytes = 8 << 20;
  config.map_method = method_of(state);
  DsmCluster cluster(2, config);
  auto* data = static_cast<std::uint8_t*>(cluster.node(0).shmalloc(4 << 20));
  (void)cluster.node(1).shmalloc(4 << 20);
  const std::byte* base1 = cluster.node(1).base();
  const std::size_t off = cluster.node(0).offset_of(data);
  const std::size_t npages = (4u << 20) / 4096 - 1;
  std::size_t page = 0;
  for (auto _ : state) {
    volatile std::uint8_t sink =
        static_cast<std::uint8_t>(*(base1 + off + page * 4096));
    benchmark::DoNotOptimize(sink);
    page = (page + 1) % npages;
    if (page == 0) state.SkipWithError("exhausted fresh pages");
  }
  set_label(state);
  cluster.shutdown();
}
BENCHMARK(BM_RemoteFaultService)->Arg(0)->Arg(1)->Iterations(500);

}  // namespace
}  // namespace parade::dsm

BENCHMARK_MAIN();
