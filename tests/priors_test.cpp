// Static protocol priors end to end: the hints-sidecar loader (schema
// validation, symbol filtering), the PARADE_HINTS file path, page-table
// seeding at start() (prior_seeded_pages counter, per-page queries), and the
// barrier-time behaviour change — a non-migration-friendly prior pins a
// page's home where the default policy would migrate it to the sole writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "dsm/cluster.hpp"
#include "dsm/priors.hpp"
#include "net/fault.hpp"
#include "obs/registry.hpp"

namespace parade::dsm {
namespace {

const char* kSidecar =
    "{\"version\":1,\"page_bytes\":4096,\"threshold_bytes\":256,"
    "\"symbols\":["
    "{\"name\":\"grid\",\"bytes\":8192,\"dsm\":true,\"offset_known\":true,"
    "\"pool_offset\":0,\"prefer_update\":false,\"migration_friendly\":false,"
    "\"expected_page_touches\":2},"
    "{\"name\":\"acc\",\"bytes\":8,\"dsm\":true,\"offset_known\":true,"
    "\"pool_offset\":8192,\"prefer_update\":true,\"migration_friendly\":true,"
    "\"expected_page_touches\":1},"
    "{\"name\":\"replicated\",\"bytes\":8,\"dsm\":false,"
    "\"offset_known\":false,\"pool_offset\":0,\"prefer_update\":true,"
    "\"migration_friendly\":true,\"expected_page_touches\":1}"
    "]}";

TEST(PriorsParse, FiltersToDsmSymbolsWithKnownOffsets) {
  auto priors = parse_page_priors(kSidecar);
  ASSERT_TRUE(priors.is_ok()) << priors.status().to_string();
  ASSERT_EQ(priors.value().size(), 2u);  // "replicated" carries no range
  const PagePrior& grid = priors.value()[0];
  EXPECT_EQ(grid.offset, 0u);
  EXPECT_EQ(grid.bytes, 8192u);
  EXPECT_FALSE(grid.migration_friendly);
  EXPECT_FALSE(grid.prefer_update);
  EXPECT_EQ(grid.expected_touches, 2u);
  const PagePrior& acc = priors.value()[1];
  EXPECT_EQ(acc.offset, 8192u);
  EXPECT_TRUE(acc.prefer_update);
  EXPECT_TRUE(acc.migration_friendly);
}

TEST(PriorsParse, RejectsMalformedAndWrongVersion) {
  EXPECT_FALSE(parse_page_priors("{not json").is_ok());
  EXPECT_FALSE(parse_page_priors("{\"version\":3,\"symbols\":[]}").is_ok());
  // v2 (phased) sidecars are accepted by this runtime.
  EXPECT_TRUE(parse_page_priors("{\"version\":2,\"symbols\":[]}").is_ok());
  EXPECT_FALSE(parse_page_priors("[1,2,3]").is_ok());
  // Empty symbol list is a valid empty result, not an error.
  auto empty = parse_page_priors("{\"version\":1,\"symbols\":[]}");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(PriorsParse, LoadsFromFileIntoConfig) {
  const std::string path = ::testing::TempDir() + "parade_priors_test.json";
  {
    std::ofstream out(path);
    out << kSidecar;
  }
  DsmConfig config;
  ASSERT_TRUE(load_page_priors(path, &config).is_ok());
  EXPECT_EQ(config.page_priors.size(), 2u);
  std::remove(path.c_str());

  DsmConfig untouched;
  EXPECT_FALSE(load_page_priors("/nonexistent/hints.json", &untouched).is_ok());
  EXPECT_TRUE(untouched.page_priors.empty());
}

TEST(PriorsSeed, PagesMarkedAndCounted) {
  DsmConfig config;
  config.pool_bytes = 4 << 20;
  // Pages 0-1 pinned, page 2 update-biased, the rest untouched.
  config.page_priors.push_back(
      PagePrior{0, 2 * 4096, false, /*migration_friendly=*/false, 2});
  config.page_priors.push_back(
      PagePrior{2 * 4096, 8, /*prefer_update=*/true, true, 1});
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    DsmNode& node = cluster.node(rank);
    EXPECT_FALSE(node.prior_allows_migration(0));
    EXPECT_FALSE(node.prior_allows_migration(1));
    EXPECT_TRUE(node.prior_allows_migration(2));
    EXPECT_FALSE(node.prior_prefers_update(0));
    EXPECT_TRUE(node.prior_prefers_update(2));
    EXPECT_TRUE(node.prior_allows_migration(3));
    EXPECT_EQ(node.stats().snapshot().prior_seeded_pages, 3);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(PriorsSeed, NoPriorsChangesNothing) {
  DsmConfig config;
  config.pool_bytes = 4 << 20;
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    DsmNode& node = cluster.node(rank);
    EXPECT_TRUE(node.prior_allows_migration(0));
    EXPECT_FALSE(node.prior_prefers_update(0));
    EXPECT_EQ(node.stats().snapshot().prior_seeded_pages, 0);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(PriorsMigration, PinnedPageKeepsHomeSoleWriterWouldTake) {
  // Baseline (no prior): node 1 is the sole modifier, so the §5.2.2 rule
  // migrates the page's home to node 1 at the barrier.
  {
    DsmConfig config;
    config.pool_bytes = 4 << 20;
    DsmCluster cluster(2, config);
    cluster.run([&](NodeId rank) {
      auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
      const PageId page =
          static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
      cluster.node(rank).barrier();
      if (rank == 1) *data = 7;
      cluster.node(rank).barrier();
      EXPECT_EQ(cluster.node(rank).home_of(page), 1);
      EXPECT_EQ(*data, 7);
      cluster.node(rank).barrier();
    });
    cluster.shutdown();
  }
  // Same traffic with a non-migration-friendly prior covering the page: the
  // home stays pinned at node 0 and no migration is counted.
  {
    DsmConfig config;
    config.pool_bytes = 4 << 20;
    config.page_priors.push_back(
        PagePrior{0, 4096, false, /*migration_friendly=*/false, 1});
    DsmCluster cluster(2, config);
    cluster.run([&](NodeId rank) {
      auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
      const PageId page =
          static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
      cluster.node(rank).barrier();
      if (rank == 1) *data = 7;
      cluster.node(rank).barrier();
      EXPECT_EQ(cluster.node(rank).home_of(page), 0);
      EXPECT_EQ(*data, 7);  // pinned home still merges the diff correctly
      cluster.node(rank).barrier();
    });
    const auto master_stats = cluster.node(0).stats().snapshot();
    EXPECT_EQ(master_stats.home_migrations, 0);
    cluster.shutdown();
  }
}

TEST(PriorsMigration, UncoveredPagesStillMigrate) {
  DsmConfig config;
  config.pool_bytes = 4 << 20;
  // Prior covers page 0 only; the second allocation's page is uncovered.
  config.page_priors.push_back(
      PagePrior{0, 4096, false, /*migration_friendly=*/false, 1});
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    auto* pinned = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    auto* free_page =
        static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    const PageId pinned_page =
        static_cast<PageId>(cluster.node(rank).offset_of(pinned) / 4096);
    const PageId movable_page =
        static_cast<PageId>(cluster.node(rank).offset_of(free_page) / 4096);
    cluster.node(rank).barrier();
    if (rank == 1) {
      *pinned = 1;
      *free_page = 2;
    }
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(pinned_page), 0);
    EXPECT_EQ(cluster.node(rank).home_of(movable_page), 1);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(PriorsParse, V2PhasesYieldEpochRangedPriors) {
  const char* sidecar =
      "{\"version\":2,\"page_bytes\":4096,\"threshold_bytes\":256,"
      "\"epoch_base\":1,"
      "\"symbols\":[{\"name\":\"grid\",\"bytes\":4096,\"dsm\":true,"
      "\"offset_known\":true,\"pool_offset\":0,\"prefer_update\":false,"
      "\"migration_friendly\":false,\"expected_page_touches\":1}],"
      "\"phases\":["
      "{\"index\":0,\"ranges\":[{\"symbol\":\"grid\",\"offset\":0,"
      "\"bytes\":4096,\"pattern\":\"producer_consumer\","
      "\"prefer_update\":false,\"migration_friendly\":true}]},"
      "{\"index\":1,\"ranges\":[{\"symbol\":\"grid\",\"offset\":0,"
      "\"bytes\":4096,\"pattern\":\"ping_pong\",\"prefer_update\":false,"
      "\"migration_friendly\":false}]}"
      "]}";
  auto priors = parse_page_priors(sidecar);
  ASSERT_TRUE(priors.is_ok()) << priors.status().to_string();
  ASSERT_EQ(priors.value().size(), 3u);
  // The per-symbol record stays a whole-program prior.
  EXPECT_EQ(priors.value()[0].phase, -1);
  EXPECT_FALSE(priors.value()[0].migration_friendly);
  // Phase records fold index with epoch_base: phase p -> epoch p + base.
  EXPECT_EQ(priors.value()[1].phase, 1);
  EXPECT_TRUE(priors.value()[1].migration_friendly);
  EXPECT_EQ(priors.value()[2].phase, 2);
  EXPECT_FALSE(priors.value()[2].migration_friendly);
}

/// Shared scenario for the phased-projection tests: page 0 carries a
/// whole-program home pin that a phase prior at epoch 2 relaxes. Node 1 is
/// the sole writer in epochs 1 and 2; §5.2.2 migration must stay vetoed for
/// the first write and fire for the second, and every node must observe the
/// re-projection through prior_seeded_pages. Returns the summed
/// dsm.invariant.violations across the cluster.
std::int64_t run_phased_scenario(std::optional<std::uint64_t> fault_seed) {
  DsmConfig config;
  config.pool_bytes = 4 << 20;
  if (fault_seed.has_value()) {
    config.retry.timeout_ms = 50;
    config.retry.max_attempts = 400;
  }
  PagePrior pinned{0, 4096, false, /*migration_friendly=*/false, 1};
  PagePrior relaxed{0, 4096, false, /*migration_friendly=*/true, 1};
  relaxed.phase = 2;
  config.page_priors.push_back(pinned);
  config.page_priors.push_back(relaxed);
  const int nodes = 2;
  auto cluster =
      fault_seed.has_value()
          ? std::make_unique<DsmCluster>(nodes, config,
                                         net::default_chaos_plan(*fault_seed))
          : std::make_unique<DsmCluster>(nodes, config);
  cluster->run([&](NodeId rank) {
    DsmNode& node = cluster->node(rank);
    auto* data = static_cast<int*>(node.shmalloc(4096, 4096));
    const PageId page = static_cast<PageId>(node.offset_of(data) / 4096);
    // Epoch 0: only the whole-program pin is projected.
    EXPECT_FALSE(node.prior_allows_migration(page));
    node.barrier();  // -> epoch 1 (no phase-1 priors: pin stays)
    EXPECT_FALSE(node.prior_allows_migration(page));
    if (rank == 1) *data = 7;
    node.barrier();  // closes epoch 1 under the pin -> epoch 2
    EXPECT_EQ(node.home_of(page), 0);  // sole writer vetoed
    // Only the writer re-reads here: other ranks checking the value would
    // race with the epoch-2 write below.
    if (rank == 1) EXPECT_EQ(*data, 7);
    // Epoch 2: the phase prior overrides (relaxes) the whole-program pin.
    EXPECT_TRUE(node.prior_allows_migration(page));
    if (rank == 1) *data = 8;
    node.barrier();  // closes epoch 2 relaxed -> epoch 3
    EXPECT_EQ(node.home_of(page), 1);  // §5.2.2 migration fired this time
    EXPECT_EQ(*data, 8);
    // Sticky tail: epochs past the last phased prior keep its projection,
    // and the unchanged phase is not re-counted.
    EXPECT_TRUE(node.prior_allows_migration(page));
    // One projection each at epochs 0, 1 and 2; epoch 3 reuses phase 2.
    EXPECT_EQ(node.stats().snapshot().prior_seeded_pages, 3);
    node.barrier();
  });
  std::int64_t violations = 0;
  auto& reg = obs::Registry::instance();
  for (NodeId n = 0; n < nodes; ++n) {
    violations += reg.counter(n, "dsm.invariant.violations").value();
  }
  cluster->shutdown();
  return violations;
}

TEST(PriorsPhased, ReprojectionGatesMigrationPerEpoch) {
  EXPECT_EQ(run_phased_scenario(std::nullopt), 0);
}

// Chaos variant (tier2-chaos): the same epoch-ranged projection decisions
// must survive a faulty fabric with zero invariant violations.
TEST(PriorsPhasedChaos, ReprojectionSurvivesFaultInjection) {
  EXPECT_EQ(run_phased_scenario(0xC0FFEEu), 0);
}

TEST(PriorsEmbedded, RegistrationRoundTrip) {
  EXPECT_EQ(embedded_hints_json(), nullptr);
  static const char kBlob[] = "{\"version\":1,\"symbols\":[]}";
  set_embedded_hints_json(kBlob);
  EXPECT_STREQ(embedded_hints_json(), kBlob);
  set_embedded_hints_json(nullptr);
  EXPECT_EQ(embedded_hints_json(), nullptr);
}

}  // namespace
}  // namespace parade::dsm
