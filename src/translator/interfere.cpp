#include "translator/interfere.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "translator/cfg.hpp"
#include "translator/token.hpp"

namespace parade::translator {
namespace {

// Internal lock names that cannot collide with user critical(name) labels.
const char* const kDefaultCriticalLock = "\x01critical";
const char* const kOrderedLock = "\x01ordered";

/// Strict integer-literal parse; false on anything else (mirrors hints.cpp).
bool parse_literal(const std::string& text, long long* out) {
  std::string trimmed;
  for (char c : text) {
    if (c != ' ') trimmed += c;
  }
  if (trimmed.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(trimmed.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

/// Idents appearing inside `name [ ... ]` subscripts within `text`.
std::set<std::string> subscript_idents(const std::string& text,
                                       const std::string& name) {
  std::set<std::string> idents;
  auto tokens_result = lex(text);
  if (!tokens_result.is_ok()) return idents;
  const auto tokens = std::move(tokens_result).value();
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdent || tokens[i].text != name ||
        !tokens[i + 1].is_punct("[")) {
      continue;
    }
    int depth = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      if (tokens[j].is_punct("[")) {
        ++depth;
      } else if (tokens[j].is_punct("]")) {
        if (--depth == 0 &&
            (j + 1 >= tokens.size() || !tokens[j + 1].is_punct("["))) {
          break;
        }
      } else if (depth > 0 && tokens[j].kind == TokKind::kIdent) {
        idents.insert(tokens[j].text);
      }
    }
  }
  return idents;
}

/// Walks the unit in program order building the region-sequence graph:
/// phase/step counters advance at the barrier points codegen actually emits
/// (global barriers bump both — they bump the DSM epoch at runtime — while
/// node-local order points such as a non-nowait `single` bump only the
/// step, which is the MHP granule).
class SeqWalker {
 public:
  SeqWalker(const Analysis& analysis,
            std::map<std::string, long long> literals)
      : analysis_(analysis), literals_(std::move(literals)) {}

  RegionSequence run(const TranslationUnit& unit) {
    for (const TopItem& item : unit.items) {
      if (item.kind != TopItem::Kind::kFunction) continue;
      scopes_.emplace_back();
      if (item.function.body) visit(*item.function.body);
      scopes_.pop_back();
    }
    seq_.phase_count = phase_ + 1;
    seq_.step_count = step_ + 1;
    for (const auto& [name, vc] : analysis_.globals) {
      (void)name;
      if (vc.placement == Placement::kDsmScalar ||
          vc.placement == Placement::kDsmArray) {
        // Codegen allocates the DSM pool in __parade_shared_init(), which
        // ends with a global barrier: user phase 0 starts at epoch 1.
        seq_.epoch_base = 1;
        break;
      }
    }
    return std::move(seq_);
  }

 private:
  struct LoopCtx {
    std::string var;
    long long trips = 0;  // 0 = statically unknown
    bool worksharing = false;
  };

  bool resolve(const std::string& text, long long* out) const {
    if (parse_literal(text, out)) return true;
    std::string trimmed;
    for (char c : text) {
      if (c != ' ') trimmed += c;
    }
    auto it = literals_.find(trimmed);
    if (it != literals_.end()) {
      *out = it->second;
      return true;
    }
    return false;
  }

  long long trip_count(const ForHeader& h) const {
    if (!h.canonical) return 0;
    long long lo = 0;
    long long hi = 0;
    long long step = 1;
    if (!resolve(h.lower, &lo) || !resolve(h.upper, &hi) ||
        !resolve(h.step, &step) || step == 0) {
      return 0;
    }
    long long span = h.increasing ? hi - lo : lo - hi;
    if (h.inclusive) ++span;
    if (span <= 0) return 0;
    const long long abs_step = step < 0 ? -step : step;
    return (span + abs_step - 1) / abs_step;
  }

  /// Product of enclosing known loop trips (unknown loops count as 1: the
  /// estimate is a lower bound, absorbed by the cost-model tolerance).
  long long trip_multiplier() const {
    long long mult = 1;
    for (const LoopCtx& l : loops_) {
      if (l.trips > 0) mult *= l.trips;
    }
    return mult;
  }

  bool shadowed(const std::string& name) const {
    for (const auto& scope : scopes_) {
      if (scope.count(name) > 0) return true;
    }
    return false;
  }

  void bump_phase() {
    ++phase_;
    ++step_;
    // A global barrier inside a loop makes the phase timeline data-dependent
    // (it fires once per iteration): phase-aware hints are withheld.
    if (!loops_.empty()) seq_.phases_static = false;
  }

  int open_construct(const char* kind, int line, bool nowait, int sync_line) {
    SeqConstruct c;
    c.id = static_cast<int>(seq_.constructs.size());
    c.line = line;
    c.kind = kind;
    c.phase = phase_;
    c.step = step_;
    c.parallel = parallel_depth_ > 0;
    c.nowait = nowait;
    c.per_thread = per_thread_;
    c.trips = trip_multiplier();
    c.sync_line = sync_line;
    seq_.constructs.push_back(c);
    return c.id;
  }

  void record_accesses(const std::string& text, int line) {
    if (text.empty()) return;
    const AccessScan acc = scan_accesses(text);
    auto record = [&](const std::string& name, bool write) {
      if (shadowed(name)) return;
      if (analysis_.globals.find(name) == analysis_.globals.end()) return;
      SeqAccess a;
      a.symbol = name;
      a.write = write;
      a.line = line;
      a.phase = phase_;
      a.step = step_;
      a.construct_id = construct_;
      a.trips = trip_multiplier();
      a.parallel = parallel_depth_ > 0;
      a.guarded = guard_depth_ > 0 || !lock_stack_.empty();
      a.in_critical = !lock_stack_.empty();
      a.serial_guard = serial_guards_.empty() ? -1 : serial_guards_.back();
      a.master_guard = master_depth_ > 0;
      a.per_thread = per_thread_;
      a.locks = lock_stack_;
      std::sort(a.locks.begin(), a.locks.end());
      if (write) {
        // Partitioned: the subscript runs over a worksharing loop variable,
        // so team members write disjoint affine slices.
        for (const std::string& sub : subscript_idents(text, name)) {
          for (const LoopCtx& l : loops_) {
            if (l.worksharing && l.var == sub) {
              a.partitioned = true;
              break;
            }
          }
          if (a.partitioned) break;
        }
      }
      seq_.accesses.push_back(std::move(a));
    };
    for (const std::string& r : acc.reads) record(r, /*write=*/false);
    for (const AccessScan::Write& w : acc.writes) {
      if (!w.deref) record(w.name, /*write=*/true);
    }
  }

  void visit_children(const Stmt& stmt) {
    for (const StmtPtr& child : stmt.children) {
      if (child) visit(*child);
    }
  }

  void visit_worksharing_for(const Directive& d, const Stmt& for_stmt) {
    const ForHeader& h = for_stmt.for_header;
    const int id = open_construct("for", d.line, d.clauses.nowait, -1);
    seq_.constructs[id].trips = trip_multiplier() * std::max(
        1LL, trip_count(h));
    scopes_.emplace_back();
    shadow_clause_vars(d.clauses);
    if (h.canonical) scopes_.back().insert(h.loop_var);
    record_accesses(h.init_text, for_stmt.line);
    record_accesses(h.cond_text, for_stmt.line);
    record_accesses(h.incr_text, for_stmt.line);
    loops_.push_back(LoopCtx{h.canonical ? h.loop_var : "", trip_count(h),
                             /*worksharing=*/true});
    const int saved_construct = construct_;
    const bool saved_per_thread = per_thread_;
    construct_ = id;
    per_thread_ = false;  // worksharing splits iterations across the team
    visit_children(for_stmt);
    per_thread_ = saved_per_thread;
    construct_ = saved_construct;
    loops_.pop_back();
    scopes_.pop_back();
    if (!d.clauses.nowait) bump_phase();  // runtime parallel_for barrier()
  }

  void shadow_clause_vars(const Clauses& c) {
    for (const std::string& v : c.privates) scopes_.back().insert(v);
    for (const std::string& v : c.firstprivate) scopes_.back().insert(v);
    for (const std::string& v : c.lastprivate) scopes_.back().insert(v);
    for (const auto& [op, v] : c.reductions) {
      (void)op;
      scopes_.back().insert(v);  // merged by collectives, no page traffic
    }
  }

  void visit_pragma(const Stmt& stmt) {
    const Directive& d = stmt.directive;
    const Stmt* body =
        stmt.children.empty() ? nullptr : stmt.children.front().get();
    switch (d.kind) {
      case DirectiveKind::kParallel: {
        const int id = open_construct("parallel", d.line, false, -1);
        scopes_.emplace_back();
        shadow_clause_vars(d.clauses);
        const int saved_construct = construct_;
        construct_ = id;
        ++parallel_depth_;
        per_thread_ = true;
        if (body) visit(*body);
        per_thread_ = false;
        --parallel_depth_;
        construct_ = saved_construct;
        scopes_.pop_back();
        bump_phase();  // Team::run_region ends with barrier_global()
        return;
      }
      case DirectiveKind::kParallelFor: {
        scopes_.emplace_back();
        shadow_clause_vars(d.clauses);
        ++parallel_depth_;
        if (body != nullptr && body->kind == StmtKind::kFor) {
          visit_worksharing_for(d, *body);
        } else if (body != nullptr) {
          visit(*body);
        }
        --parallel_depth_;
        scopes_.pop_back();
        bump_phase();  // region-end barrier on top of the loop's
        return;
      }
      case DirectiveKind::kParallelSections:
      case DirectiveKind::kSections: {
        const bool combined = d.kind == DirectiveKind::kParallelSections;
        const int id = open_construct("sections", d.line,
                                      d.clauses.nowait && !combined, -1);
        scopes_.emplace_back();
        shadow_clause_vars(d.clauses);
        const int saved_construct = construct_;
        const bool saved_per_thread = per_thread_;
        construct_ = id;
        if (combined) ++parallel_depth_;
        per_thread_ = false;  // each section body runs exactly once
        if (body) visit_children(*body);
        per_thread_ = saved_per_thread;
        if (combined) --parallel_depth_;
        construct_ = saved_construct;
        scopes_.pop_back();
        if (combined) {
          bump_phase();  // sections' parallel_for barrier
          bump_phase();  // region-end barrier
        } else if (!d.clauses.nowait) {
          bump_phase();
        }
        return;
      }
      case DirectiveKind::kFor:
        if (body != nullptr && body->kind == StmtKind::kFor) {
          visit_worksharing_for(d, *body);
        } else if (body != nullptr) {
          visit(*body);
        }
        return;
      case DirectiveKind::kSingle: {
        const int id = open_construct("single", d.line, d.clauses.nowait, -1);
        scopes_.emplace_back();
        shadow_clause_vars(d.clauses);
        const int saved_construct = construct_;
        const bool saved_per_thread = per_thread_;
        construct_ = id;
        per_thread_ = false;
        serial_guards_.push_back(id);
        ++guard_depth_;
        if (body) visit(*body);
        --guard_depth_;
        serial_guards_.pop_back();
        per_thread_ = saved_per_thread;
        construct_ = saved_construct;
        scopes_.pop_back();
        // Non-nowait single ends in a *node-local* barrier: an intra-node
        // order point (step), but no DSM epoch bump (phase unchanged).
        if (!d.clauses.nowait) ++step_;
        return;
      }
      case DirectiveKind::kMaster: {
        const int id = open_construct("master", d.line, false, -1);
        const int saved_construct = construct_;
        const bool saved_per_thread = per_thread_;
        construct_ = id;
        per_thread_ = false;
        serial_guards_.push_back(id);
        ++guard_depth_;
        ++master_depth_;
        if (body) visit(*body);
        --master_depth_;
        --guard_depth_;
        serial_guards_.pop_back();
        per_thread_ = saved_per_thread;
        construct_ = saved_construct;
        return;
      }
      case DirectiveKind::kCritical: {
        const int id = open_construct("critical", d.line, false, d.line);
        const int saved_construct = construct_;
        construct_ = id;
        lock_stack_.push_back(d.clauses.critical_name.empty()
                                  ? kDefaultCriticalLock
                                  : d.clauses.critical_name);
        if (body) visit(*body);
        lock_stack_.pop_back();
        construct_ = saved_construct;
        return;
      }
      case DirectiveKind::kAtomic: {
        const int id = open_construct("atomic", d.line, false, d.line);
        const int saved_construct = construct_;
        construct_ = id;
        // An atomic serializes against other atomics on the same location
        // only; model it as a per-variable lock.
        std::string target;
        if (body != nullptr && body->kind == StmtKind::kRaw) {
          if (auto shape = match_scalar_update(body->text)) {
            target = shape->var;
          }
        }
        lock_stack_.push_back(std::string("\x01") + "atomic:" + target);
        if (body) visit(*body);
        lock_stack_.pop_back();
        construct_ = saved_construct;
        return;
      }
      case DirectiveKind::kOrdered: {
        // Ordered bodies execute in iteration order: mutually serialized.
        ++guard_depth_;
        lock_stack_.push_back(kOrderedLock);
        if (body) visit(*body);
        lock_stack_.pop_back();
        --guard_depth_;
        return;
      }
      case DirectiveKind::kBarrier:
        bump_phase();
        return;
      case DirectiveKind::kFlush:
        bump_phase();  // codegen approximates flush by a global barrier
        return;
      case DirectiveKind::kSection:
      case DirectiveKind::kThreadprivate:
        if (body) visit(*body);
        return;
    }
  }

  void visit(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kRaw:
        record_accesses(stmt.text, stmt.line);
        return;
      case StmtKind::kDecl:
        for (const Declarator& d : stmt.declarators) {
          if (!d.init.empty()) record_accesses(d.init, stmt.line);
          scopes_.back().insert(d.name);
        }
        return;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        visit_children(stmt);
        scopes_.pop_back();
        return;
      case StmtKind::kFor: {
        const ForHeader& h = stmt.for_header;
        record_accesses(h.init_text, stmt.line);
        record_accesses(h.cond_text, stmt.line);
        record_accesses(h.incr_text, stmt.line);
        scopes_.emplace_back();
        if (h.canonical && !h.var_decl_type.empty()) {
          scopes_.back().insert(h.loop_var);
        }
        loops_.push_back(LoopCtx{h.canonical ? h.loop_var : "",
                                 trip_count(h), /*worksharing=*/false});
        visit_children(stmt);
        loops_.pop_back();
        scopes_.pop_back();
        return;
      }
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        record_accesses(stmt.cond, stmt.line);
        loops_.push_back(LoopCtx{"", 0, false});
        visit_children(stmt);
        loops_.pop_back();
        return;
      case StmtKind::kIf:
      case StmtKind::kSwitch:
        record_accesses(stmt.cond, stmt.line);
        visit_children(stmt);
        return;
      case StmtKind::kPragma:
        visit_pragma(stmt);
        return;
      case StmtKind::kHashLine:
      case StmtKind::kEmpty:
        return;
    }
  }

  const Analysis& analysis_;
  std::map<std::string, long long> literals_;
  RegionSequence seq_;
  int phase_ = 0;
  int step_ = 0;
  int parallel_depth_ = 0;
  int guard_depth_ = 0;   // single/master/ordered nesting
  int master_depth_ = 0;
  int construct_ = -1;
  bool per_thread_ = false;
  std::vector<LoopCtx> loops_;
  std::vector<std::string> lock_stack_;
  std::vector<int> serial_guards_;
  std::vector<std::set<std::string>> scopes_;  // shadowed (non-global) names
};

std::map<std::string, long long> collect_literals(const TranslationUnit& unit) {
  std::map<std::string, long long> literals;
  for (const TopItem& item : unit.items) {
    if (item.kind != TopItem::Kind::kDecl) continue;
    for (const Declarator& d : item.stmt->declarators) {
      long long v = 0;
      if (!d.is_function && d.array_dims.empty() && !d.init.empty() &&
          parse_literal(d.init, &v)) {
        literals[d.name] = v;
      }
    }
  }
  return literals;
}

bool dsm_placed(const Analysis& analysis, const std::string& symbol) {
  auto it = analysis.globals.find(symbol);
  return it != analysis.globals.end() &&
         (it->second.placement == Placement::kDsmScalar ||
          it->second.placement == Placement::kDsmArray);
}

/// True when the access's enclosing sync site ended up on the collective
/// path: the team_update collective propagates the value itself, no DSM
/// page traffic.
bool collective_managed(const Analysis& analysis, const RegionSequence& seq,
                        const SeqAccess& a) {
  if (a.construct_id < 0) return false;
  const SeqConstruct& c = seq.constructs[static_cast<std::size_t>(
      a.construct_id)];
  if (c.sync_line < 0) return false;
  auto site = analysis.sync_sites.find(c.sync_line);
  return site != analysis.sync_sites.end() && site->second.collective;
}

/// Per-symbol, per-phase interference timeline entry.
struct PhaseAcc {
  std::size_t reads = 0;   // syntactic occurrences (PR-8 counting discipline)
  std::size_t writes = 0;
  std::set<int> writer_constructs;
  std::vector<const SeqAccess*> write_accesses;
  std::vector<const SeqAccess*> read_accesses;
  bool ping_pong = false;
  SharingPattern pattern = SharingPattern::kReadMostly;
};

/// symbol -> phase -> accounting. Only DSM-placed symbols are tracked: the
/// replicated ones synchronize via collectives and never page-fault.
using Timeline = std::map<std::string, std::map<int, PhaseAcc>>;

Timeline build_timeline(const RegionSequence& seq, const Analysis& analysis) {
  Timeline timeline;
  for (const SeqAccess& a : seq.accesses) {
    if (!dsm_placed(analysis, a.symbol)) continue;
    if (collective_managed(analysis, seq, a)) continue;
    PhaseAcc& acc = timeline[a.symbol][a.phase];
    if (a.write) {
      acc.writes += 1;
      acc.writer_constructs.insert(a.construct_id);
      acc.write_accesses.push_back(&a);
    } else {
      acc.reads += 1;
      acc.read_accesses.push_back(&a);
    }
  }

  for (auto& [symbol, phases] : timeline) {
    const bool scalar =
        analysis.globals.at(symbol).placement == Placement::kDsmScalar;
    // Phases that write the symbol, in order, for cross-phase flow checks.
    std::vector<int> writing_phases;
    for (const auto& [phase, acc] : phases) {
      if (acc.writes > 0) writing_phases.push_back(phase);
    }
    for (auto& [phase, acc] : phases) {
      if (acc.writes == 0) {
        acc.pattern = SharingPattern::kReadMostly;
        continue;
      }
      // Ping-pong: two writers may overlap, or the whole team funnels
      // serialized writes through one shared location (lock convoys move
      // the page node-to-node even though no data race exists).
      for (std::size_t i = 0;
           !acc.ping_pong && i < acc.write_accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < acc.write_accesses.size(); ++j) {
          if (may_happen_in_parallel(*acc.write_accesses[i],
                                     *acc.write_accesses[j])) {
            acc.ping_pong = true;
            break;
          }
        }
      }
      if (!acc.ping_pong) {
        for (const SeqAccess* w : acc.write_accesses) {
          if (w->parallel && w->serial_guard < 0 && !w->master_guard &&
              (scalar || !w->partitioned)) {
            acc.ping_pong = true;
            break;
          }
        }
      }
      if (acc.ping_pong) {
        acc.pattern = SharingPattern::kPingPong;
        continue;
      }
      // Sole effective writer. Written in other phases too -> the writer
      // (and thus the ideal home) moves across phases: migratory. A single
      // writing phase feeding later readers -> producer/consumer.
      if (writing_phases.size() > 1) {
        acc.pattern = SharingPattern::kMigratory;
        continue;
      }
      bool later_reader = false;
      for (const auto& [other_phase, other] : phases) {
        if (other_phase > phase && other.reads > 0) {
          later_reader = true;
          break;
        }
      }
      acc.pattern = later_reader ? SharingPattern::kProducerConsumer
                                 : SharingPattern::kMigratory;
    }
  }
  return timeline;
}

}  // namespace

RegionSequence build_region_sequence(const TranslationUnit& unit,
                                     const Analysis& analysis) {
  SeqWalker walker(analysis, collect_literals(unit));
  return walker.run(unit);
}

bool may_happen_in_parallel(const SeqAccess& a, const SeqAccess& b) {
  if (a.step != b.step) return false;        // ordered by a barrier
  if (!a.parallel || !b.parallel) return false;
  if (a.master_guard && b.master_guard) return false;  // same global thread
  if (a.serial_guard >= 0 && a.serial_guard == b.serial_guard) {
    return false;  // same single/master instance executes once
  }
  for (const std::string& lock : a.locks) {
    if (std::find(b.locks.begin(), b.locks.end(), lock) != b.locks.end()) {
      return false;  // common lock serializes the pair
    }
  }
  return true;
}

void run_interference(const TranslationUnit& unit,
                      const AnalyzeOptions& options, Analysis* analysis) {
  const RegionSequence seq = build_region_sequence(unit, *analysis);
  ProtocolHints& hints = analysis->hints;
  hints.phase_count = seq.phase_count;
  hints.epoch_base = seq.epoch_base;

  const Timeline timeline = build_timeline(seq, *analysis);

  // --- Phase-aware hint lowering -----------------------------------------
  // Per-phase ranges reuse PR 8's flag formulas over the phase-restricted
  // access counts, so a single-phase program degrades to exactly the
  // whole-program hints (asserted as a property test).
  if (seq.phases_static) {
    std::map<int, PhaseHint> by_phase;
    for (const auto& [symbol, phases] : timeline) {
      const SymbolHint* h = hints.find(symbol);
      if (h == nullptr || !h->dsm || !h->offset_known) continue;
      std::size_t span = h->byte_size > 0 ? h->byte_size : h->footprint_bytes;
      if (span == 0) span = options.page_bytes;
      for (const auto& [phase, acc] : phases) {
        PhaseRange r;
        r.symbol = symbol;
        r.offset = h->pool_offset;
        r.bytes = span;
        r.pattern = acc.pattern;
        r.prefer_update = h->byte_size > 0 &&
                          h->byte_size <= 4 * options.mp_threshold_bytes &&
                          acc.writes > 0 && acc.reads >= 2 * acc.writes;
        r.migration_friendly = acc.writer_constructs.size() <= 1;
        by_phase[phase].ranges.push_back(std::move(r));
      }
    }
    for (auto& [phase, ph] : by_phase) {
      ph.index = phase;
      hints.phases.push_back(std::move(ph));
    }
  }

  // --- hint.pingpong_update_demotion -------------------------------------
  // A symbol that ping-pongs in every phase that writes it never amortizes
  // the eager update broadcast: every node's copy is dirtied again before
  // being read enough times to pay off. Demote the whole-program
  // prefer_update flag (and its per-phase projections) and tell the user.
  for (const auto& [symbol, phases] : timeline) {
    SymbolHint* h = hints.find(symbol);
    if (h == nullptr || !h->prefer_update) continue;
    bool any_writes = false;
    bool all_pingpong = true;
    for (const auto& [phase, acc] : phases) {
      (void)phase;
      if (acc.writes == 0) continue;
      any_writes = true;
      if (acc.pattern != SharingPattern::kPingPong) all_pingpong = false;
    }
    if (!any_writes || !all_pingpong) continue;
    h->prefer_update = false;
    for (PhaseHint& ph : hints.phases) {
      for (PhaseRange& r : ph.ranges) {
        if (r.symbol == symbol) r.prefer_update = false;
      }
    }
    Diagnostic d;
    d.code = kDiagHintPingpongDemotion;
    d.severity = Severity::kNote;
    d.line = analysis->globals.at(symbol).line;
    d.var = symbol;
    d.message = "'" + symbol +
                "' ping-pongs between nodes in every writing phase; "
                "update-protocol prior demoted to invalidate";
    resolve_diag_columns(unit, &d);
    analysis->diagnostics.push_back(std::move(d));
  }

  // --- race.cross_region -------------------------------------------------
  // Two guarded writes that may still overlap because their guards do not
  // compose: different critical names, atomic vs critical, or a nowait
  // single racing a critical. Unguarded writes are already race.shared_write
  // (PR 3); this diagnostic is additive, like the PR-8 flow-only ones.
  std::set<std::pair<std::string, std::pair<int, int>>> reported_races;
  for (std::size_t i = 0; i < seq.accesses.size(); ++i) {
    const SeqAccess& a = seq.accesses[i];
    if (!a.write || !a.guarded) continue;
    auto g = analysis->globals.find(a.symbol);
    if (g == analysis->globals.end() ||
        g->second.placement == Placement::kThreadprivate) {
      continue;
    }
    for (std::size_t j = i + 1; j < seq.accesses.size(); ++j) {
      const SeqAccess& b = seq.accesses[j];
      if (!b.write || !b.guarded || b.symbol != a.symbol) continue;
      if (a.construct_id == b.construct_id) continue;
      if (!may_happen_in_parallel(a, b)) continue;
      const auto key = std::make_pair(
          a.symbol, std::make_pair(std::min(a.line, b.line),
                                   std::max(a.line, b.line)));
      if (!reported_races.insert(key).second) continue;
      Diagnostic d;
      d.code = kDiagRaceCrossRegion;
      d.severity = Severity::kWarning;
      d.line = std::max(a.line, b.line);
      d.var = a.symbol;
      d.message = "'" + a.symbol + "' is written at lines " +
                  std::to_string(std::min(a.line, b.line)) + " and " +
                  std::to_string(std::max(a.line, b.line)) +
                  " under synchronization that does not compose (the "
                  "guards share no lock), and no barrier orders the two "
                  "constructs";
      resolve_diag_columns(unit, &d);
      analysis->diagnostics.push_back(std::move(d));
    }
  }

  // --- nowait.cross_region_read ------------------------------------------
  // A nowait construct's writes are only published at the next *global*
  // barrier. PR 3/8 catch dependent reads inside the same block; this
  // extends the check across construct boundaries: any later read in the
  // same phase may observe the pre-write value on another node. Reads under
  // a lock are exempt (the HLRC acquire applies pending write notices), and
  // sites already carrying nowait.dependent_read are not re-reported.
  std::set<std::pair<std::string, int>> already_flagged;
  for (const Diagnostic& d : analysis->diagnostics) {
    if (d.code == kDiagNowaitDependentRead) {
      already_flagged.emplace(d.var, d.line);
    }
  }
  std::set<std::pair<std::string, int>> reported_nowait;
  for (std::size_t i = 0; i < seq.accesses.size(); ++i) {
    const SeqAccess& w = seq.accesses[i];
    if (!w.write || w.construct_id < 0) continue;
    const SeqConstruct& wc =
        seq.constructs[static_cast<std::size_t>(w.construct_id)];
    if (!wc.nowait) continue;
    if (analysis->globals.find(w.symbol) == analysis->globals.end()) continue;
    for (std::size_t j = i + 1; j < seq.accesses.size(); ++j) {
      const SeqAccess& r = seq.accesses[j];
      if (r.write || r.symbol != w.symbol) continue;
      if (r.phase != w.phase) break;  // the barrier published the write
      if (r.construct_id == w.construct_id) continue;
      if (r.in_critical) continue;
      if (already_flagged.count({r.symbol, r.line}) > 0) continue;
      if (!reported_nowait.insert({r.symbol, r.line}).second) continue;
      Diagnostic d;
      d.code = kDiagNowaitCrossRegionRead;
      d.severity = Severity::kWarning;
      d.line = r.line;
      d.var = r.symbol;
      d.message = "'" + r.symbol + "' is read here but written at line " +
                  std::to_string(w.line) +
                  " inside a nowait construct in the same phase: no barrier "
                  "publishes the write before this read on other nodes";
      resolve_diag_columns(unit, &d);
      analysis->diagnostics.push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Static message-cost model (docs/ANALYZER.md "Message-cost model").

double CostReport::total_lock_acquires() const {
  double total = 0;
  for (const ConstructCost& c : constructs) total += c.lock_acquires;
  return total;
}

double CostReport::total_page_fetches() const {
  double total = 0;
  for (const ConstructCost& c : constructs) total += c.page_fetches;
  return total;
}

double CostReport::total_diffs_created() const {
  double total = 0;
  for (const ConstructCost& c : constructs) total += c.diffs_created;
  return total;
}

std::string CostReport::to_text(const std::string& file) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  out << file << ": static message-cost estimate for " << nodes
      << " node(s), tolerance factor " << tolerance_factor << "\n";
  for (const ConstructCost& c : constructs) {
    out << file << ":" << c.line << ": " << c.kind;
    if (!c.detail.empty()) out << " (" << c.detail << ")";
    out << " -> lock_acquires=" << c.lock_acquires
        << " page_fetches=" << c.page_fetches
        << " diffs_created=" << c.diffs_created << "\n";
  }
  out << file << ": total lock_acquires=" << total_lock_acquires()
      << " page_fetches=" << total_page_fetches()
      << " diffs_created=" << total_diffs_created() << "\n";
  return out.str();
}

std::string CostReport::to_json(const std::string& file) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("file");
  w.value(file);
  w.key("nodes");
  w.value(static_cast<std::int64_t>(nodes));
  w.key("tolerance_factor");
  w.value(tolerance_factor);
  w.key("constructs");
  w.begin_array();
  for (const ConstructCost& c : constructs) {
    w.begin_object();
    w.key("line");
    w.value(static_cast<std::int64_t>(c.line));
    w.key("kind");
    w.value(c.kind);
    w.key("detail");
    w.value(c.detail);
    w.key("lock_acquires");
    w.value(c.lock_acquires);
    w.key("page_fetches");
    w.value(c.page_fetches);
    w.key("diffs_created");
    w.value(c.diffs_created);
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.key("dsm.lock_acquires");
  w.value(total_lock_acquires());
  w.key("dsm.page_fetches");
  w.value(total_page_fetches());
  w.key("dsm.diffs_created");
  w.value(total_diffs_created());
  w.end_object();
  w.end_object();
  return w.str();
}

CostReport estimate_message_costs(const TranslationUnit& unit,
                                  const AnalyzeOptions& options,
                                  const Analysis& analysis, int nodes) {
  CostReport report;
  report.nodes = nodes;
  const RegionSequence seq = build_region_sequence(unit, analysis);
  const Timeline timeline = build_timeline(seq, analysis);
  const double n = nodes;
  const double remote_frac = nodes > 1 ? (n - 1) / n : 0.0;

  // Lock messages: every execution of a DSM-path critical/atomic body takes
  // the distributed lock once (runtime dsm_lock per body execution).
  for (const SeqConstruct& c : seq.constructs) {
    if (c.sync_line < 0) continue;
    auto site = analysis.sync_sites.find(c.sync_line);
    if (site == analysis.sync_sites.end() || site->second.collective) {
      continue;
    }
    ConstructCost cost;
    cost.line = c.line;
    cost.kind = c.kind;
    cost.detail = site->second.var;
    cost.lock_acquires =
        static_cast<double>(c.trips) * (c.per_thread ? n : 1.0);
    report.constructs.push_back(std::move(cost));
  }

  // Page messages, per symbol per phase, attributed to the first accessing
  // construct of that phase (docs/ANALYZER.md lists the formulas):
  //  - ping-pong: every remote lock handoff invalidates the holder's copy;
  //    each write round-trips a fetch + a diff with probability (N-1)/N.
  //  - partitioned / sole-writer: the writer diffs each touched page once
  //    per phase; later readers (or neighbors) fetch them.
  for (const auto& [symbol, phases] : timeline) {
    const SymbolHint* h = analysis.hints.find(symbol);
    std::size_t span = 0;
    if (h != nullptr) {
      span = h->footprint_bytes > 0 ? h->footprint_bytes : h->byte_size;
    }
    if (span == 0) span = options.page_bytes;
    const double pages = std::ceil(static_cast<double>(span) /
                                   static_cast<double>(options.page_bytes));
    for (const auto& [phase, acc] : phases) {
      ConstructCost cost;
      const SeqAccess* anchor = !acc.write_accesses.empty()
                                    ? acc.write_accesses.front()
                                    : acc.read_accesses.front();
      cost.line = anchor->line;
      cost.kind = std::string("phase ") + std::to_string(phase);
      cost.detail = symbol + " [" + to_string(acc.pattern) + "]";
      switch (acc.pattern) {
        case SharingPattern::kPingPong: {
          // Pages bounce at most once per *ownership handoff*, not once per
          // store: under HLRC a node keeps the page writable until the next
          // acquire/epoch invalidates it. Lock-guarded writes hand off once
          // per body execution of the guarding sync construct; unguarded
          // concurrent writes dirty each node's copy once per phase.
          double handoffs = 0;
          std::set<int> guard_constructs;
          bool unguarded = false;
          for (const SeqAccess* w : acc.write_accesses) {
            if (!w->locks.empty() && w->construct_id >= 0) {
              guard_constructs.insert(w->construct_id);
            } else {
              unguarded = true;
            }
          }
          for (int id : guard_constructs) {
            const SeqConstruct& g =
                seq.constructs[static_cast<std::size_t>(id)];
            handoffs +=
                static_cast<double>(g.trips) * (g.per_thread ? n : 1.0);
          }
          if (unguarded) handoffs += n;
          cost.page_fetches = handoffs * remote_frac * pages;
          cost.diffs_created = handoffs * remote_frac * pages;
          break;
        }
        case SharingPattern::kProducerConsumer:
        case SharingPattern::kMigratory: {
          bool partitioned = false;
          for (const SeqAccess* w : acc.write_accesses) {
            if (w->partitioned) partitioned = true;
          }
          if (partitioned) {
            // Each node writes its own slice; non-home writers diff their
            // pages, and cross-phase readers fetch remote slices.
            cost.diffs_created = pages * remote_frac;
            cost.page_fetches = pages * remote_frac;
          } else {
            cost.diffs_created = pages;
            bool later_reader = false;
            for (const auto& [other_phase, other] : phases) {
              if (other_phase > phase && other.reads > 0) later_reader = true;
            }
            cost.page_fetches =
                later_reader ? pages * (n - 1) : pages * remote_frac;
          }
          break;
        }
        case SharingPattern::kReadMostly: {
          // Cold fetches only, and only if a previous phase dirtied the
          // pages (otherwise they were distributed at initialization).
          bool written_before = false;
          for (const auto& [other_phase, other] : phases) {
            if (other_phase < phase && other.writes > 0) written_before = true;
          }
          cost.page_fetches = written_before ? pages * (n - 1) : 0;
          break;
        }
      }
      if (cost.page_fetches > 0 || cost.diffs_created > 0) {
        report.constructs.push_back(std::move(cost));
      }
    }
  }
  std::stable_sort(report.constructs.begin(), report.constructs.end(),
                   [](const ConstructCost& a, const ConstructCost& b) {
                     return a.line < b.line;
                   });
  return report;
}

}  // namespace parade::translator
