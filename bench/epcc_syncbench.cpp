// EPCC-style synchronization overhead table (the paper's microbenchmark
// substrate [19]) for every construct at every node count — a superset of
// Figures 6 and 7 in one table.
#include "apps/syncbench.hpp"
#include "runtime/api.hpp"
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  using namespace parade;
  const long iters = bench::arg_long(argc, argv, "iters", 25);

  std::printf("\n# EPCC syncbench: construct overhead in virtual us/op "
              "(2Thread-2CPU nodes, modeled cLAN)\n");
  std::printf("%-18s", "construct");
  for (const int nodes : bench::kNodeSweep) std::printf("  %8dn", nodes);
  std::printf("\n");

  std::vector<std::vector<apps::SyncbenchResult>> per_nodes;
  for (const int nodes : bench::kNodeSweep) {
    RuntimeConfig config =
        bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
    std::vector<apps::SyncbenchResult> results;
    run_virtual_cluster_s(config, [&] {
      auto measured = apps::syncbench_all(iters);
      if (parade::is_master()) results = measured;
    });
    per_nodes.push_back(std::move(results));
  }

  const std::size_t constructs = per_nodes.front().size();
  for (std::size_t c = 0; c < constructs; ++c) {
    std::printf("%-18s",
                apps::to_string(per_nodes.front()[c].construct));
    for (std::size_t n = 0; n < per_nodes.size(); ++n) {
      std::printf("  %9.2f", per_nodes[n][c].overhead_us());
    }
    std::printf("\n");
  }
  bench::export_metrics("epcc_syncbench");
  return 0;
}
