// DSM protocol message kinds and wire encodings. All protocol traffic uses
// tags in the DSM tag class [0, 1000); see net/message.hpp.
//
// Ownership of each tag (who consumes it):
//   communication thread: PageRequest, Diff, LockAcquire, LockRelease,
//                         PageReply (it installs pages and wakes waiters),
//                         BarrierArrive (master gathers on the comm thread so
//                         retransmitted arrivals are absorbed even while the
//                         barrier caller is blocked), Shutdown
//   barrier caller:       BarrierDepart
//   diff flusher:         DiffAck
//   lock acquirer:        LockGrant (tag is lock-indexed so concurrent
//                         acquirers on one node never steal each other's
//                         grants)
//   lock releaser:        LockReleaseAck (lock-indexed like grants)
//
// Reliability: request/response messages carry a sender-chosen sequence
// number so the protocol survives a lossy fabric (net/faulty.hpp). Senders
// retransmit on timeout; receivers treat duplicates as re-requests (serve
// again or re-ack — every handler is idempotent) and responders echo the
// sequence number so stale responses are discarded. Barrier messages need no
// extra field: the epoch already is the sequence number.
//
// Serialization is the generic codec<T> at the bottom of this file: each
// message declares its wire layout with a single wire_fields() one-liner and
// gets encode/decode for free. Adding a message kind = struct + wire_fields.
#pragma once

#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace parade::dsm {

inline constexpr Tag kTagPageRequest = 1;
inline constexpr Tag kTagPageReply = 2;
inline constexpr Tag kTagDiff = 3;
inline constexpr Tag kTagDiffAck = 4;
inline constexpr Tag kTagBarrierArrive = 5;
inline constexpr Tag kTagBarrierDepart = 6;
inline constexpr Tag kTagLockAcquire = 7;
inline constexpr Tag kTagLockRelease = 8;
inline constexpr Tag kTagShutdown = 9;
/// Grant for lock L arrives with tag kTagLockGrantBase + L.
inline constexpr Tag kTagLockGrantBase = 100;
/// Release ack for lock L arrives with tag kTagLockReleaseAckBase + L.
inline constexpr Tag kTagLockReleaseAckBase = 400;

/// True for tags the communication thread services.
inline bool comm_thread_tag(Tag tag) {
  return tag == kTagPageRequest || tag == kTagPageReply || tag == kTagDiff ||
         tag == kTagBarrierArrive || tag == kTagLockAcquire ||
         tag == kTagLockRelease || tag == kTagShutdown;
}

// ---- payload structures ----

// `seq` fields sit last in each struct so existing aggregate initializers
// (`{page}`, `{page, data}`) keep working and default the sequence to zero;
// the wire layout below places them right after the leading id.

struct PageRequestMsg {
  PageId page = 0;
  std::uint32_t seq = 0;  ///< per-page fetch attempt id; echoed by the reply
};

struct PageReplyMsg {
  PageId page = 0;
  std::vector<std::uint8_t> data;
  std::uint32_t seq = 0;  ///< copied from the request; stale replies dropped
  /// Home frame version at serve time (TwinRegistry). The installer records
  /// it so a later write fault can decide whether the home's frame still
  /// matches this copy and may be aliased as the twin (CoW).
  std::uint32_t version = 0;
};

struct DiffMsg {
  PageId page = 0;
  std::vector<std::uint8_t> diff;
  std::uint32_t seq = 0;  ///< node-wide diff id; homes dedupe on (src, seq)
};

struct DiffAckMsg {
  PageId page = 0;
  std::uint32_t seq = 0;  ///< copied from the diff
};

/// Write notice: "node `modifier` changed `page` during the closing interval".
struct WriteNotice {
  PageId page = 0;
  NodeId modifier = 0;
};

struct BarrierArriveMsg {
  Epoch epoch = 0;
  /// Coalesced write notices for the sender's whole barrier subtree in the
  /// delta/run-length form of dsm/notice.hpp: one block per modifier, each
  /// block a run-length-encoded sorted page-interval vector. Replaces the
  /// flat per-page PageId list — a node's dense dirty range now costs two
  /// words instead of one word per page, and interior tree nodes forward one
  /// merged stream instead of every descendant's list.
  std::vector<std::uint32_t> notice_stream;
};

/// Departure entry for one write-noticed page: everyone updates the home and
/// invalidates stale copies.
struct DepartEntry {
  PageId page = 0;
  NodeId new_home = 0;
  /// The single modifier this interval, or kAnyNode when several nodes wrote.
  NodeId sole_modifier = kAnyNode;
};

struct BarrierDepartMsg {
  Epoch epoch = 0;
  VirtualUs departure_vtime = 0.0;
  std::vector<DepartEntry> entries;
};

struct LockAcquireMsg {
  std::int32_t lock_id = 0;
  std::uint32_t seq = 0;  ///< node-wide request id; echoed by the grant
};

struct LockGrantMsg {
  std::int32_t lock_id = 0;
  /// Pages modified under this lock with their most recent modifier; the
  /// acquirer invalidates stale local copies (lazy-release consistency,
  /// conservatively approximated — see DESIGN.md).
  std::vector<WriteNotice> notices;
  std::uint32_t seq = 0;  ///< copied from the acquire; stale grants dropped
};

struct LockReleaseMsg {
  std::int32_t lock_id = 0;
  std::vector<PageId> dirtied_pages;
  std::uint32_t seq = 0;  ///< node-wide request id; echoed by the ack
};

struct LockReleaseAckMsg {
  std::int32_t lock_id = 0;
  std::uint32_t seq = 0;  ///< copied from the release
};

// ---- wire layout declarations (one per message kind) ----
//
// Field order here IS the wire format. Vector fields are length-prefixed
// (uint32 count) and element structs are memcpy'd, so they must be packed;
// the static_asserts below pin the on-wire element sizes.

inline auto wire_fields(PageRequestMsg& m) { return std::tie(m.page, m.seq); }
inline auto wire_fields(PageReplyMsg& m) {
  return std::tie(m.page, m.seq, m.version, m.data);
}
inline auto wire_fields(DiffMsg& m) { return std::tie(m.page, m.seq, m.diff); }
inline auto wire_fields(DiffAckMsg& m) { return std::tie(m.page, m.seq); }
inline auto wire_fields(BarrierArriveMsg& m) {
  return std::tie(m.epoch, m.notice_stream);
}
inline auto wire_fields(BarrierDepartMsg& m) {
  return std::tie(m.epoch, m.departure_vtime, m.entries);
}
inline auto wire_fields(LockAcquireMsg& m) {
  return std::tie(m.lock_id, m.seq);
}
inline auto wire_fields(LockGrantMsg& m) {
  return std::tie(m.lock_id, m.seq, m.notices);
}
inline auto wire_fields(LockReleaseMsg& m) {
  return std::tie(m.lock_id, m.seq, m.dirtied_pages);
}
inline auto wire_fields(LockReleaseAckMsg& m) {
  return std::tie(m.lock_id, m.seq);
}

static_assert(sizeof(WriteNotice) == 8, "WriteNotice wire size changed");
static_assert(sizeof(DepartEntry) == 12, "DepartEntry wire size changed");

// The fault fabric estimates barrier epochs by watching departure traffic;
// keep its probe tag in lockstep with the protocol.
static_assert(net::kFaultEpochProbeTag == kTagBarrierDepart,
              "fault-fabric epoch probe out of sync with BarrierDepart");
// Lock-indexed tag ranges must stay inside the DSM tag class and not collide.
static_assert(kTagLockGrantBase + 256 <= kTagLockReleaseAckBase,
              "grant tags overlap release-ack tags");
static_assert(kTagLockReleaseAckBase + 256 <= net::kDsmTagLimit,
              "release-ack tags escape the DSM tag class");

// ---- zero-copy payload views ----
//
// Borrowed decodes for the two bulk-payload messages on the fetch/flush hot
// path. codec<T>::try_decode copies the payload into owned vectors; a view
// instead validates the frame and returns spans pointing into the original
// payload, so page installs and diff application read straight from the
// fabric's buffer into the sys view. Views share the exact wire layout with
// the codec (the equivalence test pins this): a frame encoded by either side
// decodes identically through both.

namespace view_detail {

template <TriviallyWirable F>
bool read_field(std::span<const std::uint8_t> payload, std::size_t& pos,
                F& field) {
  if (sizeof(F) > payload.size() - pos) return false;
  std::memcpy(&field, payload.data() + pos, sizeof(F));
  pos += sizeof(F);
  return true;
}

inline bool read_span(std::span<const std::uint8_t> payload, std::size_t& pos,
                      std::span<const std::uint8_t>& out) {
  std::uint32_t count = 0;
  if (!read_field(payload, pos, count)) return false;
  if (count > payload.size() - pos) return false;
  out = payload.subspan(pos, count);
  pos += count;
  return true;
}

}  // namespace view_detail

/// PageReplyMsg decoded by reference: `data` borrows `payload`.
struct PageReplyView {
  PageId page = 0;
  std::uint32_t seq = 0;
  std::uint32_t version = 0;
  std::span<const std::uint8_t> data;

  static Result<PageReplyView> from(std::span<const std::uint8_t> payload) {
    PageReplyView v;
    std::size_t pos = 0;
    if (!view_detail::read_field(payload, pos, v.page) ||
        !view_detail::read_field(payload, pos, v.seq) ||
        !view_detail::read_field(payload, pos, v.version) ||
        !view_detail::read_span(payload, pos, v.data)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated frame");
    }
    if (pos != payload.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trailing bytes after decode");
    }
    return v;
  }
};

/// DiffMsg decoded by reference: `diff` borrows `payload`.
struct DiffView {
  PageId page = 0;
  std::uint32_t seq = 0;
  std::span<const std::uint8_t> diff;

  static Result<DiffView> from(std::span<const std::uint8_t> payload) {
    DiffView v;
    std::size_t pos = 0;
    if (!view_detail::read_field(payload, pos, v.page) ||
        !view_detail::read_field(payload, pos, v.seq) ||
        !view_detail::read_span(payload, pos, v.diff)) {
      return make_error(ErrorCode::kInvalidArgument, "truncated frame");
    }
    if (pos != payload.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trailing bytes after decode");
    }
    return v;
  }
};

// ---- generic codec ----

template <typename T>
concept WireMessage = requires(T& m) { wire_fields(m); };

namespace codec_detail {

template <TriviallyWirable F>
void put_field(WireBuffer& buffer, const F& field) {
  buffer.put(field);
}
template <TriviallyWirable E>
void put_field(WireBuffer& buffer, const std::vector<E>& field) {
  buffer.put_vector(field);
}

template <TriviallyWirable F>
void get_field(WireBuffer& buffer, F& field) {
  field = buffer.get<F>();
}
template <TriviallyWirable E>
void get_field(WireBuffer& buffer, std::vector<E>& field) {
  field = buffer.get_vector<E>();
}

}  // namespace codec_detail

/// codec<T>::encode / codec<T>::decode for any message with wire_fields().
template <WireMessage T>
struct codec {
  /// Takes the message by value so call sites can move vector payloads in:
  /// codec<DiffMsg>::encode({page, std::move(diff)}).
  static std::vector<std::uint8_t> encode(T msg) {
    WireBuffer buffer;
    std::apply(
        [&buffer](auto&... fields) {
          (codec_detail::put_field(buffer, fields), ...);
        },
        wire_fields(msg));
    return std::move(buffer).take();
  }

  /// Soft-fail decode for frames straight off the wire: truncated, trailing,
  /// or length-inflated bytes yield a Status instead of a crash, and length
  /// prefixes are validated before any allocation (see WireBuffer).
  static Result<T> try_decode(const std::vector<std::uint8_t>& bytes) {
    WireBuffer buffer{bytes};
    T msg;
    std::apply(
        [&buffer](auto&... fields) {
          (codec_detail::get_field(buffer, fields), ...);
        },
        wire_fields(msg));
    if (!buffer.ok()) {
      return make_error(ErrorCode::kInvalidArgument, "truncated frame");
    }
    if (!buffer.exhausted()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trailing bytes after decode");
    }
    return msg;
  }

  /// Abort-on-malformed decode for frames this process produced itself
  /// (a failure here is a ParADE bug, not wire corruption).
  static T decode(const std::vector<std::uint8_t>& bytes) {
    WireBuffer buffer{bytes};
    T msg;
    std::apply(
        [&buffer](auto&... fields) {
          (codec_detail::get_field(buffer, fields), ...);
        },
        wire_fields(msg));
    PARADE_CHECK_MSG(buffer.ok(), "truncated frame");
    PARADE_CHECK_MSG(buffer.exhausted(), "trailing bytes after decode");
    return msg;
  }
};

}  // namespace parade::dsm
