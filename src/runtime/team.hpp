// Team: a node's persistent worker pool and the fork-join machinery for
// parallel regions (paper §4.1), plus the hierarchical barriers that combine
// node-local pthread synchronization with the inter-node DSM barrier.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/topology.hpp"
#include "common/types.hpp"
#include "obs/metric.hpp"
#include "runtime/context.hpp"

namespace parade {

class NodeRuntime;

/// Which levels a barrier synchronizes. The runtime exposes one consolidated
/// entry point, `Team::barrier(BarrierScope)` (mirrored by the public
/// `parade::barrier(BarrierScope)`); the former `barrier_global` /
/// `barrier_node` names remain as shims.
enum class BarrierScope {
  kNode,    ///< intra-node pthread barrier only (clock max-combined)
  kGlobal,  ///< intra-node combine + inter-node DSM tree barrier
};

/// Reusable cyclic barrier that additionally max-combines a value carried by
/// each arriving thread and hands the combined value to every participant.
class CombiningBarrier {
 public:
  explicit CombiningBarrier(int parties) : parties_(parties) {}

  /// Blocks until all parties arrive; returns max over the carried values.
  VirtualUs arrive(VirtualUs value);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int count_ = 0;
  long generation_ = 0;
  VirtualUs pending_max_ = 0.0;
  VirtualUs released_max_ = 0.0;
};

class Team {
 public:
  /// Primary constructor: `topology` is this node's view of the cluster
  /// (rank, node count, barrier fan-out) and must agree with the owning
  /// NodeRuntime's DSM engine (checked).
  Team(NodeRuntime& node, const Topology& topology, int num_threads);
  /// Deprecation shim: derives a flat Topology from the node runtime.
  Team(NodeRuntime& node, int num_threads);
  ~Team();

  int num_threads() const { return num_threads_; }
  const Topology& topology() const { return topo_; }

  /// Spawns the persistent workers (local ids 1..T-1).
  void start();
  /// Stops and joins the workers.
  void stop();

  /// Runs `body` on all T threads (caller participates as local thread 0)
  /// and finishes with the implicit global join barrier.
  void run_region(const std::function<void()>& body);

  /// Consolidated barrier entry point. kGlobal: intra-node max-combine, then
  /// the DSM tree barrier by local thread 0, then distribution of the
  /// departure time. kNode: intra-node combine only.
  void barrier(BarrierScope scope);

  /// Shim for barrier(BarrierScope::kGlobal).
  void barrier_global() { barrier(BarrierScope::kGlobal); }
  /// Shim for barrier(BarrierScope::kNode).
  void barrier_node() { barrier(BarrierScope::kNode); }

  // --- single construct support (see api.cpp) ---
  struct SingleSlot {
    bool claimed = false;
    bool done = false;
    VirtualUs done_vtime = 0.0;
    /// Broadcast payload, so every thread of the node (not just the claimer)
    /// observes the construct's small-data result.
    std::vector<std::uint8_t> payload;
  };
  /// Claims construct instance `seq` for the calling thread; returns true for
  /// the executing thread.
  bool single_try_claim(long seq);
  void single_mark_done(long seq, VirtualUs vtime, const void* payload,
                        std::size_t bytes);
  /// Blocks until done; copies the payload into `out` (size `bytes`).
  VirtualUs single_wait_done(long seq, void* out, std::size_t bytes);

  // --- worksharing-loop state (dynamic/guided scheduling) ---
  struct LoopState {
    long next = 0;
    long end = 0;
    int finished_threads = 0;
  };
  /// Returns the shared state for loop instance `seq`, creating it with
  /// [begin,end) bounds on first touch.
  LoopState& loop_state(long seq, long begin, long end);
  /// Grabs the next chunk; false when the loop is exhausted.
  bool loop_next_chunk(LoopState& state, long chunk, long* lo, long* hi);
  /// Marks the calling thread done; the last thread reclaims the state.
  void loop_finish(long seq);

  /// True while a parallel region is executing on this node.
  bool in_region() const { return in_region_; }

  // --- hybrid combining scratch (team_update_bytes) ---
  /// Node-local mutex used by hybrid critical/reduction combining.
  std::mutex& combine_mutex() { return combine_mutex_; }
  std::vector<std::uint8_t>& combine_scratch() { return combine_scratch_; }
  int& combine_count() { return combine_count_; }
  void reset_combine_count() { combine_count_ = 0; }

 private:
  void worker_loop(LocalThreadId local_id);

  NodeRuntime& node_;
  Topology topo_;
  int num_threads_;

  std::vector<std::thread> workers_;
  std::mutex region_mutex_;
  std::condition_variable region_cv_;
  long region_epoch_ = 0;
  bool stopping_ = false;
  const std::function<void()>* region_body_ = nullptr;
  VirtualUs fork_vtime_ = 0.0;

  CombiningBarrier gather_barrier_;
  CombiningBarrier release_barrier_;
  CombiningBarrier join_barrier_;

  std::mutex single_mutex_;
  std::condition_variable single_cv_;
  std::unordered_map<long, SingleSlot> singles_;

  std::mutex loop_mutex_;
  std::unordered_map<long, LoopState> loops_;

  std::mutex combine_mutex_;
  std::vector<std::uint8_t> combine_scratch_;
  int combine_count_ = 0;
  bool in_region_ = false;

  // Registry handles, indexed by local thread id where per-thread (barrier
  // wait exposes straggler threads, chunk counts expose load imbalance).
  obs::Counter* regions_metric_ = nullptr;
  std::vector<obs::Timer*> barrier_wait_;
  std::vector<obs::Counter*> loop_chunks_;
};

}  // namespace parade
