file(REMOVE_RECURSE
  "CMakeFiles/micro_dsm.dir/micro_dsm.cpp.o"
  "CMakeFiles/micro_dsm.dir/micro_dsm.cpp.o.d"
  "micro_dsm"
  "micro_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
