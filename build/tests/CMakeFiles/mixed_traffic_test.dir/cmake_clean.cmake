file(REMOVE_RECURSE
  "CMakeFiles/mixed_traffic_test.dir/mixed_traffic_test.cpp.o"
  "CMakeFiles/mixed_traffic_test.dir/mixed_traffic_test.cpp.o.d"
  "mixed_traffic_test"
  "mixed_traffic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
