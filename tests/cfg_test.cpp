// CFG construction and dataflow-engine tests: graph shape for the structured
// control forms (if/else, nested loops, early return inside constructs,
// worksharing/nowait tagging), BitSet lattice algebra, hand-built fixpoint
// problems in all four direction/meet combinations, and the subset property
// over the golden corpus — the flow-sensitive analyzer may only ever
// *suppress* def-use findings, never invent new ones, for the legacy codes.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "translator/analyze.hpp"
#include "translator/cfg.hpp"
#include "translator/dataflow.hpp"
#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace parade::translator {
namespace {

const Stmt* find_pragma(const Stmt& stmt) {
  if (stmt.kind == StmtKind::kPragma) return &stmt;
  for (const StmtPtr& child : stmt.children) {
    if (child == nullptr) continue;
    if (const Stmt* p = find_pragma(*child)) return p;
  }
  return nullptr;
}

/// Parses `source` and builds the CFG of its first OpenMP construct.
Cfg cfg_of(const std::string& source) {
  auto tokens = lex(source);
  EXPECT_TRUE(tokens.is_ok()) << tokens.status().to_string();
  auto unit = parse(tokens.value());
  EXPECT_TRUE(unit.is_ok()) << unit.status().to_string();
  for (const TopItem& item : unit.value().items) {
    if (item.kind != TopItem::Kind::kFunction || item.function.body == nullptr) {
      continue;
    }
    if (const Stmt* pragma = find_pragma(*item.function.body)) {
      return build_cfg(*pragma);
    }
  }
  ADD_FAILURE() << "no OpenMP construct found in source";
  return Cfg{};
}

std::size_t count_events(const Cfg& cfg, CfgEventKind kind) {
  std::size_t n = 0;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == kind) ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// CFG shape

TEST(CfgShape, IfElseMakesDiamond) {
  const Cfg cfg = cfg_of(
      "int x;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    if (x > 0) {\n"
      "      x = 1;\n"
      "    } else {\n"
      "      x = 2;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(cfg.branches.size(), 1u);
  EXPECT_TRUE(cfg.branches[0].has_else);
  // The decision block has two successors, and both arms rejoin: every block
  // is reachable from entry.
  bool saw_decision = false;
  for (const CfgBlock& b : cfg.blocks) {
    if (b.succs.size() >= 2) saw_decision = true;
  }
  EXPECT_TRUE(saw_decision);
  const std::vector<char> reach = cfg.reachable();
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    EXPECT_TRUE(reach[i]) << "block " << i << " unreachable";
  }
  EXPECT_TRUE(cfg.loops.empty());
}

TEST(CfgShape, NestedLoopsNestAndCarryBackEdges) {
  const Cfg cfg = cfg_of(
      "int a;\n"
      "int main(void) {\n"
      "  int i, j;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    for (i = 0; i < 4; i++) {\n"
      "      for (j = 0; j < 4; j++) {\n"
      "        a = a + 1;\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(cfg.loops.size(), 2u);
  // One loop is top-level, the other nests inside it.
  const int outer = cfg.loops[0].parent == -1 ? 0 : 1;
  const int inner = 1 - outer;
  EXPECT_EQ(cfg.loops[static_cast<std::size_t>(outer)].parent, -1);
  EXPECT_EQ(cfg.loops[static_cast<std::size_t>(inner)].parent, outer);
  EXPECT_FALSE(cfg.loops[0].worksharing);
  // Back edges: each loop head has a predecessor other than its entry path,
  // so the edge count exceeds a DAG's (blocks - 1 minimum spanning edges).
  const int inner_head = cfg.loops[static_cast<std::size_t>(inner)].head;
  ASSERT_GE(inner_head, 0);
  EXPECT_GE(cfg.blocks[static_cast<std::size_t>(inner_head)].preds.size(), 2u);
  // The innermost statement's block sits inside both loops.
  bool found_write = false;
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    for (const CfgEvent& e : cfg.blocks[i].events) {
      if (e.kind == CfgEventKind::kWrite && e.name == "a") {
        found_write = true;
        EXPECT_TRUE(cfg.block_in_loop(static_cast<int>(i), inner));
        EXPECT_TRUE(cfg.block_in_loop(static_cast<int>(i), outer));
      }
    }
  }
  EXPECT_TRUE(found_write);
}

TEST(CfgShape, EarlyReturnTerminatesPathInsideConstruct) {
  const Cfg cfg = cfg_of(
      "int x;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    if (x > 0) {\n"
      "      return 1;\n"
      "    }\n"
      "    x = 5;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  // Both the early return and the construct's fall-through end reach exit.
  EXPECT_GE(cfg.blocks[Cfg::kExit].preds.size(), 2u);
  // The write after the guard is still reachable (the if has a fall-through
  // edge around the returning arm).
  const std::vector<char> reach = cfg.reachable();
  bool write_reachable = false;
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    for (const CfgEvent& e : cfg.blocks[i].events) {
      if (e.kind == CfgEventKind::kWrite && e.name == "x" && reach[i]) {
        write_reachable = true;
      }
    }
  }
  EXPECT_TRUE(write_reachable);
}

TEST(CfgShape, DeadCodeAfterReturnIsUnreachable) {
  const Cfg cfg = cfg_of(
      "int x;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    return 0;\n"
      "    x = 5;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const std::vector<char> reach = cfg.reachable();
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    for (const CfgEvent& e : cfg.blocks[i].events) {
      if (e.kind == CfgEventKind::kWrite && e.name == "x") {
        EXPECT_FALSE(reach[i]) << "write after return should be dead";
      }
    }
  }
}

TEST(CfgShape, WorksharingLoopAndNowaitAreTagged) {
  const Cfg cfg = cfg_of(
      "int a;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp for nowait\n"
      "    for (i = 0; i < 8; i++) {\n"
      "      a = i;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(cfg.loops.size(), 1u);
  EXPECT_TRUE(cfg.loops[0].worksharing);
  ASSERT_EQ(cfg.nowaits.size(), 1u);
  EXPECT_EQ(count_events(cfg, CfgEventKind::kNowaitExit), 1u);
  // nowait means no implicit barrier at the construct end.
  EXPECT_EQ(count_events(cfg, CfgEventKind::kBarrier), 0u);
}

TEST(CfgShape, WorksharingWithoutNowaitEmitsImplicitBarrier) {
  const Cfg cfg = cfg_of(
      "int a;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp for\n"
      "    for (i = 0; i < 8; i++) {\n"
      "      a = i;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(cfg.nowaits.empty());
  EXPECT_EQ(count_events(cfg, CfgEventKind::kBarrier), 1u);
}

TEST(CfgShape, CriticalBodyEventsAreGuarded) {
  const Cfg cfg = cfg_of(
      "int total;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical\n"
      "    {\n"
      "      total = total + 1;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  bool saw_guarded_write = false;
  for (const CfgBlock& b : cfg.blocks) {
    for (const CfgEvent& e : b.events) {
      if (e.kind == CfgEventKind::kWrite && e.name == "total") {
        saw_guarded_write = true;
        EXPECT_TRUE(e.in_critical);
      }
    }
  }
  EXPECT_TRUE(saw_guarded_write);
  EXPECT_GE(count_events(cfg, CfgEventKind::kSync), 1u);
}

// ---------------------------------------------------------------------------
// BitSet lattice

TEST(BitSetOps, SetTestSubtractAndTailTrim) {
  BitSet a(70);
  a.set(0);
  a.set(69);
  EXPECT_TRUE(a.test(0));
  EXPECT_TRUE(a.test(69));
  EXPECT_FALSE(a.test(35));
  EXPECT_TRUE(a.any());

  BitSet b(70);
  b.set(69);
  BitSet c = a;
  c.subtract(b);
  EXPECT_TRUE(c.test(0));
  EXPECT_FALSE(c.test(69));

  BitSet top(70);
  top.set_all();
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(top.test(i));
  BitSet meet = top;
  meet &= a;
  EXPECT_TRUE(meet == a);

  BitSet empty(70);
  EXPECT_FALSE(empty.any());
  empty |= a;
  EXPECT_TRUE(empty == a);
}

// ---------------------------------------------------------------------------
// Dataflow engine over hand-built graphs

/// Diamond: entry -> 2 -> {3, 4} -> 5 -> exit.
Cfg diamond() {
  Cfg cfg;
  cfg.blocks.resize(6);
  auto edge = [&](int from, int to) {
    cfg.blocks[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg.blocks[static_cast<std::size_t>(to)].preds.push_back(from);
  };
  edge(Cfg::kEntry, 2);
  edge(2, 3);
  edge(2, 4);
  edge(3, 5);
  edge(4, 5);
  edge(5, Cfg::kExit);
  return cfg;
}

DataflowProblem problem_for(const Cfg& cfg, FlowDirection dir, MeetOp meet,
                            std::size_t bits) {
  DataflowProblem p;
  p.direction = dir;
  p.meet = meet;
  p.bits = bits;
  p.transfer.resize(cfg.blocks.size());
  for (Transfer& t : p.transfer) {
    t.gen = BitSet(bits);
    t.kill = BitSet(bits);
  }
  p.boundary = BitSet(bits);
  return p;
}

TEST(Dataflow, ForwardUnionReachesJoinFromOneArm) {
  const Cfg cfg = diamond();
  DataflowProblem p =
      problem_for(cfg, FlowDirection::kForward, MeetOp::kUnion, 1);
  p.transfer[3].gen.set(0);  // defined on the then-arm only
  const FlowResult r = solve_dataflow(cfg, p);
  EXPECT_TRUE(r.in[5].test(0));   // may-reach at the join
  EXPECT_FALSE(r.in[4].test(0));  // not on the sibling arm
  EXPECT_TRUE(r.in[Cfg::kExit].test(0));
}

TEST(Dataflow, ForwardIntersectRequiresBothArms) {
  const Cfg cfg = diamond();
  {
    DataflowProblem p =
        problem_for(cfg, FlowDirection::kForward, MeetOp::kIntersect, 1);
    p.transfer[3].gen.set(0);  // one arm only
    const FlowResult r = solve_dataflow(cfg, p);
    EXPECT_FALSE(r.in[5].test(0)) << "must-fact cannot survive a one-arm def";
  }
  {
    DataflowProblem p =
        problem_for(cfg, FlowDirection::kForward, MeetOp::kIntersect, 1);
    p.transfer[3].gen.set(0);
    p.transfer[4].gen.set(0);  // both arms
    const FlowResult r = solve_dataflow(cfg, p);
    EXPECT_TRUE(r.in[5].test(0));
  }
}

TEST(Dataflow, KillStopsPropagation) {
  const Cfg cfg = diamond();
  DataflowProblem p =
      problem_for(cfg, FlowDirection::kForward, MeetOp::kUnion, 1);
  p.boundary.set(0);         // fact holds at entry
  p.transfer[5].kill.set(0); // killed at the join
  const FlowResult r = solve_dataflow(cfg, p);
  EXPECT_TRUE(r.in[5].test(0));
  EXPECT_FALSE(r.out[5].test(0));
  EXPECT_FALSE(r.in[Cfg::kExit].test(0));
}

TEST(Dataflow, BackwardUnionIsLiveness) {
  const Cfg cfg = diamond();
  DataflowProblem p =
      problem_for(cfg, FlowDirection::kBackward, MeetOp::kUnion, 1);
  p.transfer[5].gen.set(0);  // used at the join
  p.transfer[3].kill.set(0); // defined (killed backward) on the then-arm
  // Backward flow order: in[b] is the meet over successors (live-out),
  // out[b] is the post-transfer fact (live-in at the block's start).
  const FlowResult r = solve_dataflow(cfg, p);
  EXPECT_TRUE(r.in[3].test(0));    // live-out of the then-arm (join uses it)
  EXPECT_FALSE(r.out[3].test(0));  // dead above the arm's own def
  EXPECT_TRUE(r.out[4].test(0));   // live straight through the else-arm
  EXPECT_TRUE(r.in[2].test(0));    // live at the decision (via else)
}

TEST(Dataflow, LoopBackEdgeDoesNotFakeMustFacts) {
  // entry -> 2(head) -> 3(body, gen) -> 2 ; 2 -> exit. A must-fact generated
  // in the body may not appear at the head's IN: the first iteration arrives
  // from entry without it.
  Cfg cfg;
  cfg.blocks.resize(4);
  auto edge = [&](int from, int to) {
    cfg.blocks[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg.blocks[static_cast<std::size_t>(to)].preds.push_back(from);
  };
  edge(Cfg::kEntry, 2);
  edge(2, 3);
  edge(3, 2);
  edge(2, Cfg::kExit);
  DataflowProblem p =
      problem_for(cfg, FlowDirection::kForward, MeetOp::kIntersect, 1);
  p.transfer[3].gen.set(0);
  const FlowResult r = solve_dataflow(cfg, p);
  EXPECT_FALSE(r.in[2].test(0));
  EXPECT_FALSE(r.in[Cfg::kExit].test(0));
  EXPECT_GT(r.iterations, 0);
}

// ---------------------------------------------------------------------------
// Subset property: flow-sensitive ⊆ flow-insensitive on the legacy codes

using DiagKey = std::tuple<std::string, int, std::string>;

std::multiset<DiagKey> legacy_keys(const std::vector<Diagnostic>& diags) {
  static const char* kLegacy[] = {kDiagRaceSharedWrite, kDiagPrivateUninitRead,
                                  kDiagNowaitDependentRead};
  std::multiset<DiagKey> keys;
  for (const Diagnostic& d : diags) {
    for (const char* code : kLegacy) {
      if (d.code == code) keys.insert({d.code, d.line, d.var});
    }
  }
  return keys;
}

void check_subset_property(const std::string& source, const std::string& tag) {
  AnalyzeOptions insensitive;
  insensitive.flow_sensitive = false;
  insensitive.protocol_hints = false;
  AnalyzeOptions sensitive;
  sensitive.flow_sensitive = true;
  sensitive.protocol_hints = false;

  auto base = analyze_source(source, insensitive);
  auto flow = analyze_source(source, sensitive);
  ASSERT_TRUE(base.is_ok()) << tag;
  ASSERT_TRUE(flow.is_ok()) << tag;

  const std::multiset<DiagKey> base_keys = legacy_keys(base.value().diagnostics);
  const std::multiset<DiagKey> flow_keys = legacy_keys(flow.value().diagnostics);
  // Every surviving flow-sensitive finding exists in the def-use result.
  for (const DiagKey& key : flow_keys) {
    EXPECT_GT(base_keys.count(key), 0u)
        << tag << ": flow pass invented [" << std::get<0>(key) << "] at line "
        << std::get<1>(key);
  }
  // Survivors plus suppressions account for exactly the def-use findings.
  std::multiset<DiagKey> flow_total = flow_keys;
  for (const DiagKey& key : legacy_keys(flow.value().suppressed)) {
    flow_total.insert(key);
  }
  EXPECT_EQ(flow_total, base_keys) << tag;
}

TEST(FlowSubsetProperty, GoldenCorpusFiles) {
  const char* corpus[] = {
      "tests/translator_inputs/pi.c",
      "tests/translator_inputs/helmholtz.c",
      "examples/openmp_pi.c",
  };
  for (const char* rel : corpus) {
    const std::string path = std::string(PARADE_SOURCE_DIR) + "/" + rel;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    check_subset_property(text.str(), rel);
  }
}

TEST(FlowSubsetProperty, AdversarialBranchPrograms) {
  const char* programs[] = {
      // Race both flow-visible and suppressible (dead arm).
      "int g;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 8; i++) {\n"
      "    if (i > 4) { g = i; } else { g = i + 1; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
      // Uninit private read guarded on one path only.
      "int main(void) {\n"
      "  int t, c;\n"
      "  #pragma omp parallel private(t)\n"
      "  {\n"
      "    if (c > 0) { t = 1; }\n"
      "    c = t + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
      // nowait with barrier on one arm of an if.
      "int a, b;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp for nowait\n"
      "    for (i = 0; i < 8; i++) { a = i; }\n"
      "    if (b > 0) {\n"
      "      #pragma omp barrier\n"
      "    }\n"
      "    b = a;\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
      // Dead code after return inside the construct.
      "int g;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    return 0;\n"
      "    g = 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
  };
  int index = 0;
  for (const char* program : programs) {
    check_subset_property(program, "program #" + std::to_string(index++));
  }
}

}  // namespace
}  // namespace parade::translator
