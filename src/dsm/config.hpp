// DSM configuration knobs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "net/fault.hpp"
#include "vtime/cost_model.hpp"

namespace parade::dsm {

/// Static protocol prior for one pool byte range, synthesized by the
/// translator's footprint analysis and shipped in the hints sidecar
/// (docs/ANALYZER.md "Protocol hints"). DsmNode::start() projects the ranges
/// onto pages: a range whose symbol is not migration-friendly pins the pages'
/// homes (the §5.2.2 barrier migration is vetoed for them), and the
/// prefer_update bias is exposed to the runtime's collective-vs-lock paths.
struct PagePrior {
  std::size_t offset = 0;  ///< pool byte offset (from the SPMD allocator)
  std::size_t bytes = 0;
  bool prefer_update = false;
  bool migration_friendly = true;
  std::size_t expected_touches = 1;  ///< static page-touch estimate
  /// DSM epoch this prior applies to (v2 phased sidecars: the translator's
  /// phase index folded with its epoch_base). -1 = every epoch (v1 priors
  /// and the whole-program records of a v2 sidecar). Epochs past the last
  /// phased prior keep the last phase's projection (sticky tail).
  int phase = -1;
};

/// How the pool's second (always-writable) mapping is created — the paper's
/// §5.1 solutions to the atomic page update problem.
enum class MapMethod {
  /// Anonymous file via memfd_create mapped twice (the paper's conventional
  /// "file mapping" method, minus an on-disk file).
  kMemfd,
  /// System V shared memory attached twice (paper's first alternative).
  kSysV,
  /// The paper's mdup() syscall — requires their kernel patch; create()
  /// reports kUnsupported.
  kMdup,
  /// The paper's child-process page-table method — needs cross-process
  /// coordination we do not reproduce; create() reports kUnsupported.
  kChildProcess,
};

const char* to_string(MapMethod method);

/// Inter-node synchronization personality (paper Figures 2/3).
enum class SyncMode {
  /// ParADE: collectives for analyzable critical/single/atomic/reduction.
  kParade,
  /// Conventional SDSM (KDSM-like): DSM locks + barriers everywhere.
  kConventional,
};

struct DsmConfig {
  std::size_t pool_bytes = std::size_t{64} << 20;  // paper: 64 MB for CG
  std::size_t page_bytes = kDefaultPageBytes;
  /// How the SegmentPool's backing object is created (PARADE_MAP_METHOD:
  /// "memfd" | "sysv"; mdup/child-process probe as unsupported).
  MapMethod map_method = MapMethod::kMemfd;
  /// Zero-copy hot paths over the segment pool: CoW twin aliasing through
  /// the TwinRegistry, serves encoded straight from the sys view into the
  /// wire buffer, diffs encoded/applied by span (PARADE_ZERO_COPY). Off =
  /// the legacy eager-copy pipeline, kept for equivalence testing.
  bool zero_copy = true;
  /// HLRC home migration at barrier time (paper §5.2.2). Off = fixed home,
  /// i.e. original HLRC (the baseline in ablation benches).
  bool home_migration = true;
  /// Small-data threshold for switching from HLRC to message passing
  /// (paper §5.2.1; 256 bytes on their cluster). Consumed by the runtime.
  std::size_t mp_threshold_bytes = 256;
  SyncMode sync_mode = SyncMode::kParade;

  /// Barrier gather/scatter tree fan-out (Topology::fanout). <= 0 selects
  /// the flat shape: node 0 gathers every arrival directly. Small fan-outs
  /// trade root-side O(nodes) overhead for O(log_k nodes) latency hops —
  /// the scaleout bench shows tree winning from ~32 nodes (docs/SCALING.md).
  int barrier_fanout = 0;
  /// Stripe initial page homes round-robin across nodes instead of homing
  /// everything at node 0 (rules::default_home). Off by default: single-home
  /// start matches the paper's setup and many tests pin home 0.
  bool sharded_homes = false;
  /// Static per-range protocol priors from the translator's hint sidecar
  /// (PARADE_HINTS or the blob embedded in generated programs). Empty = no
  /// priors; every page behaves as before.
  std::vector<PagePrior> page_priors;

  vtime::NetworkModel net{};
  vtime::MachineModel machine{};

  /// Timeout/retry knobs for the protocol's blocking exchanges (page fetch,
  /// diff ack, barrier, locks). Defaults never fire on a fault-free fabric;
  /// chaos tests shorten them to keep runtimes low.
  net::RetryPolicy retry{};

  std::size_t num_pages() const { return pool_bytes / page_bytes; }
  /// Total virtual reservation per node: app + sys + twin views of the pool
  /// (SegmentPool layout, dsm/mapping.hpp).
  std::size_t segment_bytes() const { return 3 * pool_bytes; }
};

/// Maximum DSM lock ids (grant tags are lock-indexed, see protocol.hpp).
inline constexpr int kMaxDsmLocks = 256;

}  // namespace parade::dsm
