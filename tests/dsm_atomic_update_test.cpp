// The atomic page update problem (paper §5.1, Figure 4): while the runtime
// installs a fetched page, concurrently faulting application threads must
// never observe a partially-copied page. Every page here is written as 512
// copies of one 64-bit epoch stamp; any reader that slipped past the
// protection during the install would see mixed stamps.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dsm/cluster.hpp"

namespace parade::dsm {
namespace {

class AtomicUpdateStress : public ::testing::TestWithParam<MapMethod> {};

TEST_P(AtomicUpdateStress, NoTornPagesUnderConcurrentFaults) {
  constexpr int kPages = 8;
  constexpr int kEpochs = 12;
  constexpr int kReaders = 4;

  DsmConfig config;
  config.pool_bytes = 1 << 20;
  config.map_method = GetParam();
  DsmCluster cluster(2, config);

  cluster.run([&](NodeId rank) {
    auto* data = static_cast<std::uint64_t*>(
        cluster.node(rank).shmalloc(kPages * 4096, 4096));
    cluster.node(rank).barrier();

    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
      if (rank == 0) {
        // Writer: stamp every word of every page with the epoch.
        for (int p = 0; p < kPages; ++p) {
          for (int w = 0; w < 512; ++w) {
            data[p * 512 + w] = static_cast<std::uint64_t>(epoch) << 16 | p;
          }
        }
      }
      cluster.node(rank).barrier();
      if (rank == 1) {
        // Readers: concurrent first-touch faults on all pages (invalidated
        // every epoch since node 0 is the sole modifier each round). All
        // threads race through TRANSIENT/BLOCKED installs.
        std::vector<std::thread> readers;
        std::atomic<int> torn{0};
        for (int t = 0; t < kReaders; ++t) {
          readers.emplace_back([&, t] {
            for (int p = t % kPages; p < kPages; ++p) {
              const std::uint64_t first = data[p * 512];
              for (int w = 1; w < 512; ++w) {
                if (data[p * 512 + w] != first) torn.fetch_add(1);
              }
            }
          });
        }
        for (auto& r : readers) r.join();
        ASSERT_EQ(torn.load(), 0) << "torn page observed at epoch " << epoch;
        // And the content is the current epoch's stamp.
        for (int p = 0; p < kPages; ++p) {
          ASSERT_EQ(data[p * 512],
                    static_cast<std::uint64_t>(epoch) << 16 | p);
        }
      }
      cluster.node(rank).barrier();
    }
  });
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Methods, AtomicUpdateStress,
                         ::testing::Values(MapMethod::kMemfd, MapMethod::kSysV),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace parade::dsm
