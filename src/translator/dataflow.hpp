// Generic iterative dataflow engine over translator CFGs.
//
// Clients describe a bit-vector problem — direction, meet operator, and a
// per-block (gen, kill) transfer function — and the engine runs the standard
// worklist fixpoint: OUT[b] = gen[b] ∪ (IN[b] \ kill[b]) with IN[b] the meet
// over predecessors (successors for backward problems). Union meets start
// everything at bottom (empty); intersection meets start interior blocks at
// top (all ones) so unreached paths do not leak "false" facts into the meet.
#pragma once

#include <cstdint>
#include <vector>

#include "translator/cfg.hpp"

namespace parade::translator {

/// Fixed-width bit set sized at construction; the engine's lattice element.
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63U)) & 1U;
  }
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63U); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63U));
  }
  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }
  void clear() {
    for (auto& w : words_) w = 0;
  }
  bool any() const {
    for (const auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  BitSet& operator|=(const BitSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  BitSet& operator&=(const BitSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  /// this = this \ o
  BitSet& subtract(const BitSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }
  bool operator==(const BitSet& o) const { return words_ == o.words_; }
  bool operator!=(const BitSet& o) const { return words_ != o.words_; }

 private:
  void trim() {
    const std::size_t tail = bits_ & 63U;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

enum class FlowDirection { kForward, kBackward };
enum class MeetOp { kUnion, kIntersect };

/// Per-block transfer function in gen/kill form.
struct Transfer {
  BitSet gen;
  BitSet kill;
};

struct DataflowProblem {
  FlowDirection direction = FlowDirection::kForward;
  MeetOp meet = MeetOp::kUnion;
  std::size_t bits = 0;
  std::vector<Transfer> transfer;  // one per CFG block
  /// Boundary fact at the flow entry (CFG entry for forward, exit for
  /// backward). Defaults to empty when left unset.
  BitSet boundary;
};

struct FlowResult {
  std::vector<BitSet> in;   // fact at block start (flow order)
  std::vector<BitSet> out;  // fact at block end
  int iterations = 0;       // worklist pops until fixpoint
};

/// Runs the iterative worklist algorithm to fixpoint. Blocks unreachable in
/// the flow direction keep their initial value (bottom for union, top for
/// intersect).
FlowResult solve_dataflow(const Cfg& cfg, const DataflowProblem& problem);

}  // namespace parade::translator
