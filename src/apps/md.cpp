#include "apps/md.hpp"

#include <cmath>

#include "common/nas_rng.hpp"
#include "runtime/api.hpp"

namespace parade::apps {
namespace {

constexpr int kDims = 3;
constexpr double kHalfPi = 1.57079632679489661923;

/// Pair potential v(d) = sin(min(d, pi/2))^2 and its derivative, as in md.f.
double potential_of(double d) {
  const double t = std::sin(std::min(d, kHalfPi));
  return t * t;
}

double dpotential_of(double d) {
  if (d >= kHalfPi) return 0.0;
  return 2.0 * std::sin(d) * std::cos(d);
}

/// Deterministic initial conditions (shared by serial and ParADE versions).
void initialize(const MdParams& p, double* pos, double* vel, double* acc) {
  nas::RandLc rng(314159265.0);
  for (int i = 0; i < p.nparts; ++i) {
    for (int d = 0; d < kDims; ++d) {
      pos[i * kDims + d] = p.box * rng.next();
      vel[i * kDims + d] = 0.5 * (rng.next() - 0.5);
      acc[i * kDims + d] = 0.0;
    }
  }
}

/// Forces and potential for particles [lo, hi); returns the partial
/// potential energy. `force` rows [lo, hi) are overwritten.
double compute_forces(const MdParams& p, const double* pos, double* force,
                      int lo, int hi) {
  double pot = 0.0;
  for (int i = lo; i < hi; ++i) {
    double f[kDims] = {0.0, 0.0, 0.0};
    for (int j = 0; j < p.nparts; ++j) {
      if (j == i) continue;
      double rij[kDims];
      double d2 = 0.0;
      for (int k = 0; k < kDims; ++k) {
        rij[k] = pos[i * kDims + k] - pos[j * kDims + k];
        d2 += rij[k] * rij[k];
      }
      const double d = std::sqrt(d2);
      pot += 0.5 * potential_of(d);  // half: each pair counted twice
      const double dv = dpotential_of(d) / d;
      for (int k = 0; k < kDims; ++k) f[k] -= rij[k] * dv;
    }
    for (int k = 0; k < kDims; ++k) force[i * kDims + k] = f[k];
  }
  return pot;
}

/// Velocity-Verlet update for particles [lo, hi); returns partial kinetic
/// energy (of the updated velocities).
double update_particles(const MdParams& p, double* pos, double* vel,
                        double* acc, const double* force, int lo, int hi) {
  const double rmass = 1.0 / p.mass;
  const double dt = p.dt;
  double kin = 0.0;
  for (int i = lo; i < hi; ++i) {
    for (int k = 0; k < kDims; ++k) {
      const int idx = i * kDims + k;
      pos[idx] += vel[idx] * dt + 0.5 * dt * dt * acc[idx];
      vel[idx] += 0.5 * dt * (force[idx] * rmass + acc[idx]);
      acc[idx] = force[idx] * rmass;
      kin += vel[idx] * vel[idx];
    }
  }
  return 0.5 * p.mass * kin;
}

}  // namespace

MdResult md_serial(const MdParams& params) {
  const std::size_t n3 = static_cast<std::size_t>(params.nparts) * kDims;
  std::vector<double> pos(n3), vel(n3), acc(n3), force(n3);
  initialize(params, pos.data(), vel.data(), acc.data());

  MdResult result;
  double e0 = 0.0;
  for (int step = 0; step < params.nsteps; ++step) {
    const double pot =
        compute_forces(params, pos.data(), force.data(), 0, params.nparts);
    const double kin = update_particles(params, pos.data(), vel.data(),
                                        acc.data(), force.data(), 0,
                                        params.nparts);
    if (step == 0) e0 = pot + kin;
    result.potential = pot;
    result.kinetic = kin;
  }
  result.energy_drift = std::fabs((result.potential + result.kinetic) - e0) /
                        std::max(std::fabs(e0), 1e-30);
  return result;
}

MdResult md_parade(const MdParams& params) {
  const std::size_t n3 = static_cast<std::size_t>(params.nparts) * kDims;
  auto* pos = shmalloc_array<double>(n3);
  auto* vel = shmalloc_array<double>(n3);
  auto* acc = shmalloc_array<double>(n3);
  auto* force = shmalloc_array<double>(n3);

  if (node_id() == 0) {
    initialize(params, pos, vel, acc);
    for (std::size_t i = 0; i < n3; ++i) force[i] = 0.0;
  }
  barrier();

  MdResult result;
  double e0 = 0.0;
  for (int step = 0; step < params.nsteps; ++step) {
    double pot_replica = 0.0;
    double kin_replica = 0.0;
    parallel([&] {
      long lo, hi;
      static_slice(0, params.nparts, &lo, &hi);

      // Forces read all positions (remote pages) but write only own rows.
      const double pot = compute_forces(params, pos, force,
                                        static_cast<int>(lo),
                                        static_cast<int>(hi));
      // Reduction replaces the lock-guarded accumulations of the OpenMP
      // original (paper §6.2).
      team_update(&pot_replica, pot, mp::Op::kSum);
      barrier();  // all forces written before positions move

      const double kin = update_particles(params, pos, vel, acc, force,
                                          static_cast<int>(lo),
                                          static_cast<int>(hi));
      team_update(&kin_replica, kin, mp::Op::kSum);
    });
    if (step == 0) e0 = pot_replica + kin_replica;
    result.potential = pot_replica;
    result.kinetic = kin_replica;
  }
  result.energy_drift = std::fabs((result.potential + result.kinetic) - e0) /
                        std::max(std::fabs(e0), 1e-30);
  barrier();
  return result;
}

}  // namespace parade::apps
