// Bounded lock-free trace ring. Writers claim a slot with one fetch_add and
// overwrite the oldest event once the ring wraps; readers (the exporter, at
// teardown) see the last `capacity` events plus a total-emitted count.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace parade::obs {

enum class TraceKind : std::uint8_t {
  kSend = 0,
  kRecv = 1,
  kBarrier = 2,
  kLock = 3,
  kPageFault = 4,
  kRegion = 5,
  kCollective = 6,
  kPageServe = 7,
  kLockServe = 8,
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TraceKind kind = TraceKind::kSend;
  NodeId node = 0;
  Tag tag = 0;
  double vtime = 0.0;       // virtual µs at emit, 0 when not on a clocked path
  std::int64_t wall_ns = 0;  // wall clock at begin, for cross-node ordering
  std::int64_t end_wall_ns = 0;  // span end; 0 for instantaneous events
  // Causal identity (docs/OBSERVABILITY.md). All ids stay below 2^53 so they
  // survive a round-trip through double-based JSON parsers.
  std::uint64_t trace_id = 0;     // 0 = event predates tracing / untraced
  std::uint64_t span_id = 0;      // 0 for instantaneous leaf events
  std::uint64_t parent_span = 0;  // 0 = root of its trace
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  /// Returns true when the claimed slot overwrote a retained event (the ring
  /// has wrapped), so callers can count drops.
  bool emit(const TraceEvent& event) {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    slots_[seq % slots_.size()] = event;
    return seq >= slots_.size();
  }

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t emitted() const { return next_.load(std::memory_order_relaxed); }

  /// Oldest-first copy of the retained window. Quiescent-time only: slots
  /// written concurrently with the copy may tear.
  std::vector<TraceEvent> drain() const;

  void reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace parade::obs
