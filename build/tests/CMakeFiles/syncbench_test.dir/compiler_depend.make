# Empty compiler generated dependencies file for syncbench_test.
# This may be replaced when dependencies are built.
