file(REMOVE_RECURSE
  "CMakeFiles/fig7_single.dir/fig7_single.cpp.o"
  "CMakeFiles/fig7_single.dir/fig7_single.cpp.o.d"
  "fig7_single"
  "fig7_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
