// Channel: a node's attachment to the interconnect fabric. Implementations:
// InProcFabric (all nodes in one process; used by the virtual cluster, unit
// tests and the figure benches) and SocketFabric (one process per node over
// Unix-domain sockets; used by the parade_run launcher).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/mailbox.hpp"
#include "net/message.hpp"

namespace parade::net {

class Channel {
 public:
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  NodeId rank() const { return rank_; }
  int size() const { return size_; }

  /// Sends `payload` to `dst` with the given tag and virtual timestamp.
  /// Thread-safe. Self-sends (dst == rank()) are delivered locally.
  virtual void send(NodeId dst, Tag tag, std::vector<std::uint8_t> payload,
                    VirtualUs vtime) = 0;

  Mailbox& inbox() { return inbox_; }

  /// Stops delivery and wakes blocked receivers.
  virtual void shutdown() { inbox_.close(); }

 protected:
  Channel(NodeId rank, int size) : rank_(rank), size_(size) {}

  NodeId rank_;
  int size_;
  Mailbox inbox_;
};

}  // namespace parade::net
