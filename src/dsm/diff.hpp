// Twin/diff codec for the HLRC invalidate protocol.
//
// A non-home writer copies the page to a "twin" on its first write fault; at
// flush time (barrier or lock release) the current page is compared to the
// twin and only the changed bytes travel to the home, encoded as runs:
//   { u32 offset, u32 length, length bytes } *
// Comparison is word-granular (8 bytes) for speed; adjacent changed words
// coalesce into one run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/serialize.hpp"

namespace parade::dsm {

/// Encodes the byte runs where `current` differs from `twin`.
/// Both buffers are `page_bytes` long; `page_bytes` must be a multiple of 8.
std::vector<std::uint8_t> encode_diff(const std::uint8_t* current,
                                      const std::uint8_t* twin,
                                      std::size_t page_bytes);

/// Zero-copy variant: streams the runs straight into `out` in the exact
/// wire layout of put_vector<uint8_t> (u32 byte count, then the runs), so a
/// DiffMsg can be encoded without staging the diff in its own vector.
/// Returns the number of diff bytes written (0 = clean page).
std::size_t append_diff(WireBuffer& out, const std::uint8_t* current,
                        const std::uint8_t* twin, std::size_t page_bytes);

/// Applies an encoded diff onto `target` (a page of `page_bytes`).
/// Returns false if the diff is malformed or out of range.
bool apply_diff(std::uint8_t* target, std::size_t page_bytes,
                const std::uint8_t* diff, std::size_t diff_bytes);

/// Number of payload bytes (sum of run lengths) described by a diff.
std::size_t diff_payload_bytes(const std::uint8_t* diff,
                               std::size_t diff_bytes);

}  // namespace parade::dsm
