// Whole-program interference analysis tests (docs/ANALYZER.md
// "Region-sequence graph"): phase/step decomposition of the program into
// barrier-delimited intervals, the May-Happen-in-Parallel rules, the
// per-phase sharing-pattern classification (read-mostly / producer-consumer
// / migratory / ping-pong), the phase-aware hint lowering with its
// single-phase degeneracy property, the three cross-region diagnostics in
// both golden directions, and the static message-cost report shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "translator/analyze.hpp"
#include "translator/hints.hpp"
#include "translator/interfere.hpp"
#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace parade::translator {
namespace {

struct Analyzed {
  TranslationUnit unit;
  Analysis analysis;
};

Analyzed analyze_program(const std::string& source,
                         AnalyzeOptions options = {}) {
  auto tokens = lex(source);
  EXPECT_TRUE(tokens.is_ok()) << tokens.status().to_string();
  auto unit = parse(tokens.value());
  EXPECT_TRUE(unit.is_ok()) << unit.status().to_string();
  Analyzed out{std::move(unit).value(), {}};
  out.analysis = analyze(out.unit, options);
  return out;
}

const Diagnostic* find_diag(const Analysis& analysis, const char* code) {
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

const PhaseRange* find_range(const ProtocolHints& hints, int phase,
                             const std::string& symbol) {
  for (const PhaseHint& ph : hints.phases) {
    if (ph.index != phase) continue;
    for (const PhaseRange& r : ph.ranges) {
      if (r.symbol == symbol) return &r;
    }
  }
  return nullptr;
}

// Two worksharing phases: u is produced in the first and consumed in the
// second; v is written once and never read again.
const char* kTwoPhaseProgram =
    "double u[1024];\n"
    "double v[1024];\n"
    "int main(void) {\n"
    "  int i;\n"
    "  int j;\n"
    "  #pragma omp parallel for\n"
    "  for (i = 0; i < 1024; i++) { u[i] = 1.0; }\n"
    "  #pragma omp parallel for\n"
    "  for (j = 0; j < 1024; j++) { v[j] = u[j] * 2.0; }\n"
    "  return 0;\n"
    "}\n";

// ---------------------------------------------------------------------------
// Region-sequence graph shape

TEST(RegionSeq, PhasesSplitAtBarriersAndEpochBaseTracksSharedInit) {
  const Analyzed p = analyze_program(kTwoPhaseProgram);
  const RegionSequence seq = build_region_sequence(p.unit, p.analysis);

  // DSM arrays exist, so codegen emits the shared-init barrier: the first
  // phase the translator sees runs during DSM epoch 1.
  EXPECT_EQ(seq.epoch_base, 1);
  EXPECT_TRUE(seq.phases_static);
  EXPECT_GE(seq.phase_count, 2);

  // The write to u and the read of u sit in different phases (a combined
  // `parallel for` ends with barriers), in program order.
  int u_write_phase = -1;
  int u_read_phase = -1;
  for (const SeqAccess& a : seq.accesses) {
    if (a.symbol != "u") continue;
    if (a.write) u_write_phase = a.phase;
    if (!a.write) u_read_phase = a.phase;
  }
  ASSERT_GE(u_write_phase, 0);
  ASSERT_GE(u_read_phase, 0);
  EXPECT_LT(u_write_phase, u_read_phase);

  // Both worksharing bodies are parallel, partitioned by the loop variable.
  for (const SeqAccess& a : seq.accesses) {
    if (a.symbol == "u" && a.write) {
      EXPECT_TRUE(a.parallel);
      EXPECT_TRUE(a.partitioned);
    }
  }
}

TEST(RegionSeq, BarrierInsideSerialLoopWithholdsPhaseHints) {
  const Analyzed p = analyze_program(
      "double u[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int t;\n"
      "  for (t = 0; t < 10; t++) {\n"
      "    #pragma omp parallel for\n"
      "    for (i = 0; i < 1024; i++) { u[i] = u[i] + 1.0; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const RegionSequence seq = build_region_sequence(p.unit, p.analysis);
  // The phase counter advances inside a serial loop, so the phase timeline
  // is not statically enumerable: hints are withheld entirely.
  EXPECT_FALSE(seq.phases_static);
  EXPECT_TRUE(p.analysis.hints.phases.empty());
}

// ---------------------------------------------------------------------------
// May-Happen-in-Parallel rules

SeqAccess access(int phase, int step, bool parallel,
                 std::vector<std::string> locks = {}, int serial_guard = -1,
                 bool master = false) {
  SeqAccess a;
  a.symbol = "x";
  a.write = true;
  a.phase = phase;
  a.step = step;
  a.parallel = parallel;
  a.serial_guard = serial_guard;
  a.master_guard = master;
  a.locks = std::move(locks);
  return a;
}

TEST(Mhp, SameStepUnguardedParallelAccessesOverlap) {
  EXPECT_TRUE(may_happen_in_parallel(access(0, 0, true), access(0, 0, true)));
}

TEST(Mhp, BarriersAndSerialContextOrderAccesses) {
  // Different steps: a barrier (or node-local order point) sits between.
  EXPECT_FALSE(may_happen_in_parallel(access(0, 0, true), access(1, 1, true)));
  // Serial code never overlaps anything.
  EXPECT_FALSE(may_happen_in_parallel(access(0, 0, false), access(0, 0, true)));
}

TEST(Mhp, CommonLockSerializesDisjointLocksDoNot) {
  EXPECT_FALSE(may_happen_in_parallel(access(0, 0, true, {"alpha"}),
                                      access(0, 0, true, {"alpha"})));
  EXPECT_TRUE(may_happen_in_parallel(access(0, 0, true, {"alpha"}),
                                     access(0, 0, true, {"beta"})));
}

TEST(Mhp, MasterAndSameSingleInstanceSerialize) {
  // Master is global thread 0 everywhere: two master bodies never overlap.
  EXPECT_FALSE(may_happen_in_parallel(access(0, 0, true, {}, 3, true),
                                      access(0, 0, true, {}, 7, true)));
  // The same single instance executes once; different instances may overlap
  // when one of them is nowait.
  EXPECT_FALSE(may_happen_in_parallel(access(0, 0, true, {}, 5),
                                      access(0, 0, true, {}, 5)));
  EXPECT_TRUE(may_happen_in_parallel(access(0, 0, true, {}, 5),
                                     access(0, 0, true, {}, 6)));
}

// ---------------------------------------------------------------------------
// Sharing-pattern classification, lowered into the phases sidecar

TEST(Classify, ProducerConsumerAndReadMostlyAcrossPhases) {
  const Analyzed p = analyze_program(kTwoPhaseProgram);
  const ProtocolHints& hints = p.analysis.hints;
  ASSERT_FALSE(hints.phases.empty());
  EXPECT_EQ(hints.epoch_base, 1);

  const RegionSequence seq = build_region_sequence(p.unit, p.analysis);
  int u_write_phase = -1;
  int u_read_phase = -1;
  for (const SeqAccess& a : seq.accesses) {
    if (a.symbol != "u") continue;
    (a.write ? u_write_phase : u_read_phase) = a.phase;
  }
  const PhaseRange* produced = find_range(hints, u_write_phase, "u");
  ASSERT_NE(produced, nullptr);
  EXPECT_EQ(produced->pattern, SharingPattern::kProducerConsumer);
  const PhaseRange* consumed = find_range(hints, u_read_phase, "u");
  ASSERT_NE(consumed, nullptr);
  EXPECT_EQ(consumed->pattern, SharingPattern::kReadMostly);
}

TEST(Classify, LockConvoyedUnpartitionedWritesArePingPong) {
  // Every thread funnels read-modify-write traffic over the whole array
  // through rotating critical sections: no data race, but the pages bounce
  // node-to-node each acquisition.
  const Analyzed p = analyze_program(
      "double acc[512];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 64; i++) {\n"
      "    #pragma omp critical\n"
      "    { for (j = 0; j < 512; j++) { acc[j] = acc[j] + 1.0; } }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  bool found = false;
  for (const PhaseHint& ph : p.analysis.hints.phases) {
    for (const PhaseRange& r : ph.ranges) {
      if (r.symbol != "acc" || r.pattern != SharingPattern::kPingPong) {
        continue;
      }
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Classify, SoleWriterAcrossMultiplePhasesIsMigratory) {
  // The master thread alone rewrites the array in two separate phases: the
  // ideal home follows the writer, no phase ever ping-pongs.
  const Analyzed p = analyze_program(
      "double state[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp master\n"
      "    { for (i = 0; i < 1024; i++) { state[i] = 1.0; } }\n"
      "    #pragma omp barrier\n"
      "    #pragma omp master\n"
      "    { for (i = 0; i < 1024; i++) { state[i] = state[i] * 2.0; } }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  std::size_t migratory = 0;
  for (const PhaseHint& ph : p.analysis.hints.phases) {
    for (const PhaseRange& r : ph.ranges) {
      if (r.symbol == "state" && r.pattern == SharingPattern::kMigratory) {
        ++migratory;
      }
    }
  }
  EXPECT_GE(migratory, 2u);
}

// ---------------------------------------------------------------------------
// Degeneracy property: a single-phase program's phase hints equal the
// whole-program symbol hints (flags are computed by the same formulas over
// the same counts when all accesses share one phase).

TEST(Degeneracy, SinglePhaseHintsMatchWholeProgramHints) {
  const char* const programs[] = {
      // Read-dominated small array: prefer_update stays set.
      "double small[16];\n"
      "double out[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 1024; i++) { out[i] = small[0] + small[1]; }\n"
      "  return 0;\n"
      "}\n",
      // Partitioned producer, no consumer.
      "double u[4096];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 4096; i++) { u[i] = 1.0; }\n"
      "  return 0;\n"
      "}\n",
  };
  for (const char* source : programs) {
    const Analyzed p = analyze_program(source);
    const ProtocolHints& hints = p.analysis.hints;
    // All accesses sit in the first phase: exactly one phase record.
    ASSERT_EQ(hints.phases.size(), 1u) << source;
    for (const PhaseRange& r : hints.phases[0].ranges) {
      const SymbolHint* h = hints.find(r.symbol);
      ASSERT_NE(h, nullptr) << r.symbol;
      EXPECT_EQ(r.prefer_update, h->prefer_update) << r.symbol;
      EXPECT_EQ(r.migration_friendly, h->migration_friendly) << r.symbol;
      EXPECT_EQ(r.offset, h->pool_offset) << r.symbol;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-region diagnostics, golden in both directions

TEST(CrossRegion, NonComposingCriticalNamesAreFlagged) {
  const Analyzed p = analyze_program(
      "double buf[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical (alpha)\n"
      "    { for (i = 0; i < 1024; i++) { buf[i] = buf[i] + 1.0; } }\n"
      "    #pragma omp critical (beta)\n"
      "    { for (j = 0; j < 1024; j++) { buf[j] = buf[j] * 2.0; } }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(p.analysis, kDiagRaceCrossRegion);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->var, "buf");
  EXPECT_EQ(d->line, 10);
  EXPECT_GT(d->column, 0);
}

TEST(CrossRegion, SharedCriticalNameComposesAndIsClean) {
  const Analyzed p = analyze_program(
      "double buf[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical (alpha)\n"
      "    { for (i = 0; i < 1024; i++) { buf[i] = buf[i] + 1.0; } }\n"
      "    #pragma omp critical (alpha)\n"
      "    { for (j = 0; j < 1024; j++) { buf[j] = buf[j] * 2.0; } }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(p.analysis, kDiagRaceCrossRegion), nullptr);
}

TEST(CrossRegion, NowaitWriteReadByLaterConstructInSamePhase) {
  const Analyzed p = analyze_program(
      "double u[2048];\n"
      "double v[2048];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp for nowait\n"
      "    for (i = 0; i < 2048; i++) { u[i] = 1.0; }\n"
      "    #pragma omp for\n"
      "    for (j = 0; j < 2048; j++) { v[j] = u[j]; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(p.analysis, kDiagNowaitCrossRegionRead);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->var, "u");
  EXPECT_EQ(d->line, 11);
}

TEST(CrossRegion, ImpliedBarrierPublishesTheWrite) {
  const Analyzed p = analyze_program(
      "double u[2048];\n"
      "double v[2048];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp for\n"
      "    for (i = 0; i < 2048; i++) { u[i] = 1.0; }\n"
      "    #pragma omp for\n"
      "    for (j = 0; j < 2048; j++) { v[j] = u[j]; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(p.analysis, kDiagNowaitCrossRegionRead), nullptr);
}

TEST(CrossRegion, AllPingPongPhasesDemotePreferUpdate) {
  const Analyzed p = analyze_program(
      "double pair[32];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 1024; i++) {\n"
      "    pair[0] = pair[1] + pair[2];\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(p.analysis, kDiagHintPingpongDemotion);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->var, "pair");
  const SymbolHint* h = p.analysis.hints.find("pair");
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->prefer_update);
  for (const PhaseHint& ph : p.analysis.hints.phases) {
    for (const PhaseRange& r : ph.ranges) {
      if (r.symbol == "pair") EXPECT_FALSE(r.prefer_update);
    }
  }
}

TEST(CrossRegion, PartitionedProducerIsNotDemoted) {
  const Analyzed p = analyze_program(kTwoPhaseProgram);
  EXPECT_EQ(find_diag(p.analysis, kDiagHintPingpongDemotion), nullptr);
}

// ---------------------------------------------------------------------------
// Static message-cost report

TEST(CostModel, ReportPricesConstructsAndSerializes) {
  const Analyzed p = analyze_program(kTwoPhaseProgram);
  const CostReport report =
      estimate_message_costs(p.unit, {}, p.analysis, /*nodes=*/4);
  EXPECT_EQ(report.nodes, 4);
  ASSERT_FALSE(report.constructs.empty());
  // The producer phase must predict diff traffic; some construct fetches u
  // remotely in the consumer phase.
  EXPECT_GT(report.total_diffs_created(), 0.0);
  EXPECT_GT(report.total_page_fetches(), 0.0);
  // Entries are sorted by line for deterministic output.
  EXPECT_TRUE(std::is_sorted(report.constructs.begin(),
                             report.constructs.end(),
                             [](const ConstructCost& a, const ConstructCost& b) {
                               return a.line < b.line;
                             }));

  const std::string json = report.to_json("two_phase.c");
  auto doc = obs::parse_json(json);
  ASSERT_TRUE(doc.is_ok()) << json;
  EXPECT_EQ(doc.value().at("nodes").as_int(), 4);
  ASSERT_TRUE(doc.value().at("totals").is_object());
  EXPECT_TRUE(doc.value().at("totals").has("dsm.page_fetches"));
  EXPECT_TRUE(doc.value().at("totals").has("dsm.diffs_created"));
  EXPECT_TRUE(doc.value().at("totals").has("dsm.lock_acquires"));

  const std::string text = report.to_text("two_phase.c");
  EXPECT_NE(text.find("static message-cost estimate"), std::string::npos);
}

TEST(CostModel, LockBoundConstructsChargeAcquires) {
  const Analyzed p = analyze_program(
      "double acc[512];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 64; i++) {\n"
      "    #pragma omp critical\n"
      "    { for (j = 0; j < 512; j++) { acc[j] = acc[j] + 1.0; } }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const CostReport report =
      estimate_message_costs(p.unit, {}, p.analysis, /*nodes=*/2);
  EXPECT_GT(report.total_lock_acquires(), 0.0);
}

}  // namespace
}  // namespace parade::translator
