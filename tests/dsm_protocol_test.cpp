// Multi-node DSM protocol behaviour: caching, invalidation, migration
// policy, lock consistency, multi-threaded fault handling (TRANSIENT /
// BLOCKED), and protocol statistics.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "dsm/cluster.hpp"
#include "obs/registry.hpp"

namespace parade::dsm {
namespace {

DsmConfig config_mb(std::size_t mb = 4) {
  DsmConfig config;
  config.pool_bytes = mb << 20;
  return config;
}

TEST(DsmProtocol, ReadCachingAvoidsRefetch) {
  DsmCluster cluster(2, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) *data = 11;
    cluster.node(rank).barrier();
    // First read faults the page in on node 1...
    EXPECT_EQ(*data, 11);
    const auto after_first = cluster.node(rank).stats().snapshot();
    // ...subsequent reads are local.
    for (int i = 0; i < 100; ++i) EXPECT_EQ(data[0], 11);
    const auto after_many = cluster.node(rank).stats().snapshot();
    EXPECT_EQ(after_first.page_fetches, after_many.page_fetches);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, CachedCopySurvivesUnrelatedBarriers) {
  DsmCluster cluster(2, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) *data = 5;
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 5);
    const auto before = cluster.node(rank).stats().snapshot();
    // Barriers without writes to this page must not invalidate it.
    cluster.node(rank).barrier();
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 5);
    const auto after = cluster.node(rank).stats().snapshot();
    EXPECT_EQ(before.page_fetches, after.page_fetches);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, RemoteWriteInvalidatesCachedCopy) {
  DsmCluster cluster(3, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) *data = 1;
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 1);  // all nodes cache the page
    cluster.node(rank).barrier();
    if (rank == 2) *data = 2;
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 2);  // invalidation forced a refetch everywhere
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, MigrationDisabledKeepsHome) {
  DsmConfig config = config_mb();
  config.home_migration = false;
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    const PageId page =
        static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
    cluster.node(rank).barrier();
    if (rank == 1) *data = 7;
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(page), 0);  // fixed home
    EXPECT_EQ(*data, 7);
    cluster.node(rank).barrier();
  });
  const auto master_stats = cluster.node(0).stats().snapshot();
  EXPECT_EQ(master_stats.home_migrations, 0);
  cluster.shutdown();
}

TEST(DsmProtocol, MultiWriterPageKeepsOldHome) {
  DsmCluster cluster(3, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    cluster.node(rank).barrier();
    // Nodes 1 and 2 write disjoint words of the same page.
    if (rank == 1) data[1] = 100;
    if (rank == 2) data[2] = 200;
    cluster.node(rank).barrier();
    const PageId page =
        static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
    // Several modifiers: only the old home holds the merged copy, so the
    // home must not move (paper §5.2.2 priority rule).
    EXPECT_EQ(cluster.node(rank).home_of(page), 0);
    EXPECT_EQ(data[1], 100);
    EXPECT_EQ(data[2], 200);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, ChainedMigrationFollowsWriter) {
  DsmCluster cluster(3, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    const PageId page =
        static_cast<PageId>(cluster.node(rank).offset_of(data) / 4096);
    cluster.node(rank).barrier();
    if (rank == 1) *data = 1;
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(page), 1);
    // Separate read and write phases with a barrier: a reader racing a
    // writer in the same interval is a data race the protocol need not
    // order (a fast writer's barrier flush updates the home's copy early).
    cluster.node(rank).barrier();
    if (rank == 2) *data = 2;
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(page), 2);
    EXPECT_EQ(*data, 2);
    cluster.node(rank).barrier();
    if (rank == 0) *data = 3;
    cluster.node(rank).barrier();
    EXPECT_EQ(cluster.node(rank).home_of(page), 0);
    EXPECT_EQ(*data, 3);
    cluster.node(rank).barrier();
  });
  const auto stats = cluster.node(0).stats().snapshot();
  EXPECT_GE(stats.home_migrations, 3);
  cluster.shutdown();
}

TEST(DsmProtocol, ManyPagesManyEpochs) {
  constexpr int kPages = 32;
  constexpr int kEpochs = 8;
  DsmCluster cluster(4, config_mb(8));
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<std::int64_t*>(
        cluster.node(rank).shmalloc(kPages * 4096, 4096));
    const int per_page = 4096 / sizeof(std::int64_t);
    cluster.node(rank).barrier();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      // Round-robin writer per page per epoch.
      for (int p = 0; p < kPages; ++p) {
        if ((p + epoch) % 4 == rank) {
          data[p * per_page + epoch] = epoch * 1000 + p;
        }
      }
      cluster.node(rank).barrier();
      for (int p = 0; p < kPages; ++p) {
        ASSERT_EQ(data[p * per_page + epoch], epoch * 1000 + p)
            << "rank " << rank << " page " << p << " epoch " << epoch;
      }
      cluster.node(rank).barrier();
    }
  });
  cluster.shutdown();
}

TEST(DsmProtocol, LockTransfersProtectedData) {
  // Token passing: each node appends to a shared log under the lock.
  constexpr int kRounds = 3;
  DsmCluster cluster(3, config_mb());
  cluster.run([&](NodeId rank) {
    auto* log = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) log[0] = 0;  // log[0] = count
    cluster.node(rank).barrier();
    for (int round = 0; round < kRounds; ++round) {
      cluster.node(rank).lock_acquire(5);
      const int count = log[0];
      log[count + 1] = rank * 100 + round;
      log[0] = count + 1;
      cluster.node(rank).lock_release(5);
    }
    cluster.node(rank).barrier();
    EXPECT_EQ(log[0], 3 * kRounds);
    // Every entry must be a valid (rank, round) stamp, each exactly once.
    std::set<int> seen;
    for (int i = 1; i <= log[0]; ++i) seen.insert(log[i]);
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(3 * kRounds));
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, TwoThreadsFaultSamePage) {
  // Exercises TRANSIENT -> BLOCKED: two threads of one node fault the same
  // remote page concurrently; exactly one fetch must happen.
  DsmCluster cluster(2, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) *data = 77;
    cluster.node(rank).barrier();
    if (rank == 1) {
      std::vector<std::thread> readers;
      for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] { EXPECT_EQ(*data, 77); });
      }
      for (auto& r : readers) r.join();
      EXPECT_EQ(cluster.node(1).stats().snapshot().page_fetches, 1);
    }
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, StatsAccounting) {
  DsmCluster cluster(2, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    cluster.node(rank).barrier();
    if (rank == 1) *data = 1;  // fetch + twin + diff at the next barrier
    cluster.node(rank).barrier();
    cluster.node(rank).barrier();
  });
  const auto n0 = cluster.node(0).stats().snapshot();
  const auto n1 = cluster.node(1).stats().snapshot();
  EXPECT_EQ(n1.page_fetches, 1);
  EXPECT_EQ(n0.page_serves, 1);
  // Under zero_copy (the default) the twin is a CoW alias of the home's
  // frame, not an eager copy; nothing ever mutates the frame while the alias
  // lives, so it is never privatized either.
  EXPECT_EQ(n1.twins_created, 0);
  EXPECT_EQ(n1.twins_shared, 1);
  EXPECT_EQ(n1.twin_privatizations, 0);
  EXPECT_EQ(n1.diffs_created, 1);
  EXPECT_EQ(n0.diffs_applied, 1);
  EXPECT_GT(n1.diff_bytes_sent, 0);
  EXPECT_EQ(n0.barriers, 3);
  EXPECT_EQ(n1.barriers, 3);
  EXPECT_EQ(n1.write_notices_sent, 1);
  cluster.shutdown();
}

TEST(DsmProtocol, SysVMappingCluster) {
  DsmConfig config = config_mb();
  config.map_method = MapMethod::kSysV;
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    if (rank == 0) *data = 31;
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 31);
    if (rank == 1) *data = 32;
    cluster.node(rank).barrier();
    EXPECT_EQ(*data, 32);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, SoleModifierKeepsCopyWithoutMigration) {
  DsmConfig config = config_mb();
  config.home_migration = false;
  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(4096, 4096));
    cluster.node(rank).barrier();
    if (rank == 1) *data = 9;
    cluster.node(rank).barrier();
    const auto before = cluster.node(rank).stats().snapshot();
    EXPECT_EQ(*data, 9);  // sole modifier's copy stayed valid; home merged
    const auto after = cluster.node(rank).stats().snapshot();
    if (rank == 1) {
      EXPECT_EQ(before.page_fetches, after.page_fetches);
    }
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
}

TEST(DsmProtocol, AllocatorAlignmentAndDeterminism) {
  DsmCluster cluster(2, config_mb());
  std::size_t offsets[2][3];
  cluster.run([&](NodeId rank) {
    void* a = cluster.node(rank).shmalloc(100);
    void* b = cluster.node(rank).shmalloc(8, 4096);
    void* c = cluster.node(rank).shmalloc(1);
    offsets[rank][0] = cluster.node(rank).offset_of(a);
    offsets[rank][1] = cluster.node(rank).offset_of(b);
    offsets[rank][2] = cluster.node(rank).offset_of(c);
  });
  // SPMD allocation: identical offsets on every node.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(offsets[0][i], offsets[1][i]);
  EXPECT_EQ(offsets[0][1] % 4096, 0u);
  cluster.shutdown();
}

TEST(DsmProtocol, InvariantViolationCounterStaysZero) {
  // Exercise fetch, migration, invalidation, and concurrent faulting, then
  // read back `dsm.invariant.violations`. The counter is registered
  // unconditionally; under PARADE_CHECKED builds every rules.hpp decision is
  // re-checked at runtime and any disagreement would show up here.
  DsmCluster cluster(3, config_mb());
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<int*>(cluster.node(rank).shmalloc(8192, 4096));
    if (rank == 0) data[0] = 1;
    cluster.node(rank).barrier();
    EXPECT_EQ(data[0], 1);
    cluster.node(rank).barrier();
    if (rank == 1) data[0] = 2;          // sole modifier: home migrates
    if (rank == 2) data[1024] = 3;       // second page, different owner
    cluster.node(rank).barrier();
    EXPECT_EQ(data[0], 2);
    EXPECT_EQ(data[1024], 3);
    cluster.node(rank).barrier();
  });
  cluster.shutdown();
  for (NodeId rank = 0; rank < 3; ++rank) {
    EXPECT_EQ(obs::Registry::instance()
                  .counter(rank, "dsm.invariant.violations")
                  .value(),
              0)
        << "rank " << rank;
  }
}

}  // namespace
}  // namespace parade::dsm
