#include "dsm/sigsegv.hpp"

#include <signal.h>
#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "dsm/node.hpp"

namespace parade::dsm::sigsegv {
namespace {

struct Range {
  std::uintptr_t base;
  std::uintptr_t limit;
  DsmNode* node;
};

// The registry is read inside a signal handler, so mutation swaps an
// immutable snapshot under a mutex and readers load an atomic pointer —
// no locks on the fault path.
std::mutex g_mutex;
std::atomic<const std::vector<Range>*> g_ranges{nullptr};

struct sigaction g_previous;

DsmNode* find_node(void* addr) {
  const auto* ranges = g_ranges.load(std::memory_order_acquire);
  if (ranges == nullptr) return nullptr;
  const auto p = reinterpret_cast<std::uintptr_t>(addr);
  for (const Range& range : *ranges) {
    if (p >= range.base && p < range.limit) return range.node;
  }
  return nullptr;
}

void handler(int signo, siginfo_t* info, void* ucontext) {
  DsmNode* node = info != nullptr ? find_node(info->si_addr) : nullptr;
  if (node != nullptr) {
    const bool is_write = context_says_write(ucontext);
    if (node->handle_fault(info->si_addr, is_write)) return;
  }
  // Not ours (or the node refused): restore the previous disposition and
  // re-raise so the process crashes normally.
  if (g_previous.sa_flags & SA_SIGINFO) {
    if (g_previous.sa_sigaction != nullptr) {
      g_previous.sa_sigaction(signo, info, ucontext);
      return;
    }
  } else if (g_previous.sa_handler != SIG_DFL &&
             g_previous.sa_handler != SIG_IGN &&
             g_previous.sa_handler != nullptr) {
    g_previous.sa_handler(signo);
    return;
  }
  std::fprintf(stderr, "parade: unhandled SIGSEGV at %p\n",
               info != nullptr ? info->si_addr : nullptr);
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
}

}  // namespace

void ensure_installed() {
  static std::once_flag installed;
  std::call_once(installed, [] {
    struct sigaction action {};
    action.sa_sigaction = handler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    sigaction(SIGSEGV, &action, &g_previous);
    // Linux reports faults on protected mappings as SIGBUS in some corner
    // cases (e.g. beyond a truncated file); route those too.
    sigaction(SIGBUS, &action, nullptr);
  });
}

void register_range(void* base, std::size_t bytes, DsmNode* node) {
  std::lock_guard lock(g_mutex);
  auto next = std::make_unique<std::vector<Range>>();
  const auto* current = g_ranges.load(std::memory_order_acquire);
  if (current != nullptr) *next = *current;
  next->push_back(Range{reinterpret_cast<std::uintptr_t>(base),
                        reinterpret_cast<std::uintptr_t>(base) + bytes, node});
  const auto* old = g_ranges.exchange(next.release(), std::memory_order_acq_rel);
  // Leak the tiny old snapshot rather than risk freeing it under a
  // concurrent fault (registration happens a handful of times per run).
  (void)old;
}

void unregister_range(void* base) {
  std::lock_guard lock(g_mutex);
  const auto* current = g_ranges.load(std::memory_order_acquire);
  if (current == nullptr) return;
  auto next = std::make_unique<std::vector<Range>>();
  for (const Range& range : *current) {
    if (range.base != reinterpret_cast<std::uintptr_t>(base)) {
      next->push_back(range);
    }
  }
  g_ranges.exchange(next.release(), std::memory_order_acq_rel);
}

bool context_says_write(const void* ucontext) {
#if defined(__x86_64__)
  if (ucontext != nullptr) {
    const auto* uc = static_cast<const ucontext_t*>(ucontext);
    // Page-fault error code: bit 1 set => write access.
    return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
  }
#else
  (void)ucontext;
#endif
  return false;
}

}  // namespace parade::dsm::sigsegv
