// Lightweight Status / Result<T> error handling (no exceptions across module
// boundaries; exceptions are still used for programming errors via PARADE_CHECK).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace parade {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kUnsupported,
  kIoError,
  kTimeout,
};

std::string_view to_string(ErrorCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Either a value or a Status error. Modeled on std::expected (not yet in
/// libstdc++ 12) with the subset of operations we need.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}     // NOLINT(google-explicit-constructor)

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const Status& status() const { return std::get<Status>(data_); }

  /// Returns the value or dies with the error message (for tests/tools).
  T value_or_die() &&;

 private:
  std::variant<T, Status> data_;
};

[[noreturn]] void die(std::string_view message);

template <typename T>
T Result<T>::value_or_die() && {
  if (!is_ok()) die(status().to_string());
  return std::get<T>(std::move(data_));
}

// Internal assertion machinery. PARADE_CHECK is for invariants that indicate
// a bug in ParADE itself, not user error; it aborts with location info.
#define PARADE_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::parade::detail::check_failed(#cond, __FILE__, __LINE__);           \
    }                                                                      \
  } while (false)

#define PARADE_CHECK_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::parade::detail::check_failed_msg(#cond, (msg), __FILE__, __LINE__);\
    }                                                                      \
  } while (false)

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line);
[[noreturn]] void check_failed_msg(const char* expr, std::string_view msg,
                                   const char* file, int line);
}  // namespace detail

}  // namespace parade
