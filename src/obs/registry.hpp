// Process-wide observability registry. Every layer (net, mp, dsm, runtime)
// registers named counters/timers keyed by node id; handles are looked up
// once (mutex-protected) and then incremented lock-free. Epochs slice the
// counters into per-barrier deltas, and a bounded trace ring records the
// most recent protocol events. `PARADE_METRICS=<path>` makes teardown dump
// everything as JSON (or CSV by extension) — see docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "obs/metric.hpp"
#include "obs/trace.hpp"

namespace parade::obs {

/// Point-in-time copy of one node's metrics.
struct NodeSnapshot {
  std::map<std::string, std::int64_t> counters;
  struct TimerValue {
    std::int64_t total_ns = 0;
    std::int64_t count = 0;
  };
  std::map<std::string, TimerValue> timers;
};

/// Counter deltas accumulated between two epoch closes (i.e. one barrier
/// interval). Counters that did not move are omitted.
struct EpochSlice {
  std::int64_t epoch = 0;
  std::map<std::string, std::int64_t> deltas;
};

class Registry {
 public:
  struct Options {
    bool trace_enabled = false;
    std::size_t ring_capacity = 1 << 16;
    std::size_t max_epochs = 512;

    /// Reads PARADE_TRACE / PARADE_TRACE_RING / PARADE_METRICS_EPOCHS.
    static Options from_env();
  };

  /// The process singleton, configured from env on first use.
  static Registry& instance();

  Registry() : Registry(Options{}) {}
  explicit Registry(Options options);

  /// Returns the counter/timer handle for (node, name), creating it on first
  /// use. Handles stay valid and keep their identity for the process
  /// lifetime; reset_node zeroes values without invalidating pointers.
  Counter& counter(NodeId node, const std::string& name);
  Timer& timer(NodeId node, const std::string& name);

  void emit(TraceKind kind, NodeId node, Tag tag, double vtime);
  bool trace_enabled() const { return options_.trace_enabled; }

  /// Zeroes all metrics, epochs, and the epoch baseline for one node. Called
  /// when a node (re)starts so consecutive virtual clusters in one process
  /// each see exact counts.
  void reset_node(NodeId node);

  NodeSnapshot snapshot(NodeId node) const;

  /// Closes epoch `epoch` for `node`: records counter deltas since the last
  /// close. Bounded by max_epochs; later closes only bump a dropped count.
  void close_epoch(NodeId node, std::int64_t epoch);

  std::vector<EpochSlice> epochs(NodeId node) const;
  std::int64_t epochs_dropped(NodeId node) const;

  /// Writes all nodes' metrics (plus the trace ring) to `path`. Format is
  /// chosen by extension: ".csv" → CSV, anything else → JSON.
  Status export_to(const std::string& path, const std::string& label) const;

  /// export_to(PARADE_METRICS) if that env var is set; no-op otherwise.
  /// Under PARADE_RANK the rank is suffixed before the extension so the
  /// launcher's processes do not clobber each other.
  void export_if_configured(const std::string& label) const;

  /// JSON document string as written by export_to (for tests).
  std::string to_json(const std::string& label) const;
  std::string to_csv() const;

 private:
  struct NodeState {
    // unique_ptr keeps handle addresses stable across map growth, since
    // layers cache Counter*/Timer* for lock-free hot-path updates.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Timer>> timers;
    std::map<std::string, std::int64_t> epoch_baseline;
    std::vector<EpochSlice> epochs;
    std::int64_t epochs_dropped = 0;
  };

  NodeState& state_locked(NodeId node);

  Options options_;
  mutable std::mutex mu_;
  std::map<NodeId, NodeState> nodes_;
  TraceRing ring_;
};

}  // namespace parade::obs
