#include "translator/codegen.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "translator/parser.hpp"
#include "translator/token.hpp"

namespace parade::translator {
namespace {

const std::unordered_set<std::string>& omp_api_names() {
  static const std::unordered_set<std::string> names = {
      "omp_get_num_threads", "omp_get_max_threads", "omp_get_thread_num",
      "omp_get_num_procs",   "omp_in_parallel",     "omp_get_wtime",
      "omp_get_wtick",       "omp_init_lock",       "omp_destroy_lock",
      "omp_set_lock",        "omp_unset_lock",      "omp_init_nest_lock",
      "omp_destroy_nest_lock", "omp_set_nest_lock", "omp_unset_nest_lock",
      "omp_lock_t",          "omp_nest_lock_t"};
  return names;
}

/// Strips storage-class and cv qualifiers so the remainder can be used as a
/// template argument / cast target ("static long" -> "long").
std::string value_type_of(const std::string& decl_type) {
  auto tokens_result = lex(decl_type);
  if (!tokens_result.is_ok()) return decl_type;
  const auto tokens = std::move(tokens_result).value();
  std::string out;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kEof) break;
    if (t.text == "static" || t.text == "extern" || t.text == "register" ||
        t.text == "auto" || t.text == "const" || t.text == "volatile") {
      continue;
    }
    std::string text = t.text;
    if (text == "omp_lock_t" || text == "omp_nest_lock_t") {
      text = "parade::ompshim::" + text;
    }
    out += (out.empty() ? "" : " ") + text;
  }
  return out.empty() ? decl_type : out;
}

struct Symbol {
  std::string type;  // base type text without stars
  int pointer_depth = 0;
  bool is_array = false;
  bool replicated_global = false;  // rewritten to __prep_<name>.get()
  bool dsm_scalar = false;         // rewritten to (*__pdsm_<name>.get())
  bool threadprivate = false;
};

// The update-vs-invalidate classification (paper §5.2) used to live here as
// a token-pattern pre-pass; it now comes from the semantic analyzer
// (translator/analyze.hpp), which resolves shadowing through a real symbol
// table and checks declared sizes against the collective threshold. CodeGen
// only reads the recorded decisions.

class CodeGen {
 public:
  CodeGen(const TranslateOptions& options, const Analysis& analysis)
      : options_(options), analysis_(analysis) {}

  Result<std::string> run(const TranslationUnit& unit);

 private:
  // --- output helpers ---
  void line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << text << '\n';
  }
  void open(const std::string& text) {
    line(text);
    ++indent_;
  }
  void close(const std::string& text = "}") {
    --indent_;
    line(text);
  }
  std::string unique(const std::string& stem) {
    return "__parade_" + stem + std::to_string(counter_++);
  }

  // --- scopes / symbols ---
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }
  void declare(const std::string& name, Symbol symbol) {
    scopes_.back()[name] = std::move(symbol);
  }

  /// Re-lexes `text` and rewrites identifiers: replicated globals and
  /// omp_*/printf calls. `extra_shadow` names are treated as locally bound.
  std::string rewrite(const std::string& text) const;

  // --- statements ---
  Status emit_stmt(const Stmt& stmt);
  Status emit_block_children(const Stmt& block);
  Status emit_decl(const Stmt& decl);
  Status emit_pragma(const Stmt& stmt);

  // --- directive handlers ---
  Status emit_parallel(const Directive& d, const Stmt& body);
  Status emit_for(const Directive& d, const Stmt& for_stmt);
  Status emit_sections(const Directive& d, const Stmt& body);
  Status emit_single(const Directive& d, const Stmt& body);
  Status emit_critical(const Directive& d, const Stmt& body);
  Status emit_atomic(const Directive& d, const Stmt& body);

  // --- helpers ---
  Status emit_data_env_prologue(const Clauses& c,
                                std::vector<std::string>* fp_tmp_names);
  void emit_reduction_epilogue(const Clauses& c);
  std::optional<UpdateShape> match_update(const std::string& text) const;
  std::string type_of(const std::string& var) const;
  void collect_written_scalars(const Stmt& stmt,
                               std::set<std::string>* names) const;
  int critical_lock_id(const std::string& name);

  Status err(int line, const std::string& message) const {
    return make_error(ErrorCode::kUnsupported,
                      message + " (line " + std::to_string(line) + ")");
  }

  TranslateOptions options_;
  const Analysis& analysis_;
  std::ostringstream out_;
  int indent_ = 0;
  int counter_ = 0;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::vector<std::string> shared_init_lines_;
  std::unordered_map<std::string, int> critical_ids_;
  std::string user_main_params_;
  bool saw_main_ = false;
};

std::string CodeGen::rewrite(const std::string& text) const {
  auto tokens_result = lex(text);
  if (!tokens_result.is_ok()) return text;  // emit verbatim on lex trouble
  auto tokens = std::move(tokens_result).value();
  for (Token& t : tokens) {
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "printf") {
      t.text = "parade::xlat::master_printf";
      continue;
    }
    if (omp_api_names().count(t.text) > 0) {
      t.text = "parade::ompshim::" + t.text;
      continue;
    }
    const Symbol* symbol = lookup(t.text);
    if (symbol != nullptr && symbol->replicated_global) {
      t.text = "__prep_" + t.text + ".get()";
    } else if (symbol != nullptr && symbol->dsm_scalar) {
      t.text = "(*__pdsm_" + t.text + ".get())";
    }
  }
  return render_tokens(tokens, 0, tokens.size() - 1);  // drop EOF
}

std::string CodeGen::type_of(const std::string& var) const {
  const Symbol* symbol = lookup(var);
  if (symbol == nullptr || symbol->type.empty()) return "long";
  std::string type = value_type_of(symbol->type);
  for (int i = 0; i < symbol->pointer_depth; ++i) type += "*";
  return type;
}

int CodeGen::critical_lock_id(const std::string& name) {
  const std::string key = name.empty() ? "<unnamed>" : name;
  auto [it, inserted] = critical_ids_.try_emplace(
      key, static_cast<int>(critical_ids_.size()) + 8);
  (void)inserted;
  return it->second;
}

std::optional<UpdateShape> CodeGen::match_update(
    const std::string& text) const {
  auto shape = match_scalar_update(text);
  if (!shape) return std::nullopt;
  const Symbol* symbol = lookup(shape->var);
  if (symbol == nullptr || symbol->is_array || symbol->pointer_depth > 0) {
    return std::nullopt;
  }
  return shape;
}

void CodeGen::collect_written_scalars(const Stmt& stmt,
                                      std::set<std::string>* names) const {
  if (stmt.kind == StmtKind::kRaw) {
    auto tokens_result = lex(stmt.text);
    if (!tokens_result.is_ok()) return;
    const auto tokens = std::move(tokens_result).value();
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const bool write_next =
          tokens[i + 1].is_punct("=") || tokens[i + 1].is_punct("+=") ||
          tokens[i + 1].is_punct("-=") || tokens[i + 1].is_punct("*=") ||
          tokens[i + 1].is_punct("/=") || tokens[i + 1].is_punct("++") ||
          tokens[i + 1].is_punct("--");
      const bool inc_prev = tokens[i].is_punct("++") || tokens[i].is_punct("--");
      const Token& candidate = write_next ? tokens[i] : tokens[i + 1];
      if ((write_next || inc_prev) && candidate.kind == TokKind::kIdent) {
        // Writes through subscripts/members are array/pointer stores, not
        // scalar updates: x[i] = ..., p->f = ...
        if (write_next && i > 0 &&
            (tokens[i - 1].is_punct("]") || tokens[i - 1].is_punct(".") ||
             tokens[i - 1].is_punct("->"))) {
          continue;
        }
        const Symbol* symbol = lookup(candidate.text);
        if (symbol != nullptr && !symbol->is_array &&
            symbol->pointer_depth == 0) {
          names->insert(candidate.text);
        }
      }
    }
    return;
  }
  for (const StmtPtr& child : stmt.children) {
    if (child) collect_written_scalars(*child, names);
  }
}

Status CodeGen::emit_decl(const Stmt& decl) {
  // Register symbols, emit the (rewritten) declaration.
  std::string text = decl.decl_type;
  if (text.find("omp_lock_t") != std::string::npos ||
      text.find("omp_nest_lock_t") != std::string::npos) {
    text = rewrite(text);  // qualifies the omp type names
  }
  bool first = true;
  for (const Declarator& d : decl.declarators) {
    Symbol symbol;
    symbol.type = decl.decl_type;
    symbol.pointer_depth = d.pointer_depth;
    symbol.is_array = !d.array_dims.empty();
    declare(d.name, symbol);

    text += first ? " " : ", ";
    first = false;
    for (int i = 0; i < d.pointer_depth; ++i) text += "*";
    text += d.name;
    for (const std::string& dim : d.array_dims) {
      text += "[" + rewrite(dim) + "]";
    }
    if (d.is_function) text += "()";  // prototypes inside functions are rare
    if (!d.init.empty()) text += " = " + rewrite(d.init);
  }
  line(text + ";");
  return Status::ok();
}

Status CodeGen::emit_data_env_prologue(const Clauses& c,
                                       std::vector<std::string>* fp_tmps) {
  // firstprivate: snapshot outer values before shadowing.
  for (const std::string& var : c.firstprivate) {
    const std::string tmp = unique("fp_");
    line("auto " + tmp + " = " + rewrite(var) + ";");
    fp_tmps->push_back(tmp);
  }
  return Status::ok();
}

Status CodeGen::emit_parallel(const Directive& d, const Stmt& body) {
  const Clauses& c = d.clauses;
  open("{");
  std::vector<std::string> fp_tmps;
  if (Status s = emit_data_env_prologue(c, &fp_tmps); !s) return s;

  // copyin: snapshot the master's threadprivate values before the fork.
  std::vector<std::string> ci_tmps;
  for (const std::string& var : c.copyin) {
    const Symbol* symbol = lookup(var);
    if (symbol == nullptr || !symbol->threadprivate) {
      return err(d.line, "copyin(" + var + ") needs a threadprivate variable");
    }
    const std::string tmp = unique("ci_");
    line("auto " + tmp + " = " + var + ";");
    ci_tmps.push_back(tmp);
  }
  if (!c.if_expr.empty()) {
    line("// if(" + c.if_expr + ") clause noted: this translator always "
         "executes the region in parallel");
  }

  // Reduction targets: capture pointers before the shadows appear.
  std::vector<std::string> red_ptrs;
  for (const auto& [op, var] : c.reductions) {
    (void)op;
    const std::string ptr = unique("redptr_");
    line("auto* " + ptr + " = &(" + rewrite(var) + ");");
    red_ptrs.push_back(ptr);
  }

  open("parade::parallel([&]() {");
  push_scope();

  for (std::size_t i = 0; i < c.copyin.size(); ++i) {
    line(c.copyin[i] + " = " + ci_tmps[i] + ";");
  }
  for (const std::string& var : c.privates) {
    line(type_of(var) + " " + var + "{};");
    declare(var, Symbol{type_of(var), 0, false, false, false});
  }
  for (std::size_t i = 0; i < c.firstprivate.size(); ++i) {
    const std::string& var = c.firstprivate[i];
    line(type_of(var) + " " + var + " = " + fp_tmps[i] + ";");
    declare(var, Symbol{type_of(var), 0, false, false, false});
  }
  for (const auto& [op, var] : c.reductions) {
    line(type_of(var) + " " + var + " = " + reduction_identity(op) + ";");
    declare(var, Symbol{type_of(var), 0, false, false, false});
  }

  if (Status s = emit_stmt(body); !s) return s;

  // Merge reductions: one collective per variable (the paper merges multiple
  // variables into a struct; per-variable collectives are semantically
  // identical and the virtual-time model charges them individually).
  for (std::size_t i = 0; i < c.reductions.size(); ++i) {
    const auto& [op, var] = c.reductions[i];
    const std::string type = type_of(var);
    const char* cop = reduction_operator(op);
    const std::string combine = op == ReductionOp::kSub ? "+" : cop;
    open("{");
    line(type + " __contrib = " + var + ";");
    line("parade::team_allreduce_bytes(&__contrib, sizeof(__contrib), "
         "[](void* __a, const void* __b, std::size_t) { *static_cast<" +
         type + "*>(__a) = *static_cast<" + type + "*>(__a) " + combine +
         " *static_cast<const " + type + "*>(__b); });");
    open("if (parade::local_thread_id() == 0) {");
    line("*" + red_ptrs[i] + " = *" + red_ptrs[i] + " " + std::string(cop) +
         " __contrib;");
    close();
    line("parade::node_barrier();");
    close();
  }

  pop_scope();
  close("});");
  close();
  return Status::ok();
}

Status CodeGen::emit_for(const Directive& d, const Stmt& stmt) {
  if (stmt.kind != StmtKind::kFor) {
    return err(d.line, "omp for must be followed by a for loop");
  }
  const ForHeader& h = stmt.for_header;
  if (!h.canonical) {
    return err(d.line, "omp for loop is not in canonical form (init; "
                       "var relop bound; var update)");
  }
  const Clauses& c = d.clauses;

  open("{");
  std::vector<std::string> fp_tmps;
  if (Status s = emit_data_env_prologue(c, &fp_tmps); !s) return s;

  std::vector<std::string> red_ptrs;
  for (const auto& [op, var] : c.reductions) {
    (void)op;
    const std::string ptr = unique("redptr_");
    line("auto* " + ptr + " = &(" + rewrite(var) + ");");
    red_ptrs.push_back(ptr);
  }

  // Normalized bounds.
  const std::string count = unique("count_");
  line("const long " + count + " = parade::xlat::loop_count((long)(" +
       rewrite(h.lower) + "), (long)(" + rewrite(h.upper) + "), (long)(" +
       rewrite(h.step) + "), " + (h.inclusive ? "true" : "false") + ", " +
       (h.increasing ? "true" : "false") + ");");

  // Schedule clause mapping (paper supports static; dynamic/guided are the
  // §8 extension implemented hierarchically by the runtime).
  std::string schedule = "parade::Schedule{parade::ScheduleKind::kStatic, 0}";
  if (c.has_schedule) {
    switch (c.schedule) {
      case OmpSchedule::kStatic:
        schedule = c.schedule_chunk.empty()
                       ? "parade::Schedule{parade::ScheduleKind::kStatic, 0}"
                       : "parade::Schedule{parade::ScheduleKind::kStaticChunk, "
                         "(long)(" + rewrite(c.schedule_chunk) + ")}";
        break;
      case OmpSchedule::kDynamic:
        schedule = "parade::Schedule{parade::ScheduleKind::kDynamic, " +
                   (c.schedule_chunk.empty()
                        ? std::string("1")
                        : "(long)(" + rewrite(c.schedule_chunk) + ")") + "}";
        break;
      case OmpSchedule::kGuided:
        schedule = "parade::Schedule{parade::ScheduleKind::kGuided, 0}";
        break;
      case OmpSchedule::kRuntime:
        schedule = "parade::schedule_from_env()";
        break;
    }
  }

  // Lastprivate support: flag + value per variable, selected by whoever
  // executes the sequentially-last iteration, then broadcast.
  struct LastPrivate {
    std::string var;
    std::string flag;
    std::string value;
  };
  std::vector<LastPrivate> lastprivates;
  for (const std::string& var : c.lastprivate) {
    LastPrivate lp{var, unique("lp_has_"), unique("lp_val_")};
    line("int " + lp.flag + " = 0;");
    line(type_of(var) + " " + lp.value + "{};");
    lastprivates.push_back(lp);
  }

  // Per-thread data environment: this whole translated block runs on every
  // team thread, so shadows declared here are thread-private and visible to
  // the chunk lambda and to the reduction merge after the loop.
  push_scope();
  for (const std::string& var : c.privates) {
    const std::string type = type_of(var);
    line(type + " " + var + "{};");
    declare(var, Symbol{type, 0, false, false, false});
  }
  for (std::size_t i = 0; i < c.firstprivate.size(); ++i) {
    const std::string& var = c.firstprivate[i];
    const std::string type = type_of(var);
    line(type + " " + var + " = " + fp_tmps[i] + ";");
    declare(var, Symbol{type, 0, false, false, false});
  }
  for (const auto& [op, var] : c.reductions) {
    const std::string type = type_of(var);
    line(type + " " + var + " = " + reduction_identity(op) + ";");
    declare(var, Symbol{type, 0, false, false, false});
  }

  open("parade::parallel_for(0, " + count + ", " + schedule +
       ", [&](long __lo, long __hi) {");

  open("for (long __it = __lo; __it < __hi; ++__it) {");
  const std::string var_type =
      !h.var_decl_type.empty() ? h.var_decl_type : type_of(h.loop_var);
  line(var_type + " " + h.loop_var + " = (" + var_type +
       ")parade::xlat::loop_index((long)(" + rewrite(h.lower) + "), (long)(" +
       rewrite(h.step) + "), " + (h.increasing ? "true" : "false") +
       ", __it);");
  push_scope();
  declare(h.loop_var, Symbol{var_type, 0, false, false, false});
  if (Status s = emit_stmt(*stmt.children.front()); !s) return s;
  for (const LastPrivate& lp : lastprivates) {
    open("if (__it == " + count + " - 1) {");
    line(lp.flag + " = 1;");
    line(lp.value + " = " + lp.var + ";");
    close();
  }
  pop_scope();
  close();

  close("}, /*nowait=*/" + std::string(c.nowait ? "true" : "false") + ");");

  // Reductions merge after the loop (inside the enclosing region).
  for (std::size_t i = 0; i < c.reductions.size(); ++i) {
    const auto& [op, var] = c.reductions[i];
    const std::string type = type_of(var);
    const char* cop = reduction_operator(op);
    const std::string combine = op == ReductionOp::kSub ? "+" : cop;
    open("{");
    line(type + " __contrib = " + var + ";");
    line("parade::team_allreduce_bytes(&__contrib, sizeof(__contrib), "
         "[](void* __a, const void* __b, std::size_t) { *static_cast<" +
         type + "*>(__a) = *static_cast<" + type + "*>(__a) " + combine +
         " *static_cast<const " + type + "*>(__b); });");
    open("if (parade::local_thread_id() == 0) {");
    line("*" + red_ptrs[i] + " = *" + red_ptrs[i] + " " + std::string(cop) +
         " __contrib;");
    close();
    line("parade::node_barrier();");
    close();
  }

  // Lastprivate selection across the team.
  for (const LastPrivate& lp : lastprivates) {
    const std::string type = type_of(lp.var);
    open("{");
    line("struct __Sel { int has; " + type + " v; } __sel{" + lp.flag + ", " +
         lp.value + "};");
    line("parade::team_allreduce_bytes(&__sel, sizeof(__sel), "
         "[](void* __a, const void* __b, std::size_t) { auto* __x = "
         "static_cast<__Sel*>(__a); const auto* __y = static_cast<const "
         "__Sel*>(__b); if (__y->has) *__x = *__y; });");
    open("if (parade::local_thread_id() == 0 && __sel.has) {");
    line(rewrite(lp.var) + " = __sel.v;");
    close();
    line("parade::node_barrier();");
    close();
  }

  pop_scope();
  close();
  return Status::ok();
}

Status CodeGen::emit_sections(const Directive& d, const Stmt& body) {
  if (body.kind != StmtKind::kBlock) {
    return err(d.line, "omp sections needs a block body");
  }
  // Collect the section bodies.
  std::vector<const Stmt*> sections;
  for (const StmtPtr& child : body.children) {
    if (child->kind == StmtKind::kPragma &&
        child->directive.kind == DirectiveKind::kSection) {
      sections.push_back(child->children.front().get());
    } else if (child->kind != StmtKind::kEmpty) {
      // First statement before any `section` pragma forms section 0.
      sections.push_back(child.get());
    }
  }
  open("{");
  open("parade::parallel_for(0, " + std::to_string(sections.size()) +
       ", parade::Schedule{parade::ScheduleKind::kStaticChunk, 1}, "
       "[&](long __lo, long __hi) {");
  open("for (long __s = __lo; __s < __hi; ++__s) {");
  open("switch (__s) {");
  for (std::size_t i = 0; i < sections.size(); ++i) {
    open("case " + std::to_string(i) + ": {");
    push_scope();
    if (Status s = emit_stmt(*sections[i]); !s) return s;
    pop_scope();
    line("break;");
    close();
  }
  close();
  close();
  close("}, /*nowait=*/" +
        std::string(d.clauses.nowait ? "true" : "false") + ");");
  close();
  return Status::ok();
}

Status CodeGen::emit_single(const Directive& d, const Stmt& body) {
  // Scalars written inside the block travel in the broadcast payload
  // (paper Figure 3: executing node updates, MPI_Bcast propagates).
  std::set<std::string> written;
  collect_written_scalars(body, &written);

  open("{");
  std::string struct_body;
  std::vector<std::string> names(written.begin(), written.end());
  for (std::size_t i = 0; i < names.size(); ++i) {
    struct_body += type_of(names[i]) + " v" + std::to_string(i) + "; ";
  }
  if (names.empty()) struct_body = "char v0; ";
  line("struct __ParadeSingle { " + struct_body + "} __sgl{};");
  open("parade::single_small(&__sgl, sizeof(__sgl), [&]() {");
  push_scope();
  if (Status s = emit_stmt(body); !s) return s;
  for (std::size_t i = 0; i < names.size(); ++i) {
    line("__sgl.v" + std::to_string(i) + " = " + rewrite(names[i]) + ";");
  }
  pop_scope();
  close("});");
  if (!names.empty()) {
    open("if (parade::local_thread_id() == 0) {");
    for (std::size_t i = 0; i < names.size(); ++i) {
      line(rewrite(names[i]) + " = __sgl.v" + std::to_string(i) + ";");
    }
    close();
    line("parade::node_barrier();");
  }
  if (!d.clauses.nowait) {
    // OpenMP single carries an implicit barrier; ParADE's broadcast already
    // synchronizes the data, so a node-local barrier suffices (the paper's
    // "reducing the number of inter-process barriers").
    line("parade::node_barrier();");
  }
  close();
  return Status::ok();
}

Status CodeGen::emit_critical(const Directive& d, const Stmt& body) {
  // Lexically analyzable single-update criticals map to collectives
  // (Figure 2 right); everything else falls back to the DSM lock. The
  // analyzer already made the call per site (type-, sharing- and size-aware:
  // declared size vs mp_threshold_bytes); follow its decision when present.
  const Stmt* stmt = &body;
  if (stmt->kind == StmtKind::kBlock && stmt->children.size() == 1) {
    stmt = stmt->children.front().get();
  }
  auto site = analysis_.sync_sites.find(d.line);
  const bool want_collective =
      site != analysis_.sync_sites.end() ? site->second.collective : true;
  if (want_collective && stmt->kind == StmtKind::kRaw) {
    if (auto pattern = match_update(stmt->text)) {
      const std::string type = type_of(pattern->var);
      open("{");
      line(type + " __contrib = (" + rewrite(pattern->expr) + ");");
      line("parade::team_allreduce_bytes(&__contrib, sizeof(__contrib), "
           "[](void* __a, const void* __b, std::size_t) { *static_cast<" +
           type + "*>(__a) = *static_cast<" + type + "*>(__a) " +
           pattern->combine_op + " *static_cast<const " + type +
           "*>(__b); });");
      open("if (parade::local_thread_id() == 0) {");
      line(rewrite(pattern->var) + " = " + rewrite(pattern->var) + " " +
           pattern->apply_op + " __contrib;");
      close();
      line("parade::node_barrier();");
      close();
      return Status::ok();
    }
  }
  const int lock_id = critical_lock_id(d.clauses.critical_name);
  open("{");
  line("parade::dsm_lock(" + std::to_string(lock_id) + ");");
  push_scope();
  if (Status s = emit_stmt(body); !s) return s;
  pop_scope();
  line("parade::dsm_unlock(" + std::to_string(lock_id) + ");");
  close();
  return Status::ok();
}

Status CodeGen::emit_atomic(const Directive& d, const Stmt& body) {
  const Stmt* stmt = &body;
  if (stmt->kind == StmtKind::kBlock && stmt->children.size() == 1) {
    stmt = stmt->children.front().get();
  }
  if (stmt->kind != StmtKind::kRaw) {
    return err(d.line, "omp atomic requires an expression statement");
  }
  auto pattern = match_update(stmt->text);
  if (!pattern) {
    return err(d.line, "omp atomic statement is not a supported update "
                       "(x op= expr, x++, x = x op expr)");
  }
  // Identical machinery to the analyzable critical (paper: atomic is a
  // special case of critical, exactly mapped to a collective).
  Directive as_critical = d;
  return emit_critical(as_critical, body);
}

Status CodeGen::emit_pragma(const Stmt& stmt) {
  const Directive& d = stmt.directive;
  switch (d.kind) {
    case DirectiveKind::kParallel:
      return emit_parallel(d, *stmt.children.front());
    case DirectiveKind::kParallelFor: {
      // parallel for == parallel { for }.
      Directive par = d;
      open("{");
      std::vector<std::string> fp_tmps;
      // Keep it simple: delegate the whole clause set to the inner `for`
      // inside a clause-less parallel.
      open("parade::parallel([&]() {");
      push_scope();
      Directive inner = d;
      inner.kind = DirectiveKind::kFor;
      Status s = emit_for(inner, *stmt.children.front());
      pop_scope();
      close("});");
      close();
      return s;
    }
    case DirectiveKind::kFor:
      return emit_for(d, *stmt.children.front());
    case DirectiveKind::kParallelSections: {
      open("parade::parallel([&]() {");
      push_scope();
      Directive inner = d;
      inner.kind = DirectiveKind::kSections;
      Status s = emit_sections(inner, *stmt.children.front());
      pop_scope();
      close("});");
      return s;
    }
    case DirectiveKind::kSections:
      return emit_sections(d, *stmt.children.front());
    case DirectiveKind::kSection:
      return err(d.line, "omp section outside sections");
    case DirectiveKind::kSingle:
      return emit_single(d, *stmt.children.front());
    case DirectiveKind::kMaster:
      open("if (parade::node_id() == 0 && parade::local_thread_id() == 0) {");
      push_scope();
      if (Status s = emit_stmt(*stmt.children.front()); !s) return s;
      pop_scope();
      close();
      return Status::ok();
    case DirectiveKind::kCritical:
      return emit_critical(d, *stmt.children.front());
    case DirectiveKind::kAtomic:
      return emit_atomic(d, *stmt.children.front());
    case DirectiveKind::kBarrier:
      line("parade::barrier();");
      return Status::ok();
    case DirectiveKind::kFlush:
      line("parade::barrier(); /* flush approximated by a global barrier */");
      return Status::ok();
    case DirectiveKind::kOrdered:
      line("/* ordered: static scheduling preserves chunk order per thread */");
      return emit_stmt(*stmt.children.front());
    case DirectiveKind::kThreadprivate:
      return err(d.line, "threadprivate is not supported by this translator");
  }
  return err(d.line, "unhandled directive");
}

Status CodeGen::emit_stmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kBlock: {
      open("{");
      push_scope();
      if (Status s = emit_block_children(stmt); !s) return s;
      pop_scope();
      close();
      return Status::ok();
    }
    case StmtKind::kRaw:
      line(rewrite(stmt.text));
      return Status::ok();
    case StmtKind::kDecl:
      return emit_decl(stmt);
    case StmtKind::kFor: {
      const ForHeader& h = stmt.for_header;
      line("for (" + rewrite(h.init_text) + "; " + rewrite(h.cond_text) +
           "; " + rewrite(h.incr_text) + ")");
      push_scope();
      if (h.canonical && !h.var_decl_type.empty()) {
        declare(h.loop_var, Symbol{h.var_decl_type, 0, false, false, false});
      }
      Status s = emit_stmt(*stmt.children.front());
      pop_scope();
      return s;
    }
    case StmtKind::kIf: {
      line("if (" + rewrite(stmt.cond) + ")");
      if (Status s = emit_stmt(*stmt.children[0]); !s) return s;
      if (stmt.has_else) {
        line("else");
        return emit_stmt(*stmt.children[1]);
      }
      return Status::ok();
    }
    case StmtKind::kWhile: {
      line("while (" + rewrite(stmt.cond) + ")");
      return emit_stmt(*stmt.children.front());
    }
    case StmtKind::kDoWhile: {
      line("do");
      if (Status s = emit_stmt(*stmt.children.front()); !s) return s;
      line("while (" + rewrite(stmt.cond) + ");");
      return Status::ok();
    }
    case StmtKind::kSwitch: {
      line("switch (" + rewrite(stmt.cond) + ")");
      return emit_stmt(*stmt.children.front());
    }
    case StmtKind::kPragma:
      return emit_pragma(stmt);
    case StmtKind::kHashLine:
      line(stmt.text);
      return Status::ok();
    case StmtKind::kEmpty:
      line(";");
      return Status::ok();
  }
  return Status::ok();
}

Status CodeGen::emit_block_children(const Stmt& block) {
  for (const StmtPtr& child : block.children) {
    if (Status s = emit_stmt(*child); !s) return s;
  }
  return Status::ok();
}

Result<std::string> CodeGen::run(const TranslationUnit& unit) {
  // Placement comes from the semantic analysis: which file-scope scalars are
  // written by unmanaged statements inside parallel regions (DSM pool), and
  // which globals are threadprivate.
  std::unordered_set<std::string> dsm_scalars;
  std::unordered_set<std::string> threadprivate_names;
  for (const auto& [name, vc] : analysis_.globals) {
    if (vc.placement == Placement::kDsmScalar) dsm_scalars.insert(name);
    if (vc.placement == Placement::kThreadprivate) {
      threadprivate_names.insert(name);
    }
  }

  push_scope();  // file scope
  line("// Generated by parade_omcc (ParADE OpenMP translator). Do not edit.");
  line("#include \"" + options_.support_include + "\"");
  line("");

  for (const TopItem& item : unit.items) {
    switch (item.kind) {
      case TopItem::Kind::kHashLine:
        line(item.text);
        break;
      case TopItem::Kind::kRaw:
        line(rewrite(item.stmt->text));
        break;
      case TopItem::Kind::kPragma: {
        if (item.stmt->directive.kind == DirectiveKind::kThreadprivate) {
          line("// threadprivate: handled at the declarations above");
          break;
        }
        return err(item.stmt->directive.line,
                   "OpenMP directive at file scope");
      }
      case TopItem::Kind::kDecl: {
        // File-scope data: arrays go to the DSM pool; scalars/pointers become
        // node-replicated (paper §5.2: page consistency for large data,
        // update-by-collective for small synchronization-managed data).
        const Stmt& decl = *item.stmt;
        for (const Declarator& d : decl.declarators) {
          if (d.is_function) {
            // Prototype: emit verbatim-ish.
            line(decl.decl_type + " " + d.name + "();");
            continue;
          }
          Symbol symbol;
          symbol.type = decl.decl_type;
          symbol.pointer_depth = d.pointer_depth;
          if (!d.array_dims.empty()) {
            if (!d.init.empty()) {
              return err(decl.line, "initialized global arrays are not "
                                    "supported (move init into main)");
            }
            // DSM placement: emit a replicated pointer + pool allocation.
            symbol.is_array = false;
            symbol.pointer_depth = 1;
            symbol.replicated_global = true;
            declare(d.name, symbol);
            std::string elem_type = value_type_of(decl.decl_type);
            for (int i = 0; i < d.pointer_depth; ++i) elem_type += "*";
            std::string ptr_type = elem_type + " (*)";
            std::string suffix;
            for (std::size_t dim = 1; dim < d.array_dims.size(); ++dim) {
              suffix += "[" + d.array_dims[dim] + "]";
            }
            ptr_type = elem_type + " (*" + std::string(")") + suffix;
            const std::string full_type =
                "decltype(static_cast<" + elem_type + " (*)" + suffix +
                ">(nullptr))";
            line("static parade::xlat::Replicated<" + full_type + "> __prep_" +
                 d.name + ";");
            std::string size_expr = "sizeof(" + elem_type + ")";
            for (const std::string& dim : d.array_dims) {
              size_expr += " * (" + dim + ")";
            }
            shared_init_lines_.push_back(
                "__prep_" + d.name + ".get() = reinterpret_cast<" + elem_type +
                " (*)" + suffix + ">(parade::shmalloc(" + size_expr + "));");
          } else if (threadprivate_names.count(d.name) > 0) {
            // OpenMP threadprivate: one instance per thread, no rewriting.
            symbol.threadprivate = true;
            declare(d.name, symbol);
            std::string full_type = value_type_of(decl.decl_type);
            for (int i = 0; i < d.pointer_depth; ++i) full_type += "*";
            std::string dims;
            for (const std::string& dim : d.array_dims) {
              dims += "[" + dim + "]";
            }
            line("static thread_local " + full_type + " " + d.name + dims +
                 (d.init.empty() ? "" : " = " + d.init) + ";");
          } else if (d.pointer_depth == 0 && dsm_scalars.count(d.name) > 0) {
            // Written by unmanaged parallel code: place in the DSM pool.
            symbol.dsm_scalar = true;
            declare(d.name, symbol);
            const std::string vt = value_type_of(decl.decl_type);
            line("static parade::xlat::Replicated<" + vt + "*> __pdsm_" +
                 d.name + ";");
            shared_init_lines_.push_back(
                "__pdsm_" + d.name + ".get() = static_cast<" + vt +
                "*>(parade::shmalloc(sizeof(" + vt + ")));");
            if (!d.init.empty()) {
              shared_init_lines_.push_back(
                  "if (parade::node_id() == 0) { *__pdsm_" + d.name +
                  ".get() = " + d.init + "; }");
            }
          } else {
            symbol.replicated_global = true;
            declare(d.name, symbol);
            std::string full_type = value_type_of(decl.decl_type);
            for (int i = 0; i < d.pointer_depth; ++i) full_type += "*";
            if (d.init.empty()) {
              line("static parade::xlat::Replicated<" + full_type +
                   "> __prep_" + d.name + ";");
            } else {
              line("static parade::xlat::Replicated<" + full_type +
                   "> __prep_" + d.name + "{static_cast<" + full_type + ">(" +
                   d.init + ")};");
            }
          }
        }
        break;
      }
      case TopItem::Kind::kFunction: {
        const FunctionDef& fn = item.function;
        const bool is_main = fn.name == "main";
        if (is_main) {
          saw_main_ = true;
          user_main_params_ = fn.params;
        }
        const std::string name = is_main ? "__parade_user_main" : fn.name;
        std::string ret =
            fn.ret_type.empty() ? std::string("int") : fn.ret_type;
        if (is_main) ret = "static int";
        line(ret + " " + name + "(" + fn.params + ")");
        push_scope();
        // Register parameters: "type name" comma-separated (approximate).
        if (fn.params != "void" && !fn.params.empty()) {
          auto tokens_result = lex(fn.params + " ,");
          if (tokens_result.is_ok()) {
            const auto tokens = std::move(tokens_result).value();
            std::vector<Token> current;
            for (const Token& t : tokens) {
              if (t.is_punct(",") || t.kind == TokKind::kEof) {
                // Last identifier is the name; the rest is its type.
                for (std::size_t i = current.size(); i-- > 0;) {
                  if (current[i].kind == TokKind::kIdent) {
                    Symbol symbol;
                    std::vector<Token> type_run(current.begin(),
                                                current.begin() +
                                                    static_cast<long>(i));
                    symbol.type = render_tokens(type_run, 0, type_run.size());
                    symbol.is_array =
                        i + 1 < current.size() && current[i + 1].is_punct("[");
                    declare(current[i].text, symbol);
                    break;
                  }
                }
                current.clear();
              } else {
                current.push_back(t);
              }
            }
          }
        }
        if (Status s = emit_stmt(*fn.body); !s) return s;
        pop_scope();
        line("");
        break;
      }
    }
  }

  // Shared-pool initialisation (runs once per node, before user main).
  line("static void __parade_shared_init() {");
  ++indent_;
  for (const std::string& init : shared_init_lines_) line(init);
  if (!shared_init_lines_.empty()) {
    // Publish node 0's initial values before user code touches the pool.
    line("parade::barrier();");
  }
  --indent_;
  line("}");
  line("");

  if (options_.emit_main_wrapper && saw_main_) {
    const bool wants_args = user_main_params_.find("argc") != std::string::npos;
    // Static protocol hints ride along as a JSON sidecar; the launcher seeds
    // DsmConfig::page_priors from it before the first fault (cold-start half
    // of the adaptive protocol, docs/ANALYZER.md).
    const bool with_hints =
        options_.protocol_hints && !analysis_.hints.empty();
    if (with_hints) {
      line("static const char __parade_hints_json[] =");
      line("    R\"__parade_hints(" + analysis_.hints.to_json() +
           ")__parade_hints\";");
    }
    const std::string launch_open =
        with_hints ? "return parade::xlat::launch(__parade_hints_json, "
                   : "return parade::xlat::launch(";
    line("int main(int argc, char** argv) {");
    ++indent_;
    line("(void)argc; (void)argv;");
    if (wants_args) {
      line(launch_open + "[&]() -> int { "
           "__parade_shared_init(); return __parade_user_main(argc, argv); "
           "});");
    } else {
      line(launch_open + "[&]() -> int { "
           "__parade_shared_init(); return __parade_user_main(); });");
    }
    --indent_;
    line("}");
  }

  pop_scope();
  return out_.str();
}

}  // namespace

Result<std::string> generate(const TranslationUnit& unit,
                             const TranslateOptions& options) {
  AnalyzeOptions analyze_options;
  analyze_options.mp_threshold_bytes = options.mp_threshold_bytes;
  analyze_options.protocol_hints = options.protocol_hints;
  const Analysis analysis = analyze(unit, analyze_options);
  return generate(unit, options, analysis);
}

Result<std::string> generate(const TranslationUnit& unit,
                             const TranslateOptions& options,
                             const Analysis& analysis) {
  CodeGen codegen(options, analysis);
  return codegen.run(unit);
}

}  // namespace parade::translator
