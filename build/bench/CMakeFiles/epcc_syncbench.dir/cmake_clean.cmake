file(REMOVE_RECURSE
  "CMakeFiles/epcc_syncbench.dir/epcc_syncbench.cpp.o"
  "CMakeFiles/epcc_syncbench.dir/epcc_syncbench.cpp.o.d"
  "epcc_syncbench"
  "epcc_syncbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epcc_syncbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
