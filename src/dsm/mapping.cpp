#include "dsm/mapping.hpp"

#define _GNU_SOURCE 1
#include <sys/ipc.h>
#include <sys/mman.h>
#include <sys/shm.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace parade::dsm {

const char* to_string(MapMethod method) {
  switch (method) {
    case MapMethod::kMemfd: return "memfd";
    case MapMethod::kSysV: return "sysv";
    case MapMethod::kMdup: return "mdup";
    case MapMethod::kChildProcess: return "child-process";
  }
  return "?";
}

std::optional<MapMethod> parse_map_method(const std::string& name) {
  if (name == "memfd") return MapMethod::kMemfd;
  if (name == "sysv") return MapMethod::kSysV;
  if (name == "mdup") return MapMethod::kMdup;
  if (name == "child-process") return MapMethod::kChildProcess;
  return std::nullopt;
}

namespace {

Result<std::byte*> reserve_views(std::size_t pool_bytes) {
  void* base = mmap(nullptr, kNumViews * pool_bytes, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) {
    return make_error(ErrorCode::kIoError,
                      std::string("mmap reservation: ") + std::strerror(errno));
  }
  return static_cast<std::byte*>(base);
}

}  // namespace

Result<std::unique_ptr<SegmentPool>> SegmentPool::create(
    std::size_t pool_bytes, std::size_t page_bytes, MapMethod method) {
  const auto hw_page = static_cast<std::size_t>(getpagesize());
  if (page_bytes == 0 || page_bytes % hw_page != 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "page size must be a positive multiple of the hardware "
                      "page size");
  }
  if (pool_bytes == 0 || pool_bytes % page_bytes != 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "pool size must be a positive multiple of the page size");
  }

  switch (method) {
    case MapMethod::kMemfd: {
      const int fd = memfd_create("parade-dsm-pool", 0);
      if (fd < 0) {
        return make_error(ErrorCode::kIoError,
                          std::string("memfd_create: ") + std::strerror(errno));
      }
      // File layout: [0, pool) = shared frames, [pool, 2*pool) = twin frames.
      if (ftruncate(fd, static_cast<off_t>(2 * pool_bytes)) != 0) {
        close(fd);
        return make_error(ErrorCode::kIoError,
                          std::string("ftruncate: ") + std::strerror(errno));
      }
      auto reserved = reserve_views(pool_bytes);
      if (!reserved.is_ok()) {
        close(fd);
        return reserved.status();
      }
      std::byte* base = reserved.value();
      struct ViewSpec {
        std::size_t view_index;
        int prot;
        off_t file_offset;
      };
      // kApp and kSys alias file range [0, pool): the double mapping. kTwin
      // maps the second half of the file: distinct frames, same arithmetic.
      const ViewSpec specs[] = {
          {0, PROT_NONE, 0},
          {1, PROT_READ | PROT_WRITE, 0},
          {2, PROT_READ | PROT_WRITE, static_cast<off_t>(pool_bytes)},
      };
      for (const ViewSpec& spec : specs) {
        void* view = mmap(base + spec.view_index * pool_bytes, pool_bytes,
                          spec.prot, MAP_SHARED | MAP_FIXED, fd,
                          spec.file_offset);
        if (view == MAP_FAILED) {
          const int err = errno;
          munmap(base, kNumViews * pool_bytes);
          close(fd);
          return make_error(ErrorCode::kIoError,
                            std::string("mmap view: ") + std::strerror(err));
        }
      }
      return std::unique_ptr<SegmentPool>(
          new SegmentPool(base, pool_bytes, page_bytes, method, fd));
    }

    case MapMethod::kSysV: {
      // Two segments: one for the shared frames (attached twice, app + sys),
      // one for the twin frames. Both are marked for removal immediately so
      // a crash cannot leak them; they persist until every attachment
      // detaches.
      const int pool_id =
          shmget(IPC_PRIVATE, pool_bytes, IPC_CREAT | IPC_EXCL | 0600);
      if (pool_id < 0) {
        return make_error(ErrorCode::kIoError,
                          std::string("shmget pool: ") + std::strerror(errno));
      }
      const int twin_id =
          shmget(IPC_PRIVATE, pool_bytes, IPC_CREAT | IPC_EXCL | 0600);
      if (twin_id < 0) {
        const int err = errno;
        shmctl(pool_id, IPC_RMID, nullptr);
        return make_error(ErrorCode::kIoError,
                          std::string("shmget twin: ") + std::strerror(err));
      }
      auto reserved = reserve_views(pool_bytes);
      if (!reserved.is_ok()) {
        shmctl(pool_id, IPC_RMID, nullptr);
        shmctl(twin_id, IPC_RMID, nullptr);
        return reserved.status();
      }
      std::byte* base = reserved.value();
      // SHM_REMAP replaces the reservation slice with the attachment. The
      // app view must be attached writable (an SHM_RDONLY attachment can
      // never be mprotect'ed to PROT_WRITE); protection is dropped to
      // PROT_NONE below and managed per page afterwards.
      struct AttachSpec {
        std::size_t view_index;
        int shmid;
      };
      const AttachSpec specs[] = {{0, pool_id}, {1, pool_id}, {2, twin_id}};
      std::size_t attached = 0;
      Status fail = Status::ok();
      for (const AttachSpec& spec : specs) {
        void* view =
            shmat(spec.shmid, base + spec.view_index * pool_bytes, SHM_REMAP);
        if (view == reinterpret_cast<void*>(-1)) {
          fail = make_error(ErrorCode::kIoError,
                            std::string("shmat view: ") + std::strerror(errno));
          break;
        }
        ++attached;
      }
      shmctl(pool_id, IPC_RMID, nullptr);
      shmctl(twin_id, IPC_RMID, nullptr);
      if (!fail) {
        for (std::size_t i = 0; i < attached; ++i) shmdt(base + i * pool_bytes);
        munmap(base, kNumViews * pool_bytes);
        return fail;
      }
      auto pool = std::unique_ptr<SegmentPool>(
          new SegmentPool(base, pool_bytes, page_bytes, method, -1));
      if (Status s = pool->protect_app(0, pool_bytes, PROT_NONE); !s) return s;
      return pool;
    }

    case MapMethod::kMdup:
      return make_error(ErrorCode::kUnsupported,
                        "mdup() requires the authors' kernel patch (paper "
                        "§5.1); use memfd or sysv");
    case MapMethod::kChildProcess:
      return make_error(ErrorCode::kUnsupported,
                        "child-process page-table sharing is not reproduced; "
                        "use memfd or sysv");
  }
  return make_error(ErrorCode::kInvalidArgument, "unknown map method");
}

Result<std::byte*> SegmentPool::checked_address(View view, PageId page,
                                                std::size_t offset) const {
  if (page < 0) {
    return make_error(ErrorCode::kOutOfRange, "negative page id");
  }
  const std::size_t page_start = static_cast<std::size_t>(page) * page_bytes_;
  if (page_start >= pool_bytes_ || offset >= page_bytes_) {
    return make_error(ErrorCode::kOutOfRange, "address outside the pool");
  }
  return real_address(view, page, offset);
}

std::optional<SegmentPool::Located> SegmentPool::locate(
    const std::byte* p) const {
  if (p < base_ || p >= base_ + kNumViews * pool_bytes_) return std::nullopt;
  const auto delta = static_cast<std::size_t>(p - base_);
  const std::size_t view_index = delta / pool_bytes_;
  const std::size_t in_view = delta % pool_bytes_;
  return Located{static_cast<View>(view_index),
                 static_cast<PageId>(in_view / page_bytes_),
                 in_view % page_bytes_};
}

Status SegmentPool::protect_app(std::size_t offset, std::size_t length,
                                int prot) {
  if (offset > pool_bytes_ || length > pool_bytes_ - offset) {
    return make_error(ErrorCode::kOutOfRange, "protect_app out of range");
  }
  if (mprotect(view_base(View::kApp) + offset, length, prot) != 0) {
    return make_error(ErrorCode::kIoError,
                      std::string("mprotect: ") + std::strerror(errno));
  }
  return Status::ok();
}

SegmentPool::~SegmentPool() {
  switch (method_) {
    case MapMethod::kMemfd:
      munmap(base_, kNumViews * pool_bytes_);
      if (fd_ >= 0) close(fd_);
      break;
    case MapMethod::kSysV:
      // The three attachments cover the whole reservation exactly.
      for (std::size_t i = 0; i < kNumViews; ++i) {
        shmdt(base_ + i * pool_bytes_);
      }
      break;
    case MapMethod::kMdup:
    case MapMethod::kChildProcess:
      break;
  }
}

}  // namespace parade::dsm
