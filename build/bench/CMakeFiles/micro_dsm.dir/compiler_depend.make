# Empty compiler generated dependencies file for micro_dsm.
# This may be replaced when dependencies are built.
