// Bounded lock-free trace ring. Writers claim a slot with one fetch_add and
// overwrite the oldest event once the ring wraps; readers (the exporter, at
// teardown) see the last `capacity` events plus a total-emitted count.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace parade::obs {

enum class TraceKind : std::uint8_t {
  kSend = 0,
  kRecv = 1,
  kBarrier = 2,
  kLock = 3,
  kPageFault = 4,
  kRegion = 5,
  kCollective = 6,
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  TraceKind kind = TraceKind::kSend;
  NodeId node = 0;
  Tag tag = 0;
  double vtime = 0.0;       // virtual µs at emit, 0 when not on a clocked path
  std::int64_t wall_ns = 0;  // wall clock at emit, for cross-node ordering
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  void emit(const TraceEvent& event) {
    const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    slots_[seq % slots_.size()] = event;
  }

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t emitted() const { return next_.load(std::memory_order_relaxed); }

  /// Oldest-first copy of the retained window. Quiescent-time only: slots
  /// written concurrently with the copy may tear.
  std::vector<TraceEvent> drain() const;

  void reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace parade::obs
