// Deterministic fault-injection plans and the retry knobs the DSM/MP layers
// use to survive them.
//
// A FaultPlan describes per-link misbehaviour — drop probability, bounded
// virtual-time delay, duplication, reordering, and partition/heal windows —
// driven by a seeded counter-based RNG: every link (src→dst) owns an
// independent stream keyed by (seed, src, dst), and each decision consumes
// exactly one draw per message, so a link's fault sequence is a pure function
// of the seed and that link's message sequence. FaultyFabric (net/faulty.hpp)
// executes the plan.
//
// Environment:
//   PARADE_FAULT_SEED   uint64 seed; setting it (even alone) enables faults
//   PARADE_FAULT_PLAN   comma-separated spec, e.g.
//                       "drop=0.05,dup=0.02,reorder=0.05,delay=0.1,delay_us=300,
//                        part=0-1@40:80,epart=1-2@2:3"
//   PARADE_RETRY_TIMEOUT_MS / PARADE_RETRY_MAX  retry policy overrides
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace parade::net {

/// Tag watched by FaultyFabric to advance its barrier-epoch estimate: each
/// master→rank-1 message with this tag closes one epoch. Mirrors
/// dsm::kTagBarrierDepart (static_assert'ed in dsm/protocol.hpp).
inline constexpr Tag kFaultEpochProbeTag = 6;

/// One partition window between a pair of nodes (both directions). `by_epoch`
/// selects whether [start, heal) is measured in per-link message count or in
/// fabric-observed barrier epochs. heal == no value → never heals.
struct PartitionEvent {
  NodeId a = kAnyNode;
  NodeId b = kAnyNode;
  std::uint64_t start = 0;
  std::optional<std::uint64_t> heal;
  bool by_epoch = false;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_p = 0.0;     ///< silently lose the message
  double dup_p = 0.0;      ///< deliver it twice
  double reorder_p = 0.0;  ///< hold it back until the link's next message
  double delay_p = 0.0;    ///< probability of a virtual-time delay
  double delay_max_us = 0.0;  ///< delay drawn uniformly from [0, max]
  std::vector<PartitionEvent> partitions;

  /// True when the plan can perturb traffic at all. A default-constructed
  /// plan is inert and FaultyChannel forwards byte-identically.
  bool active() const {
    return drop_p > 0.0 || dup_p > 0.0 || reorder_p > 0.0 || delay_p > 0.0 ||
           !partitions.empty();
  }

  /// Parses a PARADE_FAULT_PLAN spec ("drop=0.05,part=0-1@10:20,...").
  static Result<FaultPlan> parse(const std::string& spec,
                                 std::uint64_t seed = 0);

  /// Plan from PARADE_FAULT_SEED / PARADE_FAULT_PLAN; nullopt when neither
  /// is set. A seed without a plan spec yields the default chaos mix below.
  static std::optional<FaultPlan> from_env();
};

/// Default mix used when only PARADE_FAULT_SEED is given: a little of every
/// fault kind, recoverable by the stock retry policy.
FaultPlan default_chaos_plan(std::uint64_t seed);

/// Timeout/bounded-retry knobs shared by the DSM protocol loops and the MP
/// reliable wire layer. Defaults are deliberately generous so fault-free runs
/// never trip a spurious retransmission (several tests assert exact protocol
/// counts); chaos tests shorten them explicitly.
struct RetryPolicy {
  int timeout_ms = 2000;
  int max_attempts = 30;

  std::chrono::milliseconds timeout() const {
    return std::chrono::milliseconds(timeout_ms);
  }

  /// Applies PARADE_RETRY_TIMEOUT_MS / PARADE_RETRY_MAX on top of defaults.
  static RetryPolicy from_env();
};

/// splitmix64: the counter-based generator behind every per-link stream.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic per-link random stream: draw() advances a counter through
/// splitmix64, yielding doubles in [0, 1).
class LinkRng {
 public:
  LinkRng() = default;
  LinkRng(std::uint64_t seed, NodeId src, NodeId dst)
      : state_(splitmix64(seed ^ (static_cast<std::uint64_t>(src) << 32 ^
                                  static_cast<std::uint64_t>(
                                      static_cast<std::uint32_t>(dst))))) {}

  double draw() {
    state_ = splitmix64(state_);
    return static_cast<double>(state_ >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_ = 0;
};

/// Bounded recently-seen-sequence-number window for duplicate suppression.
/// Keys are caller-defined (e.g. src<<32 | seq). Not thread-safe; callers
/// hold their own lock.
class SeqWindow {
 public:
  explicit SeqWindow(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns true if `key` was already present (a duplicate); otherwise
  /// records it, evicting the oldest entry beyond capacity.
  bool seen_or_insert(std::uint64_t key) {
    if (seen_.count(key) > 0) return true;
    seen_.insert(key);
    order_.push_back(key);
    if (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return false;
  }

  bool contains(std::uint64_t key) const { return seen_.count(key) > 0; }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> seen_;
  std::deque<std::uint64_t> order_;
};

/// Packs (node, seq) into a SeqWindow key.
inline std::uint64_t seq_key(NodeId node, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
         seq;
}

}  // namespace parade::net
