#include "common/timing.hpp"

namespace parade {
namespace {

std::int64_t read_clock(clockid_t clock) {
  timespec ts{};
  clock_gettime(clock, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

std::int64_t wall_ns() { return read_clock(CLOCK_MONOTONIC); }

std::int64_t thread_cpu_ns() { return read_clock(CLOCK_THREAD_CPUTIME_ID); }

}  // namespace parade
