#include "dsm/cluster.hpp"

#include <thread>

#include "common/log.hpp"

namespace parade::dsm {

DsmCluster::DsmCluster(int size, DsmConfig config) : fabric_(size) {
  nodes_.reserve(static_cast<std::size_t>(size));
  for (NodeId rank = 0; rank < size; ++rank) {
    auto node = std::make_unique<DsmNode>(fabric_.channel(rank), config);
    Status s = node->start();
    PARADE_CHECK_MSG(s.is_ok(), s.message());
    nodes_.push_back(std::move(node));
  }
}

DsmCluster::~DsmCluster() { shutdown(); }

void DsmCluster::run(const std::function<void(NodeId)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (NodeId rank = 0; rank < size(); ++rank) {
    threads.emplace_back([&fn, rank] {
      logging::set_thread_node_tag(rank);
      fn(rank);
    });
  }
  for (auto& thread : threads) thread.join();
}

void DsmCluster::shutdown() {
  for (auto& node : nodes_) {
    if (node) node->shutdown();
  }
  fabric_.shutdown();
}

}  // namespace parade::dsm
