file(REMOVE_RECURSE
  "libparade_net.a"
)
