// Message-passing library: point-to-point matching semantics, typed
// reductions, and the collective algorithms at every node count 1..8
// (parameterized, exercising the binomial trees' edge cases at non-powers
// of two).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "mp/comm.hpp"
#include "net/inproc.hpp"

namespace parade::mp {
namespace {

vtime::NetworkModel test_model() { return vtime::ideal(); }

/// Runs `body(comm)` on one thread per rank.
void run_ranks(int n, const std::function<void(Comm&)>& body) {
  net::InProcFabric fabric(n);
  std::vector<std::unique_ptr<Comm>> comms;
  for (int r = 0; r < n; ++r) {
    comms.push_back(std::make_unique<Comm>(fabric.channel(r), test_model()));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] { body(*comms[static_cast<std::size_t>(r)]); });
  }
  for (auto& t : threads) t.join();
  fabric.shutdown();
}

TEST(Datatypes, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::kInt32), 4u);
  EXPECT_EQ(dtype_size(DType::kDouble), 8u);
  EXPECT_EQ(dtype_size(DType::kByte), 1u);
  EXPECT_STREQ(to_string(Op::kSum), "sum");
}

TEST(Datatypes, ReduceAllOpsInt) {
  auto reduce_one = [](Op op, std::int32_t a, std::int32_t b) {
    std::int32_t inout = a;
    reduce_inplace(DType::kInt32, op, &inout, &b, 1);
    return inout;
  };
  EXPECT_EQ(reduce_one(Op::kSum, 3, 4), 7);
  EXPECT_EQ(reduce_one(Op::kProd, 3, 4), 12);
  EXPECT_EQ(reduce_one(Op::kMin, 3, 4), 3);
  EXPECT_EQ(reduce_one(Op::kMax, 3, 4), 4);
  EXPECT_EQ(reduce_one(Op::kLAnd, 3, 0), 0);
  EXPECT_EQ(reduce_one(Op::kLOr, 0, 4), 1);
  EXPECT_EQ(reduce_one(Op::kBAnd, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(reduce_one(Op::kBOr, 0b1100, 0b1010), 0b1110);
}

TEST(Datatypes, ReduceVectorized) {
  std::vector<double> a{1, 2, 3};
  const std::vector<double> b{10, 20, 30};
  reduce_inplace(DType::kDouble, Op::kSum, a.data(), b.data(), 3);
  EXPECT_EQ(a, (std::vector<double>{11, 22, 33}));
}

TEST(PointToPoint, TagMatching) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 1, b = 2;
      comm.send(1, /*tag=*/10, &a, sizeof(a));
      comm.send(1, /*tag=*/20, &b, sizeof(b));
    } else {
      int v = 0;
      // Receive out of order by tag.
      comm.recv(0, 20, &v, sizeof(v));
      EXPECT_EQ(v, 2);
      comm.recv(0, 10, &v, sizeof(v));
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(PointToPoint, Wildcards) {
  run_ranks(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      const int v = comm.rank() * 100;
      comm.send(0, 7, &v, sizeof(v));
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        RecvStatus status = comm.recv(kAnyNode, kAnyTag, &v, sizeof(v));
        EXPECT_EQ(status.tag, 7);
        EXPECT_EQ(v, status.source * 100);
        sum += v;
      }
      EXPECT_EQ(sum, 300);
    }
  });
}

TEST(PointToPoint, TryRecv) {
  run_ranks(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv_bytes(1, 3).has_value());
      comm.barrier();
      // After the barrier the message must have been sent.
      while (!comm.try_recv_bytes(1, 3).has_value()) {
      }
    } else {
      const int v = 5;
      comm.send(0, 3, &v, sizeof(v));
      comm.barrier();
    }
  });
}

class CollectivesAtSize : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAtSize, Barrier) {
  const int n = GetParam();
  std::atomic<int> arrived{0};
  run_ranks(n, [&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
    comm.barrier();
  });
}

TEST_P(CollectivesAtSize, BcastFromEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      double payload[3] = {0, 0, 0};
      if (comm.rank() == root) {
        payload[0] = root + 0.5;
        payload[1] = 2.0 * root;
        payload[2] = -1.0;
      }
      comm.bcast(payload, sizeof(payload), root);
      EXPECT_DOUBLE_EQ(payload[0], root + 0.5);
      EXPECT_DOUBLE_EQ(payload[1], 2.0 * root);
      EXPECT_DOUBLE_EQ(payload[2], -1.0);
    }
  });
}

TEST_P(CollectivesAtSize, ReduceSumToEveryRoot) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::int64_t value = comm.rank() + 1;
      comm.reduce(&value, 1, DType::kInt64, Op::kSum, root);
      if (comm.rank() == root) {
        EXPECT_EQ(value, static_cast<std::int64_t>(n) * (n + 1) / 2);
      }
    }
  });
}

TEST_P(CollectivesAtSize, AllreduceMinMax) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    double lo = comm.rank() * 1.5;
    comm.allreduce(&lo, 1, DType::kDouble, Op::kMin);
    EXPECT_DOUBLE_EQ(lo, 0.0);
    double hi = comm.rank() * 1.5;
    comm.allreduce(&hi, 1, DType::kDouble, Op::kMax);
    EXPECT_DOUBLE_EQ(hi, (n - 1) * 1.5);
  });
}

TEST_P(CollectivesAtSize, AllreduceVector) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    std::vector<std::int32_t> values(16);
    for (int i = 0; i < 16; ++i) values[static_cast<std::size_t>(i)] = i;
    comm.allreduce(values.data(), values.size(), DType::kInt32, Op::kSum);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(values[static_cast<std::size_t>(i)], i * n);
    }
  });
}

TEST_P(CollectivesAtSize, AllreduceUserStruct) {
  // The paper's merged multi-variable reduction (§4.2).
  struct Multi {
    double sum;
    double max;
    std::int64_t count;
  };
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    Multi m{static_cast<double>(comm.rank()), static_cast<double>(comm.rank()),
            1};
    comm.allreduce_user(&m, sizeof(m),
                        [](void* inout, const void* in, std::size_t) {
                          auto* a = static_cast<Multi*>(inout);
                          const auto* b = static_cast<const Multi*>(in);
                          a->sum += b->sum;
                          a->max = std::max(a->max, b->max);
                          a->count += b->count;
                        });
    EXPECT_DOUBLE_EQ(m.sum, n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(m.max, n - 1.0);
    EXPECT_EQ(m.count, n);
  });
}

TEST_P(CollectivesAtSize, GatherAndAllgather) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    const std::int32_t mine = 10 * comm.rank() + 3;
    std::vector<std::int32_t> all(static_cast<std::size_t>(n), -1);
    comm.gather(&mine, sizeof(mine), comm.rank() == 0 ? all.data() : nullptr,
                0);
    if (comm.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], 10 * r + 3);
      }
    }
    std::vector<std::int32_t> everywhere(static_cast<std::size_t>(n), -1);
    comm.allgather(&mine, sizeof(mine), everywhere.data());
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(everywhere[static_cast<std::size_t>(r)], 10 * r + 3);
    }
  });
}

TEST_P(CollectivesAtSize, BackToBackCollectivesDoNotCross) {
  const int n = GetParam();
  run_ranks(n, [&](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::int64_t v = round * n + comm.rank();
      comm.allreduce(&v, 1, DType::kInt64, Op::kMax);
      EXPECT_EQ(v, static_cast<std::int64_t>(round) * n + (n - 1));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesAtSize,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Vtime, MessageCarriesCausality) {
  net::InProcFabric fabric(2);
  Comm c0(fabric.channel(0), vtime::clan_via());
  Comm c1(fabric.channel(1), vtime::clan_via());

  vtime::ThreadClock receiver_clock;

  std::thread sender([&] {
    vtime::ThreadClock sender_clock;  // owned by this thread
    bind_thread_clock(&sender_clock);
    sender_clock.add(1000.0);  // sender is "ahead"
    const int v = 1;
    c0.send(1, 4, &v, sizeof(v));
    bind_thread_clock(nullptr);
  });
  sender.join();

  bind_thread_clock(&receiver_clock);
  int v = 0;
  c1.recv(0, 4, &v, sizeof(v));
  bind_thread_clock(nullptr);
  // Receiver merged the sender's timestamp + transfer time.
  EXPECT_GT(receiver_clock.now(), 1000.0);
  fabric.shutdown();
}

}  // namespace
}  // namespace parade::mp
