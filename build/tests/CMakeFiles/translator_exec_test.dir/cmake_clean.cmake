file(REMOVE_RECURSE
  "CMakeFiles/translator_exec_test.dir/translator_exec_test.cpp.o"
  "CMakeFiles/translator_exec_test.dir/translator_exec_test.cpp.o.d"
  "translator_exec_test"
  "translator_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
