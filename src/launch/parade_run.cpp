// parade_run: multi-process cluster launcher.
//
//   parade_run -n <nodes> [-t <threads>] [--net clan|fastether|ideal] \
//              [--barrier=flat|tree:<k>] [--sockdir <dir>] \
//              [--fault-seed N] [--fault-plan SPEC] \
//              [--metrics=PATH] [--trace=PATH] <program> [args...]
//
// Forks one OS process per node; each process joins the Unix-domain-socket
// fabric via PARADE_RANK / PARADE_SIZE / PARADE_SOCKDIR. The program must be
// built against the ParADE runtime (ProcessRuntime::from_env or a translated
// program's generated main). Exit status: first non-zero child status, else 0.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/topology.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parade_run -n <nodes> [-t <threads>] [--net NAME] "
               "[--barrier=flat|tree:<k>] [--sockdir DIR] "
               "[--fault-seed N] [--fault-plan SPEC] "
               "[--metrics=PATH] [--trace=PATH] <program> [args...]\n");
  return 2;
}

/// Strict output-path validation (same contract as parade_omcc's --threshold
/// parsing: a bad value is exit 2 up front, not a warning at teardown). The
/// path must be nonempty and its parent directory must already exist —
/// per-rank suffixing happens inside the runtime, so only the directory is
/// checkable here.
bool valid_out_path(const std::string& path) {
  if (path.empty()) return false;
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return true;  // cwd-relative file
  const std::string dir = slash == 0 ? "/" : path.substr(0, slash);
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 0;
  int threads = 1;
  std::string net;
  std::string sockdir;
  std::string fault_seed;
  std::string fault_plan;
  std::string metrics_path;
  std::string trace_path;
  std::string barrier_spec;
  bool saw_metrics = false;
  bool saw_trace = false;
  int prog_at = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-n" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "-t" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--net" && i + 1 < argc) {
      net = argv[++i];
    } else if (arg == "--sockdir" && i + 1 < argc) {
      sockdir = argv[++i];
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      fault_seed = argv[++i];
    } else if (arg == "--fault-plan" && i + 1 < argc) {
      fault_plan = argv[++i];
    } else if (arg.rfind("--barrier=", 0) == 0) {
      // Strict validation, same contract as the output-path flags: a bad
      // spec is exit 2 up front, before any node process forks.
      barrier_spec = arg.substr(std::strlen("--barrier="));
      if (!parade::parse_barrier_spec(barrier_spec).has_value()) {
        std::fprintf(stderr,
                     "parade_run: bad --barrier spec '%s' "
                     "(want flat or tree:<k>)\n",
                     barrier_spec.c_str());
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      if (saw_metrics) {
        std::fprintf(stderr, "parade_run: duplicate --metrics flag\n");
        return 2;
      }
      saw_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
      if (!valid_out_path(metrics_path)) {
        std::fprintf(stderr, "parade_run: bad --metrics path '%s'\n",
                     metrics_path.c_str());
        return 2;
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      if (saw_trace) {
        std::fprintf(stderr, "parade_run: duplicate --trace flag\n");
        return 2;
      }
      saw_trace = true;
      trace_path = arg.substr(std::strlen("--trace="));
      if (!valid_out_path(trace_path)) {
        std::fprintf(stderr, "parade_run: bad --trace path '%s'\n",
                     trace_path.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      prog_at = i;
      break;
    }
  }
  if (nodes < 1 || nodes > 128 || threads < 1 || prog_at < 0) return usage();

  char dir_template[] = "/tmp/parade-run-XXXXXX";
  if (sockdir.empty()) {
    const char* made = mkdtemp(dir_template);
    if (made == nullptr) {
      std::perror("parade_run: mkdtemp");
      return 1;
    }
    sockdir = made;
  }

  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(nodes));
  for (int rank = 0; rank < nodes; ++rank) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("parade_run: fork");
      return 1;
    }
    if (pid == 0) {
      setenv("PARADE_RANK", std::to_string(rank).c_str(), 1);
      setenv("PARADE_SIZE", std::to_string(nodes).c_str(), 1);
      setenv("PARADE_SOCKDIR", sockdir.c_str(), 1);
      setenv("PARADE_NODES", std::to_string(nodes).c_str(), 1);
      setenv("PARADE_THREADS", std::to_string(threads).c_str(), 1);
      if (!net.empty()) setenv("PARADE_NET", net.c_str(), 1);
      if (!barrier_spec.empty()) setenv("PARADE_BARRIER", barrier_spec.c_str(), 1);
      if (!fault_seed.empty()) setenv("PARADE_FAULT_SEED", fault_seed.c_str(), 1);
      if (!fault_plan.empty()) setenv("PARADE_FAULT_PLAN", fault_plan.c_str(), 1);
      // CLI flags mirror the env vars (the env route still works for programs
      // launched by other means); each rank's dump gets a .rankN suffix.
      if (saw_metrics) setenv("PARADE_METRICS", metrics_path.c_str(), 1);
      if (saw_trace) {
        setenv("PARADE_TRACE", "1", 1);
        setenv("PARADE_TRACE_OUT", trace_path.c_str(), 1);
      }
      execvp(argv[prog_at], argv + prog_at);
      std::perror("parade_run: execvp");
      _exit(127);
    }
    children.push_back(pid);
  }

  int exit_code = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0) {
      std::perror("parade_run: waitpid");
      exit_code = 1;
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0 && exit_code == 0) {
      exit_code = WEXITSTATUS(status);
    }
    if (WIFSIGNALED(status) && exit_code == 0) {
      std::fprintf(stderr, "parade_run: node process killed by signal %d\n",
                   WTERMSIG(status));
      exit_code = 128 + WTERMSIG(status);
    }
  }
  return exit_code;
}
