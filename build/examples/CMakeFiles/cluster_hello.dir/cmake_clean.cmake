file(REMOVE_RECURSE
  "CMakeFiles/cluster_hello.dir/cluster_hello.cpp.o"
  "CMakeFiles/cluster_hello.dir/cluster_hello.cpp.o.d"
  "cluster_hello"
  "cluster_hello.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_hello.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
