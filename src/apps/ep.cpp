#include "apps/ep.hpp"

#include <cmath>
#include <vector>

#include "common/nas_rng.hpp"
#include "runtime/api.hpp"

namespace parade::apps {
namespace {

constexpr double kSeed = 271828183.0;
constexpr int kMk = 16;                     // batch exponent (NPB MK)
constexpr std::int64_t kNk = 1LL << kMk;    // pairs per batch

/// Processes one batch of kNk pairs whose generator state starts at the
/// batch's jumped seed, accumulating into `acc`.
void ep_batch(std::int64_t batch, double a_pow_2nk_unused, EpResult& acc,
              std::vector<double>& scratch) {
  (void)a_pow_2nk_unused;
  // Jump the generator to the batch start: seed * a^(2*kNk*batch) mod 2^46.
  double t1 = nas::randlc_skip(kSeed, nas::kDefaultMult, 2 * kNk * batch);
  scratch.resize(static_cast<std::size_t>(2 * kNk));
  nas::vranlc(2 * kNk, t1, nas::kDefaultMult, scratch.data());

  for (std::int64_t i = 0; i < kNk; ++i) {
    const double x = 2.0 * scratch[static_cast<std::size_t>(2 * i)] - 1.0;
    const double y = 2.0 * scratch[static_cast<std::size_t>(2 * i + 1)] - 1.0;
    const double t = x * x + y * y;
    if (t <= 1.0) {
      const double z = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * z;
      const double gy = y * z;
      const auto bin = static_cast<std::size_t>(
          std::max(std::fabs(gx), std::fabs(gy)));
      if (bin < acc.q.size()) acc.q[bin] += 1;
      acc.sx += gx;
      acc.sy += gy;
      acc.gaussian_pairs += 1;
    }
  }
}

std::int64_t num_batches(int m) {
  return m > kMk ? (1LL << (m - kMk)) : 1;
}

}  // namespace

EpResult ep_serial(const EpParams& params) {
  EpResult acc;
  std::vector<double> scratch;
  const std::int64_t batches = num_batches(params.m);
  for (std::int64_t b = 0; b < batches; ++b) ep_batch(b, 0, acc, scratch);
  return acc;
}

EpResult ep_parade(const EpParams& params) {
  const std::int64_t batches = num_batches(params.m);
  // Node-replicated accumulator shared by the node's threads; merged by one
  // collective at the end (zero DSM traffic — the paper's point about EP).
  EpResult reduced;
  parallel([&] {
    EpResult local;
    std::vector<double> scratch;
    parallel_for(
        0, batches,
        [&](long lo, long hi) {
          for (long b = lo; b < hi; ++b) ep_batch(b, 0, local, scratch);
        });
    // Pack into one buffer and reduce once (sx, sy, q[], pairs).
    struct Packed {
      double sx, sy;
      std::int64_t q[10];
      std::int64_t pairs;
    } contribution{};
    contribution.sx = local.sx;
    contribution.sy = local.sy;
    for (int i = 0; i < 10; ++i) contribution.q[i] = local.q[static_cast<std::size_t>(i)];
    contribution.pairs = local.gaussian_pairs;

    Packed replica{};
    team_update_bytes(&replica, &contribution, sizeof(Packed),
                      [](void* inout, const void* in, std::size_t) {
                        auto* a = static_cast<Packed*>(inout);
                        const auto* b = static_cast<const Packed*>(in);
                        a->sx += b->sx;
                        a->sy += b->sy;
                        for (int i = 0; i < 10; ++i) a->q[i] += b->q[i];
                        a->pairs += b->pairs;
                      });
    if (local_thread_id() == 0) {
      reduced.sx = replica.sx;
      reduced.sy = replica.sy;
      for (int i = 0; i < 10; ++i) reduced.q[static_cast<std::size_t>(i)] = replica.q[i];
      reduced.gaussian_pairs = replica.pairs;
    }
  });
  return reduced;
}

bool ep_reference(int m, double* sx, double* sy) {
  // NPB 2.3 verification sums.
  switch (m) {
    case 24:  // class S
      *sx = -3.247834652034740e+3;
      *sy = -6.958407078382297e+3;
      return true;
    case 25:  // class W
      *sx = -2.863319731645753e+3;
      *sy = -6.320053679109499e+3;
      return true;
    case 28:  // class A
      *sx = -4.295875165629892e+3;
      *sy = -1.580732573678431e+4;
      return true;
    default:
      return false;
  }
}

bool ep_verify(const EpResult& result, int m, double eps) {
  double ref_sx = 0.0;
  double ref_sy = 0.0;
  if (!ep_reference(m, &ref_sx, &ref_sy)) return false;
  const bool sx_ok = std::fabs((result.sx - ref_sx) / ref_sx) <= eps;
  const bool sy_ok = std::fabs((result.sy - ref_sy) / ref_sy) <= eps;
  return sx_ok && sy_ok;
}

}  // namespace parade::apps
