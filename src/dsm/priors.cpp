#include "dsm/priors.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace parade::dsm {

namespace {

const char* g_embedded_hints = nullptr;

bool bool_field(const obs::JsonValue& symbol, const std::string& name) {
  return symbol.has(name) &&
         symbol.at(name).kind == obs::JsonValue::Kind::kBool &&
         symbol.at(name).boolean;
}

std::size_t int_field(const obs::JsonValue& symbol, const std::string& name,
                      std::size_t fallback) {
  if (!symbol.has(name) ||
      symbol.at(name).kind != obs::JsonValue::Kind::kNumber) {
    return fallback;
  }
  const std::int64_t v = symbol.at(name).as_int();
  return v < 0 ? fallback : static_cast<std::size_t>(v);
}

}  // namespace

Result<std::vector<PagePrior>> parse_page_priors(
    const std::string& hints_json) {
  auto parsed = obs::parse_json(hints_json);
  if (!parsed.is_ok()) return parsed.status();
  const obs::JsonValue& doc = parsed.value();
  if (!doc.is_object() || !doc.has("version")) {
    return make_error(ErrorCode::kInvalidArgument,
                      "hints document is not a protocol-hint sidecar");
  }
  const std::int64_t version = doc.at("version").as_int();
  if (version != 1 && version != 2) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unsupported protocol-hint sidecar version " +
                          std::to_string(version) +
                          " (this runtime reads v1 and v2)");
  }
  std::vector<PagePrior> priors;
  if (doc.has("symbols") && doc.at("symbols").is_array()) {
    for (const obs::JsonValue& symbol : doc.at("symbols").array) {
      if (!symbol.is_object()) continue;
      // Replicated symbols and symbols without a statically known pool
      // offset carry no range the page table could be seeded with.
      if (!bool_field(symbol, "dsm") || !bool_field(symbol, "offset_known")) {
        continue;
      }
      PagePrior prior;
      prior.offset = int_field(symbol, "pool_offset", 0);
      prior.bytes = int_field(symbol, "bytes", 0);
      prior.prefer_update = bool_field(symbol, "prefer_update");
      prior.migration_friendly = bool_field(symbol, "migration_friendly");
      prior.expected_touches = int_field(symbol, "expected_page_touches", 1);
      if (prior.bytes == 0) continue;
      priors.push_back(prior);
    }
  }
  // v2: epoch-ranged priors. Each phase record projects its ranges onto one
  // DSM epoch: translator phase p runs during epoch p + epoch_base (the
  // base accounts for the generated program's shared-init barrier).
  if (version >= 2 && doc.has("phases") && doc.at("phases").is_array()) {
    const int epoch_base =
        static_cast<int>(int_field(doc, "epoch_base", 0));
    for (const obs::JsonValue& phase : doc.at("phases").array) {
      if (!phase.is_object() || !phase.has("index") ||
          !phase.has("ranges") || !phase.at("ranges").is_array()) {
        continue;
      }
      const int epoch =
          static_cast<int>(phase.at("index").as_int()) + epoch_base;
      for (const obs::JsonValue& range : phase.at("ranges").array) {
        if (!range.is_object()) continue;
        PagePrior prior;
        prior.offset = int_field(range, "offset", 0);
        prior.bytes = int_field(range, "bytes", 0);
        prior.prefer_update = bool_field(range, "prefer_update");
        prior.migration_friendly = bool_field(range, "migration_friendly");
        prior.phase = epoch;
        if (prior.bytes == 0 || epoch < 0) continue;
        priors.push_back(prior);
      }
    }
  }
  return priors;
}

Status load_page_priors(const std::string& path, DsmConfig* config) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kIoError, "cannot open hints file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto priors = parse_page_priors(text.str());
  if (!priors.is_ok()) return priors.status();
  config->page_priors = std::move(priors).value();
  return Status::ok();
}

void set_embedded_hints_json(const char* json) { g_embedded_hints = json; }

const char* embedded_hints_json() { return g_embedded_hints; }

}  // namespace parade::dsm
