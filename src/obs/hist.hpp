// Histogram: log-linear latency distribution (HdrHistogram-style), the third
// metric primitive next to Counter and Timer (obs/metric.hpp). Each power-of-
// two octave is split into 2^kHistSubBits linear sub-buckets, bounding the
// quantization error of any percentile to ~1/2^kHistSubBits (12.5%) of the
// value — fine enough to resolve the zero-copy-vs-legacy fetch deltas the
// dsm_hotpath gate compares, where plain log2 buckets could only see 2x
// steps. Recording is lock-free (one relaxed add per bucket plus a CAS loop
// for the max); percentile reads are racy-by-design snapshots, same contract
// as Counter.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "common/timing.hpp"
#include "obs/metric.hpp"

namespace parade::obs {

inline constexpr int kHistSubBits = 3;  // 8 linear sub-buckets per octave
inline constexpr int kHistSubBuckets = 1 << kHistSubBits;
/// 64 octaves x 8 sub-buckets bounds the index space; the top indices are
/// unreachable for positive int64 inputs and simply stay zero.
inline constexpr int kHistBuckets = 512;

/// Bucket index for a latency sample. Values below 2^kHistSubBits map
/// exactly (bucket = value; bucket 0 holds <= 0 ns); above that, the top
/// kHistSubBits bits after the leading one select a linear sub-bucket within
/// the value's octave. Consecutive values map to the same or consecutive
/// buckets, so the mapping is monotone.
inline int hist_bucket_index(std::int64_t ns) {
  if (ns <= 0) return 0;
  const auto v = static_cast<std::uint64_t>(ns);
  if (v < static_cast<std::uint64_t>(kHistSubBuckets)) {
    return static_cast<int>(v);
  }
  const int msb = std::bit_width(v) - 1;
  const int shift = msb - kHistSubBits;
  const int index =
      ((msb - kHistSubBits + 1) << kHistSubBits) +
      static_cast<int>((v >> shift) & (kHistSubBuckets - 1));
  return index >= kHistBuckets ? kHistBuckets - 1 : index;
}

/// Upper edge (inclusive) of bucket i, the value percentile queries report.
inline std::int64_t hist_bucket_upper_ns(int index) {
  if (index <= 0) return 0;
  if (index < kHistSubBuckets) return index;
  const int octave = index >> kHistSubBits;
  const int sub = index & (kHistSubBuckets - 1);
  const int shift = octave - 1;
  if (shift >= 63 - kHistSubBits) return INT64_MAX;
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(kHistSubBuckets + sub + 1) << shift) - 1);
}

class Histogram {
 public:
  void record_ns(std::int64_t ns) {
    buckets_[static_cast<std::size_t>(hist_bucket_index(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen && !max_ns_.compare_exchange_weak(
                            seen, ns, std::memory_order_relaxed)) {
    }
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::int64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }

  /// Value at quantile `q` in [0, 1]: the upper edge of the first bucket whose
  /// cumulative count reaches q * count, capped at the observed max. 0 when
  /// the histogram is empty.
  std::int64_t percentile_ns(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kHistBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Charges the enclosed scope's wall time to a Histogram (and optionally a
/// Timer too). Null handles make the scope free, mirroring ScopedTimer.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(Histogram* hist, Timer* timer = nullptr)
      : hist_(hist),
        timer_(timer),
        start_ns_(hist != nullptr || timer != nullptr ? wall_ns() : 0) {}
  ~ScopedHistTimer() {
    if (hist_ == nullptr && timer_ == nullptr) return;
    const std::int64_t elapsed = wall_ns() - start_ns_;
    if (hist_ != nullptr) hist_->record_ns(elapsed);
    if (timer_ != nullptr) timer_->add_ns(elapsed);
  }

  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  Histogram* hist_;
  Timer* timer_;
  std::int64_t start_ns_;
};

}  // namespace parade::obs
