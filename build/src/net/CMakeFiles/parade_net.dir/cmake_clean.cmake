file(REMOVE_RECURSE
  "CMakeFiles/parade_net.dir/inproc.cpp.o"
  "CMakeFiles/parade_net.dir/inproc.cpp.o.d"
  "CMakeFiles/parade_net.dir/mailbox.cpp.o"
  "CMakeFiles/parade_net.dir/mailbox.cpp.o.d"
  "CMakeFiles/parade_net.dir/socket.cpp.o"
  "CMakeFiles/parade_net.dir/socket.cpp.o.d"
  "libparade_net.a"
  "libparade_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
