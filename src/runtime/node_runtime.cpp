#include "runtime/node_runtime.hpp"

#include "common/env.hpp"
#include "common/log.hpp"
#include "dsm/priors.hpp"

namespace parade {

RuntimeConfig runtime_config_from_env() {
  RuntimeConfig config;
  config.nodes = static_cast<int>(env::get_int_or("PARADE_NODES", 2));
  config.threads_per_node =
      static_cast<int>(env::get_int_or("PARADE_THREADS", 2));
  config.cpu_scale = vtime::cpu_scale_from_env();
  config.dsm.net = vtime::model_from_env();
  config.dsm.machine.compute_threads = config.threads_per_node;
  config.dsm.machine.cpus_per_node =
      static_cast<int>(env::get_int_or("PARADE_CPUS_PER_NODE", 2));
  config.dsm.home_migration = env::get_bool_or("PARADE_HOME_MIGRATION", true);
  config.dsm.pool_bytes =
      static_cast<std::size_t>(env::get_int_or("PARADE_POOL_MB", 64)) << 20;
  config.dsm.mp_threshold_bytes =
      static_cast<std::size_t>(env::get_int_or("PARADE_MP_THRESHOLD", 256));
  config.dsm.sync_mode =
      env::get_string_or("PARADE_SYNC_MODE", "parade") == "conventional"
          ? dsm::SyncMode::kConventional
          : dsm::SyncMode::kParade;
  config.dsm.retry = net::RetryPolicy::from_env();
  const std::string barrier_spec = env::get_string_or("PARADE_BARRIER", "flat");
  if (const auto fanout = parse_barrier_spec(barrier_spec)) {
    config.dsm.barrier_fanout = *fanout;
  } else {
    // parade_run rejects bad specs up front (exit 2); a bare binary falls
    // back to the flat barrier rather than aborting mid-launch.
    PLOG_WARN("ignoring unparsable PARADE_BARRIER='" << barrier_spec
                                                     << "' (want flat|tree:<k>)");
  }
  config.dsm.sharded_homes = env::get_bool_or("PARADE_HOME_SHARDING", false);
  config.dsm.zero_copy = env::get_bool_or("PARADE_ZERO_COPY", true);
  const std::string map_spec = env::get_string_or("PARADE_MAP_METHOD", "memfd");
  if (const auto method = dsm::parse_map_method(map_spec)) {
    config.dsm.map_method = *method;
  } else {
    PLOG_WARN("ignoring unparsable PARADE_MAP_METHOD='"
              << map_spec << "' (want memfd|sysv|mdup|child-process)");
  }
  // Static protocol priors: PARADE_HINTS=<sidecar.json> overrides the blob a
  // generated program embedded; PARADE_HINTS=none disables priors entirely.
  // A bad sidecar degrades to no priors (warn) rather than aborting launch.
  const auto hints_path = env::get_string("PARADE_HINTS");
  if (hints_path.has_value()) {
    if (*hints_path != "none") {
      if (Status s = dsm::load_page_priors(*hints_path, &config.dsm); !s) {
        PLOG_WARN("ignoring PARADE_HINTS='" << *hints_path
                                            << "': " << s.to_string());
      }
    }
  } else if (dsm::embedded_hints_json() != nullptr) {
    auto priors = dsm::parse_page_priors(dsm::embedded_hints_json());
    if (priors.is_ok()) {
      config.dsm.page_priors = std::move(priors).value();
    } else {
      PLOG_WARN("ignoring embedded protocol hints: "
                << priors.status().to_string());
    }
  }
  return config;
}

NodeRuntime::NodeRuntime(net::Channel& channel, const RuntimeConfig& config)
    : config_(config) {
  // One Topology value per node, shared by every layer: the DSM barrier tree,
  // the communicator, and the thread team all see the same shape.
  const Topology topology{channel.rank(), channel.size(),
                          config_.dsm.barrier_fanout};
  dsm_ = std::make_unique<dsm::DsmNode>(topology, channel, config_.dsm);
  comm_ = std::make_unique<mp::Comm>(topology, channel, config_.dsm.net);
  team_ = std::make_unique<Team>(*this, topology, config_.threads_per_node);
}

NodeRuntime::~NodeRuntime() { shutdown(); }

Status NodeRuntime::start() {
  if (Status s = dsm_->start(); !s) return s;
  team_->start();
  return Status::ok();
}

void NodeRuntime::shutdown() {
  if (team_) team_->stop();
  if (dsm_) dsm_->shutdown();
}

void NodeRuntime::main_entry(const std::function<void()>& program) {
  logging::set_thread_node_tag(node_id());
  ThreadCtx ctx(config_.cpu_scale);
  ctx.node = this;
  ctx.local_id = 0;
  detail::set_current_ctx(&ctx);
  ctx.clock.reset(0.0);
  program();
  ctx.clock.sync_cpu();
  final_vtime_ = ctx.clock.now();
  detail::set_current_ctx(nullptr);
}

}  // namespace parade
