// parade_lint: standalone OpenMP correctness linter over the ParADE
// semantic analyzer (docs/ANALYZER.md).
//
//   parade_lint [--json|--sarif] [--dataflow] [--threshold=BYTES] [--werror]
//               <input.c>...
//   parade_lint --version
//
// Prints one report per input (--sarif emits a single combined SARIF 2.1.0
// log instead). --dataflow appends the CFG/dataflow report: per-region graph
// shape and every def-use finding the flow-sensitive pass suppressed.
// Exit codes: 0 all files clean of errors, 1 at least one error-severity
// finding (or warning with --werror), 2 usage (including no input files) /
// unreadable input / parse failure.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "translator/analyze.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parade_lint [--json|--sarif] [--dataflow] "
               "[--threshold=BYTES] [--werror] <input.c>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool dataflow = false;
  bool werror = false;
  std::vector<std::string> inputs;
  parade::translator::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::fprintf(stdout, "parade_lint 0.5.0\n");
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--dataflow") {
      dataflow = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      auto bytes = parade::translator::parse_threshold_bytes(arg.substr(12));
      if (!bytes.is_ok()) {
        std::fprintf(stderr, "parade_lint: %s\n",
                     bytes.status().to_string().c_str());
        return 2;
      }
      options.mp_threshold_bytes = bytes.value();
    } else if (arg.rfind("-", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() || (json && sarif)) return usage();

  bool failed = false;
  bool broken = false;
  std::vector<std::pair<std::string, parade::translator::Analysis>> analyzed;
  for (const std::string& input : inputs) {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "parade_lint: cannot open %s\n", input.c_str());
      broken = true;
      continue;
    }
    std::ostringstream source;
    source << in.rdbuf();
    auto analysis =
        parade::translator::analyze_source(source.str(), options);
    if (!analysis.is_ok()) {
      std::fprintf(stderr, "parade_lint: %s: %s\n", input.c_str(),
                   analysis.status().to_string().c_str());
      broken = true;
      continue;
    }
    const auto& result = analysis.value();
    if (!sarif) {
      std::fputs(json ? (result.to_json(input) + "\n").c_str()
                      : result.to_text(input).c_str(),
                 stdout);
      if (dataflow) {
        std::fputs(result.dataflow_report(input).c_str(), stdout);
      }
    }
    if (result.has_errors() ||
        (werror &&
         result.count(parade::translator::Severity::kWarning) > 0)) {
      failed = true;
    }
    analyzed.emplace_back(input, std::move(analysis).value());
  }
  if (sarif && !analyzed.empty()) {
    std::fputs((parade::translator::sarif_report(analyzed) + "\n").c_str(),
               stdout);
  }
  // Translation-decision counters (xlat.analyze.*) flow to the standard
  // JSON/CSV exports when PARADE_METRICS is set.
  parade::obs::Registry::instance().export_if_configured("parade_lint");
  if (broken) return 2;
  return failed ? 1 : 0;
}
