# Empty dependencies file for parade_vtime.
# This may be replaced when dependencies are built.
