file(REMOVE_RECURSE
  "CMakeFiles/vtime_model_test.dir/vtime_model_test.cpp.o"
  "CMakeFiles/vtime_model_test.dir/vtime_model_test.cpp.o.d"
  "vtime_model_test"
  "vtime_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtime_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
