// Per-channel network metrics: message/byte counters split by tag class
// (dsm / mp / coll / ack) plus per-peer send counters. Handles are resolved
// from the obs registry once per channel, so the send/recv hot paths only do
// relaxed atomic adds.
#pragma once

#include <string>
#include <vector>

#include "net/message.hpp"
#include "obs/registry.hpp"

namespace parade::net {

enum class TagClass : int { kDsm = 0, kMp = 1, kColl = 2, kAck = 3 };
inline constexpr int kTagClassCount = 4;

inline TagClass tag_class(Tag tag) {
  if (tag >= kAckTagBase) return TagClass::kAck;
  if (tag >= kCollTagBase) return TagClass::kColl;
  if (tag >= kMpTagBase) return TagClass::kMp;
  return TagClass::kDsm;
}

inline const char* tag_class_name(TagClass cls) {
  switch (cls) {
    case TagClass::kDsm: return "dsm";
    case TagClass::kMp: return "mp";
    case TagClass::kColl: return "coll";
    case TagClass::kAck: return "ack";
  }
  return "?";
}

class ChannelMetrics {
 public:
  ChannelMetrics(NodeId rank, int size) {
    auto& reg = obs::Registry::instance();
    for (int cls = 0; cls < kTagClassCount; ++cls) {
      const std::string suffix = tag_class_name(static_cast<TagClass>(cls));
      send_msgs_[cls] = &reg.counter(rank, "net.send_msgs." + suffix);
      send_bytes_[cls] = &reg.counter(rank, "net.send_bytes." + suffix);
      recv_msgs_[cls] = &reg.counter(rank, "net.recv_msgs." + suffix);
      recv_bytes_[cls] = &reg.counter(rank, "net.recv_bytes." + suffix);
    }
    peer_msgs_.reserve(static_cast<std::size_t>(size));
    peer_bytes_.reserve(static_cast<std::size_t>(size));
    for (int peer = 0; peer < size; ++peer) {
      const std::string id = std::to_string(peer);
      peer_msgs_.push_back(&reg.counter(rank, "net.send_msgs_to." + id));
      peer_bytes_.push_back(&reg.counter(rank, "net.send_bytes_to." + id));
    }
  }

  void on_send(NodeId dst, Tag tag, std::size_t bytes) {
    const int cls = static_cast<int>(tag_class(tag));
    send_msgs_[cls]->add();
    send_bytes_[cls]->add(static_cast<std::int64_t>(bytes));
    if (dst >= 0 && static_cast<std::size_t>(dst) < peer_msgs_.size()) {
      peer_msgs_[static_cast<std::size_t>(dst)]->add();
      peer_bytes_[static_cast<std::size_t>(dst)]->add(
          static_cast<std::int64_t>(bytes));
    }
  }

  void on_recv(Tag tag, std::size_t bytes) {
    const int cls = static_cast<int>(tag_class(tag));
    recv_msgs_[cls]->add();
    recv_bytes_[cls]->add(static_cast<std::int64_t>(bytes));
  }

 private:
  obs::Counter* send_msgs_[kTagClassCount];
  obs::Counter* send_bytes_[kTagClassCount];
  obs::Counter* recv_msgs_[kTagClassCount];
  obs::Counter* recv_bytes_[kTagClassCount];
  std::vector<obs::Counter*> peer_msgs_;
  std::vector<obs::Counter*> peer_bytes_;
};

}  // namespace parade::net
