// NodeRuntime: everything one cluster node owns — the DSM engine, the
// message-passing communicator (sharing the node's channel with the DSM's
// communication thread via disjoint tag classes), and the thread team.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "dsm/node.hpp"
#include "mp/comm.hpp"
#include "runtime/config.hpp"
#include "runtime/context.hpp"
#include "runtime/team.hpp"

namespace parade {

class NodeRuntime {
 public:
  NodeRuntime(net::Channel& channel, const RuntimeConfig& config);
  ~NodeRuntime();

  Status start();
  void shutdown();

  /// Runs `program` as this node's main thread (local thread 0 outside
  /// parallel regions). Installs the thread context for the duration.
  void main_entry(const std::function<void()>& program);

  NodeId node_id() const { return dsm_->rank(); }
  int num_nodes() const { return dsm_->size(); }
  /// The cluster shape every layer of this node was built with.
  const Topology& topology() const { return dsm_->topology(); }
  int threads_per_node() const { return config_.threads_per_node; }
  const RuntimeConfig& config() const { return config_; }

  dsm::DsmNode& dsm() { return *dsm_; }
  mp::Comm& comm() { return *comm_; }
  Team& team() { return *team_; }

  /// Virtual time of the node's main thread after main_entry returned.
  VirtualUs final_vtime() const { return final_vtime_; }

  /// Hands out DSM lock ids for the omp_*_lock API. Per-node counter: SPMD
  /// programs initialize locks in the same order everywhere, so ids agree
  /// cluster-wide. Starts at 64, above the translator's critical-name range.
  int allocate_lock_id() {
    return 64 + lock_id_counter_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<int> lock_id_counter_{0};
  RuntimeConfig config_;
  std::unique_ptr<dsm::DsmNode> dsm_;
  std::unique_ptr<mp::Comm> comm_;
  std::unique_ptr<Team> team_;
  VirtualUs final_vtime_ = 0.0;
};

}  // namespace parade
