// Global SIGSEGV dispatcher.
//
// A conventional SDSM process hosts one shared pool; the ParADE virtual
// cluster hosts one per node in the same process. The dispatcher maps a
// faulting address to the owning DsmNode's fault handler. Faults outside any
// registered pool are re-raised with the default disposition so genuine bugs
// still crash with a useful core.
#pragma once

#include <cstddef>

namespace parade::dsm {

class DsmNode;

namespace sigsegv {

/// Installs the process-wide handler (idempotent, thread-safe).
void ensure_installed();

/// Registers [base, base+bytes) as owned by `node`.
void register_range(void* base, std::size_t bytes, DsmNode* node);
void unregister_range(void* base);

/// Extracts the hardware write/read fault flag where the platform exposes it
/// (x86-64 page-fault error code bit 1). Returns false when unknown; the
/// fault path then infers intent from the page state.
bool context_says_write(const void* ucontext);

}  // namespace sigsegv
}  // namespace parade::dsm
