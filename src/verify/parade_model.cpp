// parade_model: explicit-state model checker for the HLRC/migratory-home
// DSM protocol (docs/MODEL_CHECKING.md).
//
//   parade_model list
//   parade_model explore --scenario=NAME [--mutation=NAME]
//                        [--max-states=N] [--max-depth=N]
//                        [--write-trace=PATH]
//   parade_model replay [--check] PATH
//   parade_model mutants [--max-states=N] [--max-depth=N]
//   parade_model --version
//
// Exit codes: 0 success (clean fixed point / trace check passed / every
// mutant detected), 1 violation found (explore) or a check failed,
// 2 usage, 3 exploration budget exhausted before a fixed point,
// 4 unreadable or malformed trace file.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "verify/checker.hpp"
#include "verify/model.hpp"

namespace {

using parade::verify::Action;
using parade::verify::Budget;
using parade::verify::ExploreResult;
using parade::verify::Model;
using parade::verify::ReplayResult;
using parade::verify::Scenario;
using parade::verify::TraceFile;
namespace rules = parade::dsm::rules;

constexpr const char* kVersion = "parade_model 0.4.0";

int usage() {
  std::fprintf(
      stderr,
      "usage: parade_model list\n"
      "       parade_model explore --scenario=NAME [--mutation=NAME]\n"
      "                            [--max-states=N] [--max-depth=N]\n"
      "                            [--write-trace=PATH]\n"
      "       parade_model replay [--check] PATH\n"
      "       parade_model mutants [--max-states=N] [--max-depth=N]\n"
      "       parade_model --version\n");
  return 2;
}

void print_violation(const parade::verify::Violation& violation,
                     const std::vector<Action>& trace) {
  std::printf("violation: %s (%s)\n", violation.invariant.c_str(),
              violation.detail.c_str());
  std::printf("counterexample (%zu actions):\n", trace.size());
  for (const Action& action : trace) {
    std::printf("  %s\n", parade::verify::to_string(action).c_str());
  }
}

bool parse_budget_flag(const std::string& arg, Budget* budget) {
  if (arg.rfind("--max-states=", 0) == 0) {
    budget->max_states = std::stoull(arg.substr(13));
    return true;
  }
  if (arg.rfind("--max-depth=", 0) == 0) {
    budget->max_depth = std::stoull(arg.substr(12));
    return true;
  }
  return false;
}

int cmd_list() {
  for (const Scenario& s : parade::verify::standard_scenarios()) {
    std::printf("%-12s %d nodes, %d page(s), %d interval(s), drop=%d dup=%d,"
                " barrier=%s%s  %s\n",
                s.name.c_str(), s.nodes, s.pages, s.intervals, s.drop_budget,
                s.dup_budget,
                parade::Topology{0, s.nodes, s.fanout}.describe().c_str(),
                s.sharded_homes ? ", sharded" : "", s.description.c_str());
  }
  std::printf("mutations:\n");
  for (const auto& info : rules::kMutations) {
    std::printf("  %-22s %s\n", info.name, info.summary);
  }
  return 0;
}

int cmd_explore(const std::vector<std::string>& args) {
  std::string scenario_name;
  std::string mutation_name = "none";
  std::string trace_path;
  Budget budget;
  for (const std::string& arg : args) {
    if (arg.rfind("--scenario=", 0) == 0) {
      scenario_name = arg.substr(11);
    } else if (arg.rfind("--mutation=", 0) == 0) {
      mutation_name = arg.substr(11);
    } else if (arg.rfind("--write-trace=", 0) == 0) {
      trace_path = arg.substr(14);
    } else if (!parse_budget_flag(arg, &budget)) {
      return usage();
    }
  }
  const Scenario* scenario = parade::verify::find_scenario(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "parade_model: unknown scenario '%s'\n",
                 scenario_name.c_str());
    return 2;
  }
  const auto mutation = rules::mutation_from_name(mutation_name);
  if (!mutation) {
    std::fprintf(stderr, "parade_model: unknown mutation '%s'\n",
                 mutation_name.c_str());
    return 2;
  }

  Model model(*scenario, *mutation);
  ExploreResult result = parade::verify::explore(model, budget);
  std::printf("scenario %s, mutation %s: %llu states, %llu transitions\n",
              scenario->name.c_str(), rules::to_string(*mutation),
              static_cast<unsigned long long>(result.states),
              static_cast<unsigned long long>(result.transitions));
  if (result.violation) {
    std::vector<Action> trace = parade::verify::minimize(model, result.trace);
    print_violation(*result.violation, trace);
    if (!trace_path.empty()) {
      TraceFile file;
      file.scenario = scenario->name;
      file.mutation = rules::to_string(*mutation);
      file.violation = result.violation->invariant;
      file.actions = trace;
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "parade_model: cannot write %s\n",
                     trace_path.c_str());
        return 4;
      }
      out << parade::verify::format_trace(file);
      std::printf("trace written to %s\n", trace_path.c_str());
    }
    return 1;
  }
  if (result.states_exhausted || result.depth_pruned) {
    std::printf("no violation, but exploration was %s before a fixed point\n",
                result.states_exhausted ? "capped by --max-states"
                                        : "pruned by --max-depth");
    return 3;
  }
  std::printf("fixed point: no violations\n");
  return 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  bool check = false;
  std::string path;
  for (const std::string& arg : args) {
    if (arg == "--check") {
      check = true;
    } else if (arg.rfind("-", 0) == 0 || !path.empty()) {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "parade_model: cannot open %s\n", path.c_str());
    return 4;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto trace = parade::verify::parse_trace(text.str(), &error);
  if (!trace) {
    std::fprintf(stderr, "parade_model: %s: %s\n", path.c_str(),
                 error.c_str());
    return 4;
  }
  const Scenario* scenario = parade::verify::find_scenario(trace->scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "parade_model: %s: unknown scenario '%s'\n",
                 path.c_str(), trace->scenario.c_str());
    return 4;
  }
  const auto mutation = rules::mutation_from_name(trace->mutation);
  if (!mutation) {
    std::fprintf(stderr, "parade_model: %s: unknown mutation '%s'\n",
                 path.c_str(), trace->mutation.c_str());
    return 4;
  }

  Model mutated(*scenario, *mutation);
  ReplayResult result = parade::verify::replay(mutated, trace->actions);
  if (!result.feasible) {
    std::fprintf(stderr,
                 "parade_model: %s: action %zu not applicable under "
                 "mutation %s\n",
                 path.c_str(), result.violation_index,
                 trace->mutation.c_str());
    return 1;
  }
  if (result.violation) {
    std::printf("replay hits %s after %zu actions: %s\n",
                result.violation->invariant.c_str(),
                result.violation_index + 1,
                result.violation->detail.c_str());
  } else {
    std::printf("replay runs %zu actions without violation\n",
                trace->actions.size());
  }

  if (!check) return 0;

  // --check: the trace must still discriminate — the recorded violation
  // under the recorded mutation, and (for mutant traces) a clean pass of
  // the same action prefix under the unmutated rules.
  bool ok = true;
  if (!result.violation || result.violation->invariant != trace->violation) {
    std::fprintf(stderr,
                 "parade_model: %s: expected violation %s under mutation "
                 "%s, got %s\n",
                 path.c_str(), trace->violation.c_str(),
                 trace->mutation.c_str(),
                 result.violation ? result.violation->invariant.c_str()
                                  : "none");
    ok = false;
  }
  if (*mutation != rules::Mutation::kNone) {
    Model clean(*scenario, rules::Mutation::kNone);
    ReplayResult clean_result =
        parade::verify::replay(clean, trace->actions);
    // The unmutated rules may legitimately diverge mid-trace (a mutant can
    // enable actions the clean protocol never takes); what they must never
    // do is reproduce a violation.
    if (clean_result.violation) {
      std::fprintf(stderr,
                   "parade_model: %s: unmutated rules also violate %s\n",
                   path.c_str(),
                   clean_result.violation->invariant.c_str());
      ok = false;
    }
  }
  if (ok) std::printf("check passed\n");
  return ok ? 0 : 1;
}

int cmd_mutants(const std::vector<std::string>& args) {
  Budget budget;
  for (const std::string& arg : args) {
    if (!parse_budget_flag(arg, &budget)) return usage();
  }

  bool all_ok = true;
  // Unmutated rules must pass every standard scenario clean...
  for (const Scenario& scenario : parade::verify::standard_scenarios()) {
    Model model(scenario, rules::Mutation::kNone);
    ExploreResult result = parade::verify::explore(model, budget);
    if (result.clean_fixed_point()) {
      std::printf("clean %-12s ok (%llu states)\n", scenario.name.c_str(),
                  static_cast<unsigned long long>(result.states));
      continue;
    }
    all_ok = false;
    if (result.violation) {
      std::printf("clean %-12s FAILED: %s\n", scenario.name.c_str(),
                  result.violation->invariant.c_str());
      std::vector<Action> trace =
          parade::verify::minimize(model, result.trace);
      print_violation(*result.violation, trace);
    } else {
      std::printf("clean %-12s FAILED: budget exhausted\n",
                  scenario.name.c_str());
    }
  }
  // ...and every planted mutation must produce a counterexample somewhere.
  for (const auto& info : rules::kMutations) {
    bool detected = false;
    std::string where;
    std::string invariant;
    for (const Scenario& scenario : parade::verify::standard_scenarios()) {
      Model model(scenario, info.mutation);
      ExploreResult result = parade::verify::explore(model, budget);
      if (result.violation) {
        detected = true;
        where = scenario.name;
        invariant = result.violation->invariant;
        break;
      }
    }
    if (detected) {
      std::printf("mutant %-22s detected in %s (%s)\n", info.name,
                  where.c_str(), invariant.c_str());
    } else {
      std::printf("mutant %-22s NOT DETECTED\n", info.name);
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());
  if (cmd == "--version") {
    std::printf("%s\n", kVersion);
    return 0;
  }
  if (cmd == "list") return cmd_list();
  if (cmd == "explore") return cmd_explore(args);
  if (cmd == "replay") return cmd_replay(args);
  if (cmd == "mutants") return cmd_mutants(args);
  return usage();
}
