// Control-flow graph construction over the translator AST (the static-
// analysis substrate under the flow-sensitive analyzer, docs/ANALYZER.md).
//
// A Cfg is built per parallel-region body (or any statement subtree). Basic
// blocks carry an ordered event sequence — variable reads/writes, barrier and
// sync points, nowait-construct exits — and edges model if/else, loops
// (including back edges), switch approximation, and early exits (`return`,
// `break`, `continue` terminate their block). OpenMP constructs contribute
// region structure: worksharing loops are tagged, their implicit barriers
// become events, `single`/`master` bodies get a bypass edge (not every thread
// executes them), and `critical`/`atomic` bodies mark their events as
// lock-guarded. The iterative dataflow engine (translator/dataflow.hpp) runs
// client analyses over this graph.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "translator/ast.hpp"

namespace parade::translator {

enum class CfgEventKind {
  kRead,        // variable read
  kWrite,       // variable write (incl. array/member stores, base attributed)
  kDecl,        // declaration binds `name` here (region-local)
  kBarrier,     // explicit barrier or implicit construct-end barrier
  kSync,        // flush / critical entry: a consistency action, not a barrier
  kNowaitExit,  // a nowait worksharing construct ends here (id = construct)
};

struct CfgEvent {
  CfgEventKind kind = CfgEventKind::kRead;
  std::string name;          // variable (read/write/decl), else empty
  int line = 0;
  int id = -1;               // kNowaitExit: index into Cfg::nowaits
  bool in_critical = false;  // event sits inside a critical/atomic body
  bool loop_cond = false;    // read evaluated in a loop condition
};

struct CfgBlock {
  std::vector<CfgEvent> events;
  std::vector<int> succs;
  std::vector<int> preds;
  int line = 0;   // first source line contributing to the block
  int loop = -1;  // innermost enclosing CfgLoop id (-1 = none)
};

struct CfgLoop {
  int parent = -1;  // enclosing loop id (-1 = top level)
  int line = 0;
  int head = -1;              // loop header block (condition evaluation)
  bool worksharing = false;   // OpenMP worksharing loop (iterations split)
};

/// One if/else decision inside the region, with the number of *explicit*
/// barriers built while each arm was constructed (barrier.unmatched client).
struct CfgBranch {
  int line = 0;
  bool has_else = false;
  int then_barriers = 0;
  int else_barriers = 0;
};

/// One nowait worksharing construct; kNowaitExit events reference these by
/// index.
struct CfgNowait {
  int line = 0;
};

struct Cfg {
  std::vector<CfgBlock> blocks;  // [0] = entry, [1] = exit
  std::vector<CfgLoop> loops;
  std::vector<CfgBranch> branches;
  std::vector<CfgNowait> nowaits;
  std::set<std::string> locals;  // names declared inside the region

  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;

  std::size_t edge_count() const;
  /// blocks[i] reachable from entry (forward edges only; the fixpoint over
  /// back edges changes nothing for reachability).
  std::vector<char> reachable() const;
  /// True when `block`'s innermost-loop chain passes through `loop`.
  bool block_in_loop(int block, int loop) const;
};

/// Builds the CFG for a statement subtree (typically a parallel-region body).
Cfg build_cfg(const Stmt& body);

/// Token-level access scan of one statement text: identifiers read, names
/// written (with the store shape), and whether a call appears. Shared by the
/// analyzer's def-use walk, the CFG builder, and the footprint analysis so
/// all three agree on what constitutes an access.
struct AccessScan {
  struct Write {
    std::string name;
    bool array = false;   // a[i] = ...
    bool member = false;  // s.f = ...
    bool deref = false;   // *p = ...
  };
  std::vector<std::string> reads;  // in token order
  std::vector<Write> writes;
  bool has_call = false;
};

AccessScan scan_accesses(const std::string& text);

}  // namespace parade::translator
