// Figure 6: latency of the OpenMP `critical` directive — ParADE's hybrid
// translation (pthread lock + MPI_Allreduce, Figure 2 right) vs the
// conventional SDSM translation (DSM lock around a shared-page update,
// Figure 2 left; KDSM baseline).
//
// EPCC-syncbench style: every team thread executes the construct `iters`
// times updating one shared double; we report virtual microseconds per
// construct execution per thread.
#include <cstdio>

#include "bench/figure_common.hpp"
#include "runtime/api.hpp"

namespace parade {
namespace {

double parade_critical_us(int nodes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  const double seconds = run_virtual_cluster_s(config, [&] {
    double sum_replica = 0.0;
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        // Translated form of: #pragma omp critical { sum += 1.0; }
        team_update(&sum_replica, 1.0, mp::Op::kSum);
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

double kdsm_critical_us(int nodes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  config.dsm.sync_mode = dsm::SyncMode::kConventional;
  config.dsm.home_migration = false;  // original HLRC (KDSM-like)
  const double seconds = run_virtual_cluster_s(config, [&] {
    auto* sum = shmalloc_array<double>(1);
    if (node_id() == 0) *sum = 0.0;
    barrier();
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        critical_conventional(1, [&] { *sum += 1.0; });
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

}  // namespace
}  // namespace parade

int main(int argc, char** argv) {
  using namespace parade;
  const long iters = bench::arg_long(argc, argv, "iters", 40);

  bench::Series parade_series{"ParADE", {}};
  bench::Series kdsm_series{"KDSM", {}};
  for (const int nodes : bench::kNodeSweep) {
    parade_series.values.push_back(parade_critical_us(nodes, iters));
    kdsm_series.values.push_back(kdsm_critical_us(nodes, iters));
  }
  bench::print_figure(
      "Figure 6: critical directive latency, ParADE vs conventional SDSM "
      "(virtual time)",
      "us/op", bench::kNodeSweep, {parade_series, kdsm_series});
  return 0;
}
