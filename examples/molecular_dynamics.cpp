// Domain example: the paper's MD application (§6.2). Shows the three node
// configurations of the evaluation side by side on the same workload, i.e. a
// miniature of Figure 11.
//
//   ./molecular_dynamics [nparts] [steps]
#include <cstdio>
#include <cstdlib>

#include "apps/md.hpp"
#include "runtime/cluster.hpp"
#include "vtime/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace parade;

  apps::MdParams params;
  params.nparts = argc > 1 ? std::atoi(argv[1]) : 256;
  params.nsteps = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("MD: %d particles, %d steps, 4 nodes, modeled cLAN\n",
              params.nparts, params.nsteps);
  for (const auto node_config :
       {vtime::NodeConfig::k1Thread1Cpu, vtime::NodeConfig::k1Thread2Cpu,
        vtime::NodeConfig::k2Thread2Cpu}) {
    RuntimeConfig config;
    config.nodes = 4;
    config.with_node_config(node_config);
    config.cpu_scale = vtime::cpu_scale_from_env();
    config.dsm.net = vtime::model_from_env();
    config.dsm.pool_bytes = 16u << 20;

    apps::MdResult result;
    const double seconds =
        run_virtual_cluster_s(config, [&] { result = apps::md_parade(params); });
    std::printf("  %-14s: %7.3f s   (pot %.4f, kin %.4f, drift %.2e)\n",
                vtime::to_string(node_config), seconds, result.potential,
                result.kinetic, result.energy_drift);
  }
  return 0;
}
