// Translator unit tests: lexer, OpenMP pragma parsing, the C-subset parser
// (canonical loop recognition across increment styles), and codegen checks
// on the generated text, including diagnostics for unsupported input.
#include <gtest/gtest.h>

#include "translator/parser.hpp"
#include "translator/pragma.hpp"
#include "translator/token.hpp"
#include "translator/translate.hpp"

namespace parade::translator {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(Lexer, BasicTokens) {
  auto tokens = lex("int x = 42 + y;").value_or_die();
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[1].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens.back().kind, TokKind::kEof);
}

TEST(Lexer, CommentsDropped) {
  auto tokens = lex("a /* comment */ b // trailing\nc").value_or_die();
  ASSERT_EQ(tokens.size(), 4u);  // a b c EOF
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, PragmaOmpBecomesToken) {
  auto tokens =
      lex("#pragma omp parallel for reduction(+:x)\nfor(;;);").value_or_die();
  EXPECT_EQ(tokens[0].kind, TokKind::kPragmaOmp);
  EXPECT_EQ(tokens[0].text, " parallel for reduction(+:x)");
}

TEST(Lexer, OtherHashLinesPassThrough) {
  auto tokens = lex("#include <stdio.h>\nint x;").value_or_die();
  EXPECT_EQ(tokens[0].kind, TokKind::kHashLine);
  EXPECT_EQ(tokens[0].text, "#include <stdio.h>");
}

TEST(Lexer, PragmaContinuationLines) {
  auto tokens =
      lex("#pragma omp parallel \\\n  private(x)\n;").value_or_die();
  EXPECT_EQ(tokens[0].kind, TokKind::kPragmaOmp);
  EXPECT_NE(tokens[0].text.find("private(x)"), std::string::npos);
}

TEST(Lexer, MultiCharOperators) {
  auto tokens = lex("a <<= b >>= c != d <= e && f").value_or_die();
  EXPECT_EQ(tokens[1].text, "<<=");
  EXPECT_EQ(tokens[3].text, ">>=");
  EXPECT_EQ(tokens[5].text, "!=");
}

TEST(Lexer, FloatLiterals) {
  auto tokens = lex("1.5e-3 0x1F 2.0f .25").value_or_die();
  EXPECT_EQ(tokens[0].text, "1.5e-3");
  EXPECT_EQ(tokens[1].text, "0x1F");
  EXPECT_EQ(tokens[2].text, "2.0f");
  EXPECT_EQ(tokens[3].text, ".25");
}

TEST(Lexer, StringsAndChars) {
  auto tokens = lex(R"(printf("a \"b\" c\n", 'x');)").value_or_die();
  EXPECT_EQ(tokens[2].kind, TokKind::kString);
  EXPECT_EQ(tokens[4].kind, TokKind::kChar);
}

TEST(Lexer, UnterminatedCommentIsError) {
  EXPECT_FALSE(lex("a /* never closed").is_ok());
  EXPECT_FALSE(lex("\"never closed").is_ok());
}

// ---------------------------------------------------------------------------
// Pragma parsing

TEST(Pragma, ParallelWithClauses) {
  auto d = parse_pragma(" parallel private(a, b) shared(c) default(none) "
                        "firstprivate(d) if(n > 10)",
                        1)
               .value_or_die();
  EXPECT_EQ(d.kind, DirectiveKind::kParallel);
  EXPECT_EQ(d.clauses.privates, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d.clauses.shared, (std::vector<std::string>{"c"}));
  EXPECT_EQ(d.clauses.firstprivate, (std::vector<std::string>{"d"}));
  EXPECT_TRUE(d.clauses.has_default);
  EXPECT_FALSE(d.clauses.default_shared);
  EXPECT_EQ(d.clauses.if_expr, "n > 10");
}

TEST(Pragma, ParallelForAndReduction) {
  auto d = parse_pragma(" parallel for reduction(+:sum) reduction(*:prod)", 2)
               .value_or_die();
  EXPECT_EQ(d.kind, DirectiveKind::kParallelFor);
  ASSERT_EQ(d.clauses.reductions.size(), 2u);
  EXPECT_EQ(d.clauses.reductions[0].first, ReductionOp::kAdd);
  EXPECT_EQ(d.clauses.reductions[0].second, "sum");
  EXPECT_EQ(d.clauses.reductions[1].first, ReductionOp::kMul);
}

TEST(Pragma, ScheduleVariants) {
  auto s1 = parse_pragma(" for schedule(static)", 1).value_or_die();
  EXPECT_EQ(s1.clauses.schedule, OmpSchedule::kStatic);
  EXPECT_TRUE(s1.clauses.schedule_chunk.empty());

  auto s2 = parse_pragma(" for schedule(dynamic, 4)", 1).value_or_die();
  EXPECT_EQ(s2.clauses.schedule, OmpSchedule::kDynamic);
  EXPECT_EQ(s2.clauses.schedule_chunk, " 4");

  auto s3 = parse_pragma(" for schedule(guided) nowait", 1).value_or_die();
  EXPECT_EQ(s3.clauses.schedule, OmpSchedule::kGuided);
  EXPECT_TRUE(s3.clauses.nowait);
}

TEST(Pragma, SimpleDirectives) {
  EXPECT_EQ(parse_pragma(" barrier", 1).value_or_die().kind,
            DirectiveKind::kBarrier);
  EXPECT_EQ(parse_pragma(" master", 1).value_or_die().kind,
            DirectiveKind::kMaster);
  EXPECT_EQ(parse_pragma(" atomic", 1).value_or_die().kind,
            DirectiveKind::kAtomic);
  EXPECT_EQ(parse_pragma(" single nowait", 1).value_or_die().kind,
            DirectiveKind::kSingle);
  EXPECT_EQ(parse_pragma(" sections", 1).value_or_die().kind,
            DirectiveKind::kSections);
}

TEST(Pragma, CriticalName) {
  auto d = parse_pragma(" critical(update_sum)", 1).value_or_die();
  EXPECT_EQ(d.kind, DirectiveKind::kCritical);
  EXPECT_EQ(d.clauses.critical_name, "update_sum");
}

TEST(Pragma, FlushList) {
  auto d = parse_pragma(" flush(a, b)", 1).value_or_die();
  EXPECT_EQ(d.kind, DirectiveKind::kFlush);
  EXPECT_EQ(d.clauses.flush_list, (std::vector<std::string>{"a", "b"}));
}

TEST(Pragma, Diagnostics) {
  EXPECT_FALSE(parse_pragma(" teams distribute", 3).is_ok());
  EXPECT_FALSE(parse_pragma(" parallel num_threads(4)", 3).is_ok());
  EXPECT_FALSE(parse_pragma(" for reduction(sum)", 3).is_ok());  // missing ':'
  EXPECT_FALSE(parse_pragma(" for schedule(banana)", 3).is_ok());
  EXPECT_FALSE(parse_pragma(" parallel default(maybe)", 3).is_ok());
  // Errors carry the line number.
  auto bad = parse_pragma(" bogus", 17);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("17"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser: canonical loops

struct LoopCase {
  const char* source;
  bool canonical;
  const char* step;
  bool increasing;
  bool inclusive;
};

class CanonicalLoop : public ::testing::TestWithParam<LoopCase> {};

TEST_P(CanonicalLoop, Recognition) {
  const LoopCase& c = GetParam();
  const std::string program =
      std::string("void f() { ") + c.source + " { } }";
  auto tokens = lex(program).value_or_die();
  auto unit = parse(tokens).value_or_die();
  ASSERT_EQ(unit.items.size(), 1u);
  const Stmt& body = *unit.items[0].function.body;
  ASSERT_FALSE(body.children.empty());
  const Stmt& loop = *body.children[0];
  ASSERT_EQ(loop.kind, StmtKind::kFor);
  EXPECT_EQ(loop.for_header.canonical, c.canonical) << c.source;
  if (c.canonical) {
    EXPECT_EQ(loop.for_header.step, c.step);
    EXPECT_EQ(loop.for_header.increasing, c.increasing);
    EXPECT_EQ(loop.for_header.inclusive, c.inclusive);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Forms, CanonicalLoop,
    ::testing::Values(
        LoopCase{"for (i = 0; i < n; i++)", true, "1", true, false},
        LoopCase{"for (int i = 0; i < n; ++i)", true, "1", true, false},
        LoopCase{"for (i = 0; i <= n; i += 2)", true, "2", true, true},
        LoopCase{"for (i = n; i > 0; i--)", true, "1", false, false},
        LoopCase{"for (i = n; i >= 0; i -= 3)", true, "3", false, true},
        LoopCase{"for (i = 0; i < n; i = i + 4)", true, "4", true, false},
        LoopCase{"for (i = 0; i != n; i++)", false, "", true, false},
        LoopCase{"for (i = 0, j = 1; i < n; i++)", false, "", true, false},
        LoopCase{"for (i = 0; i < n; i *= 2)", false, "", true, false},
        LoopCase{"for (i = 0; i < n; i--)", false, "", true, false}));

TEST(Parser, NestedBlocksAndDecls) {
  const char* source = R"(
int helper(int a, double b) {
  int x = a;
  double y[10], *z;
  if (x > 0) { x = x - 1; } else { x = 0; }
  while (x) { x--; }
  return x;
}
)";
  auto unit = parse(lex(source).value_or_die()).value_or_die();
  ASSERT_EQ(unit.items.size(), 1u);
  EXPECT_EQ(unit.items[0].kind, TopItem::Kind::kFunction);
  EXPECT_EQ(unit.items[0].function.name, "helper");
  const Stmt& body = *unit.items[0].function.body;
  EXPECT_EQ(body.children[0]->kind, StmtKind::kDecl);
  const Stmt& multi = *body.children[1];
  ASSERT_EQ(multi.kind, StmtKind::kDecl);
  ASSERT_EQ(multi.declarators.size(), 2u);
  EXPECT_EQ(multi.declarators[0].name, "y");
  EXPECT_EQ(multi.declarators[0].array_dims.size(), 1u);
  EXPECT_EQ(multi.declarators[1].name, "z");
  EXPECT_EQ(multi.declarators[1].pointer_depth, 1);
  EXPECT_EQ(body.children[2]->kind, StmtKind::kIf);
  EXPECT_TRUE(body.children[2]->has_else);
  EXPECT_EQ(body.children[3]->kind, StmtKind::kWhile);
}

TEST(Parser, PragmaAttachesToNextStatement) {
  const char* source = R"(
void f() {
#pragma omp parallel
  {
    int x;
  }
#pragma omp barrier
}
)";
  auto unit = parse(lex(source).value_or_die()).value_or_die();
  const Stmt& body = *unit.items[0].function.body;
  ASSERT_EQ(body.children.size(), 2u);
  EXPECT_EQ(body.children[0]->kind, StmtKind::kPragma);
  EXPECT_TRUE(body.children[0]->directive_has_body);
  EXPECT_EQ(body.children[1]->directive.kind, DirectiveKind::kBarrier);
  EXPECT_FALSE(body.children[1]->directive_has_body);
}

// ---------------------------------------------------------------------------
// Codegen (textual checks)

std::string must_translate(const std::string& source,
                           TranslateOptions options = {}) {
  auto result = translate_source(source, options);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.value() : std::string();
}

TEST(Codegen, ParallelOutlinesToLambda) {
  const std::string out = must_translate(R"(
int main() {
#pragma omp parallel
  { int x = 0; }
  return 0;
}
)");
  EXPECT_NE(out.find("parade::parallel([&]()"), std::string::npos);
  EXPECT_NE(out.find("parade::xlat::launch"), std::string::npos);
  EXPECT_NE(out.find("__parade_user_main"), std::string::npos);
}

TEST(Codegen, GlobalArrayGoesToDsmPool) {
  const std::string out = must_translate(R"(
double grid[64][32];
int main() { grid[1][2] = 3.0; return 0; }
)");
  EXPECT_NE(out.find("parade::shmalloc(sizeof(double) * (64) * (32))"),
            std::string::npos);
  EXPECT_NE(out.find("__prep_grid.get()[1][2] = 3.0"), std::string::npos);
}

TEST(Codegen, GlobalScalarBecomesReplicated) {
  const std::string out = must_translate(R"(
double total = 1.5;
int main() { total = 2.0; return 0; }
)");
  EXPECT_NE(out.find("parade::xlat::Replicated<double> __prep_total"),
            std::string::npos);
  EXPECT_NE(out.find("__prep_total.get() = 2.0"), std::string::npos);
}

TEST(Codegen, AnalyzableCriticalUsesCollective) {
  const std::string out = must_translate(R"(
double sum;
int main() {
#pragma omp parallel
  {
#pragma omp critical
    sum += 1.0;
  }
  return 0;
}
)");
  EXPECT_NE(out.find("team_allreduce_bytes"), std::string::npos);
  EXPECT_EQ(out.find("dsm_lock"), std::string::npos);
}

TEST(Codegen, CriticalWithCallFallsBackToDsmLock) {
  const std::string out = must_translate(R"(
double sum;
double f(void);
int main() {
#pragma omp parallel
  {
#pragma omp critical
    sum += f();
  }
  return 0;
}
)");
  EXPECT_NE(out.find("parade::dsm_lock("), std::string::npos);
  EXPECT_NE(out.find("parade::dsm_unlock("), std::string::npos);
}

TEST(Codegen, SingleBroadcastsWrittenScalars) {
  const std::string out = must_translate(R"(
double seed;
int main() {
#pragma omp parallel
  {
#pragma omp single
    seed = 42.0;
  }
  return 0;
}
)");
  EXPECT_NE(out.find("parade::single_small"), std::string::npos);
  EXPECT_NE(out.find("__sgl.v0"), std::string::npos);
}

TEST(Codegen, MasterGuardsOnGlobalMaster) {
  const std::string out = must_translate(R"(
int main() {
#pragma omp parallel
  {
#pragma omp master
    { int x = 1; }
  }
  return 0;
}
)");
  EXPECT_NE(out.find("parade::node_id() == 0 && parade::local_thread_id() == 0"),
            std::string::npos);
}

TEST(Codegen, OmpApiCallsRedirected) {
  const std::string out = must_translate(R"(
int main() {
  int n = omp_get_num_threads();
  double t = omp_get_wtime();
  return 0;
}
)");
  EXPECT_NE(out.find("parade::ompshim::omp_get_num_threads"),
            std::string::npos);
  EXPECT_NE(out.find("parade::ompshim::omp_get_wtime"), std::string::npos);
}

TEST(Codegen, DiagnosticsForUnsupported) {
  // Non-canonical loop under omp for.
  auto r1 = translate_source(R"(
int main() {
#pragma omp parallel
  {
#pragma omp for
    for (int i = 0; i != 10; i++) { }
  }
  return 0;
}
)");
  ASSERT_FALSE(r1.is_ok());
  EXPECT_NE(r1.status().message().find("canonical"), std::string::npos);

  // Initialized global array.
  auto r2 = translate_source("int table[3] = {1,2,3};\nint main(){return 0;}");
  ASSERT_FALSE(r2.is_ok());

  // atomic on a non-update statement.
  auto r3 = translate_source(R"(
int main() {
#pragma omp parallel
  {
#pragma omp atomic
    { int q = 0; }
  }
  return 0;
}
)");
  ASSERT_FALSE(r3.is_ok());
}

TEST(Codegen, ScheduleClauseMapsToRuntimeSchedule) {
  const std::string out = must_translate(R"(
int main() {
  int i;
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 8)
    for (i = 0; i < 100; i++) { }
  }
  return 0;
}
)");
  EXPECT_NE(out.find("kDynamic"), std::string::npos);
  EXPECT_NE(out.find("8"), std::string::npos);
}

TEST(Codegen, SectionsBecomeSwitchedChunks) {
  const std::string out = must_translate(R"(
int main() {
#pragma omp parallel sections
  {
#pragma omp section
    { int a = 1; }
#pragma omp section
    { int b = 2; }
  }
  return 0;
}
)");
  EXPECT_NE(out.find("switch (__s)"), std::string::npos);
  EXPECT_NE(out.find("case 1:"), std::string::npos);
}

}  // namespace
}  // namespace parade::translator
