# Empty compiler generated dependencies file for parade_mp.
# This may be replaced when dependencies are built.
