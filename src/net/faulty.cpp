#include "net/faulty.hpp"

#include <string>
#include <utility>

namespace parade::net {

FaultyChannel::FaultyChannel(Channel& inner, const FaultPlan& plan,
                             std::shared_ptr<std::atomic<std::int64_t>> epoch)
    : Channel(inner.rank(), inner.size()),
      inner_(inner),
      plan_(plan),
      epoch_(epoch ? std::move(epoch)
                   : std::make_shared<std::atomic<std::int64_t>>(0)) {
  links_.reserve(static_cast<std::size_t>(inner.size()));
  for (NodeId dst = 0; dst < inner.size(); ++dst) {
    auto link = std::make_unique<LinkState>();
    link->rng = LinkRng(plan_.seed, rank_, dst);
    links_.push_back(std::move(link));
  }
  auto& reg = obs::Registry::instance();
  metrics_.injected = &reg.counter(rank_, "net.fault.injected");
  metrics_.dropped = &reg.counter(rank_, "net.fault.dropped");
  metrics_.partition_dropped = &reg.counter(rank_, "net.fault.partition_dropped");
  metrics_.duplicated = &reg.counter(rank_, "net.fault.duplicated");
  metrics_.reordered = &reg.counter(rank_, "net.fault.reordered");
  metrics_.delayed = &reg.counter(rank_, "net.fault.delayed");
}

bool FaultyChannel::link_partitioned(NodeId dst,
                                     std::uint64_t msg_index) const {
  for (const PartitionEvent& event : plan_.partitions) {
    const bool on_link = (event.a == rank_ && event.b == dst) ||
                         (event.a == dst && event.b == rank_);
    if (!on_link) continue;
    const std::uint64_t position =
        event.by_epoch ? static_cast<std::uint64_t>(
                             epoch_->load(std::memory_order_relaxed))
                       : msg_index;
    if (position >= event.start && (!event.heal || position < *event.heal)) {
      return true;
    }
  }
  return false;
}

Status FaultyChannel::send(NodeId dst, Tag tag,
                           std::vector<std::uint8_t> payload, VirtualUs vtime) {
  // Self-delivery is a process-local queue hop with no loss model, and it
  // carries the shutdown message — never perturb it.
  if (!plan_.active() || dst == rank_) {
    return inner_.send(dst, tag, std::move(payload), vtime);
  }

  struct Outgoing {
    Tag tag;
    std::vector<std::uint8_t> payload;
    VirtualUs vtime;
  };
  std::vector<Outgoing> forward;
  {
    std::lock_guard lock(mutex_);
    PARADE_CHECK_MSG(dst >= 0 && dst < size_, "send to invalid rank");
    LinkState& link = *links_[static_cast<std::size_t>(dst)];
    const std::uint64_t index = link.msg_count++;
    // Epoch probe: each barrier departure the master forwards to rank 1
    // closes one epoch (see net/fault.hpp).
    if (rank_ == 0 && dst == 1 && tag == kFaultEpochProbeTag) {
      epoch_->fetch_add(1, std::memory_order_relaxed);
    }
    // Fixed draw schedule keeps the link stream aligned across plans.
    const double roll_drop = link.rng.draw();
    const double roll_delay = link.rng.draw();
    const double roll_reorder = link.rng.draw();
    const double roll_dup = link.rng.draw();

    if (link_partitioned(dst, index)) {
      metrics_.injected->add();
      metrics_.dropped->add();
      metrics_.partition_dropped->add();
      return Status::ok();  // lost on the wire; the sender cannot tell
    }
    if (roll_drop < plan_.drop_p) {
      metrics_.injected->add();
      metrics_.dropped->add();
      return Status::ok();
    }
    VirtualUs stamped = vtime;
    if (roll_delay < plan_.delay_p) {
      stamped += link.rng.draw() * plan_.delay_max_us;
      metrics_.injected->add();
      metrics_.delayed->add();
    }
    if (!link.stash && roll_reorder < plan_.reorder_p) {
      // Hold this message back until the link's next send overtakes it.
      MessageHeader header;
      header.src = rank_;
      header.dst = dst;
      header.tag = tag;
      header.vtime = stamped;
      link.stash = Message(header, std::move(payload));
      metrics_.injected->add();
      metrics_.reordered->add();
      return Status::ok();
    }
    forward.push_back({tag, payload, stamped});
    if (roll_dup < plan_.dup_p) {
      metrics_.injected->add();
      metrics_.duplicated->add();
      forward.push_back({tag, payload, stamped});
    }
    if (link.stash) {
      forward.push_back({link.stash->header.tag, std::move(link.stash->payload),
                         link.stash->header.vtime});
      link.stash.reset();
    }
  }

  Status result = Status::ok();
  for (Outgoing& out : forward) {
    Status s = inner_.send(dst, out.tag, std::move(out.payload), out.vtime);
    if (!s.is_ok()) result = s;
  }
  return result;
}

FaultyFabric::FaultyFabric(int size, FaultPlan plan) : inner_(size) {
  auto epoch = std::make_shared<std::atomic<std::int64_t>>(0);
  channels_.reserve(static_cast<std::size_t>(size));
  for (NodeId rank = 0; rank < size; ++rank) {
    channels_.push_back(
        std::make_unique<FaultyChannel>(inner_.channel(rank), plan, epoch));
  }
}

Channel& FaultyFabric::channel(NodeId rank) {
  PARADE_CHECK(rank >= 0 && rank < size());
  return *channels_[static_cast<std::size_t>(rank)];
}

}  // namespace parade::net
