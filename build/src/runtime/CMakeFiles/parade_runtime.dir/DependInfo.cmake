
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/api.cpp" "src/runtime/CMakeFiles/parade_runtime.dir/api.cpp.o" "gcc" "src/runtime/CMakeFiles/parade_runtime.dir/api.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/parade_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/parade_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/runtime/CMakeFiles/parade_runtime.dir/context.cpp.o" "gcc" "src/runtime/CMakeFiles/parade_runtime.dir/context.cpp.o.d"
  "/root/repo/src/runtime/node_runtime.cpp" "src/runtime/CMakeFiles/parade_runtime.dir/node_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/parade_runtime.dir/node_runtime.cpp.o.d"
  "/root/repo/src/runtime/team.cpp" "src/runtime/CMakeFiles/parade_runtime.dir/team.cpp.o" "gcc" "src/runtime/CMakeFiles/parade_runtime.dir/team.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/parade_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/parade_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parade_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vtime/CMakeFiles/parade_vtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/parade_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
