#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "net/inproc.hpp"
#include "net/mailbox.hpp"
#include "net/socket.hpp"

namespace parade::net {
namespace {

Message make_msg(NodeId src, NodeId dst, Tag tag, std::size_t bytes = 0) {
  MessageHeader h;
  h.src = src;
  h.dst = dst;
  h.tag = tag;
  return Message(h, std::vector<std::uint8_t>(bytes, 0x5A));
}

TEST(Mailbox, FifoWithinMatch) {
  Mailbox box;
  box.deliver(make_msg(0, 1, 7, 1));
  box.deliver(make_msg(0, 1, 7, 2));
  auto m1 = box.try_recv_match([](const MessageHeader& h) { return h.tag == 7; });
  auto m2 = box.try_recv_match([](const MessageHeader& h) { return h.tag == 7; });
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->payload.size(), 1u);
  EXPECT_EQ(m2->payload.size(), 2u);
}

TEST(Mailbox, PredicateSkipsNonMatching) {
  Mailbox box;
  box.deliver(make_msg(0, 1, 3));
  box.deliver(make_msg(0, 1, 9));
  auto m = box.try_recv_match([](const MessageHeader& h) { return h.tag == 9; });
  ASSERT_TRUE(m);
  EXPECT_EQ(m->header.tag, 9);
  EXPECT_EQ(box.pending(), 1u);  // tag 3 still queued
}

TEST(Mailbox, BlockingRecvWakesOnDeliver) {
  Mailbox box;
  std::thread producer([&] { box.deliver(make_msg(2, 0, 11)); });
  auto m = box.recv_match([](const MessageHeader& h) { return h.tag == 11; });
  producer.join();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->header.src, 2);
}

TEST(Mailbox, CloseWakesBlockedReceivers) {
  Mailbox box;
  std::atomic<bool> got_null{false};
  std::thread consumer([&] {
    auto m = box.recv_match([](const MessageHeader&) { return true; });
    got_null.store(!m.has_value());
  });
  box.close();
  consumer.join();
  EXPECT_TRUE(got_null.load());
}

TEST(Mailbox, DrainsMatchesAfterClose) {
  Mailbox box;
  box.deliver(make_msg(0, 1, 5));
  box.close();
  auto m = box.recv_match([](const MessageHeader& h) { return h.tag == 5; });
  EXPECT_TRUE(m.has_value());
  auto none = box.recv_match([](const MessageHeader&) { return true; });
  EXPECT_FALSE(none.has_value());
}

TEST(Mailbox, PeerDownWakesBlockedWaiterWithUnavailable) {
  // Regression: a receiver blocked (no timeout) on a specific peer must not
  // hang forever when that peer's link dies — mark_peer_down has to wake it
  // with kUnavailable.
  Mailbox box;
  std::atomic<bool> woke_unavailable{false};
  std::thread waiter([&] {
    auto outcome = box.recv_match_from(
        /*peer=*/2, [](const MessageHeader&) { return true; });
    woke_unavailable.store(!outcome.message.has_value() &&
                           outcome.status.code() == ErrorCode::kUnavailable);
  });
  box.mark_peer_down(2);
  waiter.join();
  EXPECT_TRUE(woke_unavailable.load());
  EXPECT_TRUE(box.peer_down(2));
  EXPECT_FALSE(box.closed());  // the mailbox itself stays usable
}

TEST(Mailbox, PeerDownDrainsQueuedMessagesFirst) {
  Mailbox box;
  box.deliver(make_msg(2, 0, 7));
  box.mark_peer_down(2);
  // The queued message outlives the peer: drain it, then observe the error.
  auto first = box.recv_match_from(2, [](const MessageHeader& h) {
    return h.tag == 7;
  });
  ASSERT_TRUE(first.message.has_value());
  EXPECT_TRUE(first.status.is_ok());
  auto second = box.recv_match_from(2, [](const MessageHeader&) {
    return true;
  });
  EXPECT_FALSE(second.message.has_value());
  EXPECT_EQ(second.status.code(), ErrorCode::kUnavailable);
}

TEST(Mailbox, PeerDownLeavesOtherPeersAlone) {
  Mailbox box;
  box.mark_peer_down(2);
  // A bounded wait on a healthy peer times out normally instead of
  // inheriting the dead peer's error.
  auto outcome = box.recv_match_from(
      /*peer=*/3, [](const MessageHeader&) { return true; },
      std::chrono::milliseconds(10));
  EXPECT_FALSE(outcome.message.has_value());
  EXPECT_EQ(outcome.status.code(), ErrorCode::kTimeout);
}

TEST(InProc, DeliversAcrossChannels) {
  InProcFabric fabric(3);
  ASSERT_TRUE(fabric.channel(0).send(2, 42, {1, 2, 3}, 0.0).is_ok());
  auto m = fabric.channel(2).inbox().recv_match(
      [](const MessageHeader& h) { return h.tag == 42; });
  ASSERT_TRUE(m);
  EXPECT_EQ(m->header.src, 0);
  EXPECT_EQ(m->payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(InProc, SelfSend) {
  InProcFabric fabric(2);
  ASSERT_TRUE(fabric.channel(1).send(1, 9, {}, 0.0).is_ok());
  auto m = fabric.channel(1).inbox().try_recv_match(
      [](const MessageHeader& h) { return h.tag == 9; });
  ASSERT_TRUE(m);
  EXPECT_EQ(m->header.src, 1);
}

TEST(InProc, SendToClosedInboxReturnsUnavailable) {
  InProcFabric fabric(2);
  fabric.channel(1).shutdown();
  Status s = fabric.channel(0).send(1, 5, {1}, 0.0);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
}

TEST(InProc, ManyThreadsManyMessages) {
  constexpr int kSenders = 4;
  constexpr int kPerSender = 200;
  InProcFabric fabric(kSenders + 1);
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        ASSERT_TRUE(fabric.channel(s)
                        .send(kSenders, 100 + s,
                              {static_cast<std::uint8_t>(i)}, 0.0)
                        .is_ok());
      }
    });
  }
  int received = 0;
  while (received < kSenders * kPerSender) {
    auto m = fabric.channel(kSenders).inbox().recv_match(
        [](const MessageHeader& h) { return h.tag >= 100; });
    ASSERT_TRUE(m);
    ++received;
  }
  for (auto& t : senders) t.join();
}

TEST(Socket, FullMeshRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "parade-socket-test").string();
  std::filesystem::create_directories(dir);

  constexpr int kNodes = 3;
  std::vector<std::unique_ptr<SocketFabric>> fabrics(kNodes);
  std::vector<std::thread> joiners;
  for (int r = 0; r < kNodes; ++r) {
    joiners.emplace_back([&, r] {
      auto fabric = SocketFabric::create(r, kNodes, dir);
      ASSERT_TRUE(fabric.is_ok()) << fabric.status().to_string();
      fabrics[static_cast<std::size_t>(r)] = std::move(fabric).value();
    });
  }
  for (auto& t : joiners) t.join();

  // Every node sends its rank to every other node.
  for (int r = 0; r < kNodes; ++r) {
    for (int peer = 0; peer < kNodes; ++peer) {
      if (peer == r) continue;
      ASSERT_TRUE(fabrics[static_cast<std::size_t>(r)]
                      ->send(peer, 55, {static_cast<std::uint8_t>(r)}, 1.5)
                      .is_ok());
    }
  }
  for (int r = 0; r < kNodes; ++r) {
    std::set<int> sources;
    for (int k = 0; k < kNodes - 1; ++k) {
      auto m = fabrics[static_cast<std::size_t>(r)]->inbox().recv_match(
          [](const MessageHeader& h) { return h.tag == 55; });
      ASSERT_TRUE(m);
      EXPECT_DOUBLE_EQ(m->header.vtime, 1.5);
      sources.insert(m->header.src);
    }
    EXPECT_EQ(sources.size(), static_cast<std::size_t>(kNodes - 1));
  }
  for (auto& fabric : fabrics) fabric->shutdown();
  std::filesystem::remove_all(dir);
}

TEST(Socket, LargePayload) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "parade-socket-large").string();
  std::filesystem::create_directories(dir);
  std::unique_ptr<SocketFabric> f0, f1;
  std::thread t0([&] { f0 = std::move(SocketFabric::create(0, 2, dir)).value(); });
  std::thread t1([&] { f1 = std::move(SocketFabric::create(1, 2, dir)).value(); });
  t0.join();
  t1.join();

  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  ASSERT_TRUE(f0->send(1, 77, big, 0.0).is_ok());
  auto m = f1->inbox().recv_match(
      [](const MessageHeader& h) { return h.tag == 77; });
  ASSERT_TRUE(m);
  EXPECT_EQ(m->payload, big);
  f0->shutdown();
  f1->shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace parade::net
