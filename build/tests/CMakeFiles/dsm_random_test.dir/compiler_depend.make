# Empty compiler generated dependencies file for dsm_random_test.
# This may be replaced when dependencies are built.
