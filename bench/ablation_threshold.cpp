// Ablation for paper §5.2.1: the small-data threshold that switches a
// synchronized update from the HLRC invalidate path (DSM lock + twin/diff)
// to the message-passing update path (collective). The paper picked 256 B on
// their cluster. We time both mechanisms for payloads from 8 B to 4 KiB and
// print the per-operation cost so the crossover is visible.
#include <cstring>

#include "bench/figure_common.hpp"
#include "runtime/api.hpp"

namespace parade {
namespace {

double collective_us(int nodes, std::size_t bytes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  std::vector<std::uint8_t> replica(bytes, 0);
  std::vector<std::uint8_t> contribution(bytes, 1);
  const double seconds = run_virtual_cluster_s(config, [&] {
    std::vector<std::uint8_t> local_replica(bytes, 0);
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        team_update_bytes(local_replica.data(), contribution.data(), bytes,
                          [](void* inout, const void* in, std::size_t n) {
                            auto* a = static_cast<std::uint8_t*>(inout);
                            const auto* b = static_cast<const std::uint8_t*>(in);
                            for (std::size_t k = 0; k < n; ++k) a[k] += b[k];
                          });
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

double dsm_lock_us(int nodes, std::size_t bytes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  config.dsm.sync_mode = dsm::SyncMode::kConventional;
  const double seconds = run_virtual_cluster_s(config, [&] {
    auto* data = static_cast<std::uint8_t*>(shmalloc(bytes, 64));
    if (node_id() == 0) std::memset(data, 0, bytes);
    barrier();
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        critical_conventional(7, [&] {
          for (std::size_t k = 0; k < bytes; ++k) data[k] += 1;
        });
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

}  // namespace
}  // namespace parade

int main(int argc, char** argv) {
  using namespace parade;
  const long iters = bench::arg_long(argc, argv, "iters", 20);
  const int nodes = static_cast<int>(bench::arg_long(argc, argv, "nodes", 4));

  std::printf(
      "\n# Ablation (paper 5.2.1): message-passing update vs HLRC lock path "
      "per synchronized update, %d nodes (virtual time)\n",
      nodes);
  std::printf("%-10s  %16s  %16s\n", "bytes", "collective[us]", "dsm-lock[us]");
  for (const std::size_t bytes : {8u, 32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const double coll = collective_us(nodes, bytes, iters);
    const double lock = dsm_lock_us(nodes, bytes, iters);
    std::printf("%-10zu  %16.3f  %16.3f\n", bytes, coll, lock);
  }
  std::printf(
      "# The paper sets the switch threshold where these curves cross "
      "(256 B on their cluster).\n");
  bench::export_metrics("ablation_threshold");
  return 0;
}
