#include "vtime/cost_model.hpp"

#include "common/env.hpp"

namespace parade::vtime {

NetworkModel clan_via() {
  NetworkModel m;
  m.latency_us = 15.0;
  m.us_per_byte = 1.0 / 110.0;  // ~110 MB/s
  m.send_overhead_us = 3.0;
  m.recv_overhead_us = 5.0;
  m.page_service_us = 20.0;
  return m;
}

NetworkModel fast_ethernet() {
  NetworkModel m;
  m.latency_us = 70.0;
  m.us_per_byte = 1.0 / 11.0;  // ~11 MB/s
  m.send_overhead_us = 10.0;
  m.recv_overhead_us = 15.0;
  m.page_service_us = 25.0;
  return m;
}

NetworkModel ideal() {
  NetworkModel m;
  m.latency_us = 0.0;
  m.us_per_byte = 0.0;
  m.send_overhead_us = 0.0;
  m.recv_overhead_us = 0.0;
  m.page_service_us = 0.0;
  return m;
}

NetworkModel model_from_name(const std::string& name) {
  if (name == "fastether" || name == "ethernet") return fast_ethernet();
  if (name == "ideal" || name == "none") return ideal();
  return clan_via();
}

NetworkModel model_from_env() {
  NetworkModel m = model_from_name(env::get_string_or("PARADE_NET", "clan"));
  m.latency_us = env::get_double_or("PARADE_NET_LATENCY_US", m.latency_us);
  m.us_per_byte = env::get_double_or("PARADE_NET_US_PER_BYTE", m.us_per_byte);
  return m;
}

MachineModel machine_for(NodeConfig config) {
  switch (config) {
    case NodeConfig::k1Thread1Cpu: return {.cpus_per_node = 1, .compute_threads = 1};
    case NodeConfig::k1Thread2Cpu: return {.cpus_per_node = 2, .compute_threads = 1};
    case NodeConfig::k2Thread2Cpu: return {.cpus_per_node = 2, .compute_threads = 2};
  }
  return {};
}

const char* to_string(NodeConfig config) {
  switch (config) {
    case NodeConfig::k1Thread1Cpu: return "1Thread-1CPU";
    case NodeConfig::k1Thread2Cpu: return "1Thread-2CPU";
    case NodeConfig::k2Thread2Cpu: return "2Thread-2CPU";
  }
  return "?";
}

}  // namespace parade::vtime
