// Molecular dynamics (the paper's second "real application", from the
// openmp.org sample md.f by Bill Magro, KAI): N particles in a 3-D box,
// O(N^2) pairwise forces from the potential v(d) = sin(min(d, pi/2))^2,
// velocity-Verlet integration, with potential/kinetic-energy reductions
// every step. Positions are shared; forces are computed in row partitions.
#pragma once

#include <vector>

namespace parade::apps {

struct MdParams {
  int nparts = 256;
  int nsteps = 10;
  double dt = 1e-4;
  double mass = 1.0;
  double box = 10.0;  // box side length
};

struct MdResult {
  double potential = 0.0;  // after the final step
  double kinetic = 0.0;
  /// |E - E0| / E0 drift of total energy over the run.
  double energy_drift = 0.0;
};

MdResult md_serial(const MdParams& params);

/// SPMD ParADE version (call inside a cluster program on every node).
MdResult md_parade(const MdParams& params);

}  // namespace parade::apps
