// Channel: a node's attachment to the interconnect fabric. Implementations:
// InProcFabric (all nodes in one process; used by the virtual cluster, unit
// tests and the figure benches) and SocketFabric (one process per node over
// Unix-domain sockets; used by the parade_run launcher).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "net/mailbox.hpp"
#include "net/message.hpp"
#include "net/metrics.hpp"
#include "obs/span.hpp"

namespace parade::net {

class Channel {
 public:
  virtual ~Channel() = default;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  NodeId rank() const { return rank_; }
  int size() const { return size_; }

  /// Sends `payload` to `dst` with the given tag and virtual timestamp.
  /// Thread-safe. Self-sends (dst == rank()) are delivered locally.
  /// Returns kUnavailable when the destination is down/closed, kIoError on a
  /// transport write failure; the message is dropped in both cases.
  virtual Status send(NodeId dst, Tag tag, std::vector<std::uint8_t> payload,
                      VirtualUs vtime) = 0;

  /// Virtual so decorators (net/faulty.hpp) can expose the wrapped channel's
  /// mailbox: consumers always receive from the same queue the real
  /// transport delivers into.
  virtual Mailbox& inbox() { return inbox_; }

  /// Stops delivery and wakes blocked receivers.
  virtual void shutdown() { inbox_.close(); }

 protected:
  Channel(NodeId rank, int size)
      : rank_(rank), size_(size), metrics_(rank, size) {}

  /// Records send-side metrics and the trace event. Implementations call this
  /// once per accepted message, before handing it to the transport. The emit
  /// carries the sending thread's ambient span so the send shows up as a
  /// child of whatever protocol operation issued it.
  void record_send(NodeId dst, Tag tag, std::size_t bytes, VirtualUs vtime) {
    metrics_.on_send(dst, tag, bytes);
    auto& reg = obs::Registry::instance();
    if (reg.trace_enabled()) {
      const obs::SpanContext ctx = obs::current_span_context();
      reg.emit_with_context(obs::TraceKind::kSend, rank_, tag, vtime,
                            ctx.trace_id, ctx.span_id);
    }
  }

  /// Records recv-side metrics and enqueues into this channel's inbox.
  /// Returns kUnavailable if the inbox is already closed. The emit links the
  /// delivery to the *sender's* span via the header's trace context — this is
  /// the cross-node edge parade_trace reconstructs.
  Status deliver_local(Message message) {
    const Tag tag = message.header.tag;
    const std::size_t bytes = message.payload.size();
    const double vtime = message.header.vtime;
    const std::uint64_t trace_id = message.header.trace_id;
    const std::uint64_t parent_span = message.header.span_id;
    if (!inbox_.deliver(std::move(message))) {
      return make_error(ErrorCode::kUnavailable,
                        "rank " + std::to_string(rank_) + " inbox closed");
    }
    metrics_.on_recv(tag, bytes);
    auto& reg = obs::Registry::instance();
    if (reg.trace_enabled()) {
      reg.emit_with_context(obs::TraceKind::kRecv, rank_, tag, vtime, trace_id,
                            parent_span);
    }
    return Status::ok();
  }

  NodeId rank_;
  int size_;
  Mailbox inbox_;
  ChannelMetrics metrics_;
};

}  // namespace parade::net
