// Explicit-state DFS explorer over verify::Model, plus counterexample
// minimization and trace (de)serialization for the parade_model CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/model.hpp"

namespace parade::verify {

struct Budget {
  std::uint64_t max_states = 1'000'000;
  std::size_t max_depth = 4000;
};

struct ExploreResult {
  /// Set when an invariant violation (or deadlock) was reached.
  std::optional<Violation> violation;
  /// Action sequence from the initial state to the violation (minimized by
  /// the caller via minimize()).
  std::vector<Action> trace;
  /// True when max_states was hit before the frontier emptied.
  bool states_exhausted = false;
  /// True when some path was cut at max_depth (exploration is then a
  /// bounded under-approximation, not a fixed point).
  bool depth_pruned = false;
  std::uint64_t states = 1;  ///< distinct states reached (incl. initial)
  std::uint64_t transitions = 0;

  /// Exhaustive, violation-free exploration reached its fixed point.
  bool clean_fixed_point() const {
    return !violation && !states_exhausted && !depth_pruned;
  }
};

/// Depth-first exploration with full-state hashing. Stops at the first
/// violation (returning its trace) or at the budget.
ExploreResult explore(const Model& model, const Budget& budget);

struct ReplayResult {
  /// Violation hit while replaying, and how many actions ran before it.
  std::optional<Violation> violation;
  std::size_t violation_index = 0;
  /// False when some action was not applicable in sequence (the trace does
  /// not match the model; nothing beyond violation_index was run).
  bool feasible = true;
};

/// Replays a trace from the initial state, stopping at the first violation
/// or infeasible action.
ReplayResult replay(const Model& model, const std::vector<Action>& trace);

/// Greedy counterexample minimization: repeatedly drops actions that keep
/// the trace feasible and still violating (not necessarily the same
/// invariant — any violation counts), until a fixed point.
std::vector<Action> minimize(const Model& model,
                             const std::vector<Action>& trace);

// ---------------------------------------------------------------------------
// Trace files.

struct TraceFile {
  std::string scenario;
  std::string mutation = "none";
  std::string violation;  ///< invariant name the trace demonstrates
  std::vector<Action> actions;
};

std::string format_trace(const TraceFile& trace);
/// Parses format_trace output; returns nullopt (with a diagnostic in
/// *error) on malformed input.
std::optional<TraceFile> parse_trace(const std::string& text,
                                     std::string* error);

}  // namespace parade::verify
