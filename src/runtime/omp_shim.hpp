// OpenMP-API shims for translator output (OpenMP 1.0 §3 runtime functions).
// Translated programs call these names instead of libgomp's.
#pragma once

#include "runtime/api.hpp"

namespace parade::ompshim {

inline int omp_get_num_threads() { return num_threads(); }
inline int omp_get_max_threads() { return num_threads(); }
inline int omp_get_thread_num() { return thread_id(); }
inline int omp_get_num_procs() { return num_threads(); }
inline int omp_in_parallel() {
  return this_node().team().in_region() ? 1 : 0;
}
inline double omp_get_wtime() { return vtime_now() / 1e6; }
inline double omp_get_wtick() { return 1e-6; }

// ---- OpenMP 1.0 lock API on top of the DSM lock manager ----
//
// omp_lock_t holds a DSM lock id. Ids are handed out by a per-node counter;
// SPMD programs initialize locks in the same order on every node, so the
// same source-level lock gets the same id cluster-wide (mirroring the SPMD
// shared-pool allocator's contract). Ids start above the range the
// translator uses for named criticals.
using omp_lock_t = int;

namespace detail {
int allocate_dsm_lock_id();
}  // namespace detail

inline void omp_init_lock(omp_lock_t* lock) {
  *lock = detail::allocate_dsm_lock_id();
}
inline void omp_destroy_lock(omp_lock_t* lock) { *lock = -1; }
inline void omp_set_lock(omp_lock_t* lock) { dsm_lock(*lock); }
inline void omp_unset_lock(omp_lock_t* lock) { dsm_unlock(*lock); }
// Nest locks degrade to plain locks (no recursive acquisition): OpenMP 1.0
// programs that re-acquire a held nest lock are not supported.
using omp_nest_lock_t = omp_lock_t;
inline void omp_init_nest_lock(omp_nest_lock_t* lock) { omp_init_lock(lock); }
inline void omp_destroy_nest_lock(omp_nest_lock_t* lock) {
  omp_destroy_lock(lock);
}
inline void omp_set_nest_lock(omp_nest_lock_t* lock) { omp_set_lock(lock); }
inline void omp_unset_nest_lock(omp_nest_lock_t* lock) {
  omp_unset_lock(lock);
}

}  // namespace parade::ompshim
