# Empty dependencies file for parade_translator.
# This may be replaced when dependencies are built.
