#include "translator/parser.hpp"

#include <cctype>

namespace parade::translator {
namespace {

bool no_space_before(const std::string& t) {
  return t == ";" || t == "," || t == ")" || t == "]" || t == "++" ||
         t == "--" || t == "." || t == "->" || t == "(" || t == "[";
}

bool no_space_after(const std::string& t) {
  return t == "(" || t == "[" || t == "." || t == "->" || t == "!" ||
         t == "~";
}

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<TranslationUnit> parse_unit();

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead(std::size_t n) const {
    const std::size_t at = std::min(pos_ + n, tokens_.size() - 1);
    return tokens_[at];
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool at_eof() const { return cur().kind == TokKind::kEof; }

  Status error(const std::string& message) const {
    return make_error(ErrorCode::kInvalidArgument,
                      message + " at line " + std::to_string(cur().line));
  }

  /// Renders and consumes tokens until `stop` punct at paren/bracket depth 0
  /// (stop not consumed unless consume_stop).
  std::string consume_until(const char* stop, bool consume_stop);

  Result<StmtPtr> parse_statement();
  Result<StmtPtr> parse_block();
  Result<StmtPtr> parse_declaration();
  Result<StmtPtr> parse_for();
  Result<StmtPtr> parse_pragma_stmt();
  void canonicalize_for(ForHeader& header);

  bool looks_like_declaration() const;

  const std::vector<Token>& tokens_;
  std::size_t pos_ = 0;
};

std::string Parser::consume_until(const char* stop, bool consume_stop) {
  std::vector<Token> run;
  int depth = 0;
  while (!at_eof()) {
    const Token& t = cur();
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[") {
        ++depth;
      } else if (t.text == ")" || t.text == "]") {
        if (depth == 0) {
          if (t.text == stop) break;
          // Unbalanced closer; stop here rather than run away.
          break;
        }
        --depth;
      } else if (depth == 0 && t.text == stop) {
        break;
      }
    }
    run.push_back(t);
    advance();
  }
  if (consume_stop && !at_eof()) advance();
  return render_tokens(run, 0, run.size());
}

bool Parser::looks_like_declaration() const {
  const Token& t = cur();
  if (t.kind == TokKind::kKeyword && is_decl_start_keyword(t.text)) return true;
  // "Type name ..." with a known typedef-ish pattern: ident ident.
  if (t.kind == TokKind::kIdent && ahead(1).kind == TokKind::kIdent) {
    return true;
  }
  return false;
}

Result<StmtPtr> Parser::parse_block() {
  auto block = std::make_unique<Stmt>();
  block->kind = StmtKind::kBlock;
  block->line = cur().line;
  advance();  // '{'
  while (!at_eof() && !cur().is_punct("}")) {
    auto stmt = parse_statement();
    if (!stmt.is_ok()) return stmt.status();
    block->children.push_back(std::move(stmt).value());
  }
  if (at_eof()) return error("unterminated block");
  advance();  // '}'
  return StmtPtr(std::move(block));
}

Result<StmtPtr> Parser::parse_declaration() {
  auto decl = std::make_unique<Stmt>();
  decl->kind = StmtKind::kDecl;
  decl->line = cur().line;

  // Base type: leading keywords (+ struct/union/enum tag, + one identifier
  // for typedef names when followed by a declarator-ish token).
  std::vector<Token> type_tokens;
  while (!at_eof()) {
    const Token& t = cur();
    if (t.kind == TokKind::kKeyword && is_decl_start_keyword(t.text)) {
      type_tokens.push_back(t);
      advance();
      if (type_tokens.back().text == "struct" ||
          type_tokens.back().text == "union" ||
          type_tokens.back().text == "enum") {
        if (cur().kind == TokKind::kIdent) {
          type_tokens.push_back(cur());
          advance();
        }
        if (cur().is_punct("{")) {
          return error("struct definitions in declarations are unsupported");
        }
      }
      continue;
    }
    break;
  }
  if (type_tokens.empty() ||
      (type_tokens.size() == 1 && (type_tokens[0].text == "static" ||
                                   type_tokens[0].text == "const"))) {
    // typedef-name base type: "Type x" pattern.
    if (cur().kind == TokKind::kIdent && ahead(1).kind == TokKind::kIdent) {
      type_tokens.push_back(cur());
      advance();
    }
  }
  if (type_tokens.empty()) return error("expected declaration");
  decl->decl_type = render_tokens(type_tokens, 0, type_tokens.size());

  // Declarators separated by commas, terminated by ';'.
  for (;;) {
    Declarator d;
    while (cur().is_punct("*")) {
      ++d.pointer_depth;
      advance();
    }
    if (cur().kind != TokKind::kIdent) {
      return error("expected declarator name after '" + decl->decl_type + "'");
    }
    d.name = cur().text;
    advance();
    if (cur().is_punct("(")) {
      // Function prototype: swallow the parameter list.
      d.is_function = true;
      advance();
      (void)consume_until(")", /*consume_stop=*/true);
    }
    while (cur().is_punct("[")) {
      advance();
      d.array_dims.push_back(consume_until("]", /*consume_stop=*/true));
    }
    if (cur().is_punct("=")) {
      advance();
      // Initializer up to ',' or ';' at depth 0 (brace initializers kept raw).
      std::vector<Token> run;
      int depth = 0;
      while (!at_eof()) {
        const Token& t = cur();
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
          if (depth == 0 && (t.text == "," || t.text == ";")) break;
        }
        run.push_back(t);
        advance();
      }
      d.init = render_tokens(run, 0, run.size());
    }
    decl->declarators.push_back(std::move(d));
    if (cur().is_punct(",")) {
      advance();
      continue;
    }
    if (cur().is_punct(";")) {
      advance();
      break;
    }
    return error("expected ',' or ';' in declaration");
  }
  return StmtPtr(std::move(decl));
}

void Parser::canonicalize_for(ForHeader& h) {
  // init: [type] var = lower
  auto init_tokens_result = lex(h.init_text + " ;");
  auto cond_tokens_result = lex(h.cond_text + " ;");
  auto incr_tokens_result = lex(h.incr_text + " ;");
  if (!init_tokens_result.is_ok() || !cond_tokens_result.is_ok() ||
      !incr_tokens_result.is_ok()) {
    return;
  }
  const auto init = std::move(init_tokens_result).value();
  const auto cond = std::move(cond_tokens_result).value();
  const auto incr = std::move(incr_tokens_result).value();

  std::size_t i = 0;
  std::string decl_type;
  while (init[i].kind == TokKind::kKeyword &&
         is_decl_start_keyword(init[i].text)) {
    decl_type += (decl_type.empty() ? "" : " ") + init[i].text;
    ++i;
  }
  if (init[i].kind != TokKind::kIdent) return;
  const std::string var = init[i].text;
  ++i;
  if (!init[i].is_punct("=")) return;
  ++i;
  std::string lower;
  int paren_depth = 0;
  for (; i < init.size() && !init[i].is_punct(";"); ++i) {
    if (init[i].is_punct("(")) ++paren_depth;
    if (init[i].is_punct(")")) --paren_depth;
    // A top-level comma means a multi-clause init (i = 0, j = 1): not
    // canonical.
    if (paren_depth == 0 && init[i].is_punct(",")) return;
    lower += (lower.empty() ? "" : " ") + init[i].text;
  }

  // cond: var < / <= / > / >= bound
  if (cond.size() < 3 || cond[0].text != var) return;
  const std::string rel = cond[1].text;
  if (rel != "<" && rel != "<=" && rel != ">" && rel != ">=") return;
  std::string upper;
  for (std::size_t k = 2; k < cond.size() && !cond[k].is_punct(";"); ++k) {
    upper += (upper.empty() ? "" : " ") + cond[k].text;
  }

  // incr: var++ / ++var / var-- / --var / var += s / var -= s /
  //       var = var + s / var = var - s
  std::string step = "1";
  bool increasing = true;
  if (incr.size() >= 2 && incr[0].text == var && incr[1].is_punct("++")) {
  } else if (incr.size() >= 2 && incr[0].is_punct("++") && incr[1].text == var) {
  } else if (incr.size() >= 2 && incr[0].text == var && incr[1].is_punct("--")) {
    increasing = false;
  } else if (incr.size() >= 2 && incr[0].is_punct("--") && incr[1].text == var) {
    increasing = false;
  } else if (incr.size() >= 3 && incr[0].text == var &&
             (incr[1].is_punct("+=") || incr[1].is_punct("-="))) {
    increasing = incr[1].text == "+=";
    step.clear();
    for (std::size_t k = 2; k < incr.size() && !incr[k].is_punct(";"); ++k) {
      step += (step.empty() ? "" : " ") + incr[k].text;
    }
  } else if (incr.size() >= 5 && incr[0].text == var && incr[1].is_punct("=") &&
             incr[2].text == var &&
             (incr[3].is_punct("+") || incr[3].is_punct("-"))) {
    increasing = incr[3].text == "+";
    step.clear();
    for (std::size_t k = 4; k < incr.size() && !incr[k].is_punct(";"); ++k) {
      step += (step.empty() ? "" : " ") + incr[k].text;
    }
  } else {
    return;
  }
  // Direction must agree with the relation.
  if (increasing && (rel == ">" || rel == ">=")) return;
  if (!increasing && (rel == "<" || rel == "<=")) return;

  h.canonical = true;
  h.loop_var = var;
  h.var_decl_type = decl_type;
  h.lower = lower;
  h.upper = upper;
  h.inclusive = rel == "<=" || rel == ">=";
  h.increasing = increasing;
  h.step = step;
}

Result<StmtPtr> Parser::parse_for() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kFor;
  stmt->line = cur().line;
  advance();  // 'for'
  if (!cur().is_punct("(")) return error("expected '(' after for");
  advance();
  stmt->for_header.init_text = consume_until(";", /*consume_stop=*/true);
  stmt->for_header.cond_text = consume_until(";", /*consume_stop=*/true);
  stmt->for_header.incr_text = consume_until(")", /*consume_stop=*/true);
  canonicalize_for(stmt->for_header);
  auto body = parse_statement();
  if (!body.is_ok()) return body.status();
  stmt->children.push_back(std::move(body).value());
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::parse_pragma_stmt() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kPragma;
  stmt->line = cur().line;
  auto directive = parse_pragma(cur().text, cur().line);
  if (!directive.is_ok()) return directive.status();
  stmt->directive = std::move(directive).value();
  advance();

  switch (stmt->directive.kind) {
    case DirectiveKind::kBarrier:
    case DirectiveKind::kFlush:
    case DirectiveKind::kThreadprivate:
      stmt->directive_has_body = false;
      break;
    default: {
      auto body = parse_statement();
      if (!body.is_ok()) return body.status();
      stmt->children.push_back(std::move(body).value());
      stmt->directive_has_body = true;
      break;
    }
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::parse_statement() {
  const Token& t = cur();
  switch (t.kind) {
    case TokKind::kPragmaOmp:
      return parse_pragma_stmt();
    case TokKind::kHashLine: {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = StmtKind::kHashLine;
      stmt->text = t.text;
      stmt->line = t.line;
      advance();
      return StmtPtr(std::move(stmt));
    }
    default:
      break;
  }
  if (t.is_punct("{")) return parse_block();
  if (t.is_punct(";")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kEmpty;
    stmt->line = t.line;
    advance();
    return StmtPtr(std::move(stmt));
  }
  if (t.is_kw("for")) return parse_for();
  if (t.is_kw("if")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = t.line;
    advance();
    if (!cur().is_punct("(")) return error("expected '(' after if");
    advance();
    stmt->cond = consume_until(")", /*consume_stop=*/true);
    auto then_branch = parse_statement();
    if (!then_branch.is_ok()) return then_branch.status();
    stmt->children.push_back(std::move(then_branch).value());
    if (cur().is_kw("else")) {
      advance();
      auto else_branch = parse_statement();
      if (!else_branch.is_ok()) return else_branch.status();
      stmt->children.push_back(std::move(else_branch).value());
      stmt->has_else = true;
    }
    return StmtPtr(std::move(stmt));
  }
  if (t.is_kw("while")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->line = t.line;
    advance();
    if (!cur().is_punct("(")) return error("expected '(' after while");
    advance();
    stmt->cond = consume_until(")", /*consume_stop=*/true);
    auto body = parse_statement();
    if (!body.is_ok()) return body.status();
    stmt->children.push_back(std::move(body).value());
    return StmtPtr(std::move(stmt));
  }
  if (t.is_kw("do")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kDoWhile;
    stmt->line = t.line;
    advance();
    auto body = parse_statement();
    if (!body.is_ok()) return body.status();
    stmt->children.push_back(std::move(body).value());
    if (!cur().is_kw("while")) return error("expected while after do body");
    advance();
    if (!cur().is_punct("(")) return error("expected '(' after do..while");
    advance();
    stmt->cond = consume_until(")", /*consume_stop=*/true);
    if (cur().is_punct(";")) advance();
    return StmtPtr(std::move(stmt));
  }
  if (t.is_kw("switch")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kSwitch;
    stmt->line = t.line;
    advance();
    if (!cur().is_punct("(")) return error("expected '(' after switch");
    advance();
    stmt->cond = consume_until(")", /*consume_stop=*/true);
    auto body = parse_statement();
    if (!body.is_ok()) return body.status();
    stmt->children.push_back(std::move(body).value());
    return StmtPtr(std::move(stmt));
  }
  if (looks_like_declaration()) return parse_declaration();

  // Raw statement: everything through ';' at depth 0. Covers expressions,
  // return, break, continue, goto, labels.
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kRaw;
  stmt->line = t.line;
  stmt->text = consume_until(";", /*consume_stop=*/true) + ";";
  return StmtPtr(std::move(stmt));
}

Result<TranslationUnit> Parser::parse_unit() {
  TranslationUnit unit;
  while (!at_eof()) {
    const Token& t = cur();
    if (t.kind == TokKind::kHashLine) {
      TopItem item;
      item.kind = TopItem::Kind::kHashLine;
      item.text = t.text;
      unit.items.push_back(std::move(item));
      advance();
      continue;
    }
    if (t.kind == TokKind::kPragmaOmp) {
      auto stmt = parse_pragma_stmt();
      if (!stmt.is_ok()) return stmt.status();
      TopItem item;
      item.kind = TopItem::Kind::kPragma;
      item.stmt = std::move(stmt).value();
      unit.items.push_back(std::move(item));
      continue;
    }

    // Function definition or declaration: scan ahead for "name ( ... ) {".
    std::size_t probe = pos_;
    int paren_depth = 0;
    bool is_function = false;
    std::size_t name_at = 0;
    while (probe < tokens_.size()) {
      const Token& p = tokens_[probe];
      if (p.kind == TokKind::kEof) break;
      if (p.is_punct(";") && paren_depth == 0) break;
      if (p.is_punct("=") && paren_depth == 0) break;
      if (p.is_punct("(")) {
        if (paren_depth == 0 && probe > pos_ &&
            tokens_[probe - 1].kind == TokKind::kIdent) {
          name_at = probe - 1;
        }
        ++paren_depth;
      } else if (p.is_punct(")")) {
        --paren_depth;
        if (paren_depth == 0) {
          // After the parameter list: '{' means definition.
          std::size_t after = probe + 1;
          if (after < tokens_.size() && tokens_[after].is_punct("{")) {
            is_function = name_at != 0;
          }
          break;
        }
      } else if (p.is_punct("{") && paren_depth == 0) {
        break;
      }
      ++probe;
    }

    if (is_function) {
      FunctionDef fn;
      fn.line = t.line;
      std::vector<Token> ret_run(tokens_.begin() + static_cast<long>(pos_),
                                 tokens_.begin() + static_cast<long>(name_at));
      fn.ret_type = render_tokens(ret_run, 0, ret_run.size());
      fn.name = tokens_[name_at].text;
      pos_ = name_at + 1;  // at '('
      advance();           // past '('
      fn.params = consume_until(")", /*consume_stop=*/true);
      if (!cur().is_punct("{")) return error("expected function body");
      auto body = parse_block();
      if (!body.is_ok()) return body.status();
      fn.body = std::move(body).value();
      TopItem item;
      item.kind = TopItem::Kind::kFunction;
      item.function = std::move(fn);
      unit.items.push_back(std::move(item));
      continue;
    }

    // Top-level declaration.
    if (looks_like_declaration()) {
      auto decl = parse_declaration();
      if (!decl.is_ok()) return decl.status();
      TopItem item;
      item.kind = TopItem::Kind::kDecl;
      item.stmt = std::move(decl).value();
      unit.items.push_back(std::move(item));
      continue;
    }
    // Anything else (stray semicolons, extern "C" etc.): raw until ';'.
    TopItem item;
    item.kind = TopItem::Kind::kRaw;
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kRaw;
    stmt->line = t.line;
    stmt->text = consume_until(";", /*consume_stop=*/true) + ";";
    item.stmt = std::move(stmt);
    unit.items.push_back(std::move(item));
  }
  return unit;
}

}  // namespace

std::string render_tokens(const std::vector<Token>& tokens, std::size_t begin,
                          std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& text = tokens[i].text;
    if (!out.empty() && !no_space_before(text) &&
        !(i > begin && no_space_after(tokens[i - 1].text))) {
      out += ' ';
    }
    out += text;
  }
  return out;
}

Result<TranslationUnit> parse(const std::vector<Token>& tokens) {
  Parser parser(tokens);
  auto unit = parser.parse_unit();
  if (!unit.is_ok()) return unit;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kEof || t.column <= 0) continue;
    LinePositions& lp = unit.value().line_positions[t.line];
    if (lp.first_column == 0) lp.first_column = t.column;
    if (t.kind == TokKind::kIdent) lp.idents.emplace_back(t.text, t.column);
  }
  return unit;
}

}  // namespace parade::translator
