// DSM hot-path bench: wall-clock page-fetch and lock-grant latency, legacy
// eager-copy pipeline vs the zero-copy segment pool (CoW twins, direct
// serve encode, span-decoded installs and diffs).
//
//   dsm_hotpath [--pages=32] [--page-kb=64] [--epochs=48] [--locks=4]
//               [--reps=3] [--out=PATH] [--baseline=PATH] [--tolerance=0.15]
//               [--require-zerocopy-win]
//
// Each mode runs --reps times interleaved and the median run (by fetch mean)
// is reported, squeezing scheduler noise out of the gated ratios.
//
// A 2-node cluster ping-pongs ownership: the home dirties every page, the
// remote node refetches and rewrites them all (fetch + twin + diff per page
// per epoch) and cycles a few managed locks. The reported figures are the
// p50 of the real `dsm.fetch_ns` / `dsm.lock_grant_ns` histograms on the
// remote node — actual nanoseconds through serve/install and grant, not
// modeled time.
//
// Absolute nanoseconds vary across machines, so the regression gate compares
// the RATIO zerocopy/legacy for each metric against the committed baseline
// (--baseline, --tolerance) — machine-independent by construction.
// --require-zerocopy-win additionally fails the run unless the zero-copy
// fetch p50 beats legacy outright (ratio < 1).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/figure_common.hpp"
#include "dsm/cluster.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace parade::dsm {
namespace {

struct HotpathRow {
  std::string mode;  // "legacy" or "zerocopy"
  double fetch_p50_ns = 0.0;
  double fetch_p95_ns = 0.0;
  double fetch_mean_ns = 0.0;
  double lock_grant_p50_ns = 0.0;
  std::int64_t fetches = 0;
  std::int64_t twins_shared = 0;
};

/// One measured cluster run. Resets the per-node registry slices first so
/// consecutive modes in the same process do not pollute each other's
/// histograms.
HotpathRow run_mode(bool zero_copy, int pages, std::size_t page_bytes,
                    int epochs, int locks) {
  auto& reg = obs::Registry::instance();
  for (NodeId n = 0; n < 2; ++n) reg.reset_node(n);

  const std::size_t words_per_page = page_bytes / sizeof(std::uint64_t);
  DsmConfig config;
  config.pool_bytes = static_cast<std::size_t>(pages + 2) * page_bytes;
  config.page_bytes = page_bytes;
  config.zero_copy = zero_copy;
  // Keep every page homed at node 0 so each epoch's refetch crosses the
  // fabric; migration would collapse the traffic after one round.
  config.home_migration = false;

  DsmCluster cluster(2, config);
  cluster.run([&](NodeId rank) {
    DsmNode& node = cluster.node(rank);
    auto* data = static_cast<std::uint64_t*>(node.shmalloc(
        static_cast<std::size_t>(pages) * page_bytes, page_bytes));
    node.barrier();

    for (int epoch = 0; epoch < epochs; ++epoch) {
      if (rank == 0) {
        // Home dirties every page: the next write notices invalidate the
        // remote copies, forcing full refetches below.
        for (int p = 0; p < pages; ++p) {
          data[static_cast<std::size_t>(p) * words_per_page] =
              static_cast<std::uint64_t>(epoch * pages + p + 1);
        }
      }
      node.barrier();
      if (rank == 1) {
        // The measured hot path: fault (fetch+install), then write (twin
        // attach) so the flush exercises the diff pipeline too.
        std::uint64_t sum = 0;
        for (int p = 0; p < pages; ++p) {
          sum += data[static_cast<std::size_t>(p) * words_per_page];
          data[static_cast<std::size_t>(p) * words_per_page + 1] = sum;
        }
        for (int l = 0; l < locks; ++l) {
          node.lock_acquire(l);
          node.lock_release(l);
        }
      }
      node.barrier();
    }
  });

  HotpathRow row;
  row.mode = zero_copy ? "zerocopy" : "legacy";
  const auto& fetch = reg.hist(1, "dsm.fetch_ns");
  row.fetch_p50_ns = static_cast<double>(fetch.percentile_ns(0.50));
  row.fetch_p95_ns = static_cast<double>(fetch.percentile_ns(0.95));
  row.fetch_mean_ns =
      fetch.count() > 0
          ? static_cast<double>(fetch.total_ns()) /
                static_cast<double>(fetch.count())
          : 0.0;
  // Request-to-grant latency is recorded at the acquirer (rank 1).
  row.lock_grant_p50_ns = static_cast<double>(
      reg.hist(1, "dsm.lock_grant_ns").percentile_ns(0.50));
  row.fetches = cluster.node(1).stats().snapshot().page_fetches;
  row.twins_shared = cluster.node(1).stats().snapshot().twins_shared;
  cluster.shutdown();
  return row;
}

bool write_json(const std::string& path, int pages, long page_kb,
                int epochs, const std::vector<HotpathRow>& rows,
                double fetch_ratio, double fetch_mean_ratio,
                double grant_ratio) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("dsm_hotpath");
  w.key("pages");
  w.value(static_cast<std::int64_t>(pages));
  w.key("page_kb");
  w.value(static_cast<std::int64_t>(page_kb));
  w.key("epochs");
  w.value(static_cast<std::int64_t>(epochs));
  w.key("rows");
  w.begin_array();
  for (const HotpathRow& row : rows) {
    w.begin_object();
    w.key("mode");
    w.value(row.mode);
    w.key("fetch_p50_ns");
    w.value(row.fetch_p50_ns);
    w.key("fetch_mean_ns");
    w.value(row.fetch_mean_ns);
    w.key("fetch_p95_ns");
    w.value(row.fetch_p95_ns);
    w.key("lock_grant_p50_ns");
    w.value(row.lock_grant_p50_ns);
    w.key("fetches");
    w.value(row.fetches);
    w.key("twins_shared");
    w.value(row.twins_shared);
    w.end_object();
  }
  w.end_array();
  // The machine-independent gate inputs: zerocopy p50 / legacy p50.
  w.key("fetch_p50_ratio");
  w.value(fetch_ratio);
  w.key("fetch_mean_ratio");
  w.value(fetch_mean_ratio);
  w.key("lock_grant_p50_ratio");
  w.value(grant_ratio);
  w.end_object();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

/// Gate on the committed ratios: a fresh ratio may not exceed the baseline
/// ratio by more than `tolerance` (absolute nanoseconds are machine-local
/// and never compared).
int check_baseline(const std::string& path, double fetch_ratio,
                   double fetch_mean_ratio, double grant_ratio,
                   double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "dsm_hotpath: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::stringstream text;
  text << in.rdbuf();
  auto parsed = obs::parse_json(text.str());
  if (!parsed.is_ok() || !parsed.value().is_object() ||
      !parsed.value().has("fetch_p50_ratio")) {
    std::fprintf(stderr, "dsm_hotpath: baseline %s is not a hotpath table\n",
                 path.c_str());
    return 1;
  }
  int regressions = 0;
  const struct {
    const char* key;
    double fresh;
  } gates[] = {
      // Only the fetch path is gated: that is what the zero-copy pipeline
      // changes. The lock-grant ratio is recorded for context but hovers
      // around 1.0 with scheduler noise either side — gating it would flake.
      {"fetch_p50_ratio", fetch_ratio},
      {"fetch_mean_ratio", fetch_mean_ratio},
  };
  for (const auto& gate : gates) {
    if (!parsed.value().has(gate.key)) continue;
    const double base = parsed.value().at(gate.key).number;
    const double budget = base + tolerance;
    const bool regressed = gate.fresh > budget;
    std::printf("gate %-22s %8.4f vs baseline %8.4f (budget %8.4f) %s\n",
                gate.key, gate.fresh, base, budget,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  return regressions;
}

/// Median run by fetch mean: the representative row reported in the JSON.
HotpathRow median_row(std::vector<HotpathRow> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const HotpathRow& a, const HotpathRow& b) {
              return a.fetch_mean_ns < b.fetch_mean_ns;
            });
  return runs[runs.size() / 2];
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

/// Gated ratios are the median of the per-rep pairwise ratios, not the ratio
/// of median rows: each rep runs legacy and zerocopy back to back, so machine
/// drift (a noisy neighbour, frequency scaling) hits both sides of one pair
/// and cancels in its ratio.
double median_pair_ratio(const std::vector<HotpathRow>& legacy,
                         const std::vector<HotpathRow>& zerocopy,
                         double HotpathRow::* metric) {
  std::vector<double> ratios;
  for (std::size_t r = 0; r < legacy.size(); ++r) {
    const double base = legacy[r].*metric;
    ratios.push_back(base > 0 ? zerocopy[r].*metric / base : 1.0);
  }
  return median(std::move(ratios));
}

}  // namespace
}  // namespace parade::dsm

int main(int argc, char** argv) {
  using namespace parade;
  using namespace parade::dsm;
  const int pages =
      static_cast<int>(bench::arg_long(argc, argv, "pages", 32));
  // Big pages by default: the copies the zero-copy pipeline removes scale
  // with the page size, and the log2 histogram needs the delta to be a
  // meaningful fraction of the fetch to resolve it.
  const long page_kb = bench::arg_long(argc, argv, "page-kb", 64);
  const int epochs =
      static_cast<int>(bench::arg_long(argc, argv, "epochs", 48));
  const int locks = static_cast<int>(bench::arg_long(argc, argv, "locks", 4));
  const int reps = static_cast<int>(bench::arg_long(argc, argv, "reps", 3));
  const std::string out_path = bench::arg_string(argc, argv, "out", "");
  const std::string baseline = bench::arg_string(argc, argv, "baseline", "");
  const double tolerance =
      std::atof(bench::arg_string(argc, argv, "tolerance", "0.15").c_str());
  bool require_zerocopy_win = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--require-zerocopy-win") {
      require_zerocopy_win = true;
    }
  }
  if (pages < 1 || page_kb < 4 || page_kb % 4 != 0 || epochs < 1 ||
      locks < 0 || locks > 256 || reps < 1) {
    std::fprintf(
        stderr,
        "usage: dsm_hotpath [--pages=32] [--page-kb=64] [--epochs=48] "
        "[--locks=4] [--reps=3] [--out=PATH] [--baseline=PATH] "
        "[--tolerance=0.15] [--require-zerocopy-win]\n");
    return 2;
  }
  const auto page_bytes = static_cast<std::size_t>(page_kb) * 1024;

  // Warm-up pass absorbs first-run effects (page-cache, lazy allocations)
  // shared by both measured modes.
  (void)run_mode(true, pages, page_bytes, 2, locks);

  std::vector<HotpathRow> legacy_runs, zerocopy_runs;
  for (int r = 0; r < reps; ++r) {
    legacy_runs.push_back(run_mode(false, pages, page_bytes, epochs, locks));
    zerocopy_runs.push_back(run_mode(true, pages, page_bytes, epochs, locks));
  }
  const double fetch_ratio =
      median_pair_ratio(legacy_runs, zerocopy_runs, &HotpathRow::fetch_p50_ns);
  const double fetch_mean_ratio = median_pair_ratio(
      legacy_runs, zerocopy_runs, &HotpathRow::fetch_mean_ns);
  const double grant_ratio = median_pair_ratio(
      legacy_runs, zerocopy_runs, &HotpathRow::lock_grant_p50_ns);
  const HotpathRow legacy = median_row(std::move(legacy_runs));
  const HotpathRow zerocopy = median_row(std::move(zerocopy_runs));

  std::printf(
      "DSM hot path, 2 nodes, %d x %ldKB pages, %d epochs (wall clock)\n",
      pages, page_kb, epochs);
  for (const HotpathRow* row : {&legacy, &zerocopy}) {
    std::printf(
        "  %-8s fetch p50 %9.0f ns  mean %9.0f ns  p95 %9.0f ns  "
        "grant p50 %9.0f ns  (%lld fetches, %lld shared twins)\n",
        row->mode.c_str(), row->fetch_p50_ns, row->fetch_mean_ns,
        row->fetch_p95_ns, row->lock_grant_p50_ns,
        static_cast<long long>(row->fetches),
        static_cast<long long>(row->twins_shared));
  }
  std::printf("  fetch p50  ratio zerocopy/legacy: %.4f\n", fetch_ratio);
  std::printf("  fetch mean ratio zerocopy/legacy: %.4f\n", fetch_mean_ratio);
  std::printf("  grant p50  ratio zerocopy/legacy: %.4f\n", grant_ratio);

  if (!out_path.empty() &&
      !write_json(out_path, pages, page_kb, epochs, {legacy, zerocopy},
                  fetch_ratio, fetch_mean_ratio, grant_ratio)) {
    std::fprintf(stderr, "dsm_hotpath: cannot write %s\n", out_path.c_str());
    return 1;
  }
  int failures = 0;
  if (!baseline.empty()) {
    failures += check_baseline(baseline, fetch_ratio, fetch_mean_ratio,
                               grant_ratio, tolerance);
  }
  if (require_zerocopy_win && fetch_ratio >= 1.0) {
    std::fprintf(stderr,
                 "dsm_hotpath: zero-copy fetch p50 did not beat legacy "
                 "(ratio %.4f)\n",
                 fetch_ratio);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
