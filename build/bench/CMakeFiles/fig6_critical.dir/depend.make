# Empty dependencies file for fig6_critical.
# This may be replaced when dependencies are built.
