// Runtime support for translator OUTPUT. Translated programs include this
// header; it provides node-replicated global storage, loop-bound helpers,
// master-filtered stdio, and the cluster launch wrapper. Nothing here is
// used by the translator binary itself.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <functional>

#include "common/env.hpp"
#include "dsm/priors.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"
#include "runtime/omp_shim.hpp"

namespace parade::xlat {

inline constexpr int kMaxNodes = 64;

/// Node-replicated global variable. In-process virtual clusters host every
/// node in one address space, so a plain C global would be accidentally
/// shared across nodes; Replicated gives each node its own slot, matching
/// the per-process globals of a real (multi-process) deployment. Consistency
/// across nodes is the translator's job (collectives / single broadcasts /
/// redundant serial execution).
template <typename T>
class Replicated {
 public:
  Replicated() : slots_{} {}
  explicit Replicated(const T& init) {
    for (int i = 0; i < kMaxNodes; ++i) slots_[i] = init;
  }

  T& get() {
    ThreadCtx* ctx = current_ctx_or_null();
    return slots_[ctx != nullptr ? ctx->node->node_id() : 0];
  }

 private:
  T slots_[kMaxNodes];
};

/// Iteration count of a canonical OpenMP loop normalized to [0, count).
inline long loop_count(long lower, long upper, long step, bool inclusive,
                       bool increasing) {
  if (step <= 0) step = 1;
  const long span = increasing ? upper - lower : lower - upper;
  const long adjusted = span + (inclusive ? 1 : 0);
  if (adjusted <= 0) return 0;
  return (adjusted + step - 1) / step;
}

/// Value of the loop variable for normalized index `i`.
inline long loop_index(long lower, long step, bool increasing, long i) {
  return increasing ? lower + i * step : lower - i * step;
}

/// printf that only node 0 executes, so redundant serial execution does not
/// repeat program output once per node.
inline int master_printf(const char* format, ...) {
  ThreadCtx* ctx = current_ctx_or_null();
  if (ctx != nullptr && ctx->node->node_id() != 0) return 0;
  va_list args;
  va_start(args, format);
  const int n = std::vfprintf(stdout, format, args);
  va_end(args);
  std::fflush(stdout);
  return n;
}

/// Entry-point wrapper emitted by the translator. Runs the user's main on a
/// virtual cluster configured from PARADE_* environment variables, or joins
/// a multi-process cluster when launched under parade_run.
inline int launch(const std::function<int()>& user_main) {
  if (env::get_int("PARADE_RANK").has_value()) {
    auto runtime = ProcessRuntime::from_env();
    if (!runtime.is_ok()) {
      std::fprintf(stderr, "parade: %s\n",
                   runtime.status().to_string().c_str());
      return 1;
    }
    int rc = 0;
    runtime.value()->exec([&] { rc = user_main(); });
    return rc;
  }
  RuntimeConfig config = runtime_config_from_env();
  VirtualCluster cluster(config);
  int rc = 0;
  cluster.exec([&] {
    const int node_rc = user_main();
    if (node_id() == 0) rc = node_rc;
  });
  cluster.shutdown();
  return rc;
}

/// launch() variant for programs carrying an embedded protocol-hint sidecar
/// (the translator emits this call when hint synthesis is on). The blob is
/// registered before the runtime builds its config, so every node's
/// DsmConfig::page_priors is seeded from it; PARADE_HINTS still overrides
/// (a file path replaces the blob, "none" disables priors).
inline int launch(const char* hints_json,
                  const std::function<int()>& user_main) {
  dsm::set_embedded_hints_json(hints_json);
  return launch(user_main);
}

}  // namespace parade::xlat
