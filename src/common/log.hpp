// Minimal leveled logger. Controlled by PARADE_LOG_LEVEL (error|warn|info|
// debug|trace). Each line is prefixed with the current node id when a node
// context is active (set by the runtime), which makes interleaved multi-node
// logs readable.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace parade {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

namespace logging {

/// Global threshold; messages above it are discarded. Initialized from the
/// PARADE_LOG_LEVEL environment variable on first use.
LogLevel threshold();
void set_threshold(LogLevel level);

/// Thread-local node tag, shown as "[n3]" in log lines. -1 means unset.
void set_thread_node_tag(int node);
int thread_node_tag();

bool enabled(LogLevel level);
void write(LogLevel level, const std::string& message);

}  // namespace logging

#define PARADE_LOG(level, expr)                                     \
  do {                                                              \
    if (::parade::logging::enabled(level)) {                        \
      std::ostringstream parade_log_os_;                            \
      parade_log_os_ << expr;                                       \
      ::parade::logging::write(level, parade_log_os_.str());        \
    }                                                               \
  } while (false)

#define PLOG_ERROR(expr) PARADE_LOG(::parade::LogLevel::kError, expr)
#define PLOG_WARN(expr) PARADE_LOG(::parade::LogLevel::kWarn, expr)
#define PLOG_INFO(expr) PARADE_LOG(::parade::LogLevel::kInfo, expr)
#define PLOG_DEBUG(expr) PARADE_LOG(::parade::LogLevel::kDebug, expr)
#define PLOG_TRACE(expr) PARADE_LOG(::parade::LogLevel::kTrace, expr)

}  // namespace parade
