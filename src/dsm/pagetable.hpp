// Per-node page table implementing the paper's Figure 5 state machine:
//
//   INVALID ──fault──▶ TRANSIENT ──another fault──▶ BLOCKED
//      ▲                   │                           │
//      │              update done                 update done
//  invalidate              ▼                           ▼
//      └──────────── READ_ONLY ◀───────(wake waiters)──┘
//                        │  ▲
//                  write fault  flush (diff sent / WN recorded)
//                        ▼  │
//                       DIRTY
//
// TRANSIENT marks "a thread is fetching this page"; BLOCKED additionally
// marks "other threads are waiting for the fetch". Waiting threads park on
// the per-page condition variable; the communication thread installs the
// fetched page through the system view, flips protection, and wakes them.
//
// Twins no longer live in per-page heap vectors: TwinRegistry (below) tracks
// per-page privatization state over the SegmentPool twin view, and lets a
// write-faulting node alias the home's frame instead of copying it (CoW).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "dsm/mapping.hpp"
#include "dsm/rules.hpp"

namespace parade::dsm {

// PageState and the legal-edge table live in dsm/rules.hpp alongside the
// rest of the pure protocol rules; this alias keeps existing callers of the
// unqualified name working.
using rules::transition_allowed;

class TwinRegistry;

/// Sentinel fetched_version: "this copy has no known frame version". It never
/// matches a live frame version, so write faults on such copies privatize
/// their twin eagerly. Also TwinRegistry::kNeverFetched.
inline constexpr std::uint32_t kNeverFetchedVersion = 0xFFFFFFFFU;

struct PageEntry {
  std::mutex mutex;
  std::condition_variable cv;
  PageState state = PageState::kInvalid;
  NodeId home = 0;
  /// Frame version the latest installed copy was served at (guarded by
  /// `mutex`). A later write fault may alias the home's frame as its twin
  /// only while the home's frame still carries this version. Copies not
  /// obtained through a versioned serve (seeded homes, copies kept across a
  /// home migration) use kNeverFetched and privatize eagerly.
  std::uint32_t fetched_version = kNeverFetchedVersion;
  /// Virtual timestamp at which the latest fetched copy became usable;
  /// merged into the clock of every thread that waited for the fetch.
  VirtualUs ready_vtime = 0.0;
  /// Sequence number of the outstanding fetch (guarded by `mutex`). Replies
  /// carrying any other value are stale retransmission artifacts and are
  /// dropped instead of installed.
  std::uint32_t fetch_seq = 0;

  /// Drops this node's twin for `page`, shared or private — the single
  /// release path used by both flush and the departure downgrade.
  void release_twin(TwinRegistry& twins, NodeId self, PageId page);
};

class PageTable {
 public:
  PageTable(std::size_t num_pages, NodeId initial_home);

  PageEntry& entry(PageId page);
  const PageEntry& entry(PageId page) const;
  std::size_t num_pages() const { return entries_.size(); }

  /// Home lookup without holding the page lock (homes only change inside the
  /// barrier, when no application thread is faulting).
  NodeId home_of(PageId page) const;

 private:
  // deque-like stable storage: entries hold mutexes, so no reallocation.
  std::vector<std::unique_ptr<PageEntry>> entries_;
};

/// Cross-node ledger of twin state over the SegmentPool twin view — the
/// stmgc privatization-lock idiom adapted to HLRC twins.
///
/// A non-home write fault needs a pristine pre-write copy of the page to
/// diff against at flush. The eager scheme memcpys the page into a twin
/// frame on every fault. The CoW scheme instead *aliases* the home's frame
/// (a pointer, no copy) while the home's copy provably still matches the
/// faulting node's copy — i.e. the fetch version still matches and the home
/// is not mid-write — and privatizes (the one-page copy through the sys
/// view) only when the home's frame is about to diverge.
///
/// Frame versions: every home-side frame mutation (diff application, the
/// home's own write upgrade, the dirty→read-only downgrade at flush) bumps
/// the page's version after privatizing live aliases. Serves report the
/// version; installs record it; attach compares. The `unstable` flag covers
/// the home's own DIRTY window, during which writes land without bumps.
///
/// Locking: per-page striped mutexes. Callers hold their own PageEntry
/// mutex first; stripe locks nest strictly inside and never cross to
/// another node's entries, so the registry adds no lock-order cycles. Diff
/// encoding reads the pristine copy inside `with_twin`'s critical section,
/// so a concurrent privatization can never swap the source mid-read.
///
/// In-process clusters share one registry across ranks; a standalone node
/// (socket fabric) gets a solo registry where no peer pool is registered,
/// making every attach privatize eagerly — exactly the legacy behavior.
class TwinRegistry {
 public:
  /// Sentinel fetched_version: "this copy has no known frame version".
  static constexpr std::uint32_t kNeverFetched = kNeverFetchedVersion;

  TwinRegistry(std::size_t num_pages, std::size_t page_bytes, int max_nodes);

  /// Makes `rank`'s SegmentPool visible to attach/privatize. Must be called
  /// before the node serves or faults; unregister before the pool unmaps.
  void register_pool(NodeId rank, SegmentPool* pool);
  /// Withdraws `rank`'s pool: drops its own twins and privatizes any alias
  /// another rank still holds into this pool's frames.
  void unregister_pool(NodeId rank);

  /// Records a twin for (`self`, `page`). Aliases `home`'s frame when
  /// sharing is allowed and provably safe; otherwise copies self's current
  /// frame into self's twin frame. Returns true when the twin is a shared
  /// alias (no copy happened).
  bool attach_twin(NodeId self, PageId page, NodeId home,
                   std::uint32_t fetched_version, bool allow_share);

  /// Drops (`self`, `page`)'s twin if present.
  void release_twin(NodeId self, PageId page);

  bool has_twin(NodeId self, PageId page);

  /// Runs `fn(pristine)` under the page's stripe lock, where `pristine` is
  /// the twin's current source (home frame alias or private copy). Returns
  /// false (fn not called) when no twin is attached.
  template <typename Fn>
  bool with_twin(NodeId self, PageId page, Fn&& fn) {
    std::lock_guard<std::mutex> lock(stripe(page));
    const TwinSlot* slot = find_slot(page, self);
    if (slot == nullptr) return false;
    fn(static_cast<const std::byte*>(slot->src));
    return true;
  }

  /// Home-side hook before the home's frame content changes (diff
  /// application): privatizes every live alias of the frame and bumps the
  /// version. Returns the number of aliases privatized.
  int begin_home_mutation(PageId page);

  /// Home-side hook at the home's own write upgrade: privatizes aliases,
  /// bumps, and marks the frame unstable (the DIRTY window — subsequent
  /// stores land without further bumps). Returns aliases privatized.
  int mark_unstable(NodeId rank, PageId page);

  /// Home-side hook at the home's dirty→read-only downgrade: clears the
  /// unstable mark (if owned by `rank`) and bumps the version.
  void mark_stable(NodeId rank, PageId page);

  /// Version to stamp on an outgoing page serve.
  std::uint32_t frame_version(PageId page);

  std::size_t page_bytes() const { return page_bytes_; }

 private:
  struct TwinSlot {
    NodeId node = -1;         // watcher rank owning this twin
    NodeId frame_owner = -1;  // rank whose pool `src` points into
    const std::byte* src = nullptr;
    bool is_private = false;
  };
  struct PageShare {
    std::uint32_t version = 0;
    bool unstable = false;
    NodeId unstable_by = -1;
    std::vector<TwinSlot> slots;  // tiny: one entry per concurrent writer
  };

  static constexpr std::size_t kStripes = 64;

  std::mutex& stripe(PageId page) {
    return stripes_[static_cast<std::size_t>(page) % kStripes];
  }
  TwinSlot* find_slot(PageId page, NodeId node);
  /// Copies every shared alias of `page` into its owner's twin frame.
  /// Caller holds the stripe lock.
  int privatize_locked(PageId page, PageShare& share);

  std::vector<PageShare> pages_;
  std::array<std::mutex, kStripes> stripes_;
  // Indexed by rank. Atomic so registration (node start/stop) can overlap
  // another rank's comm traffic without a lock covering every stripe.
  std::vector<std::atomic<SegmentPool*>> pools_;
  std::size_t page_bytes_;
};

}  // namespace parade::dsm
