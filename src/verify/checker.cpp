#include "verify/checker.hpp"

#include <sstream>
#include <unordered_set>

namespace parade::verify {

namespace {

/// FNV-1a over the canonical state encoding. The visited set stores 64-bit
/// fingerprints instead of full encodings (SPIN's hash-compaction trade:
/// at the few-million-state scale the collision probability is ~1e-6,
/// acceptable for a checker whose counterexamples are replay-verified).
std::uint64_t fingerprint(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ExploreResult explore(const Model& model, const Budget& budget) {
  ExploreResult result;

  struct Frame {
    State state;
    Action via;  ///< action that produced this state (unused at the root)
    std::vector<Action> actions;
    std::size_t next = 0;
  };

  std::unordered_set<std::uint64_t> visited;
  std::vector<Frame> stack;

  auto trace_to = [&stack](const Action& last) {
    std::vector<Action> trace;
    trace.reserve(stack.size());
    for (std::size_t i = 1; i < stack.size(); ++i) {
      trace.push_back(stack[i].via);
    }
    trace.push_back(last);
    return trace;
  };

  State init = model.initial();
  visited.insert(fingerprint(model.encode(init)));
  {
    Frame root;
    root.actions = model.enabled(init);
    if (root.actions.empty() && !model.done(init)) {
      result.violation = Violation{"deadlock", "initial state has no actions"};
      return result;
    }
    root.state = std::move(init);
    stack.push_back(std::move(root));
  }

  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.actions.size()) {
      stack.pop_back();
      continue;
    }
    const Action action = frame.actions[frame.next++];
    State child = frame.state;
    result.transitions += 1;
    if (auto violation = model.apply(child, action)) {
      result.violation = std::move(violation);
      result.trace = trace_to(action);
      return result;
    }
    if (!visited.insert(fingerprint(model.encode(child))).second) continue;
    result.states += 1;
    if (result.states >= budget.max_states) {
      result.states_exhausted = true;
      return result;
    }
    if (model.done(child)) continue;
    std::vector<Action> actions = model.enabled(child);
    if (actions.empty()) {
      result.violation =
          Violation{"deadlock", "reachable state with no enabled actions"};
      result.trace = trace_to(action);
      return result;
    }
    if (stack.size() >= budget.max_depth) {
      result.depth_pruned = true;
      continue;
    }
    Frame next;
    next.state = std::move(child);
    next.via = action;
    next.actions = std::move(actions);
    stack.push_back(std::move(next));
  }
  return result;
}

ReplayResult replay(const Model& model, const std::vector<Action>& trace) {
  ReplayResult result;
  State state = model.initial();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!model.applicable(state, trace[i])) {
      result.feasible = false;
      result.violation_index = i;
      return result;
    }
    if (auto violation = model.apply(state, trace[i])) {
      result.violation = std::move(violation);
      result.violation_index = i;
      return result;
    }
  }
  result.violation_index = trace.size();
  return result;
}

std::vector<Action> minimize(const Model& model,
                             const std::vector<Action>& trace) {
  std::vector<Action> best = trace;
  // First cut anything after the violation the full trace already hits.
  {
    ReplayResult r = replay(model, best);
    if (r.violation) best.resize(r.violation_index + 1);
  }
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = best.size(); i-- > 0;) {
      std::vector<Action> candidate = best;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      ReplayResult r = replay(model, candidate);
      if (!r.feasible || !r.violation) continue;
      candidate.resize(r.violation_index + 1);
      best = std::move(candidate);
      improved = true;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Trace files.

std::string format_trace(const TraceFile& trace) {
  std::ostringstream os;
  os << "# parade_model trace v1\n";
  os << "scenario " << trace.scenario << '\n';
  os << "mutation " << trace.mutation << '\n';
  os << "violation " << trace.violation << '\n';
  for (const Action& action : trace.actions) {
    os << to_string(action) << '\n';
  }
  return os.str();
}

std::optional<TraceFile> parse_trace(const std::string& text,
                                     std::string* error) {
  TraceFile out;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "line " << lineno << ": " << what;
      *error = os.str();
    }
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "scenario" || word == "mutation" || word == "violation") {
      std::string value;
      if (!(ls >> value)) return fail("missing value after '" + word + "'");
      if (word == "scenario") {
        out.scenario = value;
      } else if (word == "mutation") {
        out.mutation = value;
      } else {
        out.violation = value;
      }
      continue;
    }
    std::optional<Action> action = parse_action(line);
    if (!action) return fail("unparsable action: " + line);
    out.actions.push_back(*action);
  }
  if (out.scenario.empty()) {
    lineno = 0;
    return fail("trace names no scenario");
  }
  return out;
}

}  // namespace parade::verify
