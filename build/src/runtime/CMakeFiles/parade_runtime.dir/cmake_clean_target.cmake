file(REMOVE_RECURSE
  "libparade_runtime.a"
)
