// Translated-code support layer: Replicated slots, loop normalization
// helpers (property-tested against direct enumeration), and master-filtered
// printf.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "translator/xlat_support.hpp"

namespace parade::xlat {
namespace {

TEST(Replicated, PerNodeSlots) {
  RuntimeConfig config;
  config.nodes = 3;
  config.threads_per_node = 1;
  config.dsm.pool_bytes = 1 << 20;
  VirtualCluster cluster(config);
  Replicated<int> value{7};
  cluster.exec([&] {
    EXPECT_EQ(value.get(), 7);  // initializer fills every slot
    value.get() = 100 + node_id();
    barrier();
    EXPECT_EQ(value.get(), 100 + node_id());  // slots are independent
  });
  cluster.shutdown();
}

TEST(Replicated, UnboundThreadUsesSlotZero) {
  Replicated<double> value{2.5};
  EXPECT_DOUBLE_EQ(value.get(), 2.5);
  value.get() = 9.0;
  EXPECT_DOUBLE_EQ(value.get(), 9.0);
}

struct LoopSpec {
  long lower;
  long upper;
  long step;
  bool inclusive;
  bool increasing;
};

class LoopHelpers : public ::testing::TestWithParam<LoopSpec> {};

TEST_P(LoopHelpers, MatchesDirectEnumeration) {
  const LoopSpec& spec = GetParam();
  // Direct enumeration of the canonical loop.
  std::vector<long> expected;
  if (spec.increasing) {
    for (long v = spec.lower;
         spec.inclusive ? v <= spec.upper : v < spec.upper; v += spec.step) {
      expected.push_back(v);
    }
  } else {
    for (long v = spec.lower;
         spec.inclusive ? v >= spec.upper : v > spec.upper; v -= spec.step) {
      expected.push_back(v);
    }
  }
  const long count = loop_count(spec.lower, spec.upper, spec.step,
                                spec.inclusive, spec.increasing);
  ASSERT_EQ(count, static_cast<long>(expected.size()));
  for (long i = 0; i < count; ++i) {
    EXPECT_EQ(loop_index(spec.lower, spec.step, spec.increasing, i),
              expected[static_cast<std::size_t>(i)])
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, LoopHelpers,
    ::testing::Values(LoopSpec{0, 10, 1, false, true},
                      LoopSpec{0, 10, 1, true, true},
                      LoopSpec{0, 10, 3, false, true},
                      LoopSpec{0, 10, 3, true, true},
                      LoopSpec{5, 5, 1, false, true},   // empty
                      LoopSpec{5, 5, 1, true, true},    // single iteration
                      LoopSpec{7, 3, 1, false, true},   // empty (backwards)
                      LoopSpec{10, 0, 1, false, false},
                      LoopSpec{10, 0, 2, true, false},
                      LoopSpec{10, 0, 7, false, false},
                      LoopSpec{-5, 6, 4, false, true},
                      LoopSpec{100, -100, 13, true, false}));

TEST(MasterPrintf, UnboundThreadPrints) {
  // Off the runtime, master_printf behaves like printf (returns char count).
  EXPECT_GT(master_printf("%s", ""), -1);
}

TEST(Launch, RunsUserMainOnVirtualCluster) {
  setenv("PARADE_NODES", "2", 1);
  setenv("PARADE_THREADS", "1", 1);
  int calls = 0;
  const int rc = launch([&]() -> int {
    ++calls;
    return node_id() == 0 ? 42 : 7;
  });
  EXPECT_EQ(rc, 42);     // node 0's exit code wins
  EXPECT_EQ(calls, 2);   // redundant serial execution: once per node
  unsetenv("PARADE_NODES");
  unsetenv("PARADE_THREADS");
}

}  // namespace
}  // namespace parade::xlat
