file(REMOVE_RECURSE
  "CMakeFiles/translator_corpus_test.dir/translator_corpus_test.cpp.o"
  "CMakeFiles/translator_corpus_test.dir/translator_corpus_test.cpp.o.d"
  "translator_corpus_test"
  "translator_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
