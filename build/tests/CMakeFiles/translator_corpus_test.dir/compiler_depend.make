# Empty compiler generated dependencies file for translator_corpus_test.
# This may be replaced when dependencies are built.
