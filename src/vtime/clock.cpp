#include "vtime/clock.hpp"

#include "common/env.hpp"

namespace parade::vtime {

double cpu_scale_from_env() {
  return env::get_double_or("PARADE_CPU_SCALE", 20.0);
}

namespace {
thread_local ThreadClock* t_clock = nullptr;
}  // namespace

void bind_thread_clock(ThreadClock* clock) { t_clock = clock; }
ThreadClock* thread_clock() { return t_clock; }

}  // namespace parade::vtime
