// Wall-clock and per-thread CPU-clock timers. The CPU clock is the basis of
// the direct-execution virtual-time model: it measures the work a thread did
// independent of how the single host core time-shared it.
#pragma once

#include <cstdint>
#include <ctime>

namespace parade {

/// Monotonic wall clock in nanoseconds.
std::int64_t wall_ns();

/// Calling thread's consumed CPU time in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID).
std::int64_t thread_cpu_ns();

inline double ns_to_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }
inline double ns_to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

/// Stopwatch over the wall clock.
class WallTimer {
 public:
  WallTimer() : start_(wall_ns()) {}
  void reset() { start_ = wall_ns(); }
  std::int64_t elapsed_ns() const { return wall_ns() - start_; }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }

 private:
  std::int64_t start_;
};

/// Stopwatch over the calling thread's CPU clock. `lap()` returns the CPU
/// nanoseconds consumed since the previous lap (or construction).
class CpuLapTimer {
 public:
  CpuLapTimer() : last_(thread_cpu_ns()) {}

  std::int64_t lap() {
    const std::int64_t now = thread_cpu_ns();
    const std::int64_t delta = now - last_;
    last_ = now;
    return delta;
  }

 private:
  std::int64_t last_;
};

}  // namespace parade
