// DSM building blocks: twin/diff codec (with randomized property tests),
// page-state machine, protocol wire round-trips. The segment pool / double
// mapping itself is covered by mapping_test.cpp.
#include <gtest/gtest.h>

#include <sys/mman.h>

#include <cstring>
#include <random>

#include "dsm/diff.hpp"
#include "dsm/mapping.hpp"
#include "dsm/notice.hpp"
#include "dsm/pagetable.hpp"
#include "dsm/protocol.hpp"

namespace parade::dsm {
namespace {

// ---------------------------------------------------------------------------
// Diff codec

TEST(Diff, EmptyWhenIdentical) {
  std::vector<std::uint8_t> page(4096, 3), twin(4096, 3);
  EXPECT_TRUE(encode_diff(page.data(), twin.data(), 4096).empty());
}

TEST(Diff, SingleWordRun) {
  std::vector<std::uint8_t> twin(4096, 0), page(4096, 0);
  page[100] = 9;  // one changed byte -> one 8-byte word run
  const auto diff = encode_diff(page.data(), twin.data(), 4096);
  EXPECT_EQ(diff.size(), 8u + 8u);  // header + one word
  std::vector<std::uint8_t> target = twin;
  ASSERT_TRUE(apply_diff(target.data(), 4096, diff.data(), diff.size()));
  EXPECT_EQ(target, page);
  EXPECT_EQ(diff_payload_bytes(diff.data(), diff.size()), 8u);
}

TEST(Diff, AdjacentWordsCoalesce) {
  std::vector<std::uint8_t> twin(4096, 0), page(4096, 0);
  for (int i = 64; i < 96; ++i) page[static_cast<std::size_t>(i)] = 1;
  const auto diff = encode_diff(page.data(), twin.data(), 4096);
  EXPECT_EQ(diff.size(), 8u + 32u);  // one run of 4 words
}

TEST(Diff, FullPage) {
  std::vector<std::uint8_t> twin(4096, 0), page(4096, 0xFF);
  const auto diff = encode_diff(page.data(), twin.data(), 4096);
  EXPECT_EQ(diff.size(), 8u + 4096u);
  std::vector<std::uint8_t> target = twin;
  ASSERT_TRUE(apply_diff(target.data(), 4096, diff.data(), diff.size()));
  EXPECT_EQ(target, page);
}

TEST(Diff, RejectsMalformed) {
  std::vector<std::uint8_t> target(4096, 0);
  const std::uint8_t truncated[4] = {1, 2, 3, 4};
  EXPECT_FALSE(apply_diff(target.data(), 4096, truncated, 4));
  // Out-of-range run.
  std::vector<std::uint8_t> bad;
  const std::uint32_t offset = 4090, length = 16;
  bad.resize(8 + 16);
  std::memcpy(bad.data(), &offset, 4);
  std::memcpy(bad.data() + 4, &length, 4);
  EXPECT_FALSE(apply_diff(target.data(), 4096, bad.data(), bad.size()));
}

class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomRoundTrip) {
  // Property: apply(twin, encode(current, twin)) == current, for random
  // twins and random change densities.
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::vector<std::uint8_t> twin(4096), page(4096);
  for (auto& b : twin) b = static_cast<std::uint8_t>(rng());
  page = twin;
  const int changes = GetParam() * 37 % 4096;
  for (int c = 0; c < changes; ++c) {
    page[rng() % 4096] = static_cast<std::uint8_t>(rng());
  }
  const auto diff = encode_diff(page.data(), twin.data(), 4096);
  std::vector<std::uint8_t> target = twin;
  ASSERT_TRUE(apply_diff(target.data(), 4096, diff.data(), diff.size()));
  EXPECT_EQ(target, page);
  // Sparse changes must not ship the whole page.
  if (changes > 0 && changes < 64) {
    EXPECT_LT(diff.size(), 4096u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Page state machine (paper Figure 5)

TEST(PageState, AllowedTransitions) {
  using PS = PageState;
  EXPECT_TRUE(transition_allowed(PS::kInvalid, PS::kTransient));
  EXPECT_TRUE(transition_allowed(PS::kTransient, PS::kBlocked));
  EXPECT_TRUE(transition_allowed(PS::kTransient, PS::kReadOnly));
  EXPECT_TRUE(transition_allowed(PS::kBlocked, PS::kReadOnly));
  EXPECT_TRUE(transition_allowed(PS::kReadOnly, PS::kDirty));
  EXPECT_TRUE(transition_allowed(PS::kReadOnly, PS::kInvalid));
  EXPECT_TRUE(transition_allowed(PS::kDirty, PS::kReadOnly));
}

class PageStatePairs
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PageStatePairs, ForbiddenTransitionsStayForbidden) {
  const auto from = static_cast<PageState>(std::get<0>(GetParam()));
  const auto to = static_cast<PageState>(std::get<1>(GetParam()));
  // Invariants that must hold for every pair:
  if (from == to) {
    EXPECT_FALSE(transition_allowed(from, to));  // self loops are not events
  }
  if (to == PageState::kTransient) {
    // Only a fault on INVALID starts a fetch.
    EXPECT_EQ(transition_allowed(from, to), from == PageState::kInvalid);
  }
  if (to == PageState::kBlocked) {
    EXPECT_EQ(transition_allowed(from, to), from == PageState::kTransient);
  }
  if (from == PageState::kInvalid && to != PageState::kTransient) {
    EXPECT_FALSE(transition_allowed(from, to));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PageStatePairs,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 5)));

TEST(PageTable, InitialHome) {
  PageTable table(16, /*initial_home=*/0);
  EXPECT_EQ(table.num_pages(), 16u);
  for (PageId p = 0; p < 16; ++p) {
    EXPECT_EQ(table.home_of(p), 0);
    EXPECT_EQ(table.entry(p).state, PageState::kInvalid);
  }
}

// ---------------------------------------------------------------------------
// Protocol wire round-trips

TEST(Protocol, PageMessages) {
  PageReplyMsg reply{42, {1, 2, 3, 4, 5}};
  const auto decoded = codec<PageReplyMsg>::decode(codec<PageReplyMsg>::encode(reply));
  EXPECT_EQ(decoded.page, 42);
  EXPECT_EQ(decoded.data, reply.data);

  const auto request =
      codec<PageRequestMsg>::decode(codec<PageRequestMsg>::encode({7}));
  EXPECT_EQ(request.page, 7);
}

TEST(Protocol, DiffMessages) {
  DiffMsg diff{9, {0xA, 0xB}};
  const auto decoded = codec<DiffMsg>::decode(codec<DiffMsg>::encode(diff));
  EXPECT_EQ(decoded.page, 9);
  EXPECT_EQ(decoded.diff, diff.diff);
  EXPECT_EQ(codec<DiffAckMsg>::decode(codec<DiffAckMsg>::encode({9})).page, 9);
}

TEST(Protocol, BarrierMessages) {
  // Notice stream for pages {1, 2, 30} dirtied by this subtree's node 3.
  BarrierArriveMsg arrive{5, notice::pack_notices({{3, {1, 2, 30}}})};
  const auto a =
      codec<BarrierArriveMsg>::decode(codec<BarrierArriveMsg>::encode(arrive));
  EXPECT_EQ(a.epoch, 5);
  EXPECT_EQ(a.notice_stream, arrive.notice_stream);
  const auto blocks = notice::try_unpack_notices(a.notice_stream, 8, 64);
  ASSERT_TRUE(blocks.has_value());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ((*blocks)[0].modifier, 3);
  EXPECT_EQ((*blocks)[0].pages, (std::vector<PageId>{1, 2, 30}));

  BarrierDepartMsg depart;
  depart.epoch = 5;
  depart.departure_vtime = 123.5;
  depart.entries = {{1, 2, 2}, {30, 0, kAnyNode}};
  const auto d =
      codec<BarrierDepartMsg>::decode(codec<BarrierDepartMsg>::encode(depart));
  EXPECT_EQ(d.epoch, 5);
  EXPECT_DOUBLE_EQ(d.departure_vtime, 123.5);
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].page, 1);
  EXPECT_EQ(d.entries[0].new_home, 2);
  EXPECT_EQ(d.entries[0].sole_modifier, 2);
  EXPECT_EQ(d.entries[1].sole_modifier, kAnyNode);
}

TEST(Protocol, LockMessages) {
  const auto acq =
      codec<LockAcquireMsg>::decode(codec<LockAcquireMsg>::encode({3}));
  EXPECT_EQ(acq.lock_id, 3);

  LockGrantMsg grant{3, {{10, 1}, {11, 2}}};
  const auto g = codec<LockGrantMsg>::decode(codec<LockGrantMsg>::encode(grant));
  EXPECT_EQ(g.lock_id, 3);
  ASSERT_EQ(g.notices.size(), 2u);
  EXPECT_EQ(g.notices[1].page, 11);
  EXPECT_EQ(g.notices[1].modifier, 2);

  LockReleaseMsg release{3, {10, 11}};
  const auto r =
      codec<LockReleaseMsg>::decode(codec<LockReleaseMsg>::encode(release));
  EXPECT_EQ(r.dirtied_pages, release.dirtied_pages);
}

// The codec is generic over wire_fields(); a wire-format pin: vector element
// structs are memcpy'd, so their layout is the wire layout.
TEST(Protocol, CodecWireFormatStable) {
  BarrierDepartMsg depart;
  depart.epoch = 7;
  depart.departure_vtime = 1.0;
  depart.entries = {{3, 1, kAnyNode}};
  const auto bytes = codec<BarrierDepartMsg>::encode(depart);
  // epoch(8) + vtime(8) + count(4) + one 12-byte DepartEntry.
  EXPECT_EQ(bytes.size(), 8u + 8u + 4u + 12u);

  const auto grant_bytes =
      codec<LockGrantMsg>::encode(LockGrantMsg{1, {{2, 3}}, 9});
  // lock_id(4) + seq(4) + count(4) + one 8-byte WriteNotice.
  EXPECT_EQ(grant_bytes.size(), 4u + 4u + 4u + 8u);
}

TEST(Protocol, CommThreadTagPartition) {
  EXPECT_TRUE(comm_thread_tag(kTagPageRequest));
  EXPECT_TRUE(comm_thread_tag(kTagDiff));
  // Barrier arrivals are gathered by the master's comm thread so lost
  // departures can be re-answered; departures still go to the barrier caller.
  EXPECT_TRUE(comm_thread_tag(kTagBarrierArrive));
  EXPECT_FALSE(comm_thread_tag(kTagBarrierDepart));
  EXPECT_FALSE(comm_thread_tag(kTagDiffAck));
  EXPECT_FALSE(comm_thread_tag(kTagLockGrantBase + 5));
}

// ---------------------------------------------------------------------------
// TwinRegistry (zero-copy CoW twins)
//
// The cluster-level equivalence suite (dsm_zerocopy_test.cpp) proves the
// end-to-end memory is bit-identical; these tests pin the registry's own
// contract deterministically — privatization in particular only fires on
// genuinely concurrent frame mutations in a live cluster, so it is forced
// here directly.

class TwinRegistryTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPoolBytes = 1 << 16;
  static constexpr std::size_t kPageBytes = 4096;

  void SetUp() override {
    auto home = SegmentPool::create(kPoolBytes, kPageBytes, MapMethod::kMemfd);
    auto writer =
        SegmentPool::create(kPoolBytes, kPageBytes, MapMethod::kMemfd);
    ASSERT_TRUE(home.is_ok());
    ASSERT_TRUE(writer.is_ok());
    home_ = std::move(home).value();
    writer_ = std::move(writer).value();
    twins_ = std::make_unique<TwinRegistry>(kPoolBytes / kPageBytes,
                                            kPageBytes, 2);
    twins_->register_pool(0, home_.get());
    twins_->register_pool(1, writer_.get());
    std::memset(home_->real_address(View::kSys, 0, 0), 0xAA, kPageBytes);
    std::memset(writer_->real_address(View::kSys, 0, 0), 0xAA, kPageBytes);
  }

  int pristine_byte() {
    int value = -1;
    twins_->with_twin(1, 0, [&](const std::byte* src) {
      value = std::to_integer<int>(src[0]);
    });
    return value;
  }

  std::unique_ptr<SegmentPool> home_;
  std::unique_ptr<SegmentPool> writer_;
  std::unique_ptr<TwinRegistry> twins_;
};

TEST_F(TwinRegistryTest, AttachSharesWhenVersionsMatch) {
  const std::uint32_t v = twins_->frame_version(0);
  EXPECT_TRUE(twins_->attach_twin(1, 0, 0, v, /*allow_share=*/true));
  EXPECT_TRUE(twins_->has_twin(1, 0));
  // The pristine source is the home's live frame, not a copy.
  bool saw = twins_->with_twin(1, 0, [&](const std::byte* src) {
    EXPECT_EQ(src, home_->real_address(View::kSys, 0, 0));
  });
  EXPECT_TRUE(saw);
  twins_->release_twin(1, 0);
  EXPECT_FALSE(twins_->has_twin(1, 0));
}

TEST_F(TwinRegistryTest, AttachPrivatizesOnVersionMismatchOrSentinel) {
  const std::uint32_t v = twins_->frame_version(0);
  EXPECT_FALSE(twins_->attach_twin(1, 0, 0, v + 1, true));
  twins_->release_twin(1, 0);
  EXPECT_FALSE(twins_->attach_twin(1, 0, 0, TwinRegistry::kNeverFetched,
                                   true));
  twins_->release_twin(1, 0);
  // allow_share=false is the legacy pipeline: always an eager copy.
  EXPECT_FALSE(twins_->attach_twin(1, 0, 0, v, false));
  twins_->release_twin(1, 0);
  // A node is never given an alias of its own frame.
  EXPECT_FALSE(twins_->attach_twin(1, 0, 1, v, true));
  twins_->release_twin(1, 0);
}

TEST_F(TwinRegistryTest, HomeMutationPrivatizesLiveAliases) {
  EXPECT_TRUE(twins_->attach_twin(1, 0, 0, twins_->frame_version(0), true));
  const std::uint32_t before = twins_->frame_version(0);

  // The home is about to merge a diff: the alias must be snapshotted first.
  EXPECT_EQ(twins_->begin_home_mutation(0), 1);
  EXPECT_GT(twins_->frame_version(0), before);
  std::memset(home_->real_address(View::kSys, 0, 0), 0xBB, kPageBytes);

  // The pristine copy still shows the pre-mutation bytes.
  EXPECT_EQ(pristine_byte(), 0xAA);
  // And it now lives in the writer's own twin frame, not the home's pool.
  twins_->with_twin(1, 0, [&](const std::byte* src) {
    EXPECT_EQ(src, writer_->real_address(View::kTwin, 0, 0));
  });
  // A second mutation has nothing left to privatize.
  EXPECT_EQ(twins_->begin_home_mutation(0), 0);
  twins_->release_twin(1, 0);
}

TEST_F(TwinRegistryTest, UnstableWindowBlocksSharing) {
  const std::uint32_t v0 = twins_->frame_version(0);
  // Home write upgrade: any live alias privatizes, and the frame is marked
  // unstable until the flush downgrade.
  EXPECT_EQ(twins_->mark_unstable(0, 0), 0);
  EXPECT_FALSE(twins_->attach_twin(1, 0, 0, twins_->frame_version(0), true))
      << "attach shared against an unstable frame";
  twins_->release_twin(1, 0);

  twins_->mark_stable(0, 0);
  EXPECT_GT(twins_->frame_version(0), v0);
  // Stable again: a copy installed from a fresh serve may share.
  EXPECT_TRUE(twins_->attach_twin(1, 0, 0, twins_->frame_version(0), true));
  twins_->release_twin(1, 0);
}

TEST_F(TwinRegistryTest, UnregisterPrivatizesAliasesIntoSurvivors) {
  EXPECT_TRUE(twins_->attach_twin(1, 0, 0, twins_->frame_version(0), true));
  // The home's pool goes away (node shutdown): the alias must be copied out
  // before the frames unmap.
  twins_->unregister_pool(0);
  EXPECT_TRUE(twins_->has_twin(1, 0));
  EXPECT_EQ(pristine_byte(), 0xAA);
  twins_->with_twin(1, 0, [&](const std::byte* src) {
    EXPECT_EQ(src, writer_->real_address(View::kTwin, 0, 0));
  });
  twins_->release_twin(1, 0);
}

}  // namespace
}  // namespace parade::dsm
