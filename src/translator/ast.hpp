// Statement-level AST for the translator. Following Omni's C-front approach
// (parse, annotate with directive info, regenerate C), we keep expression
// text as reconstructed token runs and parse structure only where the
// translation needs it: blocks, declarations, for-loop headers, and
// directive attachment points.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "translator/pragma.hpp"

namespace parade::translator {

enum class StmtKind {
  kBlock,     // { children }
  kRaw,       // expression statement / return / goto ... (verbatim text)
  kDecl,      // declaration; names/types extracted for the symbol table
  kFor,       // parsed header + body
  kIf,        // cond + then (+ optional else)
  kWhile,     // cond + body
  kDoWhile,   // body + cond
  kSwitch,    // cond + body (body treated structurally)
  kPragma,    // OpenMP directive (+ optional body)
  kHashLine,  // preprocessor line, verbatim
  kEmpty,     // ;
};

/// One declarator inside a declaration: `*name[dim0][dim1] = init`.
struct Declarator {
  std::string name;
  int pointer_depth = 0;
  std::vector<std::string> array_dims;  // dimension expressions, outermost first
  std::string init;                     // initializer text ("" if none)
  bool is_function = false;             // function prototype declarator
};

/// Canonicalized `for (init; cond; incr)` header when the loop is in OpenMP
/// canonical shape; otherwise only the raw texts are set.
struct ForHeader {
  std::string init_text;
  std::string cond_text;
  std::string incr_text;

  bool canonical = false;
  std::string loop_var;
  std::string var_decl_type;  // non-empty if the init declares the variable
  std::string lower;          // initial value expression
  std::string upper;          // bound expression
  bool inclusive = false;     // cond used <= (or >=)
  bool increasing = true;
  std::string step = "1";     // positive step expression
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  int line = 0;

  std::vector<StmtPtr> children;  // block children / bodies (see kind)
  std::string text;               // kRaw / kHashLine verbatim text
  std::string cond;               // kIf / kWhile / kDoWhile / kSwitch
  bool has_else = false;          // kIf: children = {then, else?}

  // kDecl
  std::string decl_type;  // base type text ("static double", "unsigned int")
  std::vector<Declarator> declarators;

  // kFor: children = {body}
  ForHeader for_header;

  // kPragma: children = {body?}
  Directive directive;
  bool directive_has_body = false;
};

struct FunctionDef {
  std::string ret_type;    // text before the name
  std::string name;
  std::string params;      // text inside the parentheses
  StmtPtr body;
  int line = 0;
};

struct TopItem {
  enum class Kind { kFunction, kDecl, kHashLine, kPragma, kRaw } kind;
  FunctionDef function;  // kFunction
  StmtPtr stmt;          // kDecl / kPragma / kRaw
  std::string text;      // kHashLine
};

/// Token positions observed on one source line. The AST stores statement
/// text as reconstructed token runs, so byte columns are lost by the time
/// diagnostics fire; this side index lets them be recovered per line.
struct LinePositions {
  int first_column = 0;                             // first token on the line
  std::vector<std::pair<std::string, int>> idents;  // (text, column) in order
};

struct TranslationUnit {
  std::vector<TopItem> items;
  // line -> token positions, built by parse() from the raw token stream.
  std::map<int, LinePositions> line_positions;
};

}  // namespace parade::translator
