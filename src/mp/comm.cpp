#include "mp/comm.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/status.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace parade::mp {
namespace {

vtime::ThreadClock* t_clock_get() { return vtime::thread_clock(); }

}  // namespace

Comm::Comm(const Topology& topology, net::Channel& channel,
           vtime::NetworkModel model, Reliability reliability)
    : channel_(channel),
      topo_(topology),
      model_(model),
      reliability_(reliability) {
  PARADE_CHECK_MSG(topo_.valid(), "invalid topology");
  PARADE_CHECK_MSG(topo_.rank == channel.rank() &&
                       topo_.nodes == channel.size(),
                   "topology disagrees with channel rank/size");
  auto& reg = obs::Registry::instance();
  const NodeId node = topo_.rank;
  metrics_.p2p_sends = &reg.counter(node, "mp.p2p_sends");
  metrics_.p2p_send_bytes = &reg.counter(node, "mp.p2p_send_bytes");
  metrics_.coll_payload_bytes = &reg.counter(node, "mp.coll_payload_bytes");
  metrics_.barriers = &reg.counter(node, "mp.barriers");
  metrics_.bcasts = &reg.counter(node, "mp.bcasts");
  metrics_.reduces = &reg.counter(node, "mp.reduces");
  metrics_.allreduces = &reg.counter(node, "mp.allreduces");
  metrics_.gathers = &reg.counter(node, "mp.gathers");
  metrics_.allgathers = &reg.counter(node, "mp.allgathers");
  metrics_.retries = &reg.counter(node, "mp.retry.count");
  metrics_.recv_wait = &reg.timer(node, "mp.recv_wait");
  metrics_.collective_ns = &reg.hist(node, "mp.collective_ns");
}

Comm::Comm(net::Channel& channel, vtime::NetworkModel model,
           Reliability reliability)
    : Comm(Topology::flat(channel.rank(), channel.size()), channel, model,
           reliability) {}

void Comm::count_collective(obs::Counter* which, std::size_t payload_bytes) {
  which->add();
  metrics_.coll_payload_bytes->add(static_cast<std::int64_t>(payload_bytes));
}

Tag Comm::next_collective_tag() {
  // All nodes execute collectives in the same order (SPMD), so a simple
  // sequence number yields matching tags everywhere.
  const std::uint32_t seq =
      collective_seq_.fetch_add(1, std::memory_order_relaxed);
  return net::kCollTagBase + static_cast<Tag>(seq & 0x0FFFFFFF);
}

void Comm::send_wire(NodeId dst, Tag wire_tag, const void* data,
                     std::size_t bytes) {
  VirtualUs stamp = 0.0;
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->add(model_.send_overhead_us);
    stamp = t_clock_get()->now();
  }
  std::vector<std::uint8_t> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  if (wire_tag < net::kCollTagBase) {
    metrics_.p2p_sends->add();
    metrics_.p2p_send_bytes->add(static_cast<std::int64_t>(bytes));
  }
  Status s = channel_.send(dst, wire_tag, std::move(payload), stamp);
  if (!s.is_ok()) {
    PLOG_WARN("mp send tag " << wire_tag << " to node " << dst
                             << " dropped: " << s.to_string());
  }
}

net::Message Comm::recv_wire(NodeId src, Tag wire_tag) {
  obs::ScopedTimer wait(metrics_.recv_wait);
  auto matched = channel_.inbox().recv_match([&](const net::MessageHeader& h) {
    return h.tag == wire_tag && (src == kAnyNode || h.src == src);
  });
  PARADE_CHECK_MSG(matched.has_value(), "channel closed during recv");
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  return std::move(*matched);
}

void Comm::send(NodeId dst, Tag tag, const void* data, std::size_t bytes) {
  PARADE_CHECK_MSG(tag >= 0 && tag < net::kCollTagBase - net::kMpTagBase,
                   "user tag out of range");
  send_wire(dst, net::kMpTagBase + tag, data, bytes);
}

RecvStatus Comm::recv(NodeId src, Tag tag, void* buffer, std::size_t bytes) {
  RecvStatus status;
  auto payload = recv_bytes(src, tag, &status);
  PARADE_CHECK_MSG(payload.size() <= bytes, "recv buffer too small");
  if (!payload.empty()) std::memcpy(buffer, payload.data(), payload.size());
  return status;
}

std::vector<std::uint8_t> Comm::recv_bytes(NodeId src, Tag tag,
                                           RecvStatus* status) {
  obs::ScopedTimer wait(metrics_.recv_wait);
  auto matched = channel_.inbox().recv_match([&](const net::MessageHeader& h) {
    if (h.tag < net::kMpTagBase || h.tag >= net::kCollTagBase) return false;
    if (src != kAnyNode && h.src != src) return false;
    return tag == kAnyTag || h.tag == net::kMpTagBase + tag;
  });
  PARADE_CHECK_MSG(matched.has_value(), "channel closed during recv");
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  if (status != nullptr) {
    status->source = matched->header.src;
    status->tag = matched->header.tag - net::kMpTagBase;
    status->bytes = matched->payload.size();
  }
  return std::move(matched->payload);
}

std::optional<std::vector<std::uint8_t>> Comm::try_recv_bytes(
    NodeId src, Tag tag, RecvStatus* status) {
  auto matched =
      channel_.inbox().try_recv_match([&](const net::MessageHeader& h) {
        if (h.tag < net::kMpTagBase || h.tag >= net::kCollTagBase) return false;
        if (src != kAnyNode && h.src != src) return false;
        return tag == kAnyTag || h.tag == net::kMpTagBase + tag;
      });
  if (!matched) return std::nullopt;
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  if (status != nullptr) {
    status->source = matched->header.src;
    status->tag = matched->header.tag - net::kMpTagBase;
    status->bytes = matched->payload.size();
  }
  return std::move(matched->payload);
}

void Comm::barrier() {
  count_collective(metrics_.barriers, 0);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const int n = size();
  if (n == 1) return;
  const Tag tag = next_collective_tag();
  // Dissemination barrier: within one barrier every round talks to a distinct
  // partner, so one tag suffices; the round is identified by the source rank.
  for (int dist = 1; dist < n; dist <<= 1) {
    const NodeId to = (rank() + dist) % n;
    const NodeId from = (rank() - dist % n + n) % n;
    send_wire(to, tag, nullptr, 0);
    (void)recv_wire(from, tag);
  }
}

void Comm::bcast(void* data, std::size_t bytes, NodeId root) {
  count_collective(metrics_.bcasts, bytes);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const int n = size();
  if (n == 1) return;
  const Tag tag = next_collective_tag();
  const int relative = (rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if ((relative & mask) != 0) {
      const NodeId src = (rank() - mask + n) % n;
      net::Message m = recv_wire(src, tag);
      PARADE_CHECK_MSG(m.payload.size() == bytes, "bcast size mismatch");
      if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const NodeId dst = (rank() + mask) % n;
      send_wire(dst, tag, data, bytes);
    }
    mask >>= 1;
  }
}

void Comm::reduce_with(void* buffer, std::size_t bytes, NodeId root, Tag tag,
                       const std::function<void(void*, const void*)>& combine) {
  const int n = size();
  const int relative = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int source_rel = relative | mask;
      if (source_rel < n) {
        const NodeId source = (source_rel + root) % n;
        net::Message m = recv_wire(source, tag);
        PARADE_CHECK_MSG(m.payload.size() == bytes, "reduce size mismatch");
        combine(buffer, m.payload.data());
      }
    } else {
      const NodeId dst = ((relative & ~mask) + root) % n;
      send_wire(dst, tag, buffer, bytes);
      break;
    }
    mask <<= 1;
  }
}

void Comm::reduce(void* buffer, std::size_t count, DType dtype, Op op,
                  NodeId root) {
  count_collective(metrics_.reduces, count * dtype_size(dtype));
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  if (size() == 1) return;
  const Tag tag = next_collective_tag();
  const std::size_t bytes = count * dtype_size(dtype);
  reduce_with(buffer, bytes, root, tag, [&](void* inout, const void* in) {
    reduce_inplace(dtype, op, inout, in, count);
  });
}

void Comm::allreduce(void* buffer, std::size_t count, DType dtype, Op op) {
  count_collective(metrics_.allreduces, count * dtype_size(dtype));
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  reduce(buffer, count, dtype, op, /*root=*/0);
  bcast(buffer, count * dtype_size(dtype), /*root=*/0);
}

void Comm::allreduce_user(void* buffer, std::size_t bytes,
                          const UserReduceFn& fn) {
  if (size() > 1) {
    const Tag tag = next_collective_tag();
    reduce_with(buffer, bytes, /*root=*/0, tag,
                [&](void* inout, const void* in) { fn(inout, in, bytes); });
  }
  bcast(buffer, bytes, /*root=*/0);
}

void Comm::gather(const void* contribution, std::size_t bytes, void* out,
                  NodeId root) {
  count_collective(metrics_.gathers, bytes);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const Tag tag = next_collective_tag();
  if (rank() == root) {
    PARADE_CHECK_MSG(out != nullptr, "gather root needs an output buffer");
    auto* base = static_cast<std::uint8_t*>(out);
    std::memcpy(base + static_cast<std::size_t>(rank()) * bytes, contribution,
                bytes);
    for (int peer = 0; peer < size(); ++peer) {
      if (peer == root) continue;
      net::Message m = recv_wire(peer, tag);
      PARADE_CHECK_MSG(m.payload.size() == bytes, "gather size mismatch");
      std::memcpy(base + static_cast<std::size_t>(peer) * bytes,
                  m.payload.data(), bytes);
    }
  } else {
    send_wire(root, tag, contribution, bytes);
  }
}

void Comm::allgather(const void* contribution, std::size_t bytes, void* out) {
  count_collective(metrics_.allgathers, bytes);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  gather(contribution, bytes, out, /*root=*/0);
  bcast(out, bytes * static_cast<std::size_t>(size()), /*root=*/0);
}

// ---------------------------------------------------------------------------
// Reliable wire engine (see struct Reliability in comm.hpp)

namespace {

std::uint32_t read_seq(const std::vector<std::uint8_t>& payload) {
  return static_cast<std::uint32_t>(payload[0]) |
         static_cast<std::uint32_t>(payload[1]) << 8 |
         static_cast<std::uint32_t>(payload[2]) << 16 |
         static_cast<std::uint32_t>(payload[3]) << 24;
}

void write_seq(std::uint8_t* out, std::uint32_t seq) {
  out[0] = static_cast<std::uint8_t>(seq);
  out[1] = static_cast<std::uint8_t>(seq >> 8);
  out[2] = static_cast<std::uint8_t>(seq >> 16);
  out[3] = static_cast<std::uint8_t>(seq >> 24);
}

}  // namespace

void Comm::post_ack(NodeId dst, std::uint32_t seq) {
  // Acks are reliability artifacts outside the LogGP cost model: they carry
  // the current clock (for monotonicity) but charge no overheads, so a
  // fault-free reliable run keeps the exact timing of the unreliable path.
  std::vector<std::uint8_t> payload(4);
  write_seq(payload.data(), seq);
  const VirtualUs stamp =
      t_clock_get() != nullptr ? t_clock_get()->now() : 0.0;
  (void)channel_.send(dst, net::kAckTagBase, std::move(payload), stamp);
}

Status Comm::rel_pump(bool want_data, NodeId want_src, Tag want_tag,
                      std::uint32_t want_ack_seq, net::Message* out) {
  const net::RetryPolicy& retry = reliability_.retry;
  int attempts = 1;
  for (;;) {
    if (!want_data && rel_unacked_.count(want_ack_seq) == 0) {
      return Status::ok();
    }
    if (want_data) {
      for (auto it = rel_stash_.begin(); it != rel_stash_.end(); ++it) {
        if (it->header.tag == want_tag &&
            (want_src == kAnyNode || it->header.src == want_src)) {
          *out = std::move(*it);
          rel_stash_.erase(it);
          return Status::ok();
        }
      }
    }

    auto msg = channel_.inbox().recv_match_for(
        [](const net::MessageHeader& h) {
          return h.tag == net::kAckTagBase || h.tag >= net::kMpTagBase;
        },
        retry.timeout());
    if (!msg.has_value()) {
      if (channel_.inbox().closed()) {
        return make_error(ErrorCode::kUnavailable, "channel closed");
      }
      if (attempts >= retry.max_attempts) {
        // Unhealed partition: dump the trace ring before reporting, so the
        // message chain leading up to the silence is preserved.
        obs::Registry::instance().flight_record("mp.partition");
        return make_error(ErrorCode::kUnavailable,
                          want_data ? "peer silent past the retry budget"
                                    : "message never acked: peer unreachable");
      }
      ++attempts;
      for (const auto& entry : rel_unacked_) {
        const PendingSend& pending = entry.second;
        metrics_.retries->add();
        (void)channel_.send(pending.dst, pending.wire_tag, pending.payload,
                            pending.stamp);
      }
      continue;
    }

    if (msg->header.tag == net::kAckTagBase) {
      if (msg->payload.size() == 4) rel_unacked_.erase(read_seq(msg->payload));
      continue;
    }

    // Reliable data frame: [seq:4][app payload].
    if (msg->payload.size() < 4) continue;  // malformed; drop
    const std::uint32_t seq = read_seq(msg->payload);
    post_ack(msg->header.src, seq);  // always re-ack, even duplicates
    if (rel_seen_.seen_or_insert(net::seq_key(msg->header.src, seq))) {
      continue;
    }
    if (t_clock_get() != nullptr) {
      t_clock_get()->sync_cpu();
      t_clock_get()->merge(msg->header.vtime +
                           model_.transfer_us(msg->payload.size()));
      t_clock_get()->add(model_.recv_overhead_us);
    }
    msg->payload.erase(msg->payload.begin(), msg->payload.begin() + 4);
    if (want_data && msg->header.tag == want_tag &&
        (want_src == kAnyNode || msg->header.src == want_src)) {
      *out = std::move(*msg);
      return Status::ok();
    }
    rel_stash_.push_back(std::move(*msg));
  }
}

void Comm::quiesce() {
  if (!reliability_.enabled) return;
  const net::RetryPolicy& retry = reliability_.retry;
  // A peer stuck in an ack-wait retransmits once per timeout, so "silent for
  // three timeouts" means nobody is currently retrying against us. Bound the
  // total linger by the retry budget so a chattering link cannot pin us.
  int quiet_windows = 0;
  for (int spent = 0; quiet_windows < 3 && spent < retry.max_attempts;
       ++spent) {
    auto msg = channel_.inbox().recv_match_for(
        [](const net::MessageHeader& h) {
          return h.tag == net::kAckTagBase || h.tag >= net::kMpTagBase;
        },
        retry.timeout());
    if (!msg.has_value()) {
      if (channel_.inbox().closed()) return;
      ++quiet_windows;
      continue;
    }
    quiet_windows = 0;
    if (msg->header.tag == net::kAckTagBase) {
      if (msg->payload.size() == 4) rel_unacked_.erase(read_seq(msg->payload));
      continue;
    }
    if (msg->payload.size() < 4) continue;
    const std::uint32_t seq = read_seq(msg->payload);
    post_ack(msg->header.src, seq);
    // Record unseen frames too: the program is over, so the payload is
    // dead — but the ack we just sent must stay idempotent if it reappears.
    (void)rel_seen_.seen_or_insert(net::seq_key(msg->header.src, seq));
  }
}

Status Comm::rel_send(NodeId dst, Tag wire_tag, const void* data,
                      std::size_t bytes) {
  if (!reliability_.enabled) {
    // Degraded mode: a plain send whose channel error is reported instead of
    // logged-and-dropped.
    VirtualUs stamp = 0.0;
    if (t_clock_get() != nullptr) {
      t_clock_get()->sync_cpu();
      t_clock_get()->add(model_.send_overhead_us);
      stamp = t_clock_get()->now();
    }
    std::vector<std::uint8_t> payload(bytes);
    if (bytes > 0) std::memcpy(payload.data(), data, bytes);
    return channel_.send(dst, wire_tag, std::move(payload), stamp);
  }

  VirtualUs stamp = 0.0;
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->add(model_.send_overhead_us);
    stamp = t_clock_get()->now();
  }
  const std::uint32_t seq = ++rel_seq_;
  std::vector<std::uint8_t> payload(bytes + 4);
  write_seq(payload.data(), seq);
  if (bytes > 0) std::memcpy(payload.data() + 4, data, bytes);
  if (Status s = channel_.send(dst, wire_tag, payload, stamp); !s.is_ok()) {
    return s;
  }
  if (dst == rank()) return Status::ok();  // self-sends cannot be lost
  rel_unacked_.emplace(seq, PendingSend{dst, wire_tag, std::move(payload),
                                        stamp});
  return rel_pump(/*want_data=*/false, kAnyNode, 0, seq, nullptr);
}

Status Comm::rel_recv(NodeId src, Tag wire_tag, net::Message* out) {
  if (!reliability_.enabled) {
    // Degraded mode: bounded wait, no framing.
    const net::RetryPolicy& retry = reliability_.retry;
    const auto total =
        retry.timeout() * std::max(1, retry.max_attempts);
    auto outcome = channel_.inbox().recv_match_from(
        src,
        [&](const net::MessageHeader& h) { return h.tag == wire_tag; },
        total);
    if (!outcome.message.has_value()) return outcome.status;
    if (t_clock_get() != nullptr) {
      t_clock_get()->sync_cpu();
      t_clock_get()->merge(outcome.message->header.vtime +
                           model_.transfer_us(outcome.message->payload.size()));
      t_clock_get()->add(model_.recv_overhead_us);
    }
    *out = std::move(*outcome.message);
    return Status::ok();
  }
  return rel_pump(/*want_data=*/true, src, wire_tag, 0, out);
}

Status Comm::try_send(NodeId dst, Tag tag, const void* data,
                      std::size_t bytes) {
  PARADE_CHECK_MSG(tag >= 0 && tag < net::kCollTagBase - net::kMpTagBase,
                   "user tag out of range");
  metrics_.p2p_sends->add();
  metrics_.p2p_send_bytes->add(static_cast<std::int64_t>(bytes));
  return rel_send(dst, net::kMpTagBase + tag, data, bytes);
}

Status Comm::try_recv(NodeId src, Tag tag, void* buffer, std::size_t capacity,
                      RecvStatus* status) {
  PARADE_CHECK_MSG(tag >= 0 && tag < net::kCollTagBase - net::kMpTagBase,
                   "user tag out of range");
  net::Message m;
  if (Status s = rel_recv(src, net::kMpTagBase + tag, &m); !s.is_ok()) {
    return s;
  }
  if (m.payload.size() > capacity) {
    return make_error(ErrorCode::kOutOfRange, "recv buffer too small");
  }
  if (!m.payload.empty()) std::memcpy(buffer, m.payload.data(),
                                      m.payload.size());
  if (status != nullptr) {
    status->source = m.header.src;
    status->tag = m.header.tag - net::kMpTagBase;
    status->bytes = m.payload.size();
  }
  return Status::ok();
}

Status Comm::try_barrier() {
  count_collective(metrics_.barriers, 0);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const int n = size();
  if (n == 1) return Status::ok();
  const Tag tag = next_collective_tag();
  for (int dist = 1; dist < n; dist <<= 1) {
    const NodeId to = (rank() + dist) % n;
    const NodeId from = (rank() - dist % n + n) % n;
    if (Status s = rel_send(to, tag, nullptr, 0); !s.is_ok()) return s;
    net::Message m;
    if (Status s = rel_recv(from, tag, &m); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status Comm::try_bcast(void* data, std::size_t bytes, NodeId root) {
  count_collective(metrics_.bcasts, bytes);
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const int n = size();
  if (n == 1) return Status::ok();
  const Tag tag = next_collective_tag();
  const int relative = (rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if ((relative & mask) != 0) {
      const NodeId src = (rank() - mask + n) % n;
      net::Message m;
      if (Status s = rel_recv(src, tag, &m); !s.is_ok()) return s;
      if (m.payload.size() != bytes) {
        return make_error(ErrorCode::kInternal, "bcast size mismatch");
      }
      if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const NodeId dst = (rank() + mask) % n;
      if (Status s = rel_send(dst, tag, data, bytes); !s.is_ok()) return s;
    }
    mask >>= 1;
  }
  return Status::ok();
}

Status Comm::try_reduce_with(
    void* buffer, std::size_t bytes, NodeId root, Tag tag,
    const std::function<void(void*, const void*)>& combine) {
  const int n = size();
  const int relative = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int source_rel = relative | mask;
      if (source_rel < n) {
        const NodeId source = (source_rel + root) % n;
        net::Message m;
        if (Status s = rel_recv(source, tag, &m); !s.is_ok()) return s;
        if (m.payload.size() != bytes) {
          return make_error(ErrorCode::kInternal, "reduce size mismatch");
        }
        combine(buffer, m.payload.data());
      }
    } else {
      const NodeId dst = ((relative & ~mask) + root) % n;
      return rel_send(dst, tag, buffer, bytes);
    }
    mask <<= 1;
  }
  return Status::ok();
}

Status Comm::try_allreduce(void* buffer, std::size_t count, DType dtype,
                           Op op) {
  count_collective(metrics_.allreduces, count * dtype_size(dtype));
  obs::ScopedSpan span(obs::TraceKind::kCollective, rank(), 0);
  obs::ScopedHistTimer coll_scope(metrics_.collective_ns);
  const std::size_t bytes = count * dtype_size(dtype);
  if (size() > 1) {
    const Tag tag = next_collective_tag();
    if (Status s = try_reduce_with(
            buffer, bytes, /*root=*/0, tag,
            [&](void* inout, const void* in) {
              reduce_inplace(dtype, op, inout, in, count);
            });
        !s.is_ok()) {
      return s;
    }
  }
  return try_bcast(buffer, bytes, /*root=*/0);
}

}  // namespace parade::mp
