#include "dsm/protocol.hpp"

namespace parade::dsm {

std::vector<std::uint8_t> encode(const PageRequestMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.page);
  return std::move(buffer).take();
}

PageRequestMsg decode_page_request(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  PageRequestMsg m;
  m.page = buffer.get<std::int32_t>();
  return m;
}

std::vector<std::uint8_t> encode(const PageReplyMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.page);
  buffer.put_vector(m.data);
  return std::move(buffer).take();
}

PageReplyMsg decode_page_reply(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  PageReplyMsg m;
  m.page = buffer.get<std::int32_t>();
  m.data = buffer.get_vector<std::uint8_t>();
  return m;
}

std::vector<std::uint8_t> encode(const DiffMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.page);
  buffer.put_vector(m.diff);
  return std::move(buffer).take();
}

DiffMsg decode_diff(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  DiffMsg m;
  m.page = buffer.get<std::int32_t>();
  m.diff = buffer.get_vector<std::uint8_t>();
  return m;
}

std::vector<std::uint8_t> encode(const DiffAckMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.page);
  return std::move(buffer).take();
}

DiffAckMsg decode_diff_ack(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  DiffAckMsg m;
  m.page = buffer.get<std::int32_t>();
  return m;
}

std::vector<std::uint8_t> encode(const BarrierArriveMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int64_t>(m.epoch);
  buffer.put_vector(m.dirtied_pages);
  return std::move(buffer).take();
}

BarrierArriveMsg decode_barrier_arrive(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  BarrierArriveMsg m;
  m.epoch = buffer.get<std::int64_t>();
  m.dirtied_pages = buffer.get_vector<PageId>();
  return m;
}

std::vector<std::uint8_t> encode(const BarrierDepartMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int64_t>(m.epoch);
  buffer.put<double>(m.departure_vtime);
  buffer.put<std::uint32_t>(static_cast<std::uint32_t>(m.entries.size()));
  for (const DepartEntry& e : m.entries) {
    buffer.put<std::int32_t>(e.page);
    buffer.put<std::int32_t>(e.new_home);
    buffer.put<std::int32_t>(e.sole_modifier);
  }
  return std::move(buffer).take();
}

BarrierDepartMsg decode_barrier_depart(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  BarrierDepartMsg m;
  m.epoch = buffer.get<std::int64_t>();
  m.departure_vtime = buffer.get<double>();
  const auto count = buffer.get<std::uint32_t>();
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DepartEntry e;
    e.page = buffer.get<std::int32_t>();
    e.new_home = buffer.get<std::int32_t>();
    e.sole_modifier = buffer.get<std::int32_t>();
    m.entries.push_back(e);
  }
  return m;
}

std::vector<std::uint8_t> encode(const LockAcquireMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.lock_id);
  return std::move(buffer).take();
}

LockAcquireMsg decode_lock_acquire(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  LockAcquireMsg m;
  m.lock_id = buffer.get<std::int32_t>();
  return m;
}

std::vector<std::uint8_t> encode(const LockGrantMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.lock_id);
  buffer.put<std::uint32_t>(static_cast<std::uint32_t>(m.notices.size()));
  for (const WriteNotice& n : m.notices) {
    buffer.put<std::int32_t>(n.page);
    buffer.put<std::int32_t>(n.modifier);
  }
  return std::move(buffer).take();
}

LockGrantMsg decode_lock_grant(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  LockGrantMsg m;
  m.lock_id = buffer.get<std::int32_t>();
  const auto count = buffer.get<std::uint32_t>();
  m.notices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WriteNotice n;
    n.page = buffer.get<std::int32_t>();
    n.modifier = buffer.get<std::int32_t>();
    m.notices.push_back(n);
  }
  return m;
}

std::vector<std::uint8_t> encode(const LockReleaseMsg& m) {
  WireBuffer buffer;
  buffer.put<std::int32_t>(m.lock_id);
  buffer.put_vector(m.dirtied_pages);
  return std::move(buffer).take();
}

LockReleaseMsg decode_lock_release(const std::vector<std::uint8_t>& bytes) {
  WireBuffer buffer{bytes};
  LockReleaseMsg m;
  m.lock_id = buffer.get<std::int32_t>();
  m.dirtied_pages = buffer.get_vector<PageId>();
  return m;
}

}  // namespace parade::dsm
