// A node's incoming-message queue with predicate matching.
//
// Multiple consumer threads may block in recv_match() concurrently with
// different predicates (e.g. the DSM communication thread matching protocol
// tags while application threads match collective tags); a delivery wakes all
// waiters and each re-scans for its own match. The queue preserves arrival
// order between messages matched by the same predicate, which is all the MP
// layer requires for (src, tag) ordering.
//
// Fault awareness: transports that learn a peer is gone (e.g. a SocketFabric
// reader hitting EOF) call mark_peer_down(); receivers waiting specifically
// on that peer wake immediately and observe kUnavailable instead of blocking
// forever. Timed receives (recv_match_for) underpin the DSM/MP retry loops.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_set>

#include "common/status.hpp"
#include "net/message.hpp"

namespace parade::net {

class Mailbox {
 public:
  using Matcher = std::function<bool(const MessageHeader&)>;

  /// Outcome of a receive that can fail: exactly one of `message` or a
  /// non-OK `status` (kUnavailable on close/peer-down, kTimeout on expiry).
  struct RecvOutcome {
    std::optional<Message> message;
    Status status;
  };

  /// Enqueues a message (called by the fabric / reader threads). Returns
  /// false — and drops the message — once the mailbox is closed.
  bool deliver(Message message);

  /// Blocks until a message whose header satisfies `match` is available and
  /// removes it. Returns std::nullopt only after close().
  std::optional<Message> recv_match(const Matcher& match);

  /// Bounded-wait variant: returns std::nullopt on timeout or after close()
  /// (check closed() to distinguish). Queued matches are drained first, so a
  /// zero timeout degenerates to try_recv_match.
  std::optional<Message> recv_match_for(const Matcher& match,
                                        std::chrono::milliseconds timeout);

  /// Waits for a match from `peer` (kAnyNode = any). Wakes with kUnavailable
  /// when the mailbox closes or `peer` is marked down (queued matches are
  /// still drained first), and with kTimeout when `timeout` expires.
  RecvOutcome recv_match_from(
      NodeId peer, const Matcher& match,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Non-blocking variant.
  std::optional<Message> try_recv_match(const Matcher& match);

  /// Wakes all blocked receivers with std::nullopt; subsequent recv_match
  /// calls drain remaining matches, then return std::nullopt.
  void close();

  /// Records that `peer` is unreachable and wakes blocked receivers so
  /// recv_match_from(peer, ...) calls observe kUnavailable. Idempotent.
  void mark_peer_down(NodeId peer);
  bool peer_down(NodeId peer) const;

  bool closed() const;
  std::size_t pending() const;

 private:
  std::optional<Message> take_locked(const Matcher& match);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::unordered_set<NodeId> down_peers_;
  bool closed_ = false;
};

}  // namespace parade::net
