// OpenMP 1.0 (C/C++) directive and clause parsing (paper §4: the translator
// follows the OpenMP 1.0 C/C++ API).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace parade::translator {

enum class DirectiveKind {
  kParallel,
  kParallelFor,
  kParallelSections,
  kFor,
  kSections,
  kSection,
  kSingle,
  kMaster,
  kCritical,
  kAtomic,
  kBarrier,
  kFlush,
  kOrdered,
  kThreadprivate,
};

enum class ReductionOp { kAdd, kSub, kMul, kAnd, kOr, kXor, kLAnd, kLOr };

enum class OmpSchedule { kStatic, kDynamic, kGuided, kRuntime };

struct Clauses {
  std::vector<std::string> shared;
  std::vector<std::string> privates;
  std::vector<std::string> firstprivate;
  std::vector<std::string> lastprivate;
  std::vector<std::pair<ReductionOp, std::string>> reductions;
  std::vector<std::string> copyin;
  std::vector<std::string> flush_list;  // for flush(list)
  bool has_default = false;
  bool default_shared = true;  // default(shared) vs default(none)
  bool nowait = false;
  bool has_schedule = false;
  OmpSchedule schedule = OmpSchedule::kStatic;
  std::string schedule_chunk;  // expression text, empty if absent
  std::string if_expr;         // if(expr) text, empty if absent
  std::string critical_name;   // critical(name)
};

struct Directive {
  DirectiveKind kind = DirectiveKind::kBarrier;
  Clauses clauses;
  int line = 0;
};

/// Parses the text after "#pragma omp". Reports unknown directives/clauses as
/// errors with the offending token (translator diagnostics, tested).
Result<Directive> parse_pragma(const std::string& text, int line);

const char* to_string(DirectiveKind kind);
/// The C operator token for a reduction op ("+", "&&", ...).
const char* reduction_operator(ReductionOp op);
/// The identity value literal for a reduction op ("0", "1", "~0", ...).
const char* reduction_identity(ReductionOp op);

}  // namespace parade::translator
