file(REMOVE_RECURSE
  "CMakeFiles/fig9_ep.dir/fig9_ep.cpp.o"
  "CMakeFiles/fig9_ep.dir/fig9_ep.cpp.o.d"
  "fig9_ep"
  "fig9_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
