// Randomized DSM consistency property test: a reference "golden" array is
// maintained with plain memory while the same writes are applied to the DSM
// pool by their assigned nodes; after each barrier every node must observe
// the golden contents. Write sets are word-granular and per-epoch disjoint
// across nodes (a data-race-free program), which is exactly the guarantee
// HLRC must preserve.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "dsm/cluster.hpp"

namespace parade::dsm {
namespace {

struct Scenario {
  int nodes;
  int pages;
  int epochs;
  unsigned seed;
  bool migration;
};

class RandomConsistency : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomConsistency, ConvergesEveryEpoch) {
  const Scenario s = GetParam();
  const std::size_t words =
      static_cast<std::size_t>(s.pages) * 4096 / sizeof(std::uint64_t);

  // Pre-generate the write plan so every node sees the same schedule.
  // plan[epoch] = list of (word index, value, writer node).
  struct Write {
    std::size_t word;
    std::uint64_t value;
    int writer;
  };
  std::mt19937_64 rng(s.seed);
  std::vector<std::vector<Write>> plan(static_cast<std::size_t>(s.epochs));
  std::vector<std::uint64_t> golden(words, 0);
  for (auto& epoch_writes : plan) {
    const int count = static_cast<int>(rng() % 200) + 1;
    std::set<std::size_t> used;  // per-epoch disjoint writers per word
    for (int w = 0; w < count; ++w) {
      const std::size_t word = rng() % words;
      if (!used.insert(word).second) continue;
      epoch_writes.push_back(
          Write{word, rng(), static_cast<int>(rng() % s.nodes)});
    }
  }

  DsmConfig config;
  config.pool_bytes = static_cast<std::size_t>(s.pages + 1) * 4096;
  config.home_migration = s.migration;
  DsmCluster cluster(s.nodes, config);
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<std::uint64_t*>(
        cluster.node(rank).shmalloc(words * sizeof(std::uint64_t), 4096));
    cluster.node(rank).barrier();
    std::vector<std::uint64_t> local_golden(words, 0);
    for (const auto& epoch_writes : plan) {
      for (const Write& w : epoch_writes) {
        local_golden[w.word] = w.value;
        if (w.writer == rank) data[w.word] = w.value;
      }
      cluster.node(rank).barrier();
      for (std::size_t i = 0; i < words; ++i) {
        ASSERT_EQ(data[i], local_golden[i])
            << "rank " << rank << " word " << i;
      }
      cluster.node(rank).barrier();
    }
  });
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, RandomConsistency,
    ::testing::Values(Scenario{2, 4, 6, 101, true},
                      Scenario{2, 4, 6, 102, false},
                      Scenario{3, 8, 5, 103, true},
                      Scenario{4, 8, 5, 104, true},
                      Scenario{4, 8, 5, 105, false},
                      Scenario{5, 16, 4, 106, true},
                      Scenario{8, 16, 3, 107, true}),
    [](const auto& info) {
      return std::to_string(info.param.nodes) + "n" +
             std::to_string(info.param.pages) + "p" +
             (info.param.migration ? "mig" : "fix") +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace parade::dsm
