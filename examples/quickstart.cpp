// Quickstart: the ParADE runtime API in one file.
//
// Computes pi by numerical integration on a virtual SMP cluster: shared data
// in the DSM pool, a worksharing loop across all nodes' threads, and one
// hybrid reduction (node-local pthread combining + one MPI_Allreduce).
//
//   ./quickstart                 # 2 nodes x 2 threads (defaults)
//   PARADE_NODES=8 ./quickstart  # 8 nodes
//   PARADE_NET=fastether ./quickstart
#include <cstdio>

#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

int main() {
  using namespace parade;

  RuntimeConfig config = runtime_config_from_env();
  VirtualCluster cluster(config);

  const long steps = 1'000'000;
  const double step = 1.0 / static_cast<double>(steps);

  const VirtualUs vtime = cluster.exec([&] {
    // A shared array in the DSM pool, filled cooperatively.
    auto* partials = shmalloc_array<double>(static_cast<std::size_t>(
        num_threads()));
    double pi_replica = 0.0;

    parallel([&] {
      double local = 0.0;
      parallel_for(0, steps, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          const double x = (static_cast<double>(i) + 0.5) * step;
          local += 4.0 / (1.0 + x * x);
        }
      });
      partials[thread_id()] = local * step;  // DSM write, for show
      // The ParADE fast path: no DSM locks, no twins/diffs, one collective.
      team_update(&pi_replica, local * step, mp::Op::kSum);
    });

    if (is_master()) {
      std::printf("pi        = %.9f\n", pi_replica);
      std::printf("nodes     = %d, threads/node = %d\n", num_nodes(),
                  threads_per_node());
    }
  });

  std::printf("virtual execution time: %.3f ms (modeled cluster)\n",
              vtime / 1000.0);
  cluster.shutdown();
  return 0;
}
