# Empty compiler generated dependencies file for adaptive_config.
# This may be replaced when dependencies are built.
