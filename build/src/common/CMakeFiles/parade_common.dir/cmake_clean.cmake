file(REMOVE_RECURSE
  "CMakeFiles/parade_common.dir/env.cpp.o"
  "CMakeFiles/parade_common.dir/env.cpp.o.d"
  "CMakeFiles/parade_common.dir/log.cpp.o"
  "CMakeFiles/parade_common.dir/log.cpp.o.d"
  "CMakeFiles/parade_common.dir/nas_rng.cpp.o"
  "CMakeFiles/parade_common.dir/nas_rng.cpp.o.d"
  "CMakeFiles/parade_common.dir/status.cpp.o"
  "CMakeFiles/parade_common.dir/status.cpp.o.d"
  "CMakeFiles/parade_common.dir/timing.cpp.o"
  "CMakeFiles/parade_common.dir/timing.cpp.o.d"
  "libparade_common.a"
  "libparade_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
