file(REMOVE_RECURSE
  "CMakeFiles/adaptive_config.dir/adaptive_config.cpp.o"
  "CMakeFiles/adaptive_config.dir/adaptive_config.cpp.o.d"
  "adaptive_config"
  "adaptive_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
