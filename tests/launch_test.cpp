// End-to-end multi-process deployment: parade_run forks node processes that
// rendezvous over Unix-domain sockets and run the full DSM + runtime stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

std::string run_command(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  *exit_code = pclose(pipe);
  return output;
}

std::string binary(const char* name) {
  return std::string(PARADE_BINARY_DIR) + name;
}

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  std::size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

class ParadeRunNodes : public ::testing::TestWithParam<int> {};

TEST_P(ParadeRunNodes, ClusterRunsAndVerifies) {
  const int nodes = GetParam();
  int code = 0;
  const std::string out = run_command(
      binary("/src/launch/parade_run") + " -n " + std::to_string(nodes) +
          " -t 2 " + binary("/tests/launch_helper"),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_EQ(count_occurrences(out, ": OK"), nodes) << out;
  EXPECT_EQ(count_occurrences(out, "BAD"), 0) << out;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParadeRunNodes, ::testing::Values(1, 2, 4));

TEST(ParadeRun, UsageErrors) {
  int code = 0;
  run_command(binary("/src/launch/parade_run"), &code);
  EXPECT_NE(code, 0);
  run_command(binary("/src/launch/parade_run") + " -n 0 /bin/true", &code);
  EXPECT_NE(code, 0);
}

TEST(ParadeRun, PropagatesChildFailure) {
  int code = 0;
  run_command(binary("/src/launch/parade_run") + " -n 2 /bin/false", &code);
  EXPECT_NE(code, 0);
}


TEST(ParadeRun, TranslatedProgramOnSocketCluster) {
  // Full toolchain x full deployment: the build-time-translated OpenMP pi
  // program on a real multi-process socket cluster.
  int code = 0;
  const std::string out = run_command(
      binary("/src/launch/parade_run") + " -n 3 -t 2 " +
          binary("/examples/translated_pi"),
      &code);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("pi=3.141592654"), std::string::npos) << out;
}

}  // namespace
