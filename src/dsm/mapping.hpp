// SegmentPool: one contiguous memfd/SysV-backed region holding every view of
// the node's shared pool, with view bases computed by arithmetic in the stmgc
// segment style (REAL_ADDRESS(segment_base, obj) = base + offset).
//
// Layout: a single 3*pool_bytes virtual reservation split into equal views,
//
//   [kApp  | view 0]  protection-managed application view (initially NONE)
//   [kSys  | view 1]  always-writable system view of the *same* frames
//   [kTwin | view 2]  twin frames: per-page pristine copies used for diffing
//
// kApp and kSys map the same physical frames — the paper's §5.1 solution to
// the atomic page update problem. A multi-threaded SDSM cannot simply flip a
// page writable and copy the new contents in: another application thread
// could slip through the window and read a half-updated page without
// faulting. The runtime updates pages through the system view and only then
// grants access in the protection-managed application view. kTwin maps a
// second set of frames from the same backing object, so a page's twin is
// found by the same `real_address` arithmetic instead of a per-page heap
// vector.
//
// Methods (paper §5.1): file/memfd mapping and System V shared memory are
// fully implemented; mdup() (their custom syscall) and the child-process
// page-table trick are represented by create() returning kUnsupported with an
// explanation, so callers and tests can probe method availability uniformly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "dsm/config.hpp"

namespace parade::dsm {

/// The three per-node views of the pool, in reservation order.
enum class View : unsigned { kApp = 0, kSys = 1, kTwin = 2 };

inline constexpr std::size_t kNumViews = 3;

class SegmentPool {
 public:
  /// Maps `pool_bytes` of shared frames (plus an equally sized twin area)
  /// with the requested method. `pool_bytes` must be a positive multiple of
  /// `page_bytes`, and `page_bytes` a multiple of the hardware page size.
  static Result<std::unique_ptr<SegmentPool>> create(std::size_t pool_bytes,
                                                     std::size_t page_bytes,
                                                     MapMethod method);
  ~SegmentPool();

  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  /// Base of a view: `base_ + view_index * pool_bytes` (stmgc's
  /// get_segment_base). Every address in the pool is view base + arithmetic.
  std::byte* view_base(View view) const {
    return base_ + static_cast<std::size_t>(view) * pool_bytes_;
  }

  /// stmgc-style REAL_ADDRESS: the byte at `offset` into `page` as seen
  /// through `view`. Pure arithmetic; no bounds check (see checked_address).
  std::byte* real_address(View view, PageId page, std::size_t offset) const {
    return view_base(view) + static_cast<std::size_t>(page) * page_bytes_ +
           offset;
  }

  /// Bounds-checked real_address for untrusted page/offset pairs.
  Result<std::byte*> checked_address(View view, PageId page,
                                     std::size_t offset) const;

  /// Inverse of real_address: decomposes a pointer inside the reservation
  /// back into (view, page, offset). nullopt when `p` is outside the pool.
  struct Located {
    View view;
    PageId page;
    std::size_t offset;
  };
  std::optional<Located> locate(const std::byte* p) const;

  /// Protection-managed application view (initially PROT_NONE).
  std::byte* app_view() const { return view_base(View::kApp); }
  /// Always-writable system view of the same physical memory.
  std::byte* sys_view() const { return view_base(View::kSys); }
  /// Twin frame area (always writable, distinct frames).
  std::byte* twin_view() const { return view_base(View::kTwin); }

  std::size_t pool_bytes() const { return pool_bytes_; }
  std::size_t page_bytes() const { return page_bytes_; }
  std::size_t num_pages() const { return pool_bytes_ / page_bytes_; }
  MapMethod method() const { return method_; }

  /// mprotect() on [offset, offset+length) of the application view.
  /// `prot` is a PROT_* combination. Out-of-range requests return an error
  /// Status instead of touching neighbouring views.
  Status protect_app(std::size_t offset, std::size_t length, int prot);

 private:
  SegmentPool(std::byte* base, std::size_t pool_bytes, std::size_t page_bytes,
              MapMethod method, int fd)
      : base_(base), pool_bytes_(pool_bytes), page_bytes_(page_bytes),
        method_(method), fd_(fd) {}

  std::byte* base_;         // start of the 3*pool_bytes reservation
  std::size_t pool_bytes_;  // bytes per view
  std::size_t page_bytes_;
  MapMethod method_;
  int fd_;  // memfd (kMemfd) or -1
};

const char* to_string(MapMethod method);

/// Parses a PARADE_MAP_METHOD value ("memfd", "sysv", "mdup",
/// "child-process"); nullopt for anything else.
std::optional<MapMethod> parse_map_method(const std::string& name);

}  // namespace parade::dsm
