// Conjugate-gradient kernel in the structure of NAS CG (NPB 2.3): a power
// iteration of `niter` outer steps, each running 25 CG iterations on a
// sparse symmetric positive-definite matrix, reporting
// zeta = shift + 1 / (x·z).
//
// Substitution note (see DESIGN.md): NPB's makea matrix generator is replaced
// by a deterministic symmetric generator with the same size, nonzeros per
// row, and a mix of near- and far-diagonal bands (so the SPMV's remote-page
// access pattern is preserved). Verification is serial-vs-ParADE equivalence
// plus convergence checks, not NPB's zeta tables.
#pragma once

#include <vector>

namespace parade::apps {

/// Which sparse matrix to run on: the fast deterministic banded generator,
/// or the bit-faithful NPB 2.3 makea port (verifies against NPB's published
/// zeta values; see cg_nas.cpp).
enum class CgGenerator { kBanded, kNas };

struct CgParams {
  int na = 1400;      // rows; class S=1400, W=7000, A=14000
  int nonzer = 7;     // nonzeros per generated row-vector; S=7, W=8, A=11
  int niter = 15;     // outer power iterations
  double shift = 10;  // S=10, W=12, A=20
  CgGenerator generator = CgGenerator::kBanded;

  static CgParams class_s() { return {1400, 7, 15, 10.0, CgGenerator::kNas}; }
  static CgParams class_w() { return {7000, 8, 15, 12.0, CgGenerator::kNas}; }
  static CgParams class_a() {
    return {14000, 11, 15, 20.0, CgGenerator::kNas};
  }
};

struct CgResult {
  double zeta = 0.0;
  double last_rnorm = 0.0;  // ||r|| after the final conj_grad call
};

/// CSR symmetric positive-definite test matrix.
struct SparseMatrix {
  int n = 0;
  std::vector<int> rowstr;   // n+1
  std::vector<int> colidx;   // nnz
  std::vector<double> values;

  std::size_t nnz() const { return values.size(); }
};

/// Deterministic banded generator (same matrix for the same params
/// everywhere; fast, used by default).
SparseMatrix make_cg_matrix(const CgParams& params);

/// Bit-faithful NPB 2.3 makea (cg_nas.cpp). Ignores params.generator.
SparseMatrix make_nas_cg_matrix(const CgParams& params);

/// Dispatches on params.generator.
SparseMatrix make_cg_matrix_for(const CgParams& params);

/// NPB published zeta for the S/W/A parameter sets (valid only with the NAS
/// generator and niter=15); returns false when no reference exists.
bool cg_reference_zeta(const CgParams& params, double* zeta);

/// Single-threaded reference.
CgResult cg_serial(const CgParams& params);

/// SPMD ParADE version (call inside a cluster program on every node).
/// Vectors and the matrix live in the DSM pool; dot products and norms use
/// the hybrid collective reductions.
CgResult cg_parade(const CgParams& params);

}  // namespace parade::apps
