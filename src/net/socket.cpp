#include "net/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "common/timing.hpp"

namespace parade::net {
namespace {

// On-wire frame header (packed copy of MessageHeader fields).
struct WireHeader {
  std::int32_t src;
  std::int32_t dst;
  std::int32_t tag;
  std::uint32_t payload_size;
  double vtime;
};

// Version gate for the trace-context frame extension. A v2 frame is
// [kWireMagicV2][WireHeader][WireTraceExt][payload]; a v1 frame starts
// directly with WireHeader. The first 4 bytes disambiguate: they are either
// the magic or WireHeader.src, and src is a rank in [0, size) which can
// never equal the magic — so pre-trace peers' frames (and old captures)
// still decode. Traced sends only: an untraced process keeps writing v1.
inline constexpr std::uint32_t kWireMagicV2 = 0x32444150;  // "PAD2", LE

struct WireTraceExt {
  std::uint64_t trace_id;
  std::uint64_t span_id;
};

static_assert(sizeof(WireHeader) == 24, "v1 frame layout is wire ABI");
static_assert(sizeof(WireTraceExt) == 16, "v2 extension layout is wire ABI");

std::string socket_path(const std::string& dir, NodeId rank) {
  return dir + "/node-" + std::to_string(rank) + ".sock";
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketFabric::SocketFabric(NodeId rank, int size) : Channel(rank, size) {
  peers_.resize(static_cast<std::size_t>(size));
  for (auto& peer : peers_) peer = std::make_unique<Peer>();
}

Result<std::unique_ptr<SocketFabric>> SocketFabric::create(
    NodeId rank, int size, const std::string& dir, int timeout_ms) {
  auto fabric = std::unique_ptr<SocketFabric>(new SocketFabric(rank, size));
  if (Status status = fabric->establish(dir, timeout_ms); !status) {
    return status;
  }
  return fabric;
}

Status SocketFabric::establish(const std::string& dir, int timeout_ms) {
  const std::string my_path = socket_path(dir, rank_);
  ::unlink(my_path.c_str());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return make_error(ErrorCode::kIoError, "socket() failed");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (my_path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument, "socket path too long");
  }
  std::strncpy(addr.sun_path, my_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return make_error(ErrorCode::kIoError, "bind(" + my_path + ") failed");
  }
  if (::listen(listen_fd_, size_) != 0) {
    return make_error(ErrorCode::kIoError, "listen() failed");
  }

  const std::int64_t deadline = wall_ns() + std::int64_t(timeout_ms) * 1'000'000;

  // Dial every lower rank, retrying while it may still be starting up.
  for (NodeId peer = 0; peer < rank_; ++peer) {
    const std::string peer_path = socket_path(dir, peer);
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) return make_error(ErrorCode::kIoError, "socket() failed");
      sockaddr_un peer_addr{};
      peer_addr.sun_family = AF_UNIX;
      std::strncpy(peer_addr.sun_path, peer_path.c_str(),
                   sizeof(peer_addr.sun_path) - 1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&peer_addr),
                    sizeof(peer_addr)) == 0) {
        break;
      }
      ::close(fd);
      if (wall_ns() > deadline) {
        return make_error(ErrorCode::kTimeout,
                          "timed out connecting to " + peer_path);
      }
      ::usleep(2000);
    }
    const std::int32_t my_rank = rank_;
    if (!write_all(fd, &my_rank, sizeof(my_rank))) {
      ::close(fd);
      return make_error(ErrorCode::kIoError, "handshake write failed");
    }
    peers_[static_cast<std::size_t>(peer)]->fd = fd;
  }

  // Accept every higher rank.
  for (NodeId pending = rank_ + 1; pending < size_; ++pending) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return make_error(ErrorCode::kIoError, "accept() failed");
    std::int32_t peer_rank = -1;
    if (!read_all(fd, &peer_rank, sizeof(peer_rank)) || peer_rank <= rank_ ||
        peer_rank >= size_) {
      ::close(fd);
      return make_error(ErrorCode::kIoError, "bad handshake");
    }
    peers_[static_cast<std::size_t>(peer_rank)]->fd = fd;
  }

  for (NodeId peer = 0; peer < size_; ++peer) {
    if (peer == rank_) continue;
    readers_.emplace_back([this, peer] { reader_loop(peer); });
  }
  return Status::ok();
}

void SocketFabric::reader_loop(NodeId peer) {
  const int fd = peers_[static_cast<std::size_t>(peer)]->fd;
  for (;;) {
    // Peek the version gate: magic → v2 frame with a trace extension,
    // anything else is WireHeader.src of a v1 frame (ranks never alias the
    // magic), so the remaining 20 header bytes follow.
    std::uint32_t first = 0;
    if (!read_all(fd, &first, sizeof(first))) break;
    WireHeader wire{};
    WireTraceExt ext{};
    if (first == kWireMagicV2) {
      if (!read_all(fd, &wire, sizeof(wire))) break;
      if (!read_all(fd, &ext, sizeof(ext))) break;
    } else {
      std::memcpy(&wire, &first, sizeof(first));
      if (!read_all(fd, reinterpret_cast<char*>(&wire) + sizeof(first),
                    sizeof(wire) - sizeof(first))) {
        break;
      }
    }
    std::vector<std::uint8_t> payload(wire.payload_size);
    if (wire.payload_size > 0 &&
        !read_all(fd, payload.data(), payload.size())) {
      break;
    }
    MessageHeader header;
    header.src = wire.src;
    header.dst = wire.dst;
    header.tag = wire.tag;
    header.vtime = wire.vtime;
    header.trace_id = ext.trace_id;
    header.span_id = ext.span_id;
    if (!deliver_local(Message(header, std::move(payload)))) break;
  }
  // The stream is gone: receivers blocked waiting on this peer must observe
  // kUnavailable instead of hanging forever.
  inbox_.mark_peer_down(peer);
}

Status SocketFabric::send(NodeId dst, Tag tag,
                          std::vector<std::uint8_t> payload, VirtualUs vtime) {
  PARADE_CHECK_MSG(dst >= 0 && dst < size_, "send to invalid rank");
  const bool traced = obs::Registry::instance().trace_enabled();
  const obs::SpanContext ctx =
      traced ? obs::current_span_context() : obs::SpanContext{};
  if (dst == rank_) {
    MessageHeader header;
    header.src = rank_;
    header.dst = dst;
    header.tag = tag;
    header.vtime = vtime;
    header.trace_id = ctx.trace_id;
    header.span_id = ctx.span_id;
    record_send(dst, tag, payload.size(), vtime);
    return deliver_local(Message(header, std::move(payload)));
  }
  WireHeader wire{};
  wire.src = rank_;
  wire.dst = dst;
  wire.tag = tag;
  wire.payload_size = static_cast<std::uint32_t>(payload.size());
  wire.vtime = vtime;
  WireTraceExt ext{};
  ext.trace_id = ctx.trace_id;
  ext.span_id = ctx.span_id;

  Peer& peer = *peers_[static_cast<std::size_t>(dst)];
  std::lock_guard lock(peer.send_mutex);
  if (peer.fd < 0) {
    return make_error(ErrorCode::kUnavailable,
                      "peer " + std::to_string(dst) + " is down");
  }
  const bool header_ok =
      traced ? write_all(peer.fd, &kWireMagicV2, sizeof(kWireMagicV2)) &&
                   write_all(peer.fd, &wire, sizeof(wire)) &&
                   write_all(peer.fd, &ext, sizeof(ext))
             : write_all(peer.fd, &wire, sizeof(wire));
  if (!header_ok ||
      (!payload.empty() && !write_all(peer.fd, payload.data(), payload.size()))) {
    return make_error(ErrorCode::kIoError,
                      "socket send to node " + std::to_string(dst) +
                          " failed: " + std::strerror(errno));
  }
  record_send(dst, tag, payload.size(), vtime);
  return Status::ok();
}

void SocketFabric::shutdown() {
  {
    std::lock_guard lock(state_mutex_);
    if (down_) return;
    down_ = true;
  }
  for (auto& peer : peers_) {
    std::lock_guard lock(peer->send_mutex);
    if (peer->fd >= 0) {
      ::shutdown(peer->fd, SHUT_RDWR);
    }
  }
  for (auto& reader : readers_) reader.join();
  for (auto& peer : peers_) {
    if (peer->fd >= 0) {
      ::close(peer->fd);
      peer->fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  Channel::shutdown();
}

SocketFabric::~SocketFabric() { shutdown(); }

}  // namespace parade::net
