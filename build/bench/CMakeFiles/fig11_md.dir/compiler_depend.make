# Empty compiler generated dependencies file for fig11_md.
# This may be replaced when dependencies are built.
