# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dsm_atomic_update_test.
