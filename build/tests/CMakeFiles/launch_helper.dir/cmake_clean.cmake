file(REMOVE_RECURSE
  "CMakeFiles/launch_helper.dir/launch_helper_main.cpp.o"
  "CMakeFiles/launch_helper.dir/launch_helper_main.cpp.o.d"
  "launch_helper"
  "launch_helper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_helper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
