#include "net/mailbox.hpp"

namespace parade::net {

bool Mailbox::deliver(Message message) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
  return true;
}

std::optional<Message> Mailbox::take_locked(const Matcher& match) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (match(it->header)) {
      Message found = std::move(*it);
      queue_.erase(it);
      return found;
    }
  }
  return std::nullopt;
}

std::optional<Message> Mailbox::recv_match(const Matcher& match) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (auto found = take_locked(match)) return found;
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

std::optional<Message> Mailbox::try_recv_match(const Matcher& match) {
  std::lock_guard lock(mutex_);
  return take_locked(match);
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace parade::net
