// Tag-space isolation under load: user point-to-point traffic, runtime
// collectives, DSM page fetches, DSM locks, and barriers all share one
// channel/mailbox per node; none of the message classes may consume another
// class's messages. This stresses the invariant behind the paper's single
// communication thread per node (§5.3).
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/api.hpp"
#include "runtime/cluster.hpp"
#include "runtime/omp_shim.hpp"

namespace parade {
namespace {

TEST(MixedTraffic, P2PAndDsmAndCollectivesInterleave) {
  RuntimeConfig config;
  config.nodes = 3;
  config.threads_per_node = 2;
  config.dsm.pool_bytes = 4 << 20;
  VirtualCluster cluster(config);
  std::atomic<int> failures{0};

  cluster.exec([&] {
    auto* shared = shmalloc_array<std::int64_t>(3 * 512);  // one page per node
    barrier();

    for (int round = 0; round < 5; ++round) {
      // 1. DSM traffic: each node rewrites its own page, reads the others.
      shared[node_id() * 512] = round * 10 + node_id();
      barrier();
      for (int n = 0; n < 3; ++n) {
        if (shared[n * 512] != round * 10 + n) failures.fetch_add(1);
      }
      barrier();

      // 2. User point-to-point on the same channel, ring pattern.
      mp::Comm& comm = this_node().comm();
      const std::int64_t token = 1000 * round + node_id();
      comm.send((node_id() + 1) % 3, /*tag=*/50 + round, &token, sizeof(token));
      std::int64_t received = -1;
      comm.recv((node_id() + 2) % 3, 50 + round, &received, sizeof(received));
      if (received != 1000 * round + (node_id() + 2) % 3) failures.fetch_add(1);

      // 3. Collectives + DSM locks inside a parallel region, interleaved
      // with remote page faults from the loop bodies.
      double replica = 0.0;
      parallel([&] {
        parallel_for(0, 3 * 512, Schedule{ScheduleKind::kDynamic, 64},
                     [&](long lo, long hi) {
                       std::int64_t sum = 0;
                       for (long i = lo; i < hi; ++i) sum += shared[i];
                       (void)sum;
                     });
        team_update(&replica, 1.0, mp::Op::kSum);
        critical_conventional(9, [&] {
          shared[1] = shared[1] + 1;  // lock-protected shared update
        });
      });
      if (replica != 6.0) failures.fetch_add(1);
      barrier();
    }

    // Lock-protected increments: 6 threads x 5 rounds on top of round 4's
    // base value written by node 1 (slot 1 of page 0 belongs to node 0's
    // page, written only under the lock and in round writes by node 0...
    // just verify it grew by the expected increment count since round 4.
  });
  cluster.shutdown();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MixedTraffic, AnyTagRecvNeverStealsProtocolMessages) {
  RuntimeConfig config;
  config.nodes = 2;
  config.threads_per_node = 1;
  config.dsm.pool_bytes = 2 << 20;
  VirtualCluster cluster(config);
  std::atomic<int> failures{0};

  cluster.exec([&] {
    auto* page = shmalloc_array<std::int64_t>(512);
    if (node_id() == 0) page[0] = 7;
    barrier();

    mp::Comm& comm = this_node().comm();
    if (node_id() == 0) {
      const int v = 99;
      comm.send(1, 3, &v, sizeof(v));
      barrier();  // DSM barrier protocol messages fly here
    } else {
      // Fault a page (protocol request/reply on the same mailbox), then do a
      // wildcard receive — it must find the user message, not protocol junk.
      if (page[0] != 7) failures.fetch_add(1);
      barrier();
      int v = 0;
      mp::RecvStatus status = comm.recv(kAnyNode, kAnyTag, &v, sizeof(v));
      if (v != 99 || status.tag != 3) failures.fetch_add(1);
    }
    barrier();
  });
  cluster.shutdown();
  EXPECT_EQ(failures.load(), 0);
}

TEST(MixedTraffic, OmpScheduleFromEnv) {
  setenv("OMP_SCHEDULE", "dynamic,8", 1);
  Schedule s = schedule_from_env();
  EXPECT_EQ(s.kind, ScheduleKind::kDynamic);
  EXPECT_EQ(s.chunk, 8);
  setenv("OMP_SCHEDULE", "guided", 1);
  EXPECT_EQ(schedule_from_env().kind, ScheduleKind::kGuided);
  setenv("OMP_SCHEDULE", "static,16", 1);
  s = schedule_from_env();
  EXPECT_EQ(s.kind, ScheduleKind::kStaticChunk);
  EXPECT_EQ(s.chunk, 16);
  unsetenv("OMP_SCHEDULE");
  EXPECT_EQ(schedule_from_env().kind, ScheduleKind::kStatic);
}

TEST(MixedTraffic, OmpLockApiFromRuntime) {
  RuntimeConfig config;
  config.nodes = 2;
  config.threads_per_node = 2;
  config.dsm.pool_bytes = 2 << 20;
  VirtualCluster cluster(config);
  cluster.exec([&] {
    auto* counter = shmalloc_array<std::int64_t>(1);
    if (node_id() == 0) *counter = 0;
    barrier();
    ompshim::omp_lock_t lock;
    ompshim::omp_init_lock(&lock);
    EXPECT_GE(lock, 64);  // above the translator's critical-name range
    parallel([&] {
      for (int i = 0; i < 3; ++i) {
        ompshim::omp_set_lock(&lock);
        *counter = *counter + 1;
        ompshim::omp_unset_lock(&lock);
      }
    });
    EXPECT_EQ(*counter, 3 * num_threads());
    ompshim::omp_destroy_lock(&lock);
  });
  cluster.shutdown();
}

}  // namespace
}  // namespace parade
