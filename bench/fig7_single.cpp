// Figure 7: latency of the OpenMP `single` directive — ParADE's translation
// (node-local claim + MPI_Bcast, no inter-node barrier; Figure 3 right) vs
// the conventional SDSM translation (DSM lock + shared flag + SDSM barrier;
// Figure 3 left).
#include "bench/figure_common.hpp"
#include "runtime/api.hpp"

namespace parade {
namespace {

double parade_single_us(int nodes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  const double seconds = run_virtual_cluster_s(config, [&] {
    double value = 0.0;
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        single_small(&value, sizeof(value),
                     [&] { value = static_cast<double>(i); });
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

double kdsm_single_us(int nodes, long iters) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  config.dsm.sync_mode = dsm::SyncMode::kConventional;
  config.dsm.home_migration = false;
  const double seconds = run_virtual_cluster_s(config, [&] {
    auto* flag = shmalloc_array<std::int64_t>(1);
    auto* value = shmalloc_array<double>(1);
    if (node_id() == 0) {
      *flag = 0;
      *value = 0.0;
    }
    barrier();
    parallel([&] {
      for (long i = 0; i < iters; ++i) {
        single_conventional(2, flag, i + 1,
                            [&] { *value = static_cast<double>(i); });
      }
    });
  });
  return seconds * 1e6 / static_cast<double>(iters);
}

}  // namespace
}  // namespace parade

int main(int argc, char** argv) {
  using namespace parade;
  const long iters = bench::arg_long(argc, argv, "iters", 40);

  bench::Series parade_series{"ParADE", {}};
  bench::Series kdsm_series{"KDSM", {}};
  for (const int nodes : bench::kNodeSweep) {
    parade_series.values.push_back(parade_single_us(nodes, iters));
    kdsm_series.values.push_back(kdsm_single_us(nodes, iters));
  }
  bench::print_figure(
      "Figure 7: single directive latency, ParADE vs conventional SDSM "
      "(virtual time)",
      "us/op", bench::kNodeSweep, {parade_series, kdsm_series});
  return 0;
}
