// Paper §8 future work, implemented: "more processors do not always give
// better performance. For a given problem, we want to find the best
// configuration." This example probes a workload on short runs across node
// counts and CPU configurations, then reports the best full-run choice —
// the measurement-driven adaptation the authors proposed.
//
//   ./adaptive_config [grid_n]
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "apps/helmholtz.hpp"
#include "runtime/cluster.hpp"
#include "vtime/cost_model.hpp"

namespace {

double probe(int nodes, parade::vtime::NodeConfig node_config, int grid_n,
             int iters) {
  using namespace parade;
  RuntimeConfig config;
  config.nodes = nodes;
  config.with_node_config(node_config);
  config.cpu_scale = vtime::cpu_scale_from_env();
  config.dsm.net = vtime::model_from_env();
  config.dsm.pool_bytes = 32u << 20;

  apps::HelmholtzParams params;
  params.n = params.m = grid_n;
  params.max_iters = iters;
  params.tol = 0.0;
  apps::HelmholtzResult result;
  return run_virtual_cluster_s(config,
                               [&] { result = apps::helmholtz_parade(params); });
}

}  // namespace

int main(int argc, char** argv) {
  using parade::vtime::NodeConfig;
  const int grid_n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int probe_iters = 8;

  std::printf("Probing Helmholtz %dx%d (%d-iteration probes, virtual time)\n",
              grid_n, grid_n, probe_iters);
  std::printf("%-8s %-14s %10s\n", "nodes", "config", "probe[s]");

  double best = std::numeric_limits<double>::infinity();
  int best_nodes = 1;
  NodeConfig best_config = NodeConfig::k1Thread1Cpu;
  for (const int nodes : {1, 2, 4, 8}) {
    for (const NodeConfig node_config :
         {NodeConfig::k1Thread1Cpu, NodeConfig::k1Thread2Cpu,
          NodeConfig::k2Thread2Cpu}) {
      const double seconds = probe(nodes, node_config, grid_n, probe_iters);
      std::printf("%-8d %-14s %10.4f\n", nodes,
                  parade::vtime::to_string(node_config), seconds);
      if (seconds < best) {
        best = seconds;
        best_nodes = nodes;
        best_config = node_config;
      }
    }
  }

  std::printf("\nSelected configuration: %d nodes, %s\n", best_nodes,
              parade::vtime::to_string(best_config));
  const double full = probe(best_nodes, best_config, grid_n, 80);
  std::printf("Full run (80 iterations) at the selected configuration: %.3f s "
              "(virtual)\n",
              full);
  return 0;
}
