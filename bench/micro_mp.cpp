// google-benchmark microbenchmarks for the message-passing library:
// in-process ping-pong latency/bandwidth and collective operations at
// several node counts. Wall-clock numbers for the implementation itself.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "mp/comm.hpp"
#include "net/inproc.hpp"
#include "vtime/cost_model.hpp"

namespace parade::mp {
namespace {

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  net::InProcFabric fabric(2);
  Comm comm0(fabric.channel(0), vtime::ideal());
  Comm comm1(fabric.channel(1), vtime::ideal());
  std::vector<std::uint8_t> payload(bytes, 0xAB);

  std::atomic<bool> stop{false};
  std::thread echo([&] {
    std::vector<std::uint8_t> buffer(bytes);
    for (;;) {
      RecvStatus status;
      auto data = comm1.try_recv_bytes(0, 5, &status);
      if (!data) {
        if (stop.load(std::memory_order_relaxed)) return;
        std::this_thread::yield();
        continue;
      }
      comm1.send(0, 6, data->data(), data->size());
    }
  });

  std::vector<std::uint8_t> buffer(bytes);
  for (auto _ : state) {
    comm0.send(1, 5, payload.data(), payload.size());
    comm0.recv(1, 6, buffer.data(), buffer.size());
  }
  stop.store(true);
  echo.join();
  fabric.shutdown();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * bytes));
}
BENCHMARK(BM_PingPong)->Arg(8)->Arg(4096)->Arg(65536);

template <typename Body>
void run_ranks(int n, const Body& body) {
  net::InProcFabric fabric(n);
  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    comms.push_back(std::make_unique<Comm>(fabric.channel(r), vtime::ideal()));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] { body(*comms[static_cast<std::size_t>(r)]); });
  }
  for (auto& t : threads) t.join();
  fabric.shutdown();
}

void BM_Allreduce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_ranks(n, [](Comm& comm) {
      double value = static_cast<double>(comm.rank());
      comm.allreduce(&value, 1, DType::kDouble, Op::kSum);
      benchmark::DoNotOptimize(value);
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_Bcast64k(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_ranks(n, [](Comm& comm) {
      std::vector<std::uint8_t> data(65536, static_cast<std::uint8_t>(1));
      comm.bcast(data.data(), data.size(), 0);
      benchmark::DoNotOptimize(data);
    });
  }
}
BENCHMARK(BM_Bcast64k)->Arg(2)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_ranks(n, [](Comm& comm) { comm.barrier(); });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

}  // namespace
}  // namespace parade::mp

BENCHMARK_MAIN();
