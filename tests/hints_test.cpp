// Protocol-hint synthesis tests (docs/ANALYZER.md "Protocol hints"): affine
// footprints from literal loop bounds, the update-vs-invalidate prior rule,
// SPMD pool offsets mirroring codegen's allocation order, the hint-driven
// promotion that replaces the raw threshold comparison in collective-vs-DSM
// lowering (including the revert when the symbol is pinned to the DSM pool),
// the embedded sidecar in generated programs, and the parade_omcc
// --hints=json CLI surface.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "translator/analyze.hpp"
#include "translator/translate.hpp"

namespace parade::translator {
namespace {

Analysis analyze_ok(const std::string& source, AnalyzeOptions options = {}) {
  return analyze_source(source, options).value_or_die();
}

// The corpus program for the lowering flip: an 8-byte double guarded by a
// critical, read twice more per write elsewhere in the region. Under
// --threshold=4 the raw comparison rejects the collective (8 > 4); the hint
// prior (8 <= 4*threshold, reads >= 2*writes) promotes it back.
const char* kFlipProgram =
    "double acc;\n"
    "double probe;\n"
    "int main(void) {\n"
    "  int i;\n"
    "  #pragma omp parallel for\n"
    "  for (i = 0; i < 8; i++) {\n"
    "    #pragma omp critical\n"
    "    {\n"
    "      acc = acc + 2.0;\n"
    "    }\n"
    "    probe = acc + acc;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

TEST(Hints, AffineArrayFootprintFromLiteralBounds) {
  const Analysis a = analyze_ok(
      "double grid[64][64];\n"
      "int main(void) {\n"
      "  int i, j;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 16; i++) {\n"
      "    for (j = 0; j < 8; j++) {\n"
      "      grid[i][j] = 1.0;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const SymbolHint* h = a.hints.find("grid");
  ASSERT_NE(h, nullptr);
  // 16 * 8 iterations touch one 8-byte element each; the affine footprint is
  // far below the declared 64*64*8 bytes.
  EXPECT_EQ(h->footprint_bytes, 16u * 8u * 8u);
  EXPECT_EQ(h->byte_size, 64u * 64u * 8u);
  EXPECT_EQ(h->writer_constructs, 1);
  EXPECT_TRUE(h->migration_friendly);
  EXPECT_EQ(h->expected_page_touches, (16u * 8u * 8u + 4095u) / 4096u);
}

TEST(Hints, SymbolicBoundResolvedFromFileScopeLiteral) {
  const Analysis a = analyze_ok(
      "static long n = 100;\n"
      "double v[4096];\n"
      "int main(void) {\n"
      "  long i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < n; i++) {\n"
      "    v[i] = 1.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const SymbolHint* h = a.hints.find("v");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->footprint_bytes, 100u * 8u);
}

TEST(Hints, UpdatePriorNeedsReadDominanceAndSmallSize) {
  AnalyzeOptions options;
  options.mp_threshold_bytes = 4;
  const Analysis a = analyze_ok(kFlipProgram, options);
  const SymbolHint* acc = a.hints.find("acc");
  ASSERT_NE(acc, nullptr);
  EXPECT_GE(acc->reads, 2 * acc->writes);
  EXPECT_TRUE(acc->prefer_update);

  // Write-only symbol: no reads to amortize eager updates.
  const SymbolHint* probe = a.hints.find("probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_FALSE(probe->prefer_update);
}

TEST(Hints, PromotionFlipsThresholdFallbackToCollective) {
  AnalyzeOptions options;
  options.mp_threshold_bytes = 4;
  const Analysis with_hints = analyze_ok(kFlipProgram, options);
  bool found = false;
  for (const auto& [line, dec] : with_hints.sync_sites) {
    (void)line;
    if (dec.var != "acc") continue;
    found = true;
    EXPECT_TRUE(dec.collective) << dec.reason;
    EXPECT_NE(dec.reason.find("promoted"), std::string::npos) << dec.reason;
  }
  EXPECT_TRUE(found);

  options.protocol_hints = false;
  const Analysis without = analyze_ok(kFlipProgram, options);
  for (const auto& [line, dec] : without.sync_sites) {
    (void)line;
    if (dec.var != "acc") continue;
    EXPECT_FALSE(dec.collective);
    EXPECT_TRUE(dec.threshold_fallback);
  }
}

TEST(Hints, PromotionChangesEmittedLowering) {
  TranslateOptions options;
  options.mp_threshold_bytes = 4;
  options.emit_main_wrapper = false;
  const std::string promoted =
      translate_source(kFlipProgram, options).value_or_die();
  EXPECT_NE(promoted.find("team_allreduce_bytes"), std::string::npos);
  EXPECT_EQ(promoted.find("dsm_lock"), std::string::npos);

  options.protocol_hints = false;
  const std::string fallback =
      translate_source(kFlipProgram, options).value_or_die();
  EXPECT_EQ(fallback.find("team_allreduce_bytes"), std::string::npos);
  EXPECT_NE(fallback.find("dsm_lock"), std::string::npos);
}

TEST(Hints, PromotionRevertedWhenSymbolIsPinnedToDsm) {
  // The same guarded update, but an unmanaged parallel write elsewhere pins
  // `acc` to the DSM pool — a collective would no longer cover every writer,
  // so the promotion must back out.
  AnalyzeOptions options;
  options.mp_threshold_bytes = 4;
  const Analysis a = analyze_ok(
      "double acc;\n"
      "double probe;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 8; i++) {\n"
      "    #pragma omp critical\n"
      "    {\n"
      "      acc = acc + 2.0;\n"
      "    }\n"
      "    probe = acc + acc;\n"
      "    acc = probe;\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
      options);
  ASSERT_EQ(a.globals.count("acc"), 1u);
  EXPECT_EQ(a.globals.at("acc").placement, Placement::kDsmScalar);
  for (const auto& [line, dec] : a.sync_sites) {
    (void)line;
    if (dec.var == "acc") EXPECT_FALSE(dec.collective) << dec.reason;
  }
}

TEST(Hints, DefaultThresholdCorpusLoweringUnchanged) {
  // At the paper's 256-byte threshold an 8-byte reduction-shaped critical is
  // collective with or without hints: promotion only widens, never narrows.
  const char* program =
      "double total;\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 8; i++) {\n"
      "    #pragma omp critical\n"
      "    { total = total + 1.5; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  AnalyzeOptions with;
  AnalyzeOptions without;
  without.protocol_hints = false;
  const Analysis a = analyze_ok(program, with);
  const Analysis b = analyze_ok(program, without);
  ASSERT_EQ(a.sync_sites.size(), b.sync_sites.size());
  for (const auto& [line, dec] : a.sync_sites) {
    ASSERT_EQ(b.sync_sites.count(line), 1u);
    EXPECT_EQ(dec.collective, b.sync_sites.at(line).collective);
  }
}

TEST(Hints, PoolOffsetsFollowDeclarationOrderAligned) {
  const Analysis a = analyze_ok(
      "double u[100];\n"
      "double f[100];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 100; i++) {\n"
      "    u[i] = f[i];\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const SymbolHint* u = a.hints.find("u");
  const SymbolHint* f = a.hints.find("f");
  ASSERT_NE(u, nullptr);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(u->dsm);
  EXPECT_TRUE(f->dsm);
  ASSERT_TRUE(u->offset_known);
  ASSERT_TRUE(f->offset_known);
  // `u` is declared first: offset 0; `f` follows at the next 64-byte slot.
  EXPECT_EQ(u->pool_offset, 0u);
  EXPECT_EQ(f->pool_offset, (100u * 8u + 63u) & ~std::size_t{63});
}

TEST(Hints, SidecarJsonRoundTrips) {
  const Analysis a = analyze_ok(
      "double u[100];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 100; i++) { u[i] = 1.0; }\n"
      "  return 0;\n"
      "}\n");
  auto doc = obs::parse_json(a.hints.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  ASSERT_TRUE(doc.value().is_object());
  EXPECT_EQ(doc.value().at("version").as_int(), 2);
  EXPECT_EQ(doc.value().at("page_bytes").as_int(), 4096);
  ASSERT_TRUE(doc.value().at("symbols").is_array());
  bool found_u = false;
  for (const auto& symbol : doc.value().at("symbols").array) {
    if (symbol.at("name").string != "u") continue;
    found_u = true;
    EXPECT_TRUE(symbol.at("dsm").boolean);
    EXPECT_TRUE(symbol.at("offset_known").boolean);
  }
  EXPECT_TRUE(found_u);
}

TEST(Hints, SidecarV2CarriesPhasedRanges) {
  // Two worksharing phases over one array: the v2 sidecar must expose the
  // interference pass's phase records with sharing patterns and the
  // epoch_base the runtime folds phase indices with.
  const Analysis a = analyze_ok(
      "double u[1024];\n"
      "double v[1024];\n"
      "int main(void) {\n"
      "  int i;\n"
      "  int j;\n"
      "  #pragma omp parallel for\n"
      "  for (i = 0; i < 1024; i++) { u[i] = 1.0; }\n"
      "  #pragma omp parallel for\n"
      "  for (j = 0; j < 1024; j++) { v[j] = u[j] * 2.0; }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.hints.epoch_base, 1);
  EXPECT_GT(a.hints.phase_count, 1);
  ASSERT_FALSE(a.hints.phases.empty());
  auto doc = obs::parse_json(a.hints.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  EXPECT_EQ(doc.value().at("epoch_base").as_int(), 1);
  EXPECT_GT(doc.value().at("phase_count").as_int(), 1);
  ASSERT_TRUE(doc.value().at("phases").is_array());
  bool saw_producer = false;
  bool saw_read_mostly = false;
  for (const auto& phase : doc.value().at("phases").array) {
    ASSERT_TRUE(phase.has("index"));
    ASSERT_TRUE(phase.at("ranges").is_array());
    for (const auto& range : phase.at("ranges").array) {
      if (range.at("symbol").string != "u") continue;
      const std::string& pattern = range.at("pattern").string;
      if (pattern == "producer_consumer") saw_producer = true;
      if (pattern == "read_mostly") saw_read_mostly = true;
      EXPECT_GT(range.at("bytes").as_int(), 0);
    }
  }
  EXPECT_TRUE(saw_producer);
  EXPECT_TRUE(saw_read_mostly);
}

TEST(Hints, GeneratedProgramEmbedsSidecar) {
  TranslateOptions options;
  const std::string with =
      translate_source(kFlipProgram, options).value_or_die();
  EXPECT_NE(with.find("__parade_hints_json"), std::string::npos);
  EXPECT_NE(with.find("parade::xlat::launch(__parade_hints_json"),
            std::string::npos);

  options.protocol_hints = false;
  const std::string without =
      translate_source(kFlipProgram, options).value_or_die();
  EXPECT_EQ(without.find("__parade_hints_json"), std::string::npos);
}

// ---------------------------------------------------------------------------
// parade_omcc --hints=json CLI

std::string run_omcc(const std::string& args, int* exit_code) {
  const std::string command =
      std::string(PARADE_BINARY_DIR) + "/src/translator/parade_omcc " + args;
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int status = pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

TEST(OmccCli, HintsJsonEmitsParsableSidecar) {
  int exit_code = -1;
  const std::string output = run_omcc(
      std::string(PARADE_SOURCE_DIR) +
          "/tests/translator_inputs/helmholtz.c --hints=json",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  auto doc = obs::parse_json(output);
  ASSERT_TRUE(doc.is_ok()) << output;
  EXPECT_EQ(doc.value().at("version").as_int(), 2);
  bool found_dsm_symbol = false;
  for (const auto& symbol : doc.value().at("symbols").array) {
    if (symbol.at("dsm").boolean) found_dsm_symbol = true;
  }
  EXPECT_TRUE(found_dsm_symbol) << output;
}

TEST(OmccCli, HintsJsonAndAnalyzeAreMutuallyExclusive) {
  int exit_code = -1;
  run_omcc("--analyze --hints=json nope.c", &exit_code);
  EXPECT_EQ(exit_code, 2);
}

}  // namespace
}  // namespace parade::translator
