file(REMOVE_RECURSE
  "CMakeFiles/helmholtz_solver.dir/helmholtz_solver.cpp.o"
  "CMakeFiles/helmholtz_solver.dir/helmholtz_solver.cpp.o.d"
  "helmholtz_solver"
  "helmholtz_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helmholtz_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
