#include <stdio.h>

static long num_steps = 1000000;
double step;

int main() {
  double x, pi, sum = 0.0;
  long i;
  step = 1.0 / (double)num_steps;
#pragma omp parallel for private(x) reduction(+:sum)
  for (i = 0; i < num_steps; i++) {
    x = (i + 0.5) * step;
    sum = sum + 4.0 / (1.0 + x * x);
  }
  pi = step * sum;
  printf("pi=%.9f\n", pi);
  return 0;
}
