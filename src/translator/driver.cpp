// parade_omcc: the ParADE OpenMP translator CLI.
//
//   parade_omcc input.c [-o output.cpp] [--threshold=BYTES] [--no-main]
//
// Translates an OpenMP C program into a ParADE C++ program. Compile the
// output against the ParADE runtime (see README "Translator" section).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "translator/translate.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: parade_omcc <input.c> [-o <output.cpp>] "
               "[--threshold=BYTES] [--no-main]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  parade::translator::TranslateOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      output = argv[++i];
    } else if (arg.rfind("--threshold=", 0) == 0) {
      options.mp_threshold_bytes =
          static_cast<std::size_t>(std::strtoul(arg.c_str() + 12, nullptr, 10));
    } else if (arg == "--no-main") {
      options.emit_main_wrapper = false;
    } else if (arg.rfind("-", 0) == 0) {
      return usage();
    } else {
      if (!input.empty()) return usage();
      input = arg;
    }
  }
  if (input.empty()) return usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "parade_omcc: cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  auto translated = parade::translator::translate_source(source.str(), options);
  if (!translated.is_ok()) {
    std::fprintf(stderr, "parade_omcc: %s: %s\n", input.c_str(),
                 translated.status().to_string().c_str());
    return 1;
  }

  if (output.empty()) {
    std::fputs(translated.value().c_str(), stdout);
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "parade_omcc: cannot write %s\n", output.c_str());
      return 1;
    }
    out << translated.value();
  }
  return 0;
}
