#include "mp/comm.hpp"

#include <cstring>

#include "common/log.hpp"
#include "common/status.hpp"
#include "obs/registry.hpp"

namespace parade::mp {
namespace {

vtime::ThreadClock* t_clock_get() { return vtime::thread_clock(); }

}  // namespace

Comm::Comm(net::Channel& channel, vtime::NetworkModel model)
    : channel_(channel), model_(model) {
  auto& reg = obs::Registry::instance();
  const NodeId node = channel_.rank();
  metrics_.p2p_sends = &reg.counter(node, "mp.p2p_sends");
  metrics_.p2p_send_bytes = &reg.counter(node, "mp.p2p_send_bytes");
  metrics_.coll_payload_bytes = &reg.counter(node, "mp.coll_payload_bytes");
  metrics_.barriers = &reg.counter(node, "mp.barriers");
  metrics_.bcasts = &reg.counter(node, "mp.bcasts");
  metrics_.reduces = &reg.counter(node, "mp.reduces");
  metrics_.allreduces = &reg.counter(node, "mp.allreduces");
  metrics_.gathers = &reg.counter(node, "mp.gathers");
  metrics_.allgathers = &reg.counter(node, "mp.allgathers");
  metrics_.recv_wait = &reg.timer(node, "mp.recv_wait");
}

void Comm::count_collective(obs::Counter* which, std::size_t payload_bytes) {
  which->add();
  metrics_.coll_payload_bytes->add(static_cast<std::int64_t>(payload_bytes));
  auto& reg = obs::Registry::instance();
  if (reg.trace_enabled()) {
    reg.emit(obs::TraceKind::kCollective, channel_.rank(), 0,
             t_clock_get() != nullptr ? t_clock_get()->now() : 0.0);
  }
}

Tag Comm::next_collective_tag() {
  // All nodes execute collectives in the same order (SPMD), so a simple
  // sequence number yields matching tags everywhere.
  const std::uint32_t seq =
      collective_seq_.fetch_add(1, std::memory_order_relaxed);
  return net::kCollTagBase + static_cast<Tag>(seq & 0x0FFFFFFF);
}

void Comm::send_wire(NodeId dst, Tag wire_tag, const void* data,
                     std::size_t bytes) {
  VirtualUs stamp = 0.0;
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->add(model_.send_overhead_us);
    stamp = t_clock_get()->now();
  }
  std::vector<std::uint8_t> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  if (wire_tag < net::kCollTagBase) {
    metrics_.p2p_sends->add();
    metrics_.p2p_send_bytes->add(static_cast<std::int64_t>(bytes));
  }
  Status s = channel_.send(dst, wire_tag, std::move(payload), stamp);
  if (!s.is_ok()) {
    PLOG_WARN("mp send tag " << wire_tag << " to node " << dst
                             << " dropped: " << s.to_string());
  }
}

net::Message Comm::recv_wire(NodeId src, Tag wire_tag) {
  obs::ScopedTimer wait(metrics_.recv_wait);
  auto matched = channel_.inbox().recv_match([&](const net::MessageHeader& h) {
    return h.tag == wire_tag && (src == kAnyNode || h.src == src);
  });
  PARADE_CHECK_MSG(matched.has_value(), "channel closed during recv");
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  return std::move(*matched);
}

void Comm::send(NodeId dst, Tag tag, const void* data, std::size_t bytes) {
  PARADE_CHECK_MSG(tag >= 0 && tag < net::kCollTagBase - net::kMpTagBase,
                   "user tag out of range");
  send_wire(dst, net::kMpTagBase + tag, data, bytes);
}

RecvStatus Comm::recv(NodeId src, Tag tag, void* buffer, std::size_t bytes) {
  RecvStatus status;
  auto payload = recv_bytes(src, tag, &status);
  PARADE_CHECK_MSG(payload.size() <= bytes, "recv buffer too small");
  if (!payload.empty()) std::memcpy(buffer, payload.data(), payload.size());
  return status;
}

std::vector<std::uint8_t> Comm::recv_bytes(NodeId src, Tag tag,
                                           RecvStatus* status) {
  obs::ScopedTimer wait(metrics_.recv_wait);
  auto matched = channel_.inbox().recv_match([&](const net::MessageHeader& h) {
    if (h.tag < net::kMpTagBase || h.tag >= net::kCollTagBase) return false;
    if (src != kAnyNode && h.src != src) return false;
    return tag == kAnyTag || h.tag == net::kMpTagBase + tag;
  });
  PARADE_CHECK_MSG(matched.has_value(), "channel closed during recv");
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  if (status != nullptr) {
    status->source = matched->header.src;
    status->tag = matched->header.tag - net::kMpTagBase;
    status->bytes = matched->payload.size();
  }
  return std::move(matched->payload);
}

std::optional<std::vector<std::uint8_t>> Comm::try_recv_bytes(
    NodeId src, Tag tag, RecvStatus* status) {
  auto matched =
      channel_.inbox().try_recv_match([&](const net::MessageHeader& h) {
        if (h.tag < net::kMpTagBase || h.tag >= net::kCollTagBase) return false;
        if (src != kAnyNode && h.src != src) return false;
        return tag == kAnyTag || h.tag == net::kMpTagBase + tag;
      });
  if (!matched) return std::nullopt;
  if (t_clock_get() != nullptr) {
    t_clock_get()->sync_cpu();
    t_clock_get()->merge(matched->header.vtime +
                   model_.transfer_us(matched->payload.size()));
    t_clock_get()->add(model_.recv_overhead_us);
  }
  if (status != nullptr) {
    status->source = matched->header.src;
    status->tag = matched->header.tag - net::kMpTagBase;
    status->bytes = matched->payload.size();
  }
  return std::move(matched->payload);
}

void Comm::barrier() {
  count_collective(metrics_.barriers, 0);
  const int n = size();
  if (n == 1) return;
  const Tag tag = next_collective_tag();
  // Dissemination barrier: within one barrier every round talks to a distinct
  // partner, so one tag suffices; the round is identified by the source rank.
  for (int dist = 1; dist < n; dist <<= 1) {
    const NodeId to = (rank() + dist) % n;
    const NodeId from = (rank() - dist % n + n) % n;
    send_wire(to, tag, nullptr, 0);
    (void)recv_wire(from, tag);
  }
}

void Comm::bcast(void* data, std::size_t bytes, NodeId root) {
  count_collective(metrics_.bcasts, bytes);
  const int n = size();
  if (n == 1) return;
  const Tag tag = next_collective_tag();
  const int relative = (rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if ((relative & mask) != 0) {
      const NodeId src = (rank() - mask + n) % n;
      net::Message m = recv_wire(src, tag);
      PARADE_CHECK_MSG(m.payload.size() == bytes, "bcast size mismatch");
      if (bytes > 0) std::memcpy(data, m.payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const NodeId dst = (rank() + mask) % n;
      send_wire(dst, tag, data, bytes);
    }
    mask >>= 1;
  }
}

void Comm::reduce_with(void* buffer, std::size_t bytes, NodeId root, Tag tag,
                       const std::function<void(void*, const void*)>& combine) {
  const int n = size();
  const int relative = (rank() - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int source_rel = relative | mask;
      if (source_rel < n) {
        const NodeId source = (source_rel + root) % n;
        net::Message m = recv_wire(source, tag);
        PARADE_CHECK_MSG(m.payload.size() == bytes, "reduce size mismatch");
        combine(buffer, m.payload.data());
      }
    } else {
      const NodeId dst = ((relative & ~mask) + root) % n;
      send_wire(dst, tag, buffer, bytes);
      break;
    }
    mask <<= 1;
  }
}

void Comm::reduce(void* buffer, std::size_t count, DType dtype, Op op,
                  NodeId root) {
  count_collective(metrics_.reduces, count * dtype_size(dtype));
  if (size() == 1) return;
  const Tag tag = next_collective_tag();
  const std::size_t bytes = count * dtype_size(dtype);
  reduce_with(buffer, bytes, root, tag, [&](void* inout, const void* in) {
    reduce_inplace(dtype, op, inout, in, count);
  });
}

void Comm::allreduce(void* buffer, std::size_t count, DType dtype, Op op) {
  count_collective(metrics_.allreduces, count * dtype_size(dtype));
  reduce(buffer, count, dtype, op, /*root=*/0);
  bcast(buffer, count * dtype_size(dtype), /*root=*/0);
}

void Comm::allreduce_user(void* buffer, std::size_t bytes,
                          const UserReduceFn& fn) {
  if (size() > 1) {
    const Tag tag = next_collective_tag();
    reduce_with(buffer, bytes, /*root=*/0, tag,
                [&](void* inout, const void* in) { fn(inout, in, bytes); });
  }
  bcast(buffer, bytes, /*root=*/0);
}

void Comm::gather(const void* contribution, std::size_t bytes, void* out,
                  NodeId root) {
  count_collective(metrics_.gathers, bytes);
  const Tag tag = next_collective_tag();
  if (rank() == root) {
    PARADE_CHECK_MSG(out != nullptr, "gather root needs an output buffer");
    auto* base = static_cast<std::uint8_t*>(out);
    std::memcpy(base + static_cast<std::size_t>(rank()) * bytes, contribution,
                bytes);
    for (int peer = 0; peer < size(); ++peer) {
      if (peer == root) continue;
      net::Message m = recv_wire(peer, tag);
      PARADE_CHECK_MSG(m.payload.size() == bytes, "gather size mismatch");
      std::memcpy(base + static_cast<std::size_t>(peer) * bytes,
                  m.payload.data(), bytes);
    }
  } else {
    send_wire(root, tag, contribution, bytes);
  }
}

void Comm::allgather(const void* contribution, std::size_t bytes, void* out) {
  count_collective(metrics_.allgathers, bytes);
  gather(contribution, bytes, out, /*root=*/0);
  bcast(out, bytes * static_cast<std::size_t>(size()), /*root=*/0);
}

}  // namespace parade::mp
