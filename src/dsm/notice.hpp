// Coalesced, delta-encoded write notices (docs/SCALING.md).
//
// A flat barrier ships one PageId per dirtied page per node. At 128 nodes
// that is O(nodes x pages) words through the root every epoch. Instead each
// arrival now carries one compact stream for its whole barrier subtree:
//
//   stream := block*            (blocks in strictly ascending modifier order)
//   block  := modifier run_count (gap len)*run_count
//
// Runs describe sorted page intervals against a per-block cursor that starts
// at 0: a run covers [cursor + gap, cursor + gap + len), then the cursor
// advances past it. The first run's gap may be 0; later gaps must be >= 1
// (adjacent runs are always merged by the encoder), so a valid stream is
// canonical. Dense page ranges collapse to two words per modifier.
//
// The stream rides inside BarrierArriveMsg as a std::vector<std::uint32_t>,
// so the existing codec<T> length-prefix validation applies; this header
// adds the semantic validation (modifier/page bounds, monotonicity) with
// every bound checked before any allocation is sized from stream content.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace parade::dsm::notice {

/// One modifier's sorted, unique dirty-page set.
struct NoticeBlock {
  NodeId modifier = 0;
  std::vector<PageId> pages;
};

/// Packs blocks into the wire stream. Blocks must be sorted by modifier and
/// each page list sorted and unique (the barrier gather path guarantees
/// both); adjacent pages coalesce into single runs.
inline std::vector<std::uint32_t> pack_notices(
    const std::vector<NoticeBlock>& blocks) {
  std::vector<std::uint32_t> stream;
  for (const NoticeBlock& block : blocks) {
    if (block.pages.empty()) continue;
    stream.push_back(static_cast<std::uint32_t>(block.modifier));
    const std::size_t count_slot = stream.size();
    stream.push_back(0);  // run_count, patched below
    std::uint32_t runs = 0;
    std::uint32_t cursor = 0;
    std::size_t i = 0;
    while (i < block.pages.size()) {
      const std::uint32_t start = static_cast<std::uint32_t>(block.pages[i]);
      std::uint32_t len = 1;
      while (i + len < block.pages.size() &&
             static_cast<std::uint32_t>(block.pages[i + len]) == start + len) {
        ++len;
      }
      stream.push_back(start - cursor);
      stream.push_back(len);
      cursor = start + len;
      i += len;
      ++runs;
    }
    stream[count_slot] = runs;
  }
  return stream;
}

/// Validates and expands a stream. `max_nodes` bounds modifiers, `num_pages`
/// bounds page indices; malformed input (truncated block, hostile run count,
/// out-of-range modifier or page, non-canonical ordering) yields nullopt.
/// Run counts and page ranges are checked against the remaining stream and
/// `num_pages` before any vector is sized from them.
inline std::optional<std::vector<NoticeBlock>> try_unpack_notices(
    const std::vector<std::uint32_t>& stream, int max_nodes, PageId num_pages) {
  std::vector<NoticeBlock> blocks;
  std::size_t i = 0;
  std::int64_t prev_modifier = -1;
  while (i < stream.size()) {
    if (stream.size() - i < 2) return std::nullopt;
    const std::uint32_t modifier = stream[i];
    const std::uint32_t run_count = stream[i + 1];
    i += 2;
    if (modifier >= static_cast<std::uint32_t>(max_nodes)) return std::nullopt;
    if (static_cast<std::int64_t>(modifier) <= prev_modifier) {
      return std::nullopt;
    }
    prev_modifier = modifier;
    if (run_count == 0) return std::nullopt;  // empty blocks are not encoded
    // A hostile run_count must fail here, against the bytes actually
    // present, before it can size anything.
    if (run_count > (stream.size() - i) / 2) return std::nullopt;
    NoticeBlock block;
    block.modifier = static_cast<NodeId>(modifier);
    std::uint64_t cursor = 0;
    for (std::uint32_t r = 0; r < run_count; ++r) {
      const std::uint32_t gap = stream[i];
      const std::uint32_t len = stream[i + 1];
      i += 2;
      if (len == 0) return std::nullopt;
      if (r > 0 && gap == 0) return std::nullopt;  // non-canonical split run
      const std::uint64_t start = cursor + gap;
      const std::uint64_t end = start + len;
      if (end > static_cast<std::uint64_t>(num_pages)) return std::nullopt;
      for (std::uint64_t p = start; p < end; ++p) {
        block.pages.push_back(static_cast<PageId>(p));
      }
      cursor = end;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

/// Total pages named by a block list (for stats / compaction ratios).
inline std::size_t notice_page_count(const std::vector<NoticeBlock>& blocks) {
  std::size_t total = 0;
  for (const NoticeBlock& b : blocks) total += b.pages.size();
  return total;
}

}  // namespace parade::dsm::notice
