// DsmCluster: the in-process virtual cluster — N DsmNodes over an
// InProcFabric, each with its own protected pool view. This is the substrate
// the tests and figure benches run on; the parade_run launcher provides the
// equivalent multi-process deployment over SocketFabric.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dsm/node.hpp"
#include "net/faulty.hpp"
#include "net/inproc.hpp"

namespace parade::dsm {

class DsmCluster {
 public:
  /// Primary constructor: the cluster-level Topology (rank ignored) carries
  /// the node count and barrier-tree fan-out; each node gets
  /// `topology.with_rank(r)`. Faults are injected when PARADE_FAULT_SEED /
  /// PARADE_FAULT_PLAN are set.
  explicit DsmCluster(const Topology& topology, DsmConfig config = {});
  /// Same, with an explicit fault plan (chaos tests; overrides the env).
  DsmCluster(const Topology& topology, DsmConfig config, net::FaultPlan faults);
  /// Deprecation shims for callers still passing a loose node count; the
  /// fan-out falls back to config.barrier_fanout.
  explicit DsmCluster(int size, DsmConfig config = {});
  DsmCluster(int size, DsmConfig config, net::FaultPlan faults);
  ~DsmCluster();

  int size() const { return static_cast<int>(nodes_.size()); }
  DsmNode& node(NodeId rank) { return *nodes_[static_cast<std::size_t>(rank)]; }
  /// The channel a node sends through: the fault decorator when a plan is
  /// active, the raw fabric channel otherwise.
  net::Channel& channel(NodeId rank) {
    if (!faulty_.empty()) return *faulty_[static_cast<std::size_t>(rank)];
    return fabric_.channel(rank);
  }

  /// Runs `fn(rank)` on one fresh thread per node and joins them. Exceptions
  /// escaping `fn` abort (the protocol cannot unwind mid-barrier).
  void run(const std::function<void(NodeId)>& fn);

  /// Orderly teardown: nodes first (their comm threads drain), then fabric.
  void shutdown();

 private:
  void init(const Topology& topology, const DsmConfig& config,
            std::optional<net::FaultPlan> faults);

  net::InProcFabric fabric_;
  /// One decorator per rank when a fault plan is active; empty otherwise.
  std::vector<std::unique_ptr<net::FaultyChannel>> faulty_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
};

}  // namespace parade::dsm
