#include "translator/dataflow.hpp"

#include <deque>

namespace parade::translator {

FlowResult solve_dataflow(const Cfg& cfg, const DataflowProblem& problem) {
  const std::size_t n = cfg.blocks.size();
  FlowResult result;
  result.in.assign(n, BitSet(problem.bits));
  result.out.assign(n, BitSet(problem.bits));

  const bool forward = problem.direction == FlowDirection::kForward;
  const std::size_t boundary_block =
      forward ? static_cast<std::size_t>(Cfg::kEntry)
              : static_cast<std::size_t>(Cfg::kExit);

  if (problem.meet == MeetOp::kIntersect) {
    // Interior blocks start at top so the first meet is not poisoned by a
    // not-yet-visited predecessor's bottom value.
    for (std::size_t b = 0; b < n; ++b) {
      if (b == boundary_block) continue;
      result.in[b].set_all();
      result.out[b].set_all();
    }
  }
  if (problem.boundary.size() == problem.bits) {
    result.in[boundary_block] = problem.boundary;
  }

  auto edges_in = [&](std::size_t b) -> const std::vector<int>& {
    return forward ? cfg.blocks[b].preds : cfg.blocks[b].succs;
  };
  auto edges_out = [&](std::size_t b) -> const std::vector<int>& {
    return forward ? cfg.blocks[b].succs : cfg.blocks[b].preds;
  };

  auto apply_transfer = [&](std::size_t b) {
    BitSet out = result.in[b];
    if (b < problem.transfer.size()) {
      const Transfer& t = problem.transfer[b];
      if (t.kill.size() == problem.bits) out.subtract(t.kill);
      if (t.gen.size() == problem.bits) out |= t.gen;
    }
    if (out != result.out[b]) {
      result.out[b] = std::move(out);
      return true;
    }
    return false;
  };

  std::deque<std::size_t> work;
  std::vector<char> queued(n, 1);
  for (std::size_t b = 0; b < n; ++b) work.push_back(b);

  while (!work.empty()) {
    const std::size_t b = work.front();
    work.pop_front();
    queued[b] = 0;
    ++result.iterations;

    if (b != boundary_block && !edges_in(b).empty()) {
      BitSet in(problem.bits);
      if (problem.meet == MeetOp::kIntersect) in.set_all();
      for (const int p : edges_in(b)) {
        if (problem.meet == MeetOp::kUnion) {
          in |= result.out[static_cast<std::size_t>(p)];
        } else {
          in &= result.out[static_cast<std::size_t>(p)];
        }
      }
      result.in[b] = std::move(in);
    }

    if (apply_transfer(b)) {
      for (const int s : edges_out(b)) {
        if (queued[static_cast<std::size_t>(s)] == 0) {
          queued[static_cast<std::size_t>(s)] = 1;
          work.push_back(static_cast<std::size_t>(s));
        }
      }
    }
  }
  return result;
}

}  // namespace parade::translator
