#include "runtime/team.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/status.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "runtime/node_runtime.hpp"

namespace parade {

VirtualUs CombiningBarrier::arrive(VirtualUs value) {
  std::unique_lock lock(mutex_);
  pending_max_ = std::max(pending_max_, value);
  if (++count_ == parties_) {
    released_max_ = pending_max_;
    pending_max_ = 0.0;
    count_ = 0;
    ++generation_;
    cv_.notify_all();
    return released_max_;
  }
  const long generation = generation_;
  cv_.wait(lock, [&] { return generation_ != generation; });
  return released_max_;
}

Team::Team(NodeRuntime& node, const Topology& topology, int num_threads)
    : node_(node),
      topo_(topology),
      num_threads_(num_threads),
      gather_barrier_(num_threads),
      release_barrier_(num_threads),
      join_barrier_(num_threads) {
  PARADE_CHECK_MSG(num_threads >= 1, "team needs at least one thread");
  PARADE_CHECK_MSG(topo_.valid(), "invalid team topology");
  PARADE_CHECK_MSG(
      topo_.rank == node.node_id() && topo_.nodes == node.num_nodes(),
      "team topology disagrees with the node runtime");
  auto& reg = obs::Registry::instance();
  const NodeId node_id = node.node_id();
  regions_metric_ = &reg.counter(node_id, "rt.parallel_regions");
  barrier_wait_.reserve(static_cast<std::size_t>(num_threads));
  loop_chunks_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    const std::string id = std::to_string(t);
    barrier_wait_.push_back(&reg.timer(node_id, "rt.barrier_wait.t" + id));
    loop_chunks_.push_back(&reg.counter(node_id, "rt.loop_chunks.t" + id));
  }
}

Team::Team(NodeRuntime& node, int num_threads)
    : Team(node, Topology::flat(node.node_id(), node.num_nodes()),
           num_threads) {}

Team::~Team() { stop(); }

void Team::start() {
  for (LocalThreadId id = 1; id < num_threads_; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

void Team::stop() {
  {
    std::lock_guard lock(region_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  region_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void Team::worker_loop(LocalThreadId local_id) {
  logging::set_thread_node_tag(node_.node_id());
  ThreadCtx ctx(node_.config().cpu_scale);
  ctx.node = &node_;
  ctx.local_id = local_id;
  detail::set_current_ctx(&ctx);

  long seen_epoch = 0;
  for (;;) {
    const std::function<void()>* body = nullptr;
    {
      std::unique_lock lock(region_mutex_);
      region_cv_.wait(lock,
                      [&] { return stopping_ || region_epoch_ > seen_epoch; });
      if (stopping_) break;
      seen_epoch = region_epoch_;
      body = region_body_;
      // Fork semantics: a worker's virtual clock starts at the master's
      // fork time.
      ctx.clock.reset(fork_vtime_);
    }
    ctx.single_seq = 0;
    ctx.loop_seq = 0;
    (*body)();
    barrier_global();  // implicit barrier at the end of a parallel region
    (void)join_barrier_.arrive(0.0);
  }
  detail::set_current_ctx(nullptr);
}

void Team::run_region(const std::function<void()>& body) {
  ThreadCtx& ctx = current_ctx();
  PARADE_CHECK_MSG(ctx.local_id == 0, "only the node main thread forks");
  ctx.clock.sync_cpu();
  regions_metric_->add();
  // Root span for the work-sharing region: every DSM fetch, lock, or barrier
  // the region body triggers on this thread nests under it.
  obs::ScopedSpan span(obs::TraceKind::kRegion, node_.node_id(), 0);
  {
    // Construct-instance state is per region; all workers are idle here.
    std::lock_guard single_lock(single_mutex_);
    singles_.clear();
  }
  {
    std::lock_guard loop_lock(loop_mutex_);
    loops_.clear();
  }
  {
    std::lock_guard lock(region_mutex_);
    in_region_ = true;  // before workers can wake and hit a barrier
    region_body_ = &body;
    fork_vtime_ = ctx.clock.now();
    ++region_epoch_;
  }
  region_cv_.notify_all();

  const long saved_single_seq = ctx.single_seq;
  const long saved_loop_seq = ctx.loop_seq;
  ctx.single_seq = 0;
  ctx.loop_seq = 0;
  body();
  barrier_global();
  ctx.single_seq = saved_single_seq;
  ctx.loop_seq = saved_loop_seq;

  // Wait for workers to go idle before the next region can be published.
  (void)join_barrier_.arrive(0.0);
  in_region_ = false;
}

void Team::barrier(BarrierScope scope) {
  ThreadCtx& ctx = current_ctx();
  ctx.clock.sync_cpu();
  if (scope == BarrierScope::kNode) {
    if (!in_region_) return;  // serial section: nothing to synchronize with
    const VirtualUs team_max = gather_barrier_.arrive(ctx.clock.now());
    ctx.clock.merge(team_max);
    return;
  }
  // Wall time from arrival to departure: dominated by waiting for the
  // slowest teammate plus the inter-node DSM barrier.
  obs::ScopedTimer wait(
      barrier_wait_[static_cast<std::size_t>(ctx.local_id)]);
  if (!in_region_) {
    // Serial section: only the node main thread is running.
    PARADE_CHECK_MSG(ctx.local_id == 0, "worker outside a region");
    node_.dsm().barrier();
    return;
  }
  const VirtualUs team_max = gather_barrier_.arrive(ctx.clock.now());
  if (ctx.local_id == 0) {
    ctx.clock.merge(team_max);
    node_.dsm().barrier();  // merges the global departure time into the clock
  }
  const VirtualUs departure =
      release_barrier_.arrive(ctx.local_id == 0 ? ctx.clock.now() : 0.0);
  ctx.clock.merge(departure);
}

bool Team::single_try_claim(long seq) {
  std::lock_guard lock(single_mutex_);
  SingleSlot& slot = singles_[seq];
  if (slot.claimed) return false;
  slot.claimed = true;
  return true;
}

void Team::single_mark_done(long seq, VirtualUs vtime, const void* payload,
                            std::size_t bytes) {
  {
    std::lock_guard lock(single_mutex_);
    SingleSlot& slot = singles_[seq];
    slot.done = true;
    slot.done_vtime = vtime;
    slot.payload.assign(static_cast<const std::uint8_t*>(payload),
                        static_cast<const std::uint8_t*>(payload) + bytes);
  }
  single_cv_.notify_all();
}

VirtualUs Team::single_wait_done(long seq, void* out, std::size_t bytes) {
  std::unique_lock lock(single_mutex_);
  single_cv_.wait(lock, [&] { return singles_[seq].done; });
  SingleSlot& slot = singles_[seq];
  PARADE_CHECK_MSG(slot.payload.size() == bytes, "single payload mismatch");
  if (bytes > 0) std::memcpy(out, slot.payload.data(), bytes);
  return slot.done_vtime;
}

Team::LoopState& Team::loop_state(long seq, long begin, long end) {
  std::lock_guard lock(loop_mutex_);
  auto [it, inserted] = loops_.try_emplace(seq);
  if (inserted) {
    it->second.next = begin;
    it->second.end = end;
  }
  return it->second;
}

bool Team::loop_next_chunk(LoopState& state, long chunk, long* lo, long* hi) {
  std::lock_guard lock(loop_mutex_);
  if (state.next >= state.end) return false;
  if (chunk <= 0) {
    // Guided: chunk shrinks with the remaining work (min 1 iteration).
    const long remaining = state.end - state.next;
    chunk = std::max<long>(1, remaining / (2 * num_threads_));
  }
  *lo = state.next;
  *hi = std::min(state.end, state.next + chunk);
  state.next = *hi;
  loop_chunks_[static_cast<std::size_t>(current_ctx().local_id)]->add();
  return true;
}

void Team::loop_finish(long seq) {
  std::lock_guard lock(loop_mutex_);
  auto it = loops_.find(seq);
  PARADE_CHECK(it != loops_.end());
  if (++it->second.finished_threads == num_threads_) {
    loops_.erase(it);
  }
}

}  // namespace parade
