// Protocol event counters; the ablation benches and several tests assert on
// these (page fetch counts, diff bytes, migrations...).
//
// DsmStats is a thin per-node view over the obs registry: each counter lives
// in the registry as "dsm.<name>" (so it appears in metrics exports and
// epoch slices), and this class just caches the handles so the fault/flush
// hot paths keep their single relaxed fetch_add.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/metric.hpp"

namespace parade::dsm {

// One entry per DSM protocol counter; X(name) is expanded for snapshot
// fields, inc_ methods, handle members, and registry registration.
#define PARADE_DSM_COUNTERS(X) \
  X(read_faults)               \
  X(write_faults)              \
  X(page_fetches)    /* remote page fetches issued */ \
  X(page_serves)     /* requests served as home */    \
  X(diffs_created)             \
  X(diff_bytes_sent)           \
  X(diffs_applied)             \
  X(twins_created)   /* eager/privatized twin copies */ \
  X(twins_shared)    /* CoW twins aliasing the home frame (no copy) */ \
  X(twin_privatizations) /* shared twins copied before a frame mutation */ \
  X(barriers)                  \
  X(write_notices_sent)        \
  X(invalidations)             \
  X(home_migrations) /* counted at the master */      \
  X(prior_seeded_pages) /* pages covered by static protocol priors */ \
  X(lock_acquires)             \
  X(lock_remote_grants)

struct DsmStatsSnapshot {
#define PARADE_DSM_FIELD(name) std::int64_t name = 0;
  PARADE_DSM_COUNTERS(PARADE_DSM_FIELD)
#undef PARADE_DSM_FIELD
  /// Protocol retransmissions (page fetch / diff / lock / barrier timeouts).
  /// Zero on a fault-free fabric; nonzero proves the retry paths fired.
  std::int64_t retries = 0;
};

class DsmStats {
 public:
  /// Resolves registry handles for node `node`; cheap to construct once per
  /// DsmNode, not per operation.
  explicit DsmStats(NodeId node);

#define PARADE_DSM_INC(name)                       \
  void inc_##name(std::int64_t by = 1) {           \
    name##_->add(by);                              \
  }
  PARADE_DSM_COUNTERS(PARADE_DSM_INC)
#undef PARADE_DSM_INC

  /// Registered as "dsm.retry.count" (dotted name: it pairs with
  /// net.fault.* and mp.retry.count in fault-injection reports).
  void inc_retries(std::int64_t by = 1) { retries_->add(by); }

  DsmStatsSnapshot snapshot() const;

 private:
#define PARADE_DSM_MEMBER(name) obs::Counter* name##_;
  PARADE_DSM_COUNTERS(PARADE_DSM_MEMBER)
#undef PARADE_DSM_MEMBER
  obs::Counter* retries_;
};

}  // namespace parade::dsm
