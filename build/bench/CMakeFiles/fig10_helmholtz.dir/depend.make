# Empty dependencies file for fig10_helmholtz.
# This may be replaced when dependencies are built.
