#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace parade::obs {

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!comma_stack_.empty()) {
    if (comma_stack_.back()) out_ += ',';
    comma_stack_.back() = true;
  }
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  comma_stack_.push_back(false);
}

void JsonWriter::end_object() {
  comma_stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  comma_stack_.push_back(false);
}

void JsonWriter::end_array() {
  comma_stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  pre_value();
  write_escaped(name);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(const std::string& text) {
  pre_value();
  write_escaped(text);
}

void JsonWriter::value(std::int64_t number) {
  pre_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  pre_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(double number) {
  pre_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
}

void JsonWriter::value(bool flag) {
  pre_value();
  out_ += flag ? "true" : "false";
}

void JsonWriter::write_escaped(const std::string& text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> parse() {
    JsonValue root;
    Status s = parse_value(&root);
    if (!s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "trailing characters at offset " + std::to_string(pos_));
    }
    return root;
  }

 private:
  Status fail(const std::string& what) {
    return make_error(ErrorCode::kInvalidArgument,
                      "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string);
    }
    if (consume_word("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::ok();
    }
    if (consume_word("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::ok();
    }
    if (consume_word("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::ok();
    }
    return parse_number(out);
  }

  Status parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      std::string name;
      Status s = parse_string(&name);
      if (!s.is_ok()) return s;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      s = parse_value(&member);
      if (!s.is_ok()) return s;
      out->object.emplace(std::move(name), std::move(member));
      skip_ws();
      if (consume('}')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  Status parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue element;
      Status s = parse_value(&element);
      if (!s.is_ok()) return s;
      out->array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Status parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          auto [ptr, ec] = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            return fail("bad \\u escape");
          }
          pos_ += 4;
          // Exporter only escapes control chars, so non-ASCII code points
          // are out of scope; clamp rather than emit UTF-8.
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.c_str() + start, nullptr);
    return Status::ok();
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace parade::obs
