// Runtime configuration: cluster shape + DSM + timing model.
#pragma once

#include "dsm/config.hpp"
#include "vtime/clock.hpp"
#include "vtime/cost_model.hpp"

namespace parade {

struct RuntimeConfig {
  int nodes = 2;
  int threads_per_node = 2;
  dsm::DsmConfig dsm{};
  /// Virtual-time multiplier for measured CPU time (PARADE_CPU_SCALE).
  double cpu_scale = 1.0;

  /// Convenience: apply one of the paper's three measurement configurations
  /// (§6.2) — thread count and CPU layout together.
  RuntimeConfig& with_node_config(vtime::NodeConfig node_config) {
    dsm.machine = vtime::machine_for(node_config);
    threads_per_node = dsm.machine.compute_threads;
    return *this;
  }

  int total_threads() const { return nodes * threads_per_node; }
};

/// Reads PARADE_NODES, PARADE_THREADS, PARADE_NET*, PARADE_CPU_SCALE,
/// PARADE_SYNC_MODE (parade|conventional), PARADE_HOME_MIGRATION,
/// PARADE_POOL_MB.
RuntimeConfig runtime_config_from_env();

}  // namespace parade
