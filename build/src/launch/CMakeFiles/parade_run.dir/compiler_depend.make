# Empty compiler generated dependencies file for parade_run.
# This may be replaced when dependencies are built.
