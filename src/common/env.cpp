#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace parade::env {

std::optional<std::string> get_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  return std::string(value);
}

std::optional<std::int64_t> get_int(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(parsed);
}

std::optional<double> get_double(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<bool> get_bool(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  if (std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0 ||
      std::strcmp(value, "yes") == 0 || std::strcmp(value, "on") == 0) {
    return true;
  }
  if (std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
      std::strcmp(value, "no") == 0 || std::strcmp(value, "off") == 0) {
    return false;
  }
  return std::nullopt;
}

std::string get_string_or(const char* name, const std::string& fallback) {
  return get_string(name).value_or(fallback);
}

std::int64_t get_int_or(const char* name, std::int64_t fallback) {
  return get_int(name).value_or(fallback);
}

double get_double_or(const char* name, double fallback) {
  return get_double(name).value_or(fallback);
}

bool get_bool_or(const char* name, bool fallback) {
  return get_bool(name).value_or(fallback);
}

}  // namespace parade::env
