// End-to-end accuracy of the static message-cost model (docs/ANALYZER.md
// "Message-cost model"): for each cost-corpus program, the `parade_lint
// --cost` predictions for dsm.lock_acquires / dsm.page_fetches /
// dsm.diffs_created must land within the report's documented tolerance
// factor of the counters observed in a real 2-node run of the translated
// binary (PARADE_METRICS export, summed across nodes).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "translator/translate.hpp"

namespace parade::translator {
namespace {

namespace fs = std::filesystem;

std::string run_command(const std::string& command, int* exit_code) {
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

/// Totals of the three modeled counters, predicted or observed.
struct CounterTotals {
  double lock_acquires = 0;
  double page_fetches = 0;
  double diffs_created = 0;
  double tolerance_factor = 0;
};

/// Runs `parade_lint --json --cost=2` on `source_path` and reads the totals
/// of the cost report (the last JSON document on stdout).
CounterTotals predict(const std::string& source_path) {
  CounterTotals totals;
  int code = -1;
  const std::string output =
      run_command(std::string(PARADE_BINARY_DIR) +
                      "/src/translator/parade_lint --json --cost=2 " +
                      source_path,
                  &code);
  EXPECT_EQ(code, 0) << output;
  const std::size_t last_line = output.find_last_of('\n', output.size() - 2);
  const std::string cost_json =
      output.substr(last_line == std::string::npos ? 0 : last_line + 1);
  auto doc = obs::parse_json(cost_json);
  EXPECT_TRUE(doc.is_ok()) << cost_json;
  if (!doc.is_ok()) return totals;
  const obs::JsonValue& t = doc.value().at("totals");
  totals.lock_acquires = t.at("dsm.lock_acquires").number;
  totals.page_fetches = t.at("dsm.page_fetches").number;
  totals.diffs_created = t.at("dsm.diffs_created").number;
  totals.tolerance_factor = doc.value().at("tolerance_factor").number;
  return totals;
}

/// Translates, compiles and runs `source_path` on a 2-node / 1-thread
/// virtual cluster with PARADE_METRICS, then sums the dsm.* counters the
/// model predicts across all nodes of the export.
CounterTotals observe(const std::string& name,
                      const std::string& source_path) {
  CounterTotals totals;
  std::ifstream in(source_path);
  EXPECT_TRUE(in.good()) << source_path;
  std::ostringstream text;
  text << in.rdbuf();
  auto translated = translate_source(text.str());
  EXPECT_TRUE(translated.is_ok()) << translated.status().to_string();
  if (!translated.is_ok()) return totals;

  const fs::path dir = fs::temp_directory_path() / "parade-cost-e2e";
  fs::create_directories(dir);
  const fs::path cpp = dir / (name + ".cpp");
  const fs::path bin = dir / name;
  const fs::path metrics = dir / (name + ".metrics.json");
  std::ofstream(cpp) << translated.value();

  const std::string src_dir = PARADE_SOURCE_DIR;
  const std::string bin_dir = PARADE_BINARY_DIR;
  int code = -1;
  const std::string compile_output = run_command(
      "g++ -std=c++20 -I " + src_dir + "/src -O1 -o " + bin.string() + " " +
          cpp.string() + " " + bin_dir +
          "/src/runtime/libparade_runtime.a " + bin_dir +
          "/src/dsm/libparade_dsm.a " + bin_dir + "/src/mp/libparade_mp.a " +
          bin_dir + "/src/net/libparade_net.a " + bin_dir +
          "/src/obs/libparade_obs.a " + bin_dir +
          "/src/vtime/libparade_vtime.a " + bin_dir +
          "/src/common/libparade_common.a -lpthread",
      &code);
  EXPECT_EQ(code, 0) << "compile failed:\n" << compile_output;
  if (code != 0) return totals;

  const std::string run_output = run_command(
      "PARADE_NODES=2 PARADE_THREADS=1 PARADE_METRICS=" + metrics.string() +
          " " + bin.string(),
      &code);
  EXPECT_EQ(code, 0) << "run failed:\n" << run_output;

  std::ifstream metrics_in(metrics);
  EXPECT_TRUE(metrics_in.good()) << metrics;
  std::ostringstream metrics_text;
  metrics_text << metrics_in.rdbuf();
  auto doc = obs::parse_json(metrics_text.str());
  EXPECT_TRUE(doc.is_ok()) << metrics_text.str();
  if (!doc.is_ok()) return totals;
  for (const obs::JsonValue& node : doc.value().at("nodes").array) {
    const obs::JsonValue& counters = node.at("counters");
    if (counters.has("dsm.lock_acquires")) {
      totals.lock_acquires += counters.at("dsm.lock_acquires").number;
    }
    if (counters.has("dsm.page_fetches")) {
      totals.page_fetches += counters.at("dsm.page_fetches").number;
    }
    if (counters.has("dsm.diffs_created")) {
      totals.diffs_created += counters.at("dsm.diffs_created").number;
    }
  }
  return totals;
}

/// The accuracy contract: predicted and observed agree within the report's
/// tolerance factor, in both directions, with an absolute slack of the
/// factor itself so near-zero counters do not divide the test by zero.
void expect_within_factor(const char* what, double predicted, double observed,
                          double factor) {
  EXPECT_LE(observed, predicted * factor + factor)
      << what << ": observed " << observed << " vs predicted " << predicted;
  EXPECT_LE(predicted, observed * factor + factor)
      << what << ": predicted " << predicted << " vs observed " << observed;
}

void check_program(const std::string& name) {
  const std::string source_path =
      std::string(PARADE_SOURCE_DIR) + "/tests/translator_inputs/" + name +
      ".c";
  const CounterTotals predicted = predict(source_path);
  ASSERT_GT(predicted.tolerance_factor, 0) << "cost report missing";
  const CounterTotals observed = observe(name, source_path);
  expect_within_factor("dsm.lock_acquires", predicted.lock_acquires,
                       observed.lock_acquires, predicted.tolerance_factor);
  expect_within_factor("dsm.page_fetches", predicted.page_fetches,
                       observed.page_fetches, predicted.tolerance_factor);
  expect_within_factor("dsm.diffs_created", predicted.diffs_created,
                       observed.diffs_created, predicted.tolerance_factor);
}

TEST(CostModelE2e, PingPongProgram) { check_program("cost_pingpong"); }

TEST(CostModelE2e, ProducerConsumerProgram) {
  check_program("cost_prodcons");
}

}  // namespace
}  // namespace parade::translator
