// Ablation for paper §8 (future work): loop scheduling under load imbalance.
// The paper ships static scheduling only and names imbalance at the `for`
// barrier as a main cost; this bench runs a triangular-cost loop (iteration i
// costs O(i) work) under static, static-chunked, dynamic, and hierarchical
// guided scheduling and reports virtual execution time.
#include <cmath>

#include "bench/figure_common.hpp"
#include "runtime/api.hpp"

namespace parade {
namespace {

double run_schedule(int nodes, const Schedule& schedule, long n) {
  RuntimeConfig config =
      bench::figure_config(nodes, vtime::NodeConfig::k2Thread2Cpu, 8u << 20);
  const double seconds = run_virtual_cluster_s(config, [&] {
    double sink_replica = 0.0;
    parallel([&] {
      double local = 0.0;
      parallel_for(0, n, schedule, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          // Triangular imbalance: later iterations cost more.
          for (long k = 0; k < i; ++k) local += std::sqrt(double(k + 1));
        }
      });
      team_update(&sink_replica, local, mp::Op::kSum);
    });
  });
  return seconds;
}

}  // namespace
}  // namespace parade

int main(int argc, char** argv) {
  using namespace parade;
  const long n = bench::arg_long(argc, argv, "n", 2000);

  const std::vector<std::pair<const char*, Schedule>> schedules = {
      {"static", {ScheduleKind::kStatic, 0}},
      {"static,16", {ScheduleKind::kStaticChunk, 16}},
      {"dynamic,16", {ScheduleKind::kDynamic, 16}},
      {"guided", {ScheduleKind::kGuided, 0}},
  };

  std::vector<bench::Series> series;
  for (const auto& [name, schedule] : schedules) {
    bench::Series s{name, {}};
    for (const int nodes : bench::kNodeSweep) {
      s.values.push_back(run_schedule(nodes, schedule, n));
    }
    series.push_back(std::move(s));
  }
  bench::print_figure(
      "Ablation (paper 8): loop scheduling under triangular load imbalance "
      "(virtual time)",
      "s", bench::kNodeSweep, series);
  return 0;
}
