# Empty compiler generated dependencies file for translator_demo.
# This may be replaced when dependencies are built.
