// Recursive-descent parser producing the translator AST.
#pragma once

#include "common/status.hpp"
#include "translator/ast.hpp"
#include "translator/token.hpp"

namespace parade::translator {

Result<TranslationUnit> parse(const std::vector<Token>& tokens);

/// Reconstructs source text from a token run [begin, end). Used by the parser
/// for raw statements and by tests.
std::string render_tokens(const std::vector<Token>& tokens, std::size_t begin,
                          std::size_t end);

}  // namespace parade::translator
