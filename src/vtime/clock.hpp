// Virtual clocks for direct-execution simulation.
//
// Every thread that participates in timing (compute threads and each node's
// communication thread) owns a ThreadClock. Between runtime events the owning
// thread advances its clock by its *measured* CPU time (scaled by
// PARADE_CPU_SCALE to approximate the paper's Pentium III hosts); protocol
// code adds modeled network costs; message receipt merges the sender's
// timestamp so causality is preserved end-to-end.
#pragma once

#include <algorithm>
#include <mutex>

#include "common/timing.hpp"
#include "common/types.hpp"

namespace parade::vtime {

/// Multiplier applied to measured CPU time; from PARADE_CPU_SCALE, default 20
/// (modern core vs the paper's 550-600 MHz Pentium III).
double cpu_scale_from_env();

class ThreadClock;

/// Binds/unbinds the calling thread's virtual clock. The mp and dsm layers
/// charge communication costs to the bound clock; unbound threads run
/// untimed. Pass nullptr to unbind.
void bind_thread_clock(ThreadClock* clock);
ThreadClock* thread_clock();

/// Single-owner virtual clock. NOT thread-safe: only the owning thread may
/// call sync_cpu/add; merge() of a foreign timestamp is also done by the
/// owner after it has received the value through a message.
class ThreadClock {
 public:
  explicit ThreadClock(double cpu_scale = 1.0) : scale_(cpu_scale) {}

  /// Advances by the CPU time this thread consumed since the last call
  /// (scaled). Call at every runtime-event boundary so compute work between
  /// events is attributed to virtual time. Negative laps (clock constructed
  /// on a different thread) are clamped to zero — call reset() when a clock
  /// changes owner.
  void sync_cpu() {
    const std::int64_t lap = lap_.lap();
    if (lap > 0) now_us_ += ns_to_us(lap) * scale_;
  }

  /// Discards CPU time consumed since the last sync without charging it
  /// (used around untimed bookkeeping such as result printing).
  void discard_cpu() { lap_.lap(); }

  void add(VirtualUs us) { now_us_ += us; }
  void merge(VirtualUs ts_us) { now_us_ = std::max(now_us_, ts_us); }
  VirtualUs now() const { return now_us_; }
  void reset(VirtualUs to = 0.0) {
    now_us_ = to;
    lap_.lap();
  }
  double scale() const { return scale_; }

 private:
  VirtualUs now_us_ = 0.0;
  CpuLapTimer lap_;
  double scale_;
};

/// Thread-safe per-node ledger of communication-thread CPU consumption within
/// the current synchronization phase. When the comm thread does not have a
/// dedicated CPU, the phase total is charged to the node's compute timeline
/// at the next inter-node synchronization (paper's 1Thread-1CPU and
/// 2Thread-2CPU configurations).
class CommLedger {
 public:
  void charge(VirtualUs us) {
    std::lock_guard lock(mutex_);
    phase_us_ += us;
    total_us_ += us;
  }

  /// Returns and clears the current phase's accumulated cost.
  VirtualUs drain_phase() {
    std::lock_guard lock(mutex_);
    const VirtualUs value = phase_us_;
    phase_us_ = 0.0;
    return value;
  }

  VirtualUs total() const {
    std::lock_guard lock(mutex_);
    return total_us_;
  }

 private:
  mutable std::mutex mutex_;
  VirtualUs phase_us_ = 0.0;
  VirtualUs total_us_ = 0.0;
};

}  // namespace parade::vtime
