// Scale-out bench: per-epoch barrier cost, flat vs k-ary tree, 8..128
// virtual nodes (docs/SCALING.md).
//
//   scaleout [--nodes=8,16,32,64,128] [--fanout=4] [--epochs=48]
//            [--net=clan|fastether|ideal] [--out=PATH]
//            [--baseline=PATH] [--tolerance=0.15] [--require-tree-win]
//
// Each node dirties one word of its own page per epoch (sole modifier: the
// page migrates home once and then stays put, so no cross-node fetch traffic
// competes with the barrier) and hits the global barrier. Every epoch still
// gathers one write notice per node — N blocks through the compacted
// interval-vector streams — so the reported figure, virtual microseconds per
// barrier epoch, is the modeled LogGP critical path through gather, epoch
// close, and release. CPU scale is pinned to 0 so the number is a function
// of the protocol's message pattern alone (a few percent of interleaving
// jitter remains in the comm-clock fold; the default epoch count amortizes
// it well inside the 15% gate). Run with PARADE_TRACE=1 / PARADE_METRICS to
// additionally get
// parade_trace's per-epoch `barrier-critical-path` breakdown of the same
// runs.
//
// --out writes the machine-readable table (BENCH_scaleout.json). --baseline
// compares the fresh numbers against a committed run and exits 1 when any
// matching configuration regressed beyond --tolerance. --require-tree-win
// exits 1 unless the tree barrier beats flat at every swept count >= 32.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/figure_common.hpp"
#include "obs/json.hpp"
#include "runtime/api.hpp"

namespace parade {
namespace {

constexpr std::size_t kPageBytes = 4096;
constexpr int kWarmupEpochs = 2;

struct Row {
  int nodes = 0;
  std::string barrier;  // "flat" or "tree:<k>"
  double barrier_us = 0.0;
};

/// Total virtual time of `epochs` notice-generating barrier epochs.
double sweep_total_us(int nodes, int fanout, const std::string& net,
                      int epochs) {
  RuntimeConfig config;
  config.nodes = nodes;
  config.with_node_config(vtime::NodeConfig::k1Thread2Cpu);
  config.cpu_scale = 0.0;  // modeled communication only: deterministic
  config.dsm.net = vtime::model_from_name(net);
  config.dsm.pool_bytes = static_cast<std::size_t>(nodes + 2) * kPageBytes;
  config.dsm.barrier_fanout = fanout;
  const double seconds = run_virtual_cluster_s(config, [&] {
    auto* data = shmalloc_array<std::uint64_t>(
        static_cast<std::size_t>(num_nodes()) * kPageBytes /
        sizeof(std::uint64_t));
    barrier();
    const std::size_t words_per_page = kPageBytes / sizeof(std::uint64_t);
    const std::size_t my_word =
        static_cast<std::size_t>(node_id()) * words_per_page;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      data[my_word] = static_cast<std::uint64_t>(epoch + 1);
      barrier();
    }
  });
  return seconds * 1e6;
}

/// Warm per-epoch barrier cost: two runs differing only in epoch count, so
/// startup, first-touch faults, and teardown cancel exactly.
double barrier_epoch_us(int nodes, int fanout, const std::string& net,
                        int epochs) {
  const double warm = sweep_total_us(nodes, fanout, net, kWarmupEpochs);
  const double full = sweep_total_us(nodes, fanout, net, kWarmupEpochs + epochs);
  return (full - warm) / static_cast<double>(epochs);
}

std::vector<int> parse_nodes(const std::string& spec) {
  std::vector<int> nodes;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n >= 2 && n <= 128) nodes.push_back(n);
  }
  return nodes;
}

bool write_json(const std::string& path, const std::string& net, int epochs,
                int fanout, const std::vector<Row>& rows) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("scaleout");
  w.key("net");
  w.value(net);
  w.key("epochs");
  w.value(static_cast<std::int64_t>(epochs));
  w.key("fanout");
  w.value(static_cast<std::int64_t>(fanout));
  w.key("rows");
  w.begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("nodes");
    w.value(static_cast<std::int64_t>(row.nodes));
    w.key("barrier");
    w.value(row.barrier);
    w.key("barrier_us");
    w.value(row.barrier_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

/// Compares fresh rows against a committed baseline file; returns the number
/// of configurations that regressed beyond `tolerance`.
int check_baseline(const std::string& path, const std::string& net,
                   const std::vector<Row>& rows, double tolerance) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "scaleout: cannot open baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream text;
  text << in.rdbuf();
  auto parsed = obs::parse_json(text.str());
  if (!parsed.is_ok() || !parsed.value().is_object() ||
      !parsed.value().has("rows") || !parsed.value().at("rows").is_array()) {
    std::fprintf(stderr, "scaleout: baseline %s is not a scaleout table\n",
                 path.c_str());
    return 1;
  }
  if (parsed.value().has("net") &&
      parsed.value().at("net").string != net) {
    std::printf("baseline used net=%s, current run uses net=%s; skipping "
                "regression gate\n",
                parsed.value().at("net").string.c_str(), net.c_str());
    return 0;
  }
  int regressions = 0;
  for (const Row& row : rows) {
    for (const obs::JsonValue& base : parsed.value().at("rows").array) {
      if (!base.is_object() || !base.has("nodes") || !base.has("barrier") ||
          !base.has("barrier_us")) {
        continue;
      }
      if (base.at("nodes").as_int() != row.nodes ||
          base.at("barrier").string != row.barrier) {
        continue;
      }
      const double budget = base.at("barrier_us").number * (1.0 + tolerance);
      const bool regressed = row.barrier_us > budget;
      std::printf("gate %-8s n=%-4d %10.3f us vs baseline %10.3f us %s\n",
                  row.barrier.c_str(), row.nodes, row.barrier_us,
                  base.at("barrier_us").number,
                  regressed ? "REGRESSED" : "ok");
      if (regressed) ++regressions;
    }
  }
  return regressions;
}

}  // namespace
}  // namespace parade

int main(int argc, char** argv) {
  using namespace parade;
  const std::string nodes_spec =
      bench::arg_string(argc, argv, "nodes", "8,16,32,64,128");
  const std::string net = bench::arg_string(argc, argv, "net", "clan");
  const std::string out_path = bench::arg_string(argc, argv, "out", "");
  const std::string baseline = bench::arg_string(argc, argv, "baseline", "");
  const double tolerance = std::atof(
      bench::arg_string(argc, argv, "tolerance", "0.15").c_str());
  const int fanout = static_cast<int>(
      bench::arg_long(argc, argv, "fanout", 4));
  // 48 epochs amortizes scheduler-interleaving noise in the virtual-time
  // fold to a few percent — comfortably inside the 15% regression gate.
  const int epochs =
      static_cast<int>(bench::arg_long(argc, argv, "epochs", 48));
  bool require_tree_win = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--require-tree-win") require_tree_win = true;
  }
  const std::vector<int> sweep = parse_nodes(nodes_spec);
  if (sweep.empty() || fanout < 1 || epochs < 1) {
    std::fprintf(stderr,
                 "usage: scaleout [--nodes=8,16,32,64,128] [--fanout=4] "
                 "[--epochs=48] [--net=clan|fastether|ideal] [--out=PATH] "
                 "[--baseline=PATH] [--tolerance=0.15] [--require-tree-win]\n");
    return 2;
  }

  const std::string tree_name = "tree:" + std::to_string(fanout);
  bench::Series flat_series{"flat", {}};
  bench::Series tree_series{tree_name, {}};
  std::vector<Row> rows;
  bool tree_wins_at_scale = true;
  for (const int nodes : sweep) {
    const double flat_us = barrier_epoch_us(nodes, 0, net, epochs);
    const double tree_us = barrier_epoch_us(nodes, fanout, net, epochs);
    flat_series.values.push_back(flat_us);
    tree_series.values.push_back(tree_us);
    rows.push_back({nodes, "flat", flat_us});
    rows.push_back({nodes, tree_name, tree_us});
    if (nodes >= 32 && tree_us >= flat_us) tree_wins_at_scale = false;
  }
  bench::print_figure(
      "Scale-out: barrier critical path, flat vs " + tree_name +
          " gather (virtual time, " + net + ")",
      "us/epoch", sweep, {flat_series, tree_series});

  if (!out_path.empty() &&
      !write_json(out_path, net, epochs, fanout, rows)) {
    std::fprintf(stderr, "scaleout: cannot write %s\n", out_path.c_str());
    return 1;
  }
  int failures = 0;
  if (!baseline.empty()) {
    failures += check_baseline(baseline, net, rows, tolerance);
  }
  if (require_tree_win && !tree_wins_at_scale) {
    std::fprintf(stderr,
                 "scaleout: tree barrier did not beat flat at >= 32 nodes\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
