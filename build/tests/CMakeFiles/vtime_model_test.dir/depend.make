# Empty dependencies file for vtime_model_test.
# This may be replaced when dependencies are built.
