// Library entry point: OpenMP C source text -> ParADE C++ source text.
#pragma once

#include <string>

#include "common/status.hpp"
#include "translator/codegen.hpp"

namespace parade::translator {

/// Full pipeline: lex -> parse -> generate (paper §4's three C-front steps;
/// preprocessing is left to the host compiler, `#` lines pass through).
Result<std::string> translate_source(const std::string& source,
                                     const TranslateOptions& options = {});

}  // namespace parade::translator
