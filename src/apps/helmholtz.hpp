// Helmholtz solver (the paper's first "real application", from the
// openmp.org sample jacobi.f by Joseph Robicheaux): solves
//     -d2u/dx2 - d2u/dy2 + alpha*u = f   on [-1,1]^2, Dirichlet BCs,
// with a relaxed Jacobi iteration; f is chosen so the exact solution is
// u = (1-x^2)(1-y^2). Every iteration ends with a residual reduction — the
// shared variable "updated competitively" that ParADE's translator turns
// into one collective (paper §6.2).
#pragma once

namespace parade::apps {

struct HelmholtzParams {
  int n = 128;          // grid points per dimension (paper used ~mesh sizes)
  int m = 128;
  double alpha = 0.0543;
  double relax = 1.0;
  double tol = 1e-10;
  int max_iters = 100;
};

struct HelmholtzResult {
  int iterations = 0;
  double residual = 0.0;  // final Jacobi residual
  double error = 0.0;     // RMS error vs the exact solution
};

HelmholtzResult helmholtz_serial(const HelmholtzParams& params);

/// SPMD ParADE version; rows are partitioned across the global team, so each
/// node exchanges only halo pages with its neighbours.
HelmholtzResult helmholtz_parade(const HelmholtzParams& params);

}  // namespace parade::apps
