# Empty dependencies file for helmholtz_solver.
# This may be replaced when dependencies are built.
