// NAS EP (Embarrassingly Parallel) kernel, NPB 2.3 algorithm: generate 2^M
// uniform pseudorandom pairs with the NAS LCG, apply the Marsaglia polar
// method acceptance test, accumulate Gaussian-deviate sums and the
// concentric-annulus counts q[0..9].
//
// Communication pattern (paper §6.2): zero shared memory during compute, one
// reduction of (sx, sy, q[]) at the end — ParADE maps it to a single
// collective.
#pragma once

#include <array>
#include <cstdint>

namespace parade::apps {

struct EpParams {
  int m = 24;  // 2^m pairs; class S=24, W=25, A=28
  static EpParams class_s() { return {24}; }
  static EpParams class_w() { return {25}; }
  static EpParams class_a() { return {28}; }
};

struct EpResult {
  double sx = 0.0;
  double sy = 0.0;
  std::array<std::int64_t, 10> q{};
  std::int64_t gaussian_pairs = 0;
};

/// Single-threaded reference.
EpResult ep_serial(const EpParams& params);

/// SPMD ParADE version; call from inside a cluster program on every node.
/// All nodes return the identical reduced result.
EpResult ep_parade(const EpParams& params);

/// NPB 2.3 reference sums where known (class S/W/A); returns true and fills
/// outputs when available.
bool ep_reference(int m, double* sx, double* sy);

/// |a-b| <= eps * |b| elementwise on (sx, sy).
bool ep_verify(const EpResult& result, int m, double eps = 1e-8);

}  // namespace parade::apps
