// Per-thread execution context. Every application thread (node main thread
// and team workers) carries one; the free-function API in api.hpp resolves
// the current node/team/clock through it.
#pragma once

#include "common/status.hpp"
#include "common/types.hpp"
#include "vtime/clock.hpp"

namespace parade {

class NodeRuntime;

struct ThreadCtx {
  NodeRuntime* node = nullptr;
  LocalThreadId local_id = 0;
  vtime::ThreadClock clock;
  /// Per-thread ordinal of the next single / worksharing-loop construct the
  /// thread encounters; OpenMP requires all threads to meet these constructs
  /// in the same order, so the ordinal identifies the construct instance.
  long single_seq = 0;
  long loop_seq = 0;

  explicit ThreadCtx(double cpu_scale = 1.0) : clock(cpu_scale) {}
};

/// The calling thread's context; dies if the thread is not a ParADE thread.
ThreadCtx& current_ctx();
/// Null when the calling thread is not a ParADE thread.
ThreadCtx* current_ctx_or_null();

namespace detail {
/// Installs `ctx` for the calling thread and binds its virtual clock.
/// Pass nullptr to clear.
void set_current_ctx(ThreadCtx* ctx);
}  // namespace detail

}  // namespace parade
