// Behavioural tests of the direct-execution timing model — the mechanisms
// behind the paper's Figures 8-11 shapes:
//  * a communication-heavy workload is slower on 1Thread-1CPU than on
//    1Thread-2CPU (comm-thread cost serializes vs overlaps),
//  * more compute threads reduce virtual compute time,
//  * a slower network increases virtual time,
//  * EP-style workloads are insensitive to the network.
#include <gtest/gtest.h>

#include "apps/ep.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

namespace parade {
namespace {

/// Page-traffic-heavy workload: nodes take turns rewriting a block of pages.
void page_churn() {
  auto* data = shmalloc_array<double>(16 * 512);  // 16 pages
  barrier();
  for (int epoch = 0; epoch < 6; ++epoch) {
    if (node_id() == epoch % num_nodes()) {
      for (int i = 0; i < 16 * 512; ++i) data[i] = epoch + i * 0.5;
    }
    barrier();
    double sum = 0.0;
    for (int i = 0; i < 16 * 512; i += 512) sum += data[i];
    barrier();
  }
}

/// `cpu_scale = 0.0` makes a run fully deterministic: virtual time is then
/// modeled communication cost only, with no measured-CPU jitter from the
/// (possibly oversubscribed) host. Tests that compare network/placement
/// effects use 0.0; tests about compute-time scaling need the default.
double run_with(vtime::NodeConfig node_config, vtime::NetworkModel net,
                const std::function<void()>& program, int nodes = 2,
                double cpu_scale = 20.0) {
  RuntimeConfig config;
  config.nodes = nodes;
  config.with_node_config(node_config);
  config.cpu_scale = cpu_scale;
  config.dsm.net = net;
  config.dsm.pool_bytes = 4 << 20;
  return run_virtual_cluster_s(config, program);
}

TEST(VtimeModel, CommThreadPlacementMatters) {
  // 1T-1CPU charges communication-thread CPU to the compute timeline;
  // 1T-2CPU overlaps it (paper §6.2's central observation).
  const double one_cpu = run_with(vtime::NodeConfig::k1Thread1Cpu,
                                  vtime::clan_via(), page_churn, 2, 0.0);
  const double two_cpu = run_with(vtime::NodeConfig::k1Thread2Cpu,
                                  vtime::clan_via(), page_churn, 2, 0.0);
  EXPECT_GT(one_cpu, two_cpu);
}

TEST(VtimeModel, MoreThreadsLessComputeTime) {
  auto compute_heavy = [] {
    double sink_replica = 0.0;
    parallel([&] {
      double local = 0.0;
      parallel_for(0, 400000, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) local += 1.0 / (1.0 + i);
      });
      team_update(&sink_replica, local, mp::Op::kSum);
    });
  };
  const double one_thread = run_with(vtime::NodeConfig::k1Thread2Cpu,
                                     vtime::ideal(), compute_heavy);
  const double two_threads = run_with(vtime::NodeConfig::k2Thread2Cpu,
                                      vtime::ideal(), compute_heavy);
  // Two compute threads should cut virtual compute time by roughly half;
  // accept anything clearly better.
  EXPECT_LT(two_threads, 0.8 * one_thread);
}

TEST(VtimeModel, SlowerNetworkSlowerRun) {
  const double clan = run_with(vtime::NodeConfig::k2Thread2Cpu,
                               vtime::clan_via(), page_churn, 2, 0.0);
  const double ether = run_with(vtime::NodeConfig::k2Thread2Cpu,
                                vtime::fast_ethernet(), page_churn, 2, 0.0);
  EXPECT_GT(ether, 1.5 * clan);  // Fast Ethernet is ~5-10x worse
}

TEST(VtimeModel, EpInsensitiveToNetwork) {
  apps::EpParams params{17};
  apps::EpResult result;
  const double clan = run_with(vtime::NodeConfig::k2Thread2Cpu,
                               vtime::clan_via(),
                               [&] { result = apps::ep_parade(params); });
  const double ether = run_with(vtime::NodeConfig::k2Thread2Cpu,
                                vtime::fast_ethernet(),
                                [&] { result = apps::ep_parade(params); });
  // EP communicates once at the end; the network should barely matter
  // (paper: "it is natural that ParADE is highly scalable" for EP).
  EXPECT_LT(ether, 1.5 * clan);
}

TEST(VtimeModel, MoreNodesMoreSyncCost) {
  auto sync_heavy = [] {
    double replica = 0.0;
    parallel([&] {
      for (int i = 0; i < 30; ++i) team_update(&replica, 1.0, mp::Op::kSum);
    });
  };
  const double two = run_with(vtime::NodeConfig::k2Thread2Cpu,
                              vtime::clan_via(), sync_heavy, 2, 0.0);
  const double eight = run_with(vtime::NodeConfig::k2Thread2Cpu,
                                vtime::clan_via(), sync_heavy, 8, 0.0);
  EXPECT_GT(eight, two);  // log-depth collectives + more arrivals
}

}  // namespace
}  // namespace parade
