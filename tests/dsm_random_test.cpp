// Randomized DSM consistency property test: a reference "golden" array is
// maintained with plain memory while the same writes are applied to the DSM
// pool by their assigned nodes; after each barrier every node must observe
// the golden contents. Write sets are word-granular and per-epoch disjoint
// across nodes (a data-race-free program), which is exactly the guarantee
// HLRC must preserve.
#include <gtest/gtest.h>

#include <sys/mman.h>

#include <cstring>
#include <random>
#include <set>

#include "dsm/cluster.hpp"
#include "dsm/diff.hpp"
#include "dsm/mapping.hpp"

namespace parade::dsm {
namespace {

struct Scenario {
  int nodes;
  int pages;
  int epochs;
  unsigned seed;
  bool migration;
};

class RandomConsistency : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomConsistency, ConvergesEveryEpoch) {
  const Scenario s = GetParam();
  const std::size_t words =
      static_cast<std::size_t>(s.pages) * 4096 / sizeof(std::uint64_t);

  // Pre-generate the write plan so every node sees the same schedule.
  // plan[epoch] = list of (word index, value, writer node).
  struct Write {
    std::size_t word;
    std::uint64_t value;
    int writer;
  };
  std::mt19937_64 rng(s.seed);
  std::vector<std::vector<Write>> plan(static_cast<std::size_t>(s.epochs));
  std::vector<std::uint64_t> golden(words, 0);
  for (auto& epoch_writes : plan) {
    const int count = static_cast<int>(rng() % 200) + 1;
    std::set<std::size_t> used;  // per-epoch disjoint writers per word
    for (int w = 0; w < count; ++w) {
      const std::size_t word = rng() % words;
      if (!used.insert(word).second) continue;
      epoch_writes.push_back(
          Write{word, rng(), static_cast<int>(rng() % s.nodes)});
    }
  }

  DsmConfig config;
  config.pool_bytes = static_cast<std::size_t>(s.pages + 1) * 4096;
  config.home_migration = s.migration;
  DsmCluster cluster(s.nodes, config);
  cluster.run([&](NodeId rank) {
    auto* data = static_cast<std::uint64_t*>(
        cluster.node(rank).shmalloc(words * sizeof(std::uint64_t), 4096));
    cluster.node(rank).barrier();
    std::vector<std::uint64_t> local_golden(words, 0);
    for (const auto& epoch_writes : plan) {
      for (const Write& w : epoch_writes) {
        local_golden[w.word] = w.value;
        if (w.writer == rank) data[w.word] = w.value;
      }
      cluster.node(rank).barrier();
      for (std::size_t i = 0; i < words; ++i) {
        ASSERT_EQ(data[i], local_golden[i])
            << "rank " << rank << " word " << i;
      }
      cluster.node(rank).barrier();
    }
  });
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, RandomConsistency,
    ::testing::Values(Scenario{2, 4, 6, 101, true},
                      Scenario{2, 4, 6, 102, false},
                      Scenario{3, 8, 5, 103, true},
                      Scenario{4, 8, 5, 104, true},
                      Scenario{4, 8, 5, 105, false},
                      Scenario{5, 16, 4, 106, true},
                      Scenario{8, 16, 3, 107, true}),
    [](const auto& info) {
      return std::to_string(info.param.nodes) + "n" +
             std::to_string(info.param.pages) + "p" +
             (info.param.migration ? "mig" : "fix") +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Twin/diff round-trip property: random word-granular writes through the
// segment pool's *application* view (the path real programs take) must
// produce a diff — streamed by append_diff straight into a wire buffer, as
// the zero-copy flush does — that applies back onto the home's copy exactly.
// The streamed bytes must also match the legacy encode_diff vector
// byte-for-byte, pinning the wire format across both pipelines.

struct DiffScenario {
  unsigned seed;
  int writes;       ///< word writes per round (0 = clean-page case)
  bool full_page;   ///< dirty every word instead of sampling
};

class TwinDiffRoundTrip : public ::testing::TestWithParam<DiffScenario> {};

TEST_P(TwinDiffRoundTrip, AppliesBackExactly) {
  const DiffScenario s = GetParam();
  constexpr std::size_t kPageBytes = 4096;
  constexpr std::size_t kWords = kPageBytes / sizeof(std::uint64_t);
  constexpr int kRounds = 8;

  auto pool_r = SegmentPool::create(1 << 16, kPageBytes, MapMethod::kMemfd);
  ASSERT_TRUE(pool_r.is_ok());
  auto& pool = *pool_r.value();
  std::mt19937_64 rng(s.seed);

  for (int round = 0; round < kRounds; ++round) {
    const PageId page = static_cast<PageId>(
        rng() % static_cast<std::uint64_t>(pool.num_pages()));
    auto* sys =
        reinterpret_cast<std::uint64_t*>(pool.real_address(View::kSys, page, 0));
    auto* app =
        reinterpret_cast<std::uint64_t*>(pool.real_address(View::kApp, page, 0));

    // Seed the frame, snapshot the twin (what upgrade_to_dirty privatizes),
    // and mirror the home's pre-diff copy.
    for (std::size_t w = 0; w < kWords; ++w) sys[w] = rng();
    std::memcpy(pool.real_address(View::kTwin, page, 0), sys, kPageBytes);
    std::vector<std::uint8_t> home(kPageBytes);
    std::memcpy(home.data(), sys, kPageBytes);

    // Writes land through the app view, like the faulting program's stores.
    ASSERT_TRUE(pool
                    .protect_app(static_cast<std::size_t>(page) * kPageBytes,
                                 kPageBytes, PROT_READ | PROT_WRITE)
                    .is_ok());
    if (s.full_page) {
      for (std::size_t w = 0; w < kWords; ++w) app[w] = rng();
    } else {
      for (int i = 0; i < s.writes; ++i) {
        // Bias toward the page boundaries so first/last-word runs are hit.
        const std::uint64_t r = rng();
        const std::size_t word = (r % 4 == 0)   ? (r % 2 ? 0 : kWords - 1)
                                                : (r >> 8) % kWords;
        app[word] = rng();
      }
    }

    const auto* current = reinterpret_cast<const std::uint8_t*>(sys);
    const auto* twin = reinterpret_cast<const std::uint8_t*>(
        pool.real_address(View::kTwin, page, 0));

    WireBuffer buffer;
    const std::size_t diff_bytes =
        append_diff(buffer, current, twin, kPageBytes);
    const auto legacy = encode_diff(current, twin, kPageBytes);

    // Streamed layout = u32 length prefix + exactly the legacy diff bytes.
    ASSERT_EQ(diff_bytes, legacy.size());
    ASSERT_EQ(buffer.size(), 4 + diff_bytes);
    EXPECT_TRUE(std::memcmp(buffer.bytes().data() + 4, legacy.data(),
                            diff_bytes) == 0);
    if (s.writes == 0 && !s.full_page) EXPECT_EQ(diff_bytes, 0u);

    ASSERT_TRUE(apply_diff(home.data(), kPageBytes,
                           buffer.bytes().data() + 4, diff_bytes));
    EXPECT_TRUE(std::memcmp(home.data(), sys, kPageBytes) == 0)
        << "seed " << s.seed << " round " << round << " page " << page;

    ASSERT_TRUE(pool
                    .protect_app(static_cast<std::size_t>(page) * kPageBytes,
                                 kPageBytes, PROT_NONE)
                    .is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TwinDiffRoundTrip,
    ::testing::Values(DiffScenario{201, 0, false},     // clean page
                      DiffScenario{202, 1, false},     // single word
                      DiffScenario{203, 12, false},
                      DiffScenario{204, 64, false},
                      DiffScenario{205, 200, false},
                      DiffScenario{206, 0, true}),     // every word dirty
    [](const auto& info) {
      return "s" + std::to_string(info.param.seed) + "_" +
             (info.param.full_page ? "full"
                                   : std::to_string(info.param.writes) + "w");
    });

}  // namespace
}  // namespace parade::dsm
