// Multi-process example for the parade_run launcher: each OS process is one
// cluster node over Unix-domain sockets (the deployment the paper ran on a
// real cluster). Falls back to a 2-node virtual cluster when run directly.
//
//   ./parade_run -n 4 -t 2 ./cluster_hello
#include <cstdio>

#include "common/env.hpp"
#include "runtime/api.hpp"
#include "runtime/cluster.hpp"

namespace {

void program() {
  using namespace parade;
  auto* counters = shmalloc_array<std::int64_t>(64);
  if (node_id() == 0) {
    for (int i = 0; i < 64; ++i) counters[i] = 0;
  }
  barrier();

  parallel([&] {
    // Every thread ticks its own slot (distinct DSM pages would be nicer,
    // but a little false sharing makes the protocol earn its keep).
    counters[thread_id()] = 1000 + thread_id();
    const double sum = team_reduce(static_cast<double>(thread_id()),
                                   mp::Op::kSum);
    if (local_thread_id() == 0) {
      std::printf("[node %d] team reduce over %d threads = %.0f\n", node_id(),
                  num_threads(), sum);
    }
  });

  barrier();
  if (is_master()) {
    std::int64_t total = 0;
    for (int i = 0; i < num_threads(); ++i) total += counters[i];
    std::printf("[master] counter total = %lld (expected %d x 1000 + %d)\n",
                static_cast<long long>(total), num_threads(),
                num_threads() * (num_threads() - 1) / 2);
  }
}

}  // namespace

int main() {
  using namespace parade;
  if (env::get_int("PARADE_RANK").has_value()) {
    auto runtime = ProcessRuntime::from_env();
    if (!runtime.is_ok()) {
      std::fprintf(stderr, "cluster_hello: %s\n",
                   runtime.status().to_string().c_str());
      return 1;
    }
    runtime.value()->exec(program);
    return 0;
  }
  std::printf("(no PARADE_RANK; running a 2-node virtual cluster — try "
              "parade_run -n 4 ./cluster_hello)\n");
  RuntimeConfig config = runtime_config_from_env();
  VirtualCluster cluster(config);
  cluster.exec(program);
  cluster.shutdown();
  return 0;
}
