file(REMOVE_RECURSE
  "CMakeFiles/dsm_random_test.dir/dsm_random_test.cpp.o"
  "CMakeFiles/dsm_random_test.dir/dsm_random_test.cpp.o.d"
  "dsm_random_test"
  "dsm_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
