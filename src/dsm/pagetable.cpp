#include "dsm/pagetable.hpp"

namespace parade::dsm {

const char* to_string(PageState state) {
  switch (state) {
    case PageState::kInvalid: return "INVALID";
    case PageState::kTransient: return "TRANSIENT";
    case PageState::kBlocked: return "BLOCKED";
    case PageState::kReadOnly: return "READ_ONLY";
    case PageState::kDirty: return "DIRTY";
  }
  return "?";
}

PageTable::PageTable(std::size_t num_pages, NodeId initial_home) {
  entries_.reserve(num_pages);
  for (std::size_t i = 0; i < num_pages; ++i) {
    auto entry = std::make_unique<PageEntry>();
    entry->home = initial_home;
    entries_.push_back(std::move(entry));
  }
}

PageEntry& PageTable::entry(PageId page) {
  PARADE_CHECK(page >= 0 && static_cast<std::size_t>(page) < entries_.size());
  return *entries_[static_cast<std::size_t>(page)];
}

const PageEntry& PageTable::entry(PageId page) const {
  PARADE_CHECK(page >= 0 && static_cast<std::size_t>(page) < entries_.size());
  return *entries_[static_cast<std::size_t>(page)];
}

NodeId PageTable::home_of(PageId page) const {
  const PageEntry& e = entry(page);
  return e.home;
}

}  // namespace parade::dsm
