// Semantic-analyzer tests: golden diagnostics over a small OpenMP corpus
// (racy, clean, shadowed, threadprivate, reduction-misuse, ...), the
// size-aware hybrid collective-vs-DSM selection in both directions, the
// strict --threshold parser, and a regression check that placement matches
// the old syntactic classifier's decisions on representative programs.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "obs/json.hpp"
#include "translator/analyze.hpp"
#include "translator/translate.hpp"

namespace parade::translator {
namespace {

Analysis analyze_ok(const std::string& source, AnalyzeOptions options = {}) {
  return analyze_source(source, options).value_or_die();
}

const Diagnostic* find_diag(const Analysis& analysis, const char* code) {
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::size_t count_diags(const Analysis& analysis, const char* code) {
  return static_cast<std::size_t>(std::count_if(
      analysis.diagnostics.begin(), analysis.diagnostics.end(),
      [&](const Diagnostic& d) { return d.code == code; }));
}

// ---------------------------------------------------------------------------
// Golden diagnostics

TEST(Analyze, RacySharedWriteIsErrorWithLine) {
  const Analysis a = analyze_ok(
      "int counter;\n"                      // 1
      "int main(void) {\n"                  // 2
      "  int i;\n"                          // 3
      "  #pragma omp parallel for\n"        // 4
      "  for (i = 0; i < 10; i++) {\n"      // 5
      "    counter = counter + 1;\n"        // 6
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagRaceSharedWrite);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->var, "counter");
  EXPECT_TRUE(a.has_errors());
  ASSERT_EQ(a.globals.count("counter"), 1u);
  EXPECT_EQ(a.globals.at("counter").placement, Placement::kDsmScalar);
}

TEST(Analyze, CleanReductionProgramHasNoDiagnostics) {
  const Analysis a = analyze_ok(
      "static long num_steps = 100;\n"
      "double step;\n"
      "int main(void) {\n"
      "  double x, pi, sum = 0.0;\n"
      "  long i;\n"
      "  step = 1.0 / (double)num_steps;\n"
      "  #pragma omp parallel for private(x) reduction(+:sum)\n"
      "  for (i = 0; i < num_steps; i++) {\n"
      "    x = (i + 0.5) * step;\n"
      "    sum = sum + 4.0 / (1.0 + x * x);\n"
      "  }\n"
      "  pi = step * sum;\n"
      "  return pi > 0 ? 0 : 1;\n"
      "}\n");
  EXPECT_TRUE(a.diagnostics.empty()) << a.to_text("clean.c");
  EXPECT_FALSE(a.has_errors());
  EXPECT_EQ(a.globals.at("num_steps").placement, Placement::kReplicated);
  EXPECT_EQ(a.globals.at("step").placement, Placement::kReplicated);
}

TEST(Analyze, ShadowingLocalSuppressesRace) {
  const Analysis a = analyze_ok(
      "int total;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    int total = 0;\n"
      "    total = total + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagRaceSharedWrite), nullptr)
      << a.to_text("shadow.c");
  // The global was never written in a parallel context: stays replicated.
  EXPECT_EQ(a.globals.at("total").placement, Placement::kReplicated);
}

TEST(Analyze, ThreadprivateWritesAreNotRaces) {
  const Analysis a = analyze_ok(
      "int tp_counter;\n"
      "#pragma omp threadprivate(tp_counter)\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    tp_counter = tp_counter + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagRaceSharedWrite), nullptr) << a.to_text("tp.c");
  EXPECT_EQ(a.globals.at("tp_counter").placement, Placement::kThreadprivate);
}

TEST(Analyze, ReductionVarWrittenOutsideReductionShape) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"                        // 1
      "  double sum = 0.0;\n"                     // 2
      "  long i;\n"                               // 3
      "  #pragma omp parallel for reduction(+:sum)\n"  // 4
      "  for (i = 0; i < 10; i++) {\n"            // 5
      "    sum = i * 2.0;\n"                      // 6
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagReductionMisuse);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->var, "sum");
}

TEST(Analyze, CompatibleReductionUpdateIsClean) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"
      "  double sum = 0.0;\n"
      "  long i;\n"
      "  #pragma omp parallel for reduction(+:sum)\n"
      "  for (i = 0; i < 10; i++) {\n"
      "    sum += 2.0;\n"
      "    sum = sum - 1.0;\n"  // minus folds into a + reduction
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagReductionMisuse), nullptr)
      << a.to_text("red.c");
}

TEST(Analyze, PrivateReadBeforeInit) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"                 // 1
      "  double x = 1.0;\n"                // 2
      "  double y = 0.0;\n"                // 3
      "  #pragma omp parallel private(x)\n"  // 4
      "  {\n"                              // 5
      "    y = x + 1.0;\n"                 // 6
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagPrivateUninitRead);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->var, "x");
}

TEST(Analyze, FirstprivateReadIsNotUninit) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"
      "  double x = 1.0;\n"
      "  double y = 0.0;\n"
      "  #pragma omp parallel firstprivate(x)\n"
      "  {\n"
      "    y = x + 1.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagPrivateUninitRead), nullptr)
      << a.to_text("fp.c");
}

TEST(Analyze, BarrierUnderConditionalDiverges) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"              // 1
      "  int flag = 0;\n"               // 2
      "  #pragma omp parallel\n"        // 3
      "  {\n"                           // 4
      "    if (flag) {\n"               // 5
      "      #pragma omp barrier\n"     // 6
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagBarrierDivergence);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 6);
}

TEST(Analyze, TopLevelBarrierInParallelIsFine) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp barrier\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagBarrierDivergence), nullptr)
      << a.to_text("barrier.c");
}

TEST(Analyze, NowaitFollowedByDependentRead) {
  const Analysis a = analyze_ok(
      "double acc;\n"                       // 1
      "int main(void) {\n"                  // 2
      "  long i;\n"                         // 3
      "  double out = 0.0;\n"               // 4
      "  #pragma omp parallel\n"            // 5
      "  {\n"                               // 6
      "    #pragma omp single nowait\n"     // 7
      "    {\n"                             // 8
      "      acc = 42.0;\n"                 // 9
      "    }\n"                             // 10
      "    out = acc + 1.0;\n"              // 11
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagNowaitDependentRead);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 11);
  EXPECT_EQ(d->var, "acc");
}

TEST(Analyze, BarrierClearsNowaitDependence) {
  const Analysis a = analyze_ok(
      "double acc;\n"
      "int main(void) {\n"
      "  double out = 0.0;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single nowait\n"
      "    {\n"
      "      acc = 42.0;\n"
      "    }\n"
      "    #pragma omp barrier\n"
      "    out = acc + 1.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagNowaitDependentRead), nullptr)
      << a.to_text("nowait.c");
}

TEST(Analyze, DefaultNoneRequiresExplicitAttributes) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"                        // 1
      "  double z = 0.0;\n"                       // 2
      "  #pragma omp parallel default(none)\n"    // 3
      "  {\n"                                     // 4
      "    double w = z;\n"                       // 5
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagDefaultNoneMissing);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->var, "z");
  // Reported once per (region, variable) even with repeated references.
  EXPECT_EQ(count_diags(a, kDiagDefaultNoneMissing), 1u);
}

TEST(Analyze, AtomicNonUpdateIsError) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"             // 1
      "  double v = 0.0;\n"            // 2
      "  #pragma omp parallel\n"       // 3
      "  {\n"                          // 4
      "    #pragma omp atomic\n"       // 5
      "    v = 2.0 * 3.0;\n"           // 6
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagAtomicNotUpdate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 5);
}

TEST(Analyze, CriticalWithCallExplainsFallback) {
  const Analysis a = analyze_ok(
      "double total;\n"
      "double f(double v);\n"
      "int main(void) {\n"             // 3
      "  #pragma omp parallel\n"       // 4
      "  {\n"                          // 5
      "    #pragma omp critical\n"     // 6
      "    total = total + f(1.0);\n"  // 7
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagSyncDsmFallback);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(d->line, 6);
  EXPECT_NE(d->message.find("function"), std::string::npos);
  ASSERT_EQ(a.sync_sites.count(6), 1u);
  EXPECT_FALSE(a.sync_sites.at(6).collective);
  // Fallback criticals leave their written globals on the DSM path.
  EXPECT_EQ(a.globals.at("total").placement, Placement::kDsmScalar);
}

TEST(Analyze, SectionsWritingSameSharedScalarRace) {
  const Analysis a = analyze_ok(
      "int shared_v;\n"                       // 1
      "int main(void) {\n"                    // 2
      "  #pragma omp parallel sections\n"     // 3
      "  {\n"                                 // 4
      "    #pragma omp section\n"             // 5
      "    shared_v = 1;\n"                   // 6
      "    #pragma omp section\n"             // 7
      "    shared_v = 2;\n"                   // 8
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagRaceSharedWrite);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->var, "shared_v");
  EXPECT_EQ(a.globals.at("shared_v").placement, Placement::kDsmScalar);
}

TEST(Analyze, SingleSectionWriteIsNotARace) {
  const Analysis a = analyze_ok(
      "int shared_v;\n"
      "int main(void) {\n"
      "  #pragma omp parallel sections\n"
      "  {\n"
      "    #pragma omp section\n"
      "    shared_v = 1;\n"
      "    #pragma omp section\n"
      "    { int local_v = 2; local_v = local_v + 1; }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagRaceSharedWrite), nullptr)
      << a.to_text("sections.c");
}

// ---------------------------------------------------------------------------
// Size-aware hybrid protocol selection (paper §5.2: 256 B rule)

const char* kGuardedCritical =
    "double total;\n"                // 1
    "int main(void) {\n"             // 2
    "  #pragma omp parallel\n"       // 3
    "  {\n"                          // 4
    "    #pragma omp critical\n"     // 5
    "    total = total + 1.5;\n"     // 6
    "  }\n"
    "  return 0;\n"
    "}\n";

TEST(Analyze, SmallGuardedScalarGoesCollective) {
  const Analysis a = analyze_ok(kGuardedCritical);  // default 256 B threshold
  ASSERT_EQ(a.sync_sites.count(5), 1u);
  EXPECT_TRUE(a.sync_sites.at(5).collective);
  EXPECT_EQ(a.sync_sites.at(5).var, "total");
  EXPECT_EQ(a.globals.at("total").placement, Placement::kReplicated);
  EXPECT_EQ(a.globals.at("total").byte_size, 8u);

  TranslateOptions options;
  options.emit_main_wrapper = false;
  const std::string code =
      translate_source(kGuardedCritical, options).value_or_die();
  EXPECT_NE(code.find("team_allreduce_bytes"), std::string::npos);
  EXPECT_EQ(code.find("dsm_lock"), std::string::npos);
  EXPECT_NE(code.find("__prep_total"), std::string::npos);
}

TEST(Analyze, OverThresholdScalarFallsBackToDsm) {
  AnalyzeOptions options;
  options.mp_threshold_bytes = 4;  // a double no longer fits
  const Analysis a = analyze_ok(kGuardedCritical, options);
  ASSERT_EQ(a.sync_sites.count(5), 1u);
  EXPECT_FALSE(a.sync_sites.at(5).collective);
  EXPECT_NE(a.sync_sites.at(5).reason.find("threshold"), std::string::npos);
  EXPECT_EQ(a.globals.at("total").placement, Placement::kDsmScalar);

  TranslateOptions xoptions;
  xoptions.emit_main_wrapper = false;
  xoptions.mp_threshold_bytes = 4;
  const std::string code =
      translate_source(kGuardedCritical, xoptions).value_or_die();
  EXPECT_NE(code.find("dsm_lock"), std::string::npos);
  EXPECT_NE(code.find("__pdsm_total"), std::string::npos);
  EXPECT_EQ(code.find("team_allreduce_bytes"), std::string::npos);
}

TEST(Analyze, UnknownSizeTypeFallsBackWithReason) {
  const Analysis a = analyze_ok(
      "struct big_t state;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical\n"
      "    state += 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(a.sync_sites.count(5), 1u);
  EXPECT_FALSE(a.sync_sites.at(5).collective);
  EXPECT_NE(a.sync_sites.at(5).reason.find("size"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Classification regression vs the old syntactic classifier

TEST(AnalyzeRegression, MasterBlockWritesStayOnDsm) {
  const Analysis a = analyze_ok(
      "int m_count;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp master\n"
      "    m_count = m_count + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  // One thread executes: no race, but nothing propagates the store except
  // the DSM (same decision the old classifier made).
  EXPECT_EQ(find_diag(a, kDiagRaceSharedWrite), nullptr);
  EXPECT_EQ(a.globals.at("m_count").placement, Placement::kDsmScalar);
}

TEST(AnalyzeRegression, SingleWritesStayReplicated) {
  const Analysis a = analyze_ok(
      "int s_value;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single\n"
      "    s_value = 7;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  // single results travel in the broadcast payload: managed, replicated.
  EXPECT_EQ(find_diag(a, kDiagRaceSharedWrite), nullptr);
  EXPECT_EQ(a.globals.at("s_value").placement, Placement::kReplicated);
}

TEST(AnalyzeRegression, FileArraysAlwaysDsm) {
  const Analysis a = analyze_ok(
      "double grid[64][64];\n"
      "int main(void) { return 0; }\n");
  EXPECT_EQ(a.globals.at("grid").placement, Placement::kDsmArray);
}

TEST(AnalyzeRegression, SerialWritesDoNotForceDsm) {
  const Analysis a = analyze_ok(
      "double step;\n"
      "int main(void) {\n"
      "  step = 0.5;\n"  // serial context: no parallel write
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.diagnostics.empty());
  EXPECT_EQ(a.globals.at("step").placement, Placement::kReplicated);
}

TEST(AnalyzeRegression, DivisionUpdateNoLongerSplitsDecision) {
  // Old bug: the classifier accepted `x = x / n` as managed (any binop) but
  // the emitter rejected it (no `/` collective), leaving a replicated
  // variable updated behind a lock — lost updates. The unified analysis
  // makes one decision: not analyzable, DSM placement.
  const Analysis a = analyze_ok(
      "double ratio;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical\n"
      "    ratio = ratio / 2.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_EQ(a.sync_sites.count(5), 1u);
  EXPECT_FALSE(a.sync_sites.at(5).collective);
  EXPECT_EQ(a.globals.at("ratio").placement, Placement::kDsmScalar);
}

// ---------------------------------------------------------------------------
// Update-shape matcher

TEST(MatchScalarUpdate, Shapes) {
  auto m = match_scalar_update("sum += x * 2;");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->var, "sum");
  EXPECT_EQ(m->combine_op, "+");

  m = match_scalar_update("n++;");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->apply_op, "+");
  EXPECT_EQ(m->expr, "1");

  m = match_scalar_update("v = v - 3;");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->combine_op, "+");  // subtraction combines additively
  EXPECT_EQ(m->apply_op, "-");

  EXPECT_FALSE(match_scalar_update("v = w + 3;").has_value());
  EXPECT_FALSE(match_scalar_update("v = v / 3;").has_value());
  EXPECT_FALSE(match_scalar_update("v += f(3);").has_value());
  EXPECT_FALSE(match_scalar_update("if (v) v++;").has_value());
}

// ---------------------------------------------------------------------------
// Declared sizes and the strict threshold parser

TEST(SizeofDeclared, BaseTypesPointersArrays) {
  EXPECT_EQ(sizeof_declared("double", 0, {}), 8u);
  EXPECT_EQ(sizeof_declared("static unsigned long", 0, {}), 8u);
  EXPECT_EQ(sizeof_declared("long double", 0, {}), 16u);
  EXPECT_EQ(sizeof_declared("char", 0, {}), 1u);
  EXPECT_EQ(sizeof_declared("short", 0, {}), 2u);
  EXPECT_EQ(sizeof_declared("float", 0, {}), 4u);
  EXPECT_EQ(sizeof_declared("int32_t", 0, {}), 4u);
  EXPECT_EQ(sizeof_declared("struct point", 0, {}), 0u);  // unknown layout
  EXPECT_EQ(sizeof_declared("struct point", 1, {}), sizeof(void*));
  EXPECT_EQ(sizeof_declared("double", 0, {"8", "4"}), 256u);
  EXPECT_EQ(sizeof_declared("double", 0, {"N"}), 0u);  // symbolic dim
}

TEST(ParseThreshold, StrictValidation) {
  EXPECT_EQ(parse_threshold_bytes("256").value_or_die(), 256u);
  EXPECT_EQ(parse_threshold_bytes("1").value_or_die(), 1u);
  EXPECT_FALSE(parse_threshold_bytes("").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("0").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("abc").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("12abc").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("-5").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("1e3").is_ok());
  EXPECT_FALSE(parse_threshold_bytes("99999999999999999999999").is_ok());
}

// ---------------------------------------------------------------------------
// Report formats

TEST(AnalyzeReport, JsonIsValidAndCarriesSummary) {
  const Analysis a = analyze_ok(
      "int counter;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    counter = counter + 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const std::string json = a.to_json("racy.c");
  auto doc = obs::parse_json(json).value_or_die();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("file").string, "racy.c");
  EXPECT_EQ(doc.at("summary").at("errors").as_int(), 1);
  EXPECT_EQ(doc.at("summary").at("vars_dsm").as_int(), 1);
  ASSERT_TRUE(doc.at("diagnostics").is_array());
  ASSERT_EQ(doc.at("diagnostics").array.size(), 1u);
  EXPECT_EQ(doc.at("diagnostics").array[0].at("code").string,
            "race.shared_write");
  EXPECT_EQ(doc.at("diagnostics").array[0].at("line").as_int(), 5);
  ASSERT_TRUE(doc.at("globals").is_array());
  ASSERT_TRUE(doc.at("sync_sites").is_array());
}

TEST(AnalyzeReport, TextFormatHasFileLineCode) {
  const Analysis a = analyze_ok(
      "int counter;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  { counter = counter + 1; }\n"
      "  return 0;\n"
      "}\n");
  const std::string text = a.to_text("racy.c");
  EXPECT_NE(text.find("racy.c:4:5: error [race.shared_write]"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Diagnostics never fail translation (lint is advisory for codegen)

// parade_lint CLI contract (the binary the lint CI tier runs)

std::string run_lint(const std::string& args, int* exit_code) {
  const std::string command =
      std::string(PARADE_BINARY_DIR) + "/src/translator/parade_lint " + args;
  std::string output;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return output;
  }
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
  const int status = pclose(pipe);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return output;
}

TEST(LintCli, NoInputFilesIsAUsageError) {
  int exit_code = 0;
  const std::string output = run_lint("", &exit_code);
  EXPECT_EQ(exit_code, 2);
  EXPECT_NE(output.find("usage:"), std::string::npos);
}

TEST(LintCli, VersionFlagPrintsAndSucceeds) {
  int exit_code = -1;
  const std::string output = run_lint("--version", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(output.find("parade_lint"), std::string::npos);
}

TEST(LintCli, UnknownFlagIsAUsageError) {
  int exit_code = 0;
  run_lint("--no-such-flag", &exit_code);
  EXPECT_EQ(exit_code, 2);
}

TEST(LintCli, JsonAndSarifAreMutuallyExclusive) {
  int exit_code = 0;
  run_lint("--json --sarif whatever.c", &exit_code);
  EXPECT_EQ(exit_code, 2);
}

std::string write_temp(const char* name, const char* content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(LintCli, SarifReportCarriesStableRuleIdsAndLocations) {
  const std::string racy = write_temp(
      "parade_lint_sarif_racy.c",
      "int counter;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  { counter = counter + 1; }\n"
      "  return 0;\n"
      "}\n");
  int exit_code = -1;
  const std::string output = run_lint("--sarif " + racy, &exit_code);
  EXPECT_EQ(exit_code, 1) << output;  // error-severity finding present
  auto doc = obs::parse_json(output);
  ASSERT_TRUE(doc.is_ok()) << output;
  const auto& runs = doc.value().at("runs");
  ASSERT_TRUE(runs.is_array());
  ASSERT_EQ(runs.array.size(), 1u);
  const auto& run = runs.array[0];
  EXPECT_EQ(run.at("tool").at("driver").at("name").string, "parade_lint");
  bool saw_race_rule = false;
  for (const auto& rule : run.at("tool").at("driver").at("rules").array) {
    if (rule.at("id").string == kDiagRaceSharedWrite) saw_race_rule = true;
  }
  EXPECT_TRUE(saw_race_rule) << output;
  ASSERT_FALSE(run.at("results").array.empty());
  const auto& result = run.at("results").array[0];
  EXPECT_EQ(result.at("ruleId").string, kDiagRaceSharedWrite);
  EXPECT_EQ(result.at("level").string, "error");
  const auto& location = result.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(location.at("artifactLocation").at("uri").string, racy);
  EXPECT_EQ(location.at("region").at("startLine").as_int(), 4);
  // Token-precise region: the column of 'counter' in "  { counter = ...",
  // with the exclusive endColumn one past the identifier.
  EXPECT_EQ(location.at("region").at("startColumn").as_int(), 5);
  EXPECT_EQ(location.at("region").at("endColumn").as_int(), 12);
  std::remove(racy.c_str());
}

// ---------------------------------------------------------------------------
// Column resolution + deterministic report order

TEST(AnalyzeReport, DiagnosticsCarryTokenColumns) {
  const Analysis a = analyze_ok(
      "int counter;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  { counter = counter + 1; }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagRaceSharedWrite);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->column, 5);
  EXPECT_EQ(d->end_column, 12);
  auto doc = obs::parse_json(a.to_json("racy.c"));
  ASSERT_TRUE(doc.is_ok());
  const auto& first = doc.value().at("diagnostics").array[0];
  EXPECT_EQ(first.at("column").as_int(), 5);
  EXPECT_EQ(first.at("end_column").as_int(), 12);
}

TEST(AnalyzeReport, DiagnosticOrderIsDeterministicAndSorted) {
  // Two findings on the same line plus findings on earlier lines: the final
  // report must be sorted by (line, rule id, variable) regardless of the
  // order the passes appended them in.
  const char* source =
      "int a;\n"
      "int b;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  { b = a + 1; a = b + 1; }\n"
      "  return 0;\n"
      "}\n";
  const Analysis first = analyze_ok(source);
  const Analysis second = analyze_ok(source);
  ASSERT_GE(first.diagnostics.size(), 2u);
  ASSERT_EQ(first.diagnostics.size(), second.diagnostics.size());
  for (std::size_t i = 0; i < first.diagnostics.size(); ++i) {
    EXPECT_EQ(first.diagnostics[i].code, second.diagnostics[i].code);
    EXPECT_EQ(first.diagnostics[i].var, second.diagnostics[i].var);
    EXPECT_EQ(first.diagnostics[i].line, second.diagnostics[i].line);
  }
  const bool sorted = std::is_sorted(
      first.diagnostics.begin(), first.diagnostics.end(),
      [](const Diagnostic& x, const Diagnostic& y) {
        return std::tie(x.line, x.code, x.var) <
               std::tie(y.line, y.code, y.var);
      });
  EXPECT_TRUE(sorted);
}

TEST(LintCli, DataflowReportListsRegionsAndSuppressions) {
  const std::string guarded = write_temp(
      "parade_lint_dataflow.c",
      "double acc;\n"
      "double out;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single nowait\n"
      "    {\n"
      "      acc = 42.0;\n"
      "    }\n"
      "    #pragma omp critical\n"
      "    {\n"
      "      out = out + acc;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  int exit_code = -1;
  const std::string output = run_lint("--dataflow " + guarded, &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("dataflow: 1 region(s)"), std::string::npos) << output;
  EXPECT_NE(output.find("region CFG:"), std::string::npos) << output;
  EXPECT_NE(output.find("suppressed [nowait.dependent_read]"),
            std::string::npos)
      << output;
  std::remove(guarded.c_str());
}

// ---------------------------------------------------------------------------
// Flow-sensitive pass: nowait FP fixes (the def-use walk only honored
// barriers that were direct children of the region body)

TEST(FlowNowait, BarriersOnBothArmsOfAnIfClearDependence) {
  const Analysis a = analyze_ok(
      "double acc;\n"
      "int c;\n"
      "int main(void) {\n"
      "  double out = 0.0;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single nowait\n"
      "    {\n"
      "      acc = 42.0;\n"
      "    }\n"
      "    if (c > 0) {\n"
      "      #pragma omp barrier\n"
      "    } else {\n"
      "      #pragma omp barrier\n"
      "    }\n"
      "    out = acc + 1.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagNowaitDependentRead), nullptr)
      << a.to_text("nested_barrier.c");
  // The def-use walk still found it; the flow pass filed it as suppressed.
  bool suppressed = false;
  for (const Diagnostic& d : a.suppressed) {
    if (d.code == kDiagNowaitDependentRead) suppressed = true;
  }
  EXPECT_TRUE(suppressed);
}

TEST(FlowNowait, BarrierOnOneArmOnlyKeepsDependence) {
  const Analysis a = analyze_ok(
      "double acc;\n"                       // 1
      "int c;\n"                            // 2
      "int main(void) {\n"                  // 3
      "  double out = 0.0;\n"               // 4
      "  #pragma omp parallel\n"            // 5
      "  {\n"                               // 6
      "    #pragma omp single nowait\n"     // 7
      "    {\n"                             // 8
      "      acc = 42.0;\n"                 // 9
      "    }\n"                             // 10
      "    if (c > 0) {\n"                  // 11
      "      #pragma omp barrier\n"         // 12
      "    }\n"                             // 13
      "    out = acc + 1.0;\n"              // 14
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagNowaitDependentRead);
  ASSERT_NE(d, nullptr) << "the else path skips the barrier";
  EXPECT_EQ(d->line, 14);
}

TEST(FlowNowait, CriticalGuardedReadIsNotADependence) {
  const Analysis a = analyze_ok(
      "double acc;\n"
      "double out;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single nowait\n"
      "    {\n"
      "      acc = 42.0;\n"
      "    }\n"
      "    #pragma omp critical\n"
      "    {\n"
      "      out = out + acc;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagNowaitDependentRead), nullptr)
      << a.to_text("critical_guard.c");
}

TEST(FlowNowait, FlowInsensitiveModeKeepsTheOldBehavior) {
  AnalyzeOptions options;
  options.flow_sensitive = false;
  const Analysis a = analyze_source(
      "double acc;\n"
      "int c;\n"
      "int main(void) {\n"
      "  double out = 0.0;\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp single nowait\n"
      "    {\n"
      "      acc = 42.0;\n"
      "    }\n"
      "    if (c > 0) {\n"
      "      #pragma omp barrier\n"
      "    } else {\n"
      "      #pragma omp barrier\n"
      "    }\n"
      "    out = acc + 1.0;\n"
      "  }\n"
      "  return 0;\n"
      "}\n",
      options).value_or_die();
  EXPECT_NE(find_diag(a, kDiagNowaitDependentRead), nullptr)
      << "without the CFG the nested barriers are invisible";
  EXPECT_TRUE(a.suppressed.empty());
}

// ---------------------------------------------------------------------------
// Flow-only diagnostics: barrier.unmatched / lock.order_cycle /
// dsm.stale_read_loop (positive and negative golden cases each)

TEST(FlowDiag, BarrierUnmatchedAcrossIfArms) {
  const Analysis a = analyze_ok(
      "int c, x;\n"                     // 1
      "int main(void) {\n"              // 2
      "  #pragma omp parallel\n"        // 3
      "  {\n"                           // 4
      "    if (c > 0) {\n"              // 5
      "      #pragma omp barrier\n"     // 6
      "    } else {\n"                  // 7
      "      x = 1;\n"                  // 8
      "    }\n"                         // 9
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagBarrierUnmatched);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->line, 5);
  EXPECT_EQ(count_diags(a, kDiagBarrierUnmatched), 1u);
}

TEST(FlowDiag, BalancedBarriersAreNotUnmatched) {
  const Analysis a = analyze_ok(
      "int c;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    if (c > 0) {\n"
      "      #pragma omp barrier\n"
      "    } else {\n"
      "      #pragma omp barrier\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagBarrierUnmatched), nullptr)
      << a.to_text("balanced.c");
}

TEST(FlowDiag, LockOrderCycleAcrossNamedCriticals) {
  const Analysis a = analyze_ok(
      "int x, y;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical(alpha)\n"
      "    {\n"
      "      #pragma omp critical(beta)\n"
      "      { x = x + 1; }\n"
      "    }\n"
      "    #pragma omp critical(beta)\n"
      "    {\n"
      "      #pragma omp critical(alpha)\n"
      "      { y = y + 1; }\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagLockOrderCycle);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("alpha"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("beta"), std::string::npos) << d->message;
  EXPECT_EQ(count_diags(a, kDiagLockOrderCycle), 1u);
}

TEST(FlowDiag, ConsistentLockOrderHasNoCycle) {
  const Analysis a = analyze_ok(
      "int x, y;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    #pragma omp critical(alpha)\n"
      "    {\n"
      "      #pragma omp critical(beta)\n"
      "      { x = x + 1; }\n"
      "    }\n"
      "    #pragma omp critical(alpha)\n"
      "    {\n"
      "      #pragma omp critical(beta)\n"
      "      { y = y + 1; }\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagLockOrderCycle), nullptr)
      << a.to_text("consistent.c");
}

TEST(FlowDiag, StaleSharedReadInSyncFreeLoop) {
  const Analysis a = analyze_ok(
      "int flag;\n"                         // 1
      "int main(void) {\n"                  // 2
      "  #pragma omp parallel\n"            // 3
      "  {\n"                               // 4
      "    int spins = 0;\n"                // 5
      "    while (flag == 0) {\n"           // 6
      "      spins = spins + 1;\n"          // 7
      "    }\n"                             // 8
      "  }\n"
      "  return 0;\n"
      "}\n");
  const Diagnostic* d = find_diag(a, kDiagStaleReadLoop);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->var, "flag");
}

TEST(FlowDiag, FlushInLoopClearsStaleRead) {
  const Analysis a = analyze_ok(
      "int flag;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    int spins = 0;\n"
      "    while (flag == 0) {\n"
      "      #pragma omp flush\n"
      "      spins = spins + 1;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagStaleReadLoop), nullptr)
      << a.to_text("flush_loop.c");
}

TEST(FlowDiag, LocalLoopBoundIsNotStale) {
  const Analysis a = analyze_ok(
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  {\n"
      "    int n = 10;\n"
      "    int s = 0;\n"
      "    while (s < n) {\n"
      "      s = s + 1;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(find_diag(a, kDiagStaleReadLoop), nullptr)
      << a.to_text("local_bound.c");
}

TEST(Analyze, RacyProgramStillTranslates) {
  TranslateOptions options;
  options.emit_main_wrapper = false;
  auto code = translate_source(
      "int counter;\n"
      "int main(void) {\n"
      "  #pragma omp parallel\n"
      "  { counter = counter + 1; }\n"
      "  return 0;\n"
      "}\n",
      options);
  ASSERT_TRUE(code.is_ok()) << code.status().to_string();
  // The racy scalar lands in the DSM pool, as before the analyzer rewire.
  EXPECT_NE(code.value().find("__pdsm_counter"), std::string::npos);
}

}  // namespace
}  // namespace parade::translator
