// Static protocol hints: the translation-time half of the adaptive hybrid
// protocol (ROADMAP item 4, docs/ANALYZER.md "ProtocolHints hand-off").
//
// The affine footprint analysis estimates, per file-scope symbol, how much
// of it each parallel construct touches and at what read/write ratio. Hint
// synthesis lowers those footprints into per-symbol priors — prefer the
// update (collective) path or the invalidate (page) path, expected
// page-touch count, whether home migration is likely to help — which (a)
// refine codegen's raw mp_threshold_bytes comparison and (b) ship as a JSON
// sidecar the runtime loads to seed DsmConfig::page_priors before the first
// fault (src/dsm/priors.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace parade::translator {

struct SymbolHint {
  std::string name;
  std::size_t byte_size = 0;       // declared size (0 = unknown)
  std::size_t reads = 0;           // accesses inside parallel constructs
  std::size_t writes = 0;
  std::size_t footprint_bytes = 0; // largest per-construct affine footprint
  int writer_constructs = 0;       // distinct parallel constructs writing it

  bool dsm = false;                // placed in the DSM pool
  bool offset_known = false;       // pool_offset mirrors codegen's shmalloc
  std::size_t pool_offset = 0;     // byte offset inside the DSM pool
  bool prefer_update = false;      // update-by-collective over invalidate
  bool migration_friendly = true;  // single-writer: home migration pays off
  std::size_t expected_page_touches = 0;
};

/// Cross-phase sharing classification of one symbol's page footprint
/// (interference pass, docs/ANALYZER.md classification table).
enum class SharingPattern {
  kReadMostly,        // no writers in the phase
  kProducerConsumer,  // one writing phase feeding later reading phases
  kMigratory,         // sole writer per phase; writer may move across phases
  kPingPong           // concurrent writers inside one phase
};

const char* to_string(SharingPattern pattern);

/// One phase-scoped hint range over the DSM pool: the [offset, offset+bytes)
/// slice of a symbol's placement, valid for exactly one program phase.
struct PhaseRange {
  std::string symbol;
  std::size_t offset = 0;  // byte offset inside the DSM pool
  std::size_t bytes = 0;
  SharingPattern pattern = SharingPattern::kReadMostly;
  bool prefer_update = false;
  bool migration_friendly = true;
};

/// All ranges active during one phase (phases are numbered from 0 in program
/// order; the runtime maps phase p to DSM epoch p + epoch_base).
struct PhaseHint {
  int index = 0;
  std::vector<PhaseRange> ranges;
};

struct ProtocolHints {
  std::size_t page_bytes = 4096;
  std::size_t threshold_bytes = 256;
  std::vector<SymbolHint> symbols;

  /// Phase-aware refinement (interference pass; empty = single-phase or the
  /// pass was disabled, in which case the whole-program symbol flags apply).
  std::vector<PhaseHint> phases;
  int phase_count = 0;  // barrier-delimited phases seen in the program
  /// DSM epoch that phase 0 starts at: 1 when codegen emits the shared-init
  /// barrier (epoch 0 is initialization), 0 otherwise.
  int epoch_base = 0;

  bool empty() const { return symbols.empty(); }
  const SymbolHint* find(const std::string& name) const;
  SymbolHint* find(const std::string& name);
  /// JSON sidecar consumed by dsm::load_page_priors (schema in
  /// docs/ANALYZER.md). Version 2: adds `epoch_base` and a `phases` array on
  /// top of the v1 per-symbol records.
  std::string to_json() const;
};

}  // namespace parade::translator
