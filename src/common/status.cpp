#include "common/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace parade {

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kTimeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out(parade::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void die(std::string_view message) {
  std::fprintf(stderr, "parade: fatal: %.*s\n",
               static_cast<int>(message.size()), message.data());
  std::abort();
}

namespace detail {

void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "parade: check failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

void check_failed_msg(const char* expr, std::string_view msg, const char* file,
                      int line) {
  std::fprintf(stderr, "parade: check failed: %s (%.*s) at %s:%d\n", expr,
               static_cast<int>(msg.size()), msg.data(), file, line);
  std::abort();
}

}  // namespace detail
}  // namespace parade
