file(REMOVE_RECURSE
  "CMakeFiles/parade_run.dir/parade_run.cpp.o"
  "CMakeFiles/parade_run.dir/parade_run.cpp.o.d"
  "parade_run"
  "parade_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parade_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
