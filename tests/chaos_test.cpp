// Seeded chaos tier: the randomized DSM workload (disjoint word writes +
// lock-protected counter increments + barriers) runs once fault-free and once
// under a deterministic FaultPlan; the final pool contents must be identical
// byte-for-byte, with nonzero injected-fault and retry counters proving the
// faults actually happened and the retry machinery absorbed them.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "dsm/cluster.hpp"
#include "net/fault.hpp"
#include "obs/registry.hpp"

namespace parade::dsm {
namespace {

constexpr int kNodes = 3;
constexpr int kDataPages = 4;
constexpr int kEpochs = 3;
constexpr int kIncrementsPerEpoch = 4;
constexpr std::size_t kPageBytes = 4096;

struct RunResult {
  std::vector<std::uint64_t> memory;  ///< final data words + counter word
  std::int64_t injected = 0;          ///< sum of net.fault.injected
  std::int64_t dropped = 0;           ///< drops + partition drops
  std::int64_t dsm_retries = 0;       ///< sum of dsm.retry.count
};

struct Write {
  std::size_t word;
  std::uint64_t value;
  int writer;
};

// The write plan is a pure function of its own seed so the faulty and
// fault-free runs execute the identical program.
std::vector<std::vector<Write>> make_plan(std::size_t words) {
  std::mt19937_64 rng(42);
  std::vector<std::vector<Write>> plan(kEpochs);
  for (auto& epoch_writes : plan) {
    const int count = static_cast<int>(rng() % 120) + 40;
    std::set<std::size_t> used;  // per-epoch disjoint words: race-free program
    for (int w = 0; w < count; ++w) {
      const std::size_t word = rng() % words;
      if (!used.insert(word).second) continue;
      epoch_writes.push_back(
          Write{word, rng(), static_cast<int>(rng() % kNodes)});
    }
  }
  return plan;
}

RunResult run_workload(std::optional<std::uint64_t> fault_seed) {
  const std::size_t words =
      kDataPages * kPageBytes / sizeof(std::uint64_t);
  const auto plan = make_plan(words);

  DsmConfig config;
  config.pool_bytes = (kDataPages + 2) * kPageBytes;
  // Chaos-friendly retry knobs: short timeouts so dropped messages recover
  // quickly, a deep attempt budget so partitions can ride out their window.
  config.retry.timeout_ms = 50;
  config.retry.max_attempts = 400;

  auto cluster = fault_seed.has_value()
                     ? std::make_unique<DsmCluster>(
                           kNodes, config,
                           net::default_chaos_plan(*fault_seed))
                     : std::make_unique<DsmCluster>(kNodes, config);

  RunResult result;
  cluster->run([&](NodeId rank) {
    DsmNode& node = cluster->node(rank);
    auto* data = static_cast<std::uint64_t*>(
        node.shmalloc(words * sizeof(std::uint64_t), kPageBytes));
    auto* counter = static_cast<std::uint64_t*>(
        node.shmalloc(sizeof(std::uint64_t), kPageBytes));
    node.barrier();

    std::vector<std::uint64_t> golden(words, 0);
    for (const auto& epoch_writes : plan) {
      for (const Write& w : epoch_writes) {
        golden[w.word] = w.value;
        if (w.writer == rank) data[w.word] = w.value;
      }
      // Conventional-SDSM critical sections riding the same interval.
      for (int i = 0; i < kIncrementsPerEpoch; ++i) {
        node.lock_acquire(1);
        *counter = *counter + 1;
        node.lock_release(1);
      }
      node.barrier();
      for (std::size_t i = 0; i < words; ++i) {
        ASSERT_EQ(data[i], golden[i]) << "rank " << rank << " word " << i;
      }
      node.barrier();
    }

    if (rank == 0) {
      result.memory.assign(data, data + words);
      result.memory.push_back(*counter);
    }
  });

  auto& reg = obs::Registry::instance();
  for (NodeId n = 0; n < kNodes; ++n) {
    result.injected += reg.counter(n, "net.fault.injected").value();
    result.dropped += reg.counter(n, "net.fault.dropped").value() +
                      reg.counter(n, "net.fault.partition_dropped").value();
    result.dsm_retries += reg.counter(n, "dsm.retry.count").value();
  }
  cluster->shutdown();
  return result;
}

class ChaosAtSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosAtSeed, FinalMemoryMatchesFaultFreeRun) {
  const RunResult baseline = run_workload(std::nullopt);
  ASSERT_FALSE(baseline.memory.empty());
  // Fault-free runs must be exact: no injector in the stack, no spurious
  // retransmissions (the retry counters are the proof).
  EXPECT_EQ(baseline.injected, 0);
  EXPECT_EQ(baseline.dsm_retries, 0);
  const std::uint64_t expected_count =
      static_cast<std::uint64_t>(kNodes) * kEpochs * kIncrementsPerEpoch;
  EXPECT_EQ(baseline.memory.back(), expected_count);

  const RunResult chaotic = run_workload(GetParam());
  ASSERT_EQ(chaotic.memory.size(), baseline.memory.size());
  EXPECT_EQ(chaotic.memory, baseline.memory)
      << "chaos run diverged from the fault-free run";
  EXPECT_GT(chaotic.injected, 0) << "the fault plan never fired";
  if (chaotic.dropped > 0) {
    EXPECT_GT(chaotic.dsm_retries, 0)
        << "messages were dropped but nothing retried";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosAtSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// A message-count-keyed partition window between node 0 and node 1 that heals
// mid-run: the retry loops must carry the protocol across the outage (each
// retransmission advances the link counter toward the heal point).
TEST(Chaos, HealingPartitionRecovers) {
  const RunResult baseline = run_workload(std::nullopt);

  const std::size_t words = kDataPages * kPageBytes / sizeof(std::uint64_t);
  const auto plan = make_plan(words);
  DsmConfig config;
  config.pool_bytes = (kDataPages + 2) * kPageBytes;
  config.retry.timeout_ms = 50;
  config.retry.max_attempts = 400;

  net::FaultPlan faults;
  faults.seed = 99;
  faults.partitions.push_back(net::PartitionEvent{0, 1, 30, 90, false});

  DsmCluster cluster(kNodes, config, faults);
  std::vector<std::uint64_t> memory;
  cluster.run([&](NodeId rank) {
    DsmNode& node = cluster.node(rank);
    auto* data = static_cast<std::uint64_t*>(
        node.shmalloc(words * sizeof(std::uint64_t), kPageBytes));
    auto* counter = static_cast<std::uint64_t*>(
        node.shmalloc(sizeof(std::uint64_t), kPageBytes));
    node.barrier();
    std::vector<std::uint64_t> golden(words, 0);
    for (const auto& epoch_writes : plan) {
      for (const Write& w : epoch_writes) {
        golden[w.word] = w.value;
        if (w.writer == rank) data[w.word] = w.value;
      }
      for (int i = 0; i < kIncrementsPerEpoch; ++i) {
        node.lock_acquire(1);
        *counter = *counter + 1;
        node.lock_release(1);
      }
      node.barrier();
      for (std::size_t i = 0; i < words; ++i) {
        ASSERT_EQ(data[i], golden[i]) << "rank " << rank << " word " << i;
      }
      node.barrier();
    }
    if (rank == 0) {
      memory.assign(data, data + words);
      memory.push_back(*counter);
    }
  });

  auto& reg = obs::Registry::instance();
  std::int64_t partition_dropped = 0;
  std::int64_t retries = 0;
  for (NodeId n = 0; n < kNodes; ++n) {
    partition_dropped += reg.counter(n, "net.fault.partition_dropped").value();
    retries += reg.counter(n, "dsm.retry.count").value();
  }
  cluster.shutdown();

  EXPECT_EQ(memory, baseline.memory);
  EXPECT_GT(partition_dropped, 0) << "the partition window never engaged";
  EXPECT_GT(retries, 0);
}

}  // namespace
}  // namespace parade::dsm
